"""Packet-trace capture, persistence, and replay."""

import pytest

from repro.errors import ConfigurationError
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.scenarios import figure1
from repro.traffic.generators import PoissonArrivals
from repro.traffic.packet import FixedSize
from repro.traffic.trace import (PacketTrace, TraceEntry, TraceReplay,
                                 record)
from repro.units import gbps


@pytest.fixture
def small_trace():
    return PacketTrace([TraceEntry(0.0, 64, 0),
                        TraceEntry(1e-6, 128, 1),
                        TraceEntry(3e-6, 1500, 0)])


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            PacketTrace([])

    def test_decreasing_times_rejected(self):
        with pytest.raises(ConfigurationError, match="non-decreasing"):
            PacketTrace([TraceEntry(1e-6, 64), TraceEntry(0.0, 64)])

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            PacketTrace([TraceEntry(-1.0, 64)])

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigurationError):
            PacketTrace([TraceEntry(0.0, 0)])


class TestProperties:
    def test_duration_and_bytes(self, small_trace):
        assert small_trace.duration_s == 3e-6
        assert small_trace.total_bytes == 64 + 128 + 1500

    def test_mean_rate(self, small_trace):
        assert small_trace.mean_rate_bps() == pytest.approx(
            (64 + 128 + 1500) * 8 / 3e-6)


class TestPersistence:
    def test_roundtrip_text(self, small_trace):
        again = PacketTrace.loads(small_trace.dumps())
        assert again.entries == small_trace.entries

    def test_roundtrip_file(self, small_trace, tmp_path):
        path = tmp_path / "t.trace"
        small_trace.save(path)
        assert PacketTrace.load(path).entries == small_trace.entries

    def test_header_required(self):
        with pytest.raises(ConfigurationError, match="repro trace"):
            PacketTrace.loads("0.0,64,0\n")

    def test_malformed_line_located(self, small_trace):
        text = small_trace.dumps() + "oops\n"
        with pytest.raises(ConfigurationError, match="line 5"):
            PacketTrace.loads(text)

    def test_float_precision_preserved(self):
        trace = PacketTrace([TraceEntry(1 / 3, 64)])
        again = PacketTrace.loads(trace.dumps())
        assert again.entries[0].arrival_s == 1 / 3


class TestRecordReplay:
    def test_record_captures_generator(self):
        generator = PoissonArrivals(gbps(1.0), FixedSize(256), 0.001,
                                    seed=4)
        trace = record(generator)
        original = list(generator.packets())
        assert len(trace) == len(original)
        assert trace.entries[0].arrival_s == original[0].arrival_s

    def test_replay_is_verbatim(self):
        generator = PoissonArrivals(gbps(1.0), FixedSize(256), 0.001,
                                    seed=4)
        trace = record(generator)
        replayed = list(TraceReplay(trace).packets())
        original = list(generator.packets())
        assert [(p.arrival_s, p.size_bytes, p.flow_id) for p in replayed] \
            == [(p.arrival_s, p.size_bytes, p.flow_id) for p in original]

    def test_time_scale_compresses(self, small_trace):
        replay = TraceReplay(small_trace, time_scale=0.5)
        packets = list(replay.packets())
        assert packets[-1].arrival_s == pytest.approx(1.5e-6)
        assert replay.mean_rate_bps() == pytest.approx(
            2 * small_trace.mean_rate_bps())

    def test_invalid_scale(self, small_trace):
        with pytest.raises(ConfigurationError):
            TraceReplay(small_trace, time_scale=0.0)

    def test_replay_drives_a_simulation_identically(self):
        generator = PoissonArrivals(gbps(1.0), FixedSize(256), 0.002,
                                    seed=4)
        trace = record(generator)
        live = run_experiment(ExperimentConfig(
            scenario=figure1(), generator=generator))
        replayed = run_experiment(ExperimentConfig(
            scenario=figure1(), generator=TraceReplay(trace)))
        assert replayed.delivered == live.delivered
        assert replayed.latency.mean_s == pytest.approx(
            live.latency.mean_s, rel=1e-12)
