"""The soak campaign on the exec core: golden, resume, and budgets."""

import os

import pytest

from repro.checkpoint import read_journal
from repro.errors import ConfigurationError
from repro.soak import (SoakCampaign, SoakRunner, default_space,
                        failing_payloads, render_payloads)
from repro.soak.fuzzer import PlantedBug

GOLDEN = os.path.join(os.path.dirname(__file__), "golden",
                      "soak_runs6_seed7.txt")

_SPACE = default_space(0.010)


def _runner(**kwargs):
    defaults = dict(runs=6, seed=7, space=_SPACE)
    defaults.update(kwargs)
    return SoakRunner(**defaults)


def _render(workers):
    return render_payloads(_runner(workers=workers).run().payloads)


class TestGolden:
    def test_serial_matches_golden(self):
        with open(GOLDEN, "r", encoding="utf-8") as handle:
            golden = handle.read()
        assert _render(1) + "\n" == golden

    def test_parallel_matches_golden(self):
        with open(GOLDEN, "r", encoding="utf-8") as handle:
            golden = handle.read()
        assert _render(2) + "\n" == golden


class TestCampaignSpec:
    def test_spec_round_trip(self):
        campaign = SoakCampaign(runs=4, seed=7, space=_SPACE,
                                planted=PlantedBug("conservation"),
                                planted_index=2)
        rebuilt = SoakCampaign.from_spec(campaign.spec())
        assert rebuilt.fingerprint() == campaign.fingerprint()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SoakCampaign(runs=0, seed=7)
        with pytest.raises(ConfigurationError):
            SoakCampaign(runs=4, seed=7,
                         planted=PlantedBug("conservation"))
        with pytest.raises(ConfigurationError):
            SoakCampaign(runs=4, seed=7,
                         planted=PlantedBug("conservation"),
                         planted_index=4)

    def test_planted_case_only_at_its_index(self):
        campaign = SoakCampaign(runs=4, seed=7, space=_SPACE,
                                planted=PlantedBug("conservation"),
                                planted_index=2)
        cases = [campaign.case_for(request)
                 for request in campaign.requests()]
        assert [case.planted is not None for case in cases] == \
            [False, False, True, False]


class TestJournalResume:
    def test_resume_is_bit_exact(self, tmp_path):
        journal = str(tmp_path / "soak.jsonl")
        reference = _runner().run()
        _runner(journal_path=journal, checkpoint_every=1).run()
        # Drop the campaign-end and the last two run-results so the
        # resume has real work left.
        outcome = read_journal(journal)
        lines = []
        kept = 0
        with open(journal, "r", encoding="utf-8") as handle:
            raw = handle.read().splitlines()
        for line, record in zip(raw, outcome.records):
            kind = record.get("kind")
            if kind == "run-result":
                if kept == 4:
                    break
                kept += 1
            elif kind not in ("campaign-start", "campaign-progress"):
                break
            lines.append(line)
        with open(journal, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")

        resumer = _runner(resume_from=journal)
        resumed = resumer.run()
        assert resumer.replayed_runs == 4
        assert render_payloads(resumed.payloads) == \
            render_payloads(reference.payloads)


class TestBudgets:
    def test_stop_on_failure_writes_campaign_stop(self, tmp_path):
        journal = str(tmp_path / "stop.jsonl")
        runner = _runner(planted=PlantedBug("conservation"),
                         planted_index=2, journal_path=journal,
                         stop_on_failure=True, checkpoint_every=1)
        outcome = runner.run()
        assert outcome.stopped is not None
        assert "first failure: run 2" in outcome.stopped
        assert outcome.executed == 3
        assert len(outcome.payloads) == 3
        assert len(failing_payloads(outcome.payloads)) == 1
        records = read_journal(journal).records
        assert records[-1]["kind"] == "campaign-stop"
        assert records[-1]["completed"] == 3
        assert outcome.stopped == records[-1]["reason"]

    def test_stopped_journal_resumes_to_completion(self, tmp_path):
        journal = str(tmp_path / "stop.jsonl")
        plant_kwargs = dict(planted=PlantedBug("conservation"),
                            planted_index=2)
        _runner(journal_path=journal, stop_on_failure=True,
                **plant_kwargs).run()
        resumer = _runner(resume_from=journal, **plant_kwargs)
        completed = resumer.run()
        assert resumer.replayed_runs == 3
        assert completed.stopped is None
        assert len(completed.payloads) == 6
        records = read_journal(journal).records
        assert records[-1]["kind"] == "campaign-end"

    def test_wall_clock_budget_stops_cleanly(self, tmp_path):
        journal = str(tmp_path / "wall.jsonl")
        outcome = _runner(journal_path=journal, max_wall_s=1e-9).run()
        assert outcome.stopped is not None
        assert "wall-clock budget" in outcome.stopped
        assert outcome.executed == 1  # the stop lands after run 0
        records = read_journal(journal).records
        assert records[-1]["kind"] == "campaign-stop"

    def test_runner_validation(self):
        with pytest.raises(ConfigurationError):
            _runner(max_wall_s=0.0)
        with pytest.raises(ConfigurationError):
            _runner(checkpoint_every=0)
        with pytest.raises(ConfigurationError):
            _runner(workers=0)
