"""Canonical scenario builders."""

import pytest

from repro.chain.nf import DeviceKind
from repro.errors import ConfigurationError
from repro.harness.scenarios import (FIGURE1_THROUGHPUT_BPS, figure1,
                                     long_chain, table1_chain)
from repro.resources.model import LoadModel
from repro.units import gbps

C = DeviceKind.CPU
S = DeviceKind.SMARTNIC


class TestFigure1:
    def test_chain_order(self, fig1_scenario):
        assert fig1_scenario.chain.names() == \
            ["load_balancer", "logger", "monitor", "firewall"]

    def test_placement_matches_figure(self, fig1_scenario):
        placement = fig1_scenario.placement
        assert placement.device_of("load_balancer") is C
        assert all(placement.device_of(n) is S
                   for n in ("logger", "monitor", "firewall"))
        assert placement.egress is C

    def test_canonical_load_overloads_only_the_nic(self, fig1_scenario):
        load = LoadModel(fig1_scenario.placement,
                         FIGURE1_THROUGHPUT_BPS)
        assert load.nic_load().overloaded
        assert not load.cpu_load().overloaded

    def test_build_server_installs_placement(self, fig1_scenario):
        server = fig1_scenario.build_server()
        assert server.placement == fig1_scenario.placement

    def test_with_placement_variant(self, fig1_scenario):
        moved = fig1_scenario.placement.moved("logger", C)
        variant = fig1_scenario.with_placement(moved, suffix="pam")
        assert variant.name.endswith("pam")
        assert variant.placement is moved
        assert variant.chain is fig1_scenario.chain

    def test_renamed(self, fig1_scenario):
        assert fig1_scenario.renamed("x").name == "x"


class TestTable1Chain:
    def test_uses_literal_capacities(self):
        scenario = table1_chain()
        assert scenario.chain.get("logger").nic_capacity_bps == gbps(2.0)


class TestLongChain:
    def test_length(self):
        assert len(long_chain(6).chain) == 6
        assert len(long_chain(8).chain) == 8

    def test_minimum_length(self):
        with pytest.raises(ConfigurationError):
            long_chain(2)

    def test_nic_fraction_bounds(self):
        with pytest.raises(ConfigurationError):
            long_chain(5, nic_fraction=0.0)

    def test_has_borders_on_both_sides(self):
        from repro.core.border import border_sets
        scenario = long_chain(6)
        sets = border_sets(scenario.placement)
        assert sets.left and sets.right

    def test_names_unique_beyond_catalog_cycle(self):
        scenario = long_chain(12)
        names = scenario.chain.names()
        assert len(names) == len(set(names))

    def test_nic_fraction_scales_segment(self):
        small = long_chain(8, nic_fraction=0.3)
        large = long_chain(8, nic_fraction=0.9)
        assert len(large.placement.nic_nfs()) > \
            len(small.placement.nic_nfs())


class TestPresetScenarios:
    def test_datacenter_inline_shape(self):
        from repro.harness.scenarios import datacenter_inline
        scenario = datacenter_inline()
        placement = scenario.placement
        assert placement.device_of("ids") is C
        assert placement.device_of("gateway") is S
        # Bump-in-the-wire with two CPU islands (ids, lb): 4 crossings.
        assert placement.pcie_crossings() == 4

    def test_datacenter_borders(self):
        from repro.core.border import border_sets
        from repro.harness.scenarios import datacenter_inline
        sets = border_sets(datacenter_inline().placement)
        assert "firewall" in sets.right  # downstream ids on CPU
        assert "nat" in sets.left        # upstream lb on CPU

    def test_datacenter_healthy_at_nominal_load(self):
        # The datacenter preset's NIC segment is deliberately roomy
        # (gateway/firewall/nat at 10/10/8 Gbps): nominal 1.2 Gbps is
        # healthy and the knee sits near 3.1 Gbps.
        from repro.harness.scenarios import datacenter_inline
        from repro.resources.model import LoadModel
        scenario = datacenter_inline()
        load = LoadModel(scenario.placement, scenario.throughput_bps)
        assert not load.nic_load().overloaded
        from repro.chain.nf import DeviceKind
        knee = load.max_sustainable_throughput(DeviceKind.SMARTNIC)
        assert knee == pytest.approx(gbps(1 / 0.325), rel=1e-6)

    def test_enterprise_edge_pam_reacts(self):
        from repro.core.pam import select
        from repro.harness.scenarios import enterprise_edge
        scenario = enterprise_edge()
        plan = select(scenario.placement, scenario.throughput_bps)
        assert plan.alleviates
        assert plan.total_crossing_delta <= 0

    def test_presets_simulate_cleanly(self):
        from repro.harness.experiment import steady_state
        from repro.harness.scenarios import (datacenter_inline,
                                             enterprise_edge)
        from repro.units import gbps
        for scenario in (datacenter_inline(), enterprise_edge()):
            result = steady_state(scenario, gbps(0.8), duration_s=0.004)
            assert result.delivered > 0
            assert result.dropped == 0

    def test_enterprise_edge_migrates_monitor(self):
        from repro.core.pam import select
        from repro.harness.scenarios import enterprise_edge
        scenario = enterprise_edge()
        plan = select(scenario.placement, scenario.throughput_bps)
        assert plan.migrated_names == ["monitor"]
