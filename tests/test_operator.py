"""HardenedController: cooldown, flap damping, budget, pull-back."""

import pytest

from repro.core.operator import HardenedController, HardeningConfig
from repro.core.planner import PAMPolicy
from repro.core.reverse import PullbackConfig
from repro.errors import ConfigurationError
from repro.harness.scenarios import figure1
from repro.sim.runner import SimulationRunner
from repro.traffic.packet import FixedSize
from repro.traffic.patterns import ProfiledArrivals, constant, spike
from repro.units import gbps


def run_with(controller, profile, duration=0.06, seed=11):
    generator = ProfiledArrivals(profile, FixedSize(256), duration,
                                 seed=seed, jitter=False)
    server = figure1().build_server()
    runner = SimulationRunner(server, generator, controller,
                              monitor_period_s=0.002)
    return runner.run()


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HardeningConfig(cooldown_s=-1.0)
        with pytest.raises(ConfigurationError):
            HardeningConfig(migration_budget=0)


class TestForwardPath:
    def test_reacts_to_overload_like_plain_controller(self):
        controller = HardenedController(
            config=HardeningConfig(enable_pullback=False))
        result = run_with(controller, constant(gbps(1.8)), duration=0.02)
        assert result.migrated_nfs == ["logger"]

    def test_budget_caps_migrations(self):
        # Repeated spike/quiet cycles with pull-back enabled would
        # migrate indefinitely; a budget of 2 stops after two moves.
        config = HardeningConfig(
            cooldown_s=0.0, flap_damp_s=0.0, migration_budget=2,
            pullback=PullbackConfig(trigger_below=0.6, nic_target=0.8))
        controller = HardenedController(config=config)
        profile = spike(base_bps=gbps(0.8), peak_bps=gbps(1.8),
                        start_s=0.005, duration_s=0.01)
        # After the spike ends, pull-back fires; then the NIC is loaded
        # again... budget must stop the churn at 2 total.
        result = run_with(controller, profile, duration=0.08)
        assert len(result.migrated_nfs) <= 2


class TestFlapDamping:
    def test_ping_pong_suppressed(self):
        # Forward at spike, pull-back right after, forward again at the
        # next spike: with a long damp window the logger may only move
        # once in each direction; further moves are suppressed.
        config = HardeningConfig(
            cooldown_s=0.0, flap_damp_s=1.0, migration_budget=16,
            pullback=PullbackConfig(trigger_below=0.6, nic_target=0.9))
        controller = HardenedController(config=config)
        profile = spike(base_bps=gbps(0.8), peak_bps=gbps(1.8),
                        start_s=0.005, duration_s=0.02)
        result = run_with(controller, profile, duration=0.08)
        moves = result.migrated_nfs.count("logger")
        assert moves <= 1
        assert controller.suppressed_plans >= 1

    def test_damping_disabled_allows_roundtrip(self):
        config = HardeningConfig(
            cooldown_s=0.0, flap_damp_s=0.0, migration_budget=16,
            pullback=PullbackConfig(trigger_below=0.6, nic_target=0.9))
        controller = HardenedController(config=config)
        profile = spike(base_bps=gbps(0.8), peak_bps=gbps(1.8),
                        start_s=0.005, duration_s=0.02)
        result = run_with(controller, profile, duration=0.08)
        # Pushed during the spike, pulled back after it.
        assert result.migrated_nfs.count("logger") >= 2


class TestCooldown:
    def test_cooldown_spaces_plans(self):
        config = HardeningConfig(
            cooldown_s=0.03, flap_damp_s=0.0, migration_budget=16,
            pullback=PullbackConfig(trigger_below=0.6, nic_target=0.9))
        controller = HardenedController(config=config)
        profile = spike(base_bps=gbps(0.8), peak_bps=gbps(1.8),
                        start_s=0.005, duration_s=0.02)
        result = run_with(controller, profile, duration=0.08)
        times = result.migration_times_s
        for a, b in zip(times, times[1:]):
            assert b - a >= 0.029  # one migration's own duration < 1ms


class TestPullback:
    def test_pushed_nf_returns_after_spike(self):
        config = HardeningConfig(
            cooldown_s=0.0, flap_damp_s=0.0, migration_budget=16,
            pullback=PullbackConfig(trigger_below=0.6, nic_target=0.9))
        controller = HardenedController(config=config)
        profile = spike(base_bps=gbps(0.8), peak_bps=gbps(1.8),
                        start_s=0.005, duration_s=0.02)
        result = run_with(controller, profile, duration=0.08)
        # logger was pushed to the CPU during the spike and is back on
        # the NIC at the end of the run.
        assert result.final_placement.device_of("logger").value == \
            "smartnic"

    def test_no_pullback_when_disabled(self):
        config = HardeningConfig(cooldown_s=0.0, flap_damp_s=0.0,
                                 enable_pullback=False)
        controller = HardenedController(config=config)
        profile = spike(base_bps=gbps(0.8), peak_bps=gbps(1.8),
                        start_s=0.005, duration_s=0.02)
        result = run_with(controller, profile, duration=0.06)
        assert result.final_placement.device_of("logger").value == "cpu"
