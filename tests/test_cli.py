"""Command-line interface."""

import pytest

from repro.cli import main


class TestTable1:
    def test_prints_capacities(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "monitor" in out
        assert "3.20" in out


class TestFigure1:
    def test_prints_comparison(self, capsys):
        assert main(["figure1", "--duration", "0.004"]) == 0
        out = capsys.readouterr().out
        assert "(c) PAM" in out
        assert "PAM vs naive latency" in out


class TestFigure2:
    def test_custom_sizes(self, capsys):
        assert main(["figure2", "--sizes", "64", "--duration",
                     "0.004"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2(a)" in out
        assert "Figure 2(b)" in out
        assert "64" in out


class TestPlan:
    def test_pam_plan(self, capsys):
        assert main(["plan", "--policy", "pam", "--load", "1.8"]) == 0
        out = capsys.readouterr().out
        assert "logger" in out
        assert "alleviates: True" in out

    def test_naive_plan(self, capsys):
        assert main(["plan", "--policy", "naive", "--load", "1.8"]) == 0
        assert "monitor" in capsys.readouterr().out

    def test_no_overload(self, capsys):
        assert main(["plan", "--load", "1.0"]) == 0
        assert "no migration needed" in capsys.readouterr().out

    def test_scaleout_exit_code(self, capsys):
        assert main(["plan", "--policy", "pam", "--load", "2.4"]) == 1
        assert "scale out" in capsys.readouterr().out


class TestSpike:
    def test_closed_loop_run(self, capsys):
        assert main(["spike", "--duration", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "migrated=['logger']" in out
        assert "dropped 0" in out


class TestErrors:
    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["warp"])

    def test_unknown_policy_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["plan", "--policy", "quantum"])


class TestRunConfig:
    CONFIG = {
        "name": "cli-test",
        "chain": [
            {"nf": "load_balancer", "device": "cpu"},
            {"nf": "logger", "device": "smartnic"},
            {"nf": "monitor", "device": "smartnic"},
            {"nf": "firewall", "device": "smartnic"},
        ],
        "egress": "cpu",
        "workload": {"kind": "cbr", "rate_gbps": 1.8,
                     "packet_bytes": 256, "duration_s": 0.006},
        "policy": "pam",
    }

    def test_runs_and_writes_record(self, tmp_path, capsys):
        import json
        from repro.harness.results import ResultRecord
        config_path = tmp_path / "exp.json"
        config_path.write_text(json.dumps(self.CONFIG))
        out_path = tmp_path / "result.json"
        assert main(["run-config", str(config_path),
                     "--output", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "migrated: logger" in out
        record = ResultRecord.load(out_path)
        assert record.migrated_nfs == ["logger"]

    def test_config_error_reported(self, tmp_path, capsys):
        config_path = tmp_path / "bad.json"
        config_path.write_text("{}")
        assert main(["run-config", str(config_path)]) == 2
        assert "error:" in capsys.readouterr().err


class TestOptimise:
    def test_prints_optimal_placement(self, capsys):
        assert main(["optimise", "--load", "1.8"]) == 0
        out = capsys.readouterr().out
        assert "optimal placement" in out
        assert "predicted latency" in out

    def test_infeasible_load(self, capsys):
        assert main(["optimise", "--load", "8.0"]) == 1
        assert "scale out" in capsys.readouterr().out


class TestResilienceCommand:
    def test_device_kill_scenario_exits_clean(self, capsys):
        assert main(["resilience", "--scenario", "device-kill"]) == 0
        out = capsys.readouterr().out
        assert "recovery of smartnic: completed" in out
        assert "time-to-recover" in out
        assert "healthy -> suspect" in out
        assert "suspect -> failed" in out
        assert "verdict: ok" in out

    def test_overload_scenario_exits_clean(self, capsys):
        assert main(["resilience", "--scenario", "overload",
                     "--duration", "0.04"]) == 0
        out = capsys.readouterr().out
        assert "class low" in out
        assert "[protected]" in out
        assert "verdict: ok" in out

    def test_unknown_scenario_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["resilience", "--scenario", "meteor-strike"])


class TestChaosResilienceFlags:
    def test_resilient_campaign_exit_code(self, capsys):
        assert main(["chaos", "--runs", "2", "--seed", "7",
                     "--duration", "0.02", "--resilient",
                     "--device-kills", "1", "--overloads", "1"]) == 0
        out = capsys.readouterr().out
        assert "all invariants held" in out
        assert "shed" in out

    def test_crashing_scenario_exits_nonzero(self, capsys, monkeypatch):
        # Satellite regression: a scenario crash must surface as a
        # violation (exit 1), never as a clean campaign or a traceback.
        from repro.chaos.runner import ChaosRunner

        def explode(self, run_seed, schedule):
            raise RuntimeError("boom")

        monkeypatch.setattr(ChaosRunner, "_execute", explode)
        assert main(["chaos", "--runs", "1", "--seed", "3",
                     "--duration", "0.01"]) == 1
        assert "scenario-error" in capsys.readouterr().out


class TestFigure2Chart:
    def test_chart_flag_appends_bars(self, capsys):
        assert main(["figure2", "--sizes", "64", "--duration", "0.004",
                     "--chart"]) == 0
        out = capsys.readouterr().out
        assert "64B pam" in out
        assert "█" in out


class TestCampaignsCommand:
    def test_list_kinds_names_every_registered_kind(self, capsys):
        assert main(["campaigns", "--list-kinds"]) == 0
        out = capsys.readouterr().out
        for kind in ("chaos", "reliability", "resilience", "size-sweep",
                     "soak", "suite", "fault-injected"):
            assert f"{kind}: " in out

    def test_default_action_lists_kinds(self, capsys):
        assert main(["campaigns"]) == 0
        assert "soak: " in capsys.readouterr().out


class TestCrashResumeCampaignFlag:
    def test_unknown_kind_exits_2_with_available_kinds(self, capsys):
        assert main(["crash-resume", "--campaign", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "bogus" in err
        assert "chaos" in err and "reliability" in err and "soak" in err


class TestSoakCommand:
    def test_list_invariants(self, capsys):
        assert main(["soak", "--list-invariants"]) == 0
        out = capsys.readouterr().out
        assert "virtual-time-monotonic" in out
        assert "drained-end-state" in out

    def test_clean_fuzz_exits_zero(self, capsys):
        assert main(["soak", "--runs", "2", "--seed", "7",
                     "--duration", "0.008"]) == 0
        out = capsys.readouterr().out
        assert "2 soak cases: all invariants held" in out

    def test_planted_bug_shrinks_and_replays(self, tmp_path, capsys):
        reproducer = str(tmp_path / "repro.json")
        assert main(["soak", "--runs", "2", "--seed", "7",
                     "--duration", "0.008",
                     "--plant-bug", "1:conservation:crash",
                     "--reproducer", reproducer]) == 1
        out = capsys.readouterr().out
        assert "VIOLATIONS" in out
        assert "shrunk to 1 fault event(s)" in out
        assert f"reproducer written: {reproducer}" in out

        assert main(["soak", "--replay", reproducer]) == 0
        assert "bit-exact" in capsys.readouterr().out

    def test_no_shrink_skips_the_shrinker(self, capsys):
        assert main(["soak", "--runs", "2", "--seed", "7",
                     "--duration", "0.008", "--no-shrink",
                     "--plant-bug", "1:conservation"]) == 1
        out = capsys.readouterr().out
        assert "shrunk" not in out

    def test_bad_plant_spec_exits_2(self, capsys):
        assert main(["soak", "--runs", "2", "--plant-bug", "x:y"]) == 2
        assert "plant" in capsys.readouterr().err

    def test_missing_replay_file_exits_2(self, tmp_path, capsys):
        assert main(["soak", "--replay",
                     str(tmp_path / "absent.json")]) == 2
        assert "cannot read" in capsys.readouterr().err
