"""Incremental (per-flow-batch) migration."""

import pytest

from dataclasses import replace

from repro.chain.nf import DeviceKind
from repro.errors import ConfigurationError, MigrationError
from repro.harness.scenarios import figure1
from repro.migration.cost import MigrationCostModel
from repro.migration.executor import MigrationExecutor
from repro.migration.incremental import IncrementalMigrator
from repro.sim.engine import Engine
from repro.sim.network import ChainNetwork
from repro.traffic.packet import Packet
from repro.units import gbps

C = DeviceKind.CPU


def live(offered=gbps(1.8)):
    server = figure1().build_server()
    server.refresh_demand(offered)
    engine = Engine()
    network = ChainNetwork(server, engine)
    return server, engine, network


def inject(network, count=3000, gap=1.1e-6):
    for i in range(count):
        network.inject(Packet(seq=i, size_bytes=256, arrival_s=i * gap))


class TestMechanics:
    def test_completes_and_moves_the_nf(self):
        server, engine, network = live()
        migrator = IncrementalMigrator(server, network, engine,
                                       batches=4, active_flows=1000)
        inject(network)
        done = []
        engine.at(5e-4, lambda: migrator.migrate(
            "monitor", C, gbps(1.8), on_done=lambda: done.append(1)),
            control=True)
        engine.run()
        assert done == [1]
        assert server.placement.device_of("monitor") is C
        record = migrator.records[0]
        assert record.batches == 4
        assert record.completed_s > record.started_s

    def test_loss_free(self):
        server, engine, network = live()
        migrator = IncrementalMigrator(server, network, engine,
                                       batches=4, active_flows=1000)
        inject(network)
        engine.at(5e-4, lambda: migrator.migrate("monitor", C, gbps(1.8)),
                  control=True)
        engine.run()
        network.check_conservation()
        assert len(network.dropped) == 0
        assert len(network.delivered) == 3000

    def test_validation(self):
        server, engine, network = live()
        with pytest.raises(ConfigurationError):
            IncrementalMigrator(server, network, engine, batches=0)
        migrator = IncrementalMigrator(server, network, engine)
        with pytest.raises(MigrationError):
            migrator.migrate("ghost", C, gbps(1.0))
        with pytest.raises(MigrationError):
            migrator.migrate("load_balancer", C, gbps(1.0))  # already there

    def test_concurrent_migrations_rejected(self):
        server, engine, network = live()
        migrator = IncrementalMigrator(server, network, engine,
                                       active_flows=100_000)
        inject(network, count=500)
        failures = []

        def second():
            try:
                migrator.migrate("logger", C, gbps(1.8))
            except MigrationError:
                failures.append(True)

        engine.at(1e-4, lambda: migrator.migrate("monitor", C, gbps(1.8)),
                  control=True)
        engine.at(1.5e-4, second, control=True)
        engine.run()
        assert failures == [True]


class TestTransientVsFullPause:
    def worst_latency(self, incremental: bool, active_flows=50_000):
        """Worst packet latency migrating monitor with much state.

        Measured at a *healthy* 1.2 Gbps so the transient is purely the
        migration's own buffering, not overload backlog.
        """
        server, engine, network = live(offered=gbps(1.2))
        inject(network, count=4000, gap=1.7e-6)
        if incremental:
            migrator = IncrementalMigrator(server, network, engine,
                                           batches=16,
                                           active_flows=active_flows)
            engine.at(5e-4, lambda: migrator.migrate(
                "monitor", C, gbps(1.2)), control=True)
        else:
            from repro.baselines.naive import select as naive_select
            executor = MigrationExecutor(server, network, engine,
                                         active_flows=active_flows)
            plan = naive_select(figure1().placement, gbps(1.8))
            engine.at(5e-4, lambda: executor.apply(plan, gbps(1.2)),
                      control=True)
        engine.run()
        return max(p.latency_s for p in network.delivered)

    def test_incremental_transient_much_smaller(self):
        full = self.worst_latency(incremental=False)
        incremental = self.worst_latency(incremental=True)
        # 50k flows = 6.4 MB of state: the full pause buffers ~1 ms of
        # traffic; 16 batches cut the worst-case buffering by >3x.
        assert incremental < full / 3

    def test_incremental_total_duration_not_shorter(self):
        # The state still has to cross the link, plus per-batch control
        # overhead: total duration is at least the full-pause transfer.
        server, engine, network = live()
        migrator = IncrementalMigrator(server, network, engine,
                                       batches=16, active_flows=50_000)
        inject(network, count=4000)
        engine.at(5e-4, lambda: migrator.migrate("monitor", C, gbps(1.8)),
                  control=True)
        engine.run()
        record = migrator.records[0]
        state_bytes = migrator.cost_model.state_model.transfer_bytes(
            figure1().chain.get("monitor"), 50_000)
        assert record.completed_s - record.started_s >= \
            state_bytes * 8.0 / server.pcie.bandwidth_bps
