"""Bounded FIFO packet queues."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.queues import PacketQueue
from repro.traffic.packet import Packet


def packet(seq=0):
    return Packet(seq=seq, size_bytes=64, arrival_s=0.0)


class TestFifo:
    def test_fifo_order(self):
        queue = PacketQueue(4)
        for i in range(3):
            queue.enqueue(packet(i), now_s=float(i))
        seqs = []
        while (item := queue.dequeue()) is not None:
            seqs.append(item[0].seq)
        assert seqs == [0, 1, 2]

    def test_enqueue_records_time(self):
        queue = PacketQueue(4)
        queue.enqueue(packet(), now_s=1.25)
        _, at = queue.dequeue()
        assert at == 1.25

    def test_dequeue_empty_returns_none(self):
        assert PacketQueue(1).dequeue() is None


class TestDropTail:
    def test_drops_when_full(self):
        queue = PacketQueue(2)
        assert queue.enqueue(packet(0), 0.0)
        assert queue.enqueue(packet(1), 0.0)
        assert not queue.enqueue(packet(2), 0.0)
        assert queue.stats.dropped == 1

    def test_full_flag(self):
        queue = PacketQueue(1)
        assert not queue.full
        queue.enqueue(packet(), 0.0)
        assert queue.full

    def test_drop_rate(self):
        queue = PacketQueue(1)
        queue.enqueue(packet(0), 0.0)
        queue.enqueue(packet(1), 0.0)  # dropped
        assert queue.stats.drop_rate == pytest.approx(0.5)

    def test_drop_rate_of_untouched_queue_is_zero(self):
        assert PacketQueue(1).stats.drop_rate == 0.0


class TestStats:
    def test_peak_depth(self):
        queue = PacketQueue(8)
        for i in range(5):
            queue.enqueue(packet(i), 0.0)
        queue.dequeue()
        queue.dequeue()
        assert queue.stats.peak_depth == 5

    def test_counters(self):
        queue = PacketQueue(8)
        queue.enqueue(packet(0), 0.0)
        queue.enqueue(packet(1), 0.0)
        queue.dequeue()
        assert queue.stats.enqueued == 2
        assert queue.stats.dequeued == 1


class TestDrain:
    def test_drain_returns_all_in_order(self):
        queue = PacketQueue(8)
        for i in range(3):
            queue.enqueue(packet(i), float(i))
        drained = queue.drain()
        assert [p.seq for p, _ in drained] == [0, 1, 2]
        assert [t for _, t in drained] == [0.0, 1.0, 2.0]
        assert len(queue) == 0

    def test_drain_counts_as_dequeued(self):
        queue = PacketQueue(8)
        queue.enqueue(packet(0), 0.0)
        queue.drain()
        assert queue.stats.dequeued == 1


class TestValidation:
    def test_capacity_positive(self):
        with pytest.raises(ConfigurationError):
            PacketQueue(0)
