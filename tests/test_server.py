"""Server aggregate: installation, moves, demand refresh."""

import pytest

from repro.chain.nf import DeviceKind
from repro.devices.server import PAPER_TESTBED, Server, ServerProfile
from repro.errors import PlacementError
from repro.units import gbps

S = DeviceKind.SMARTNIC
C = DeviceKind.CPU


class TestProfile:
    def test_paper_testbed_matches_s3(self):
        server = PAPER_TESTBED.build()
        assert server.nic.port_rate_bps == gbps(10.0)
        assert server.nic.num_ports == 2
        assert server.cpu.num_sockets == 2
        assert server.cpu.cores_per_socket == 6
        assert server.cpu.frequency_ghz == pytest.approx(2.10)

    def test_profile_build_is_fresh_each_time(self):
        a = PAPER_TESTBED.build()
        b = PAPER_TESTBED.build()
        assert a.nic is not b.nic
        assert a.pcie is not b.pcie


class TestInstall:
    def test_install_hosts_every_nf(self, fig1_scenario):
        server = fig1_scenario.build_server()
        assert server.nic.hosts("logger")
        assert server.nic.hosts("monitor")
        assert server.nic.hosts("firewall")
        assert server.cpu.hosts("load_balancer")

    def test_placement_property_reflects_install(self, fig1_scenario):
        server = fig1_scenario.build_server()
        assert server.placement == fig1_scenario.placement

    def test_placement_before_install_raises(self):
        with pytest.raises(PlacementError):
            Server().placement

    def test_reinstall_replaces(self, fig1_scenario):
        server = fig1_scenario.build_server()
        moved = fig1_scenario.placement.moved("logger", C)
        server.install(moved)
        assert server.cpu.hosts("logger")
        assert not server.nic.hosts("logger")

    def test_clear_resets_everything(self, fig1_scenario):
        server = fig1_scenario.build_server()
        server.pcie.record_crossing(64)
        server.clear()
        assert server.nic.hosted_nfs() == []
        assert server.cpu.hosted_nfs() == []
        assert server.pcie.stats.crossings == 0
        with pytest.raises(PlacementError):
            server.placement


class TestApplyMove:
    def test_move_updates_hosting_and_placement(self, fig1_scenario):
        server = fig1_scenario.build_server()
        new_placement = server.apply_move("logger", C)
        assert server.cpu.hosts("logger")
        assert not server.nic.hosts("logger")
        assert server.placement is new_placement
        assert new_placement.device_of("logger") is C

    def test_invalid_move_rejected_and_state_unchanged(self, fig1_scenario):
        server = fig1_scenario.build_server()
        with pytest.raises(PlacementError):
            server.apply_move("load_balancer", C)  # already there
        assert server.cpu.hosts("load_balancer")


class TestRefreshDemand:
    def test_demands_match_load_model(self, fig1_scenario):
        server = fig1_scenario.build_server()
        model = server.refresh_demand(gbps(1.8))
        assert server.nic.demand == pytest.approx(
            model.nic_load().utilisation)
        assert server.cpu.demand == pytest.approx(
            model.cpu_load().utilisation)

    def test_device_accessor(self, fig1_scenario):
        server = fig1_scenario.build_server()
        assert server.device(S) is server.nic
        assert server.device(C) is server.cpu
