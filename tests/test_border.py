"""Step 1: border vNF identification and incremental maintenance."""

import pytest

from repro.chain import catalog
from repro.chain.builder import ChainBuilder
from repro.chain.nf import DeviceKind
from repro.core.border import BorderSets, border_sets, refreshed_border_sets

C = DeviceKind.CPU
S = DeviceKind.SMARTNIC


class TestFigure1Borders:
    def test_left_border_is_logger(self, fig1_placement):
        sets = border_sets(fig1_placement)
        assert sets.left == {"logger"}

    def test_right_border_is_firewall(self, fig1_placement):
        # The chain terminates at the host, so firewall's "downstream"
        # is the CPU — the paper's right border.
        sets = border_sets(fig1_placement)
        assert sets.right == {"firewall"}

    def test_all_union(self, fig1_placement):
        sets = border_sets(fig1_placement)
        assert sets.all == {"logger", "firewall"}
        assert "logger" in sets
        assert "monitor" not in sets


class TestEndpointConventions:
    def test_bump_in_wire_nic_chain_has_no_borders(self, nic_only_placement):
        # Wire endpoints count as SmartNIC: an all-NIC bump-in-the-wire
        # chain has no CPU adjacency anywhere.
        sets = border_sets(nic_only_placement)
        assert sets.all == frozenset()

    def test_head_nf_is_left_border_with_host_ingress(self):
        _, placement = (ChainBuilder("h", profiles=catalog.FIGURE1_SCENARIO)
                        .nic("monitor").nic("firewall")
                        .build(ingress=C))
        sets = border_sets(placement)
        assert "monitor" in sets.left

    def test_singleton_nic_segment_is_both_borders(self):
        _, placement = (ChainBuilder("s", profiles=catalog.FIGURE1_SCENARIO)
                        .cpu("load_balancer").nic("monitor").cpu("firewall")
                        .build())
        sets = border_sets(placement)
        assert "monitor" in sets.left
        assert "monitor" in sets.right

    def test_multiple_nic_segments_have_multiple_borders(self):
        _, placement = (ChainBuilder("m")
                        .nic("gateway").cpu("dpi").nic("monitor")
                        .nic("firewall").cpu("load_balancer")
                        .build())
        sets = border_sets(placement)
        assert sets.left == {"monitor"}
        assert sets.right == {"gateway", "firewall"}


class TestWithout:
    def test_without_removes_from_both_sets(self):
        sets = BorderSets(left=frozenset({"a", "b"}),
                          right=frozenset({"a"}))
        pruned = sets.without("a")
        assert pruned.left == {"b"}
        assert pruned.right == frozenset()

    def test_without_missing_is_noop(self):
        sets = BorderSets(left=frozenset({"a"}), right=frozenset())
        assert sets.without("zzz") == sets


class TestIncrementalMaintenance:
    def test_left_migration_promotes_downstream(self, fig1_placement):
        sets = border_sets(fig1_placement)
        after = fig1_placement.moved("logger", C)
        refreshed = refreshed_border_sets(after, sets, "logger",
                                          was_left=True)
        assert refreshed.left == {"monitor"}
        assert refreshed.right == {"firewall"}

    def test_right_migration_promotes_upstream(self, fig1_placement):
        sets = border_sets(fig1_placement)
        after = fig1_placement.moved("firewall", C)
        refreshed = refreshed_border_sets(after, sets, "firewall",
                                          was_left=False)
        assert refreshed.right == {"monitor"}
        assert refreshed.left == {"logger"}

    def test_incremental_matches_recompute(self, fig1_placement):
        sets = border_sets(fig1_placement)
        after = fig1_placement.moved("logger", C)
        incremental = refreshed_border_sets(after, sets, "logger",
                                            was_left=True)
        assert incremental == border_sets(after)

    def test_last_nic_nf_leaves_empty_sets(self):
        _, placement = (ChainBuilder("s", profiles=catalog.FIGURE1_SCENARIO)
                        .cpu("load_balancer").nic("monitor").cpu("firewall")
                        .build())
        sets = border_sets(placement)
        after = placement.moved("monitor", C)
        refreshed = refreshed_border_sets(after, sets, "monitor",
                                          was_left=True)
        assert refreshed.all == frozenset()
        assert refreshed == border_sets(after)
