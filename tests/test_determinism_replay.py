"""Seeded double-run determinism regression.

The DET1xx lint rules enforce seed-threading *statically*; this test
guards the same property *dynamically*: two runs of an identical seeded
scenario must execute the identical event sequence, produce identical
per-packet latencies, and export byte-identical telemetry.  If either
side regresses — a new unseeded RNG, a wall-clock read, a hash-order
dependency — this is the test that goes red.
"""

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.planner import MigrationController, PAMPolicy
from repro.harness.scenarios import figure1
from repro.sim.runner import SimulationResult, SimulationRunner
from repro.telemetry.export import series_to_csv
from repro.telemetry.monitor import LoadMonitor
from repro.traffic.packet import FixedSize
from repro.traffic.patterns import ProfiledArrivals, spike
from repro.units import gbps


@dataclass
class _RunArtifacts:
    """Everything observable from one seeded run."""

    trace: List[Tuple[float, int, int]]
    result: SimulationResult
    telemetry_csv: str
    latencies: List[float]


def _run_once(tmp_path, tag: str, seed: int = 11) -> _RunArtifacts:
    """One closed-loop spike episode with every seed pinned."""
    profile = spike(base_bps=gbps(1.3), peak_bps=gbps(1.8),
                    start_s=0.004, duration_s=1.0)
    generator = ProfiledArrivals(profile, FixedSize(256),
                                 duration_s=0.02, seed=seed, jitter=True)
    server = figure1().build_server()
    controller = MigrationController(PAMPolicy())
    monitor = LoadMonitor(inner=controller)
    runner = SimulationRunner(server, generator, monitor,
                              monitor_period_s=0.002)
    trace: List[Tuple[float, int, int]] = []
    runner.engine.trace_to(trace)
    result = runner.run()
    csv_path = tmp_path / f"telemetry-{tag}.csv"
    series_to_csv(monitor.recorder, csv_path)
    latencies = [p.latency_s for p in runner.network.delivered
                 if p.latency_s is not None]
    return _RunArtifacts(trace=trace, result=result,
                         telemetry_csv=csv_path.read_text(),
                         latencies=latencies)


class TestSeededReplay:
    def test_event_traces_identical(self, tmp_path):
        first = _run_once(tmp_path, "a")
        second = _run_once(tmp_path, "b")
        assert first.trace, "run executed no events"
        assert first.trace == second.trace

    def test_metrics_and_exports_identical(self, tmp_path):
        first = _run_once(tmp_path, "a")
        second = _run_once(tmp_path, "b")
        # Bit-for-bit, not approx: determinism means equality.
        assert first.latencies == second.latencies
        assert first.telemetry_csv == second.telemetry_csv
        for attribute in ("injected", "delivered", "dropped", "filtered",
                          "migrated_nfs", "migration_times_s"):
            assert getattr(first.result, attribute) == \
                getattr(second.result, attribute), attribute
        assert first.result.throughput.goodput_bps == \
            second.result.throughput.goodput_bps

    def test_migration_fired_in_scenario(self, tmp_path):
        # The episode must actually exercise the control loop, otherwise
        # the replay check proves nothing about controller determinism.
        artifacts = _run_once(tmp_path, "a")
        assert artifacts.result.migrated_nfs, \
            "spike scenario no longer triggers a migration"

    def test_different_seed_changes_trace(self, tmp_path):
        # Sanity check that the trace actually depends on the seed
        # (otherwise the identical-trace assertions are vacuous).
        base = _run_once(tmp_path, "a", seed=11)
        other = _run_once(tmp_path, "b", seed=12)
        assert base.trace != other.trace
