"""Tests for the campaign-execution core (:mod:`repro.exec`)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkpoint import JournalWriter, read_journal
from repro.errors import ConfigurationError, ExecutionError
from repro.exec import (Campaign, ParallelExecutor, RunRequest,
                        SerialExecutor, build_campaign, make_executor,
                        register_campaign, run_campaign, seed_for)


class GridCampaign(Campaign):
    """Tiny deterministic campaign: payload = f(index, seed) only."""

    kind = "test-grid"

    def __init__(self, runs, seed=3):
        self.runs = runs
        self.seed = seed

    def fingerprint(self):
        return {"runs": self.runs, "seed": self.seed}

    def spec(self):
        return self.fingerprint()

    @classmethod
    def from_spec(cls, spec):
        return cls(int(spec["runs"]), int(spec["seed"]))

    def requests(self):
        return [RunRequest(index=i, seed=seed_for(self.seed, i))
                for i in range(self.runs)]

    def run_request(self, request):
        return {"index": request.index, "square": request.seed ** 2}


class ShuffledExecutor:
    """Serial execution, completions yielded in an arbitrary order.

    Models what a parallel executor's nondeterministic completion
    order does to the driver, without needing a process pool.
    """

    workers = 1

    def __init__(self, order):
        self.order = list(order)

    def map(self, campaign, requests):
        by_index = {request.index: request for request in requests}
        for index in self.order:
            if index in by_index:
                request = by_index.pop(index)
                yield request.index, campaign.run_request(request)
        for request in by_index.values():  # order may not cover resumes
            yield request.index, campaign.run_request(request)


class TestSeedFor:
    def test_offsets_campaign_seed_by_index(self):
        assert seed_for(7, 0) == 7
        assert seed_for(7, 3) == 10

    def test_distinct_indices_get_distinct_seeds(self):
        seeds = [seed_for(42, i) for i in range(20)]
        assert len(set(seeds)) == 20


class TestRunRequest:
    def test_round_trips_through_dict(self):
        request = RunRequest(index=4, seed=11, params={"size": 256})
        assert RunRequest.from_dict(request.to_dict()) == request

    def test_is_frozen(self):
        with pytest.raises(AttributeError):
            RunRequest(index=0).index = 1


class TestSerialExecutor:
    def test_yields_in_request_order(self):
        campaign = GridCampaign(runs=4)
        completions = list(SerialExecutor().map(campaign,
                                                campaign.requests()))
        assert [index for index, _ in completions] == [0, 1, 2, 3]

    def test_exceptions_propagate(self):
        class Exploding(GridCampaign):
            def run_request(self, request):
                raise ValueError("boom")
        campaign = Exploding(runs=1)
        with pytest.raises(ValueError, match="boom"):
            list(SerialExecutor().map(campaign, campaign.requests()))


class TestMakeExecutor:
    def test_one_worker_is_serial(self):
        assert isinstance(make_executor(1), SerialExecutor)

    def test_many_workers_is_parallel(self):
        executor = make_executor(3)
        assert isinstance(executor, ParallelExecutor)
        assert executor.workers == 3

    def test_zero_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            make_executor(0)

    def test_parallel_needs_two(self):
        with pytest.raises(ConfigurationError):
            ParallelExecutor(1)


class TestRegistry:
    def test_build_rebuilds_from_spec(self):
        register_campaign(GridCampaign)
        rebuilt = build_campaign("test-grid", {"runs": 2, "seed": 9})
        assert isinstance(rebuilt, GridCampaign)
        assert rebuilt.fingerprint() == {"runs": 2, "seed": 9}

    def test_reregistering_same_class_is_noop(self):
        register_campaign(GridCampaign)
        register_campaign(GridCampaign)

    def test_conflicting_registration_rejected(self):
        register_campaign(GridCampaign)
        class Impostor(Campaign):
            kind = "test-grid"
        with pytest.raises(ConfigurationError, match="already registered"):
            register_campaign(Impostor)

    def test_kindless_campaign_rejected(self):
        class Nameless(Campaign):
            pass
        with pytest.raises(ConfigurationError, match="no campaign kind"):
            register_campaign(Nameless)

    def test_unknown_kind_lists_known(self):
        with pytest.raises(ConfigurationError, match="unknown campaign"):
            build_campaign("no-such-kind", {})


class TestRunCampaign:
    def test_payloads_ordered_by_index(self):
        campaign = GridCampaign(runs=5)
        outcome = run_campaign(campaign)
        assert [p["index"] for p in outcome.payloads] == [0, 1, 2, 3, 4]
        assert outcome.replayed == 0
        assert outcome.executed == 5

    def test_completion_order_never_changes_payloads(self):
        campaign = GridCampaign(runs=5)
        reference = run_campaign(campaign).payloads
        shuffled = run_campaign(
            campaign, executor=ShuffledExecutor([3, 0, 4, 1, 2]))
        assert shuffled.payloads == reference

    def test_checkpoint_interval_validated(self):
        with pytest.raises(ConfigurationError, match="checkpoint"):
            run_campaign(GridCampaign(runs=1), checkpoint_every=0)

    def test_default_error_payload_propagates(self):
        request = RunRequest(index=2, seed=5)
        with pytest.raises(ExecutionError, match="run 2"):
            GridCampaign(runs=3).error_payload(request, "worker died")


class TestCampaignJournal:
    def test_journal_records_protocol_kinds(self, tmp_path):
        journal = str(tmp_path / "grid.jsonl")
        run_campaign(GridCampaign(runs=4), journal_path=journal,
                     checkpoint_every=2)
        records = read_journal(journal).records
        kinds = [r["kind"] for r in records]
        assert kinds == ["campaign-start", "run-result", "run-result",
                         "campaign-progress", "run-result", "run-result",
                         "campaign-progress", "campaign-end"]
        assert records[0]["campaign"] == "test-grid"
        assert records[0]["runs"] == 4
        assert records[-1] == {"kind": "campaign-end", "runs": 4}

    def test_resume_skips_completed_runs(self, tmp_path):
        journal = str(tmp_path / "grid.jsonl")
        campaign = GridCampaign(runs=4, seed=5)

        class Half(ShuffledExecutor):
            """Stops mid-campaign, out of index order — a crashed
            parallel run leaving a non-prefix journal."""

            def map(self, inner, requests):
                for completion in super().map(inner, requests):
                    yield completion
                    if completion[0] == 0:
                        return
        try:
            run_campaign(campaign, executor=Half([2, 0, 1, 3]),
                         journal_path=journal)
        except KeyError:
            pass  # merge fails: runs 1 and 3 never completed
        resumed = run_campaign(campaign, resume_from=journal)
        assert resumed.replayed == 2
        assert resumed.executed == 2
        assert resumed.payloads == run_campaign(campaign).payloads

    def test_fingerprint_mismatch_refused(self, tmp_path):
        journal = str(tmp_path / "grid.jsonl")
        run_campaign(GridCampaign(runs=2, seed=5), journal_path=journal)
        with pytest.raises(ConfigurationError, match="fingerprint"):
            run_campaign(GridCampaign(runs=2, seed=6),
                         resume_from=journal)

    def test_missing_campaign_start_refused(self, tmp_path):
        journal = str(tmp_path / "startless.jsonl")
        writer = JournalWriter(journal, mode="truncate")
        writer.append({"kind": "run-result", "index": 0, "result": {}})
        writer.close()
        with pytest.raises(ConfigurationError, match="campaign-start"):
            run_campaign(GridCampaign(runs=1), resume_from=journal)

    def test_stray_indices_refused(self, tmp_path):
        class SeedOnly(GridCampaign):
            """Fingerprint ignores ``runs`` so grid shrink slips past
            the fingerprint check and must hit the index guard."""
            kind = "test-seed-only"
            def fingerprint(self):
                return {"seed": self.seed}
        journal = str(tmp_path / "grid.jsonl")
        run_campaign(SeedOnly(runs=4, seed=5), journal_path=journal)
        with pytest.raises(ConfigurationError, match="outside"):
            run_campaign(SeedOnly(runs=2, seed=5), resume_from=journal)

    def test_torn_tail_warns_and_resumes(self, tmp_path):
        journal = str(tmp_path / "grid.jsonl")
        campaign = GridCampaign(runs=3, seed=5)
        reference = run_campaign(campaign, journal_path=journal).payloads
        with open(journal, "a", encoding="utf-8") as handle:
            handle.write('{"crc": 0, "record": {"kind": "run-res')
        with pytest.warns(RuntimeWarning, match="resuming"):
            resumed = run_campaign(campaign, resume_from=journal)
        assert resumed.payloads == reference
        assert resumed.executed == 0


@settings(max_examples=25, deadline=None)
@given(runs=st.integers(min_value=1, max_value=8),
       seed=st.integers(min_value=0, max_value=1000),
       data=st.data())
def test_merge_by_index_is_completion_order_invariant(runs, seed, data):
    """Any completion order merges to the serial payload list."""
    order = data.draw(st.permutations(range(runs)))
    campaign = GridCampaign(runs=runs, seed=seed)
    reference = run_campaign(campaign).payloads
    shuffled = run_campaign(campaign, executor=ShuffledExecutor(order))
    assert shuffled.payloads == reference
