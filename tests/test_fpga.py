"""FPGA SmartNIC extension (paper S4 future work)."""

import pytest

from repro.chain import catalog
from repro.chain.nf import DeviceKind
from repro.core.pam import select as pam_select
from repro.devices.cpu import CPU
from repro.devices.fpga import (DEFAULT_RECONFIGURATION_S, FPGASmartNIC,
                                fpga_cost_model)
from repro.devices.pcie import PCIeLink
from repro.devices.server import Server
from repro.errors import ConfigurationError, PlacementError
from repro.migration.cost import MigrationCostModel
from repro.units import gbps, msec


class TestSlots:
    def test_free_slots_decrease_with_hosting(self):
        nic = FPGASmartNIC(num_slots=2)
        assert nic.free_slots == 2
        nic.host(catalog.get("monitor"))
        assert nic.free_slots == 1

    def test_slot_budget_enforced(self):
        nic = FPGASmartNIC(num_slots=1)
        nic.host(catalog.get("monitor"))
        with pytest.raises(PlacementError, match="slots"):
            nic.host(catalog.get("firewall"))

    def test_evict_frees_slot(self):
        nic = FPGASmartNIC(num_slots=1)
        nic.host(catalog.get("monitor"))
        nic.evict("monitor")
        nic.host(catalog.get("firewall"))  # fits again

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FPGASmartNIC(num_slots=0)
        with pytest.raises(ConfigurationError):
            FPGASmartNIC(reconfiguration_s=-1.0)


class TestCostModel:
    def test_reconfiguration_dominates_pause(self):
        nic = FPGASmartNIC(reconfiguration_s=msec(4.0))
        model = fpga_cost_model(nic)
        base = MigrationCostModel()
        cost = model.estimate(catalog.get("monitor"), PCIeLink(),
                              active_flows=100)
        base_cost = base.estimate(catalog.get("monitor"), PCIeLink(),
                                  active_flows=100)
        assert cost.pause_s == pytest.approx(
            base.pause_overhead_s + msec(4.0))
        # Reconfiguration is ~an order of magnitude above everything else.
        assert cost.total_s > 10 * base_cost.total_s

    def test_default_reconfiguration_in_milliseconds(self):
        assert DEFAULT_RECONFIGURATION_S >= msec(1.0)


class TestPAMOnFPGA:
    """PAM's selection algebra is device-agnostic: it works unchanged
    on an FPGA NIC; only the migration *cost* differs."""

    def build_server(self):
        server = Server(nic=FPGASmartNIC(num_slots=4), cpu=CPU("cpu"))
        from repro.chain.builder import ChainBuilder
        _, placement = (
            ChainBuilder("fpga", profiles=catalog.FIGURE1_SCENARIO)
            .cpu("load_balancer").nic("logger").nic("monitor")
            .nic("firewall").build(egress=DeviceKind.CPU))
        server.install(placement)
        return server

    def test_install_within_slots(self):
        server = self.build_server()
        assert server.nic.free_slots == 1

    def test_pam_selects_same_border_nf(self):
        server = self.build_server()
        plan = pam_select(server.placement, gbps(1.8))
        assert plan.migrated_names == ["logger"]
        assert plan.total_crossing_delta == 0

    def test_migration_frees_a_slot(self):
        server = self.build_server()
        plan = pam_select(server.placement, gbps(1.8))
        for action in plan.actions:
            server.apply_move(action.nf_name, action.target)
        assert server.nic.free_slots == 2
