"""Tests for the simulation-safety linter (repro.analysis.lint).

Each rule gets at least one firing and one non-firing case; the
framework pieces (suppression, baseline, JSON schema, error paths, CLI
wiring) are covered separately.
"""

import json
import textwrap

import pytest

from repro.analysis.lint import (Baseline, Finding, PARSE_ERROR_RULE,
                                 Severity, all_rules, collect_files,
                                 format_json, format_text, lint_paths,
                                 lint_source, rule_catalogue)
from repro.cli import main as cli_main
from repro.errors import AnalysisError


def _codes(source, path="src/repro/sample.py"):
    """Rule codes fired on ``source`` (dedented), as a set."""
    findings = lint_source(textwrap.dedent(source), path=path)
    return {finding.rule for finding in findings}


# --- determinism rules --------------------------------------------------


class TestDeterminismRules:
    def test_det101_fires_on_unseeded_random(self):
        assert "DET101" in _codes("""
            import random
            rng = random.Random()
        """)

    def test_det101_fires_on_system_random(self):
        assert "DET101" in _codes("""
            import random
            rng = random.SystemRandom()
        """)

    def test_det101_silent_when_seeded(self):
        assert "DET101" not in _codes("""
            import random
            rng = random.Random(11)
        """)

    def test_det102_fires_on_global_random_call(self):
        assert "DET102" in _codes("""
            import random
            delay = random.uniform(0.0, 1.0)
        """)

    def test_det102_silent_on_instance_method(self):
        assert "DET102" not in _codes("""
            import random
            rng = random.Random(7)
            delay = rng.uniform(0.0, 1.0)
        """)

    def test_det103_fires_on_wall_clock(self):
        assert "DET103" in _codes("""
            import time
            start = time.time()
        """)
        assert "DET103" in _codes("""
            from datetime import datetime
            stamp = datetime.now()
        """)

    def test_det103_silent_on_engine_clock(self):
        assert "DET103" not in _codes("""
            def tick(engine):
                return engine.now_s
        """)

    def test_det104_fires_on_id_sort_key(self):
        assert "DET104" in _codes("""
            ordered = sorted(items, key=lambda item: (item.t, id(item)))
        """)

    def test_det104_fires_on_bare_hash_key(self):
        assert "DET104" in _codes("""
            ordered = sorted(items, key=hash)
        """)

    def test_det104_silent_on_stable_key(self):
        assert "DET104" not in _codes("""
            ordered = sorted(items, key=lambda item: (item.t, item.seq))
        """)

    def test_det105_fires_on_set_literal_iteration(self):
        assert "DET105" in _codes("""
            for name in {"a", "b"}:
                schedule(name)
        """)

    def test_det105_fires_on_set_annotated_name(self):
        assert "DET105" in _codes("""
            from typing import Set
            pending: Set[str] = set()
            for name in pending:
                schedule(name)
        """)

    def test_det105_silent_when_sorted(self):
        assert "DET105" not in _codes("""
            from typing import Set
            pending: Set[str] = set()
            for name in sorted(pending):
                schedule(name)
        """)

    def test_det106_fires_on_pickling_engine(self):
        assert "DET106" in _codes("""
            import pickle
            blob = pickle.dumps(sim.engine)
        """)

    def test_det106_fires_on_deepcopy_of_rng(self):
        assert "DET106" in _codes("""
            import copy
            saved_rng = copy.deepcopy(self._rng)
        """)

    def test_det106_fires_on_queue_attribute(self):
        assert "DET106" in _codes("""
            from copy import deepcopy
            backup = deepcopy(engine._queue)
        """)

    def test_det106_silent_on_plain_data(self):
        assert "DET106" not in _codes("""
            import copy
            settings = copy.deepcopy(config)
        """)

    def test_det106_silent_inside_checkpoint_package(self):
        assert "DET106" not in _codes("""
            import pickle
            blob = pickle.dumps(engine_state)
        """, path="src/repro/checkpoint/snapshot.py")

    def test_det107_fires_on_wall_clock_in_exec_core(self):
        assert "DET107" in _codes("""
            import time
            deadline = time.monotonic() + 5.0
        """, path="src/repro/exec/driver.py")

    def test_det107_fires_on_sleep_in_exec_core(self):
        assert "DET107" in _codes("""
            import time
            time.sleep(0.1)
        """, path="src/repro/exec/executors.py")

    def test_det107_silent_in_the_supervisor(self):
        assert "DET107" not in _codes("""
            import time
            now_s = time.monotonic()
        """, path="src/repro/exec/supervisor.py")

    def test_det107_silent_outside_the_exec_core(self):
        assert "DET107" not in _codes("""
            import time
            start = time.time()
        """, path="src/repro/harness/compare.py")


# --- unit-hygiene rules -------------------------------------------------


class TestUnitRules:
    def test_unit201_fires_on_magnitude_literal(self):
        assert "UNIT201" in _codes("ms = latency_s * 1e3\n")
        assert "UNIT201" in _codes("gb = rate / 1e9\n")

    def test_unit201_silent_on_units_helper(self):
        assert "UNIT201" not in _codes("""
            from repro.units import as_msec
            ms = as_msec(latency_s)
        """)

    def test_unit201_silent_on_tolerance_constant(self):
        assert "UNIT201" not in _codes("_DEMAND_TOL = 2 * 1e-6\n")

    def test_unit201_silent_inside_units_module(self):
        assert "UNIT201" not in _codes(
            "def gbps(value):\n    return value * 1e9\n",
            path="src/repro/units.py")

    def test_unit202_fires_on_mixed_time_suffixes(self):
        assert "UNIT202" in _codes("total = start_s + delay_us\n")

    def test_unit202_fires_on_mixed_rate_comparison(self):
        assert "UNIT202" in _codes("ok = offered_bps < limit_gbps\n")

    def test_unit202_silent_on_consistent_units(self):
        assert "UNIT202" not in _codes("total_s = start_s + delay_s\n")

    def test_unit203_fires_on_float_time_equality(self):
        assert "UNIT203" in _codes("same = arrival_s == departure_s\n")

    def test_unit203_silent_on_zero_sentinel(self):
        assert "UNIT203" not in _codes("empty = duration_s == 0\n")

    def test_unit203_silent_on_pytest_approx(self):
        assert "UNIT203" not in _codes(
            "assert mean_s == pytest.approx(other_s, rel=0.02)\n")


# --- event-safety rules -------------------------------------------------


class TestEventRules:
    def test_evt301_fires_on_raw_heappush(self):
        assert "EVT301" in _codes("""
            import heapq
            heapq.heappush(queue, (when, action))
        """)

    def test_evt301_silent_inside_eventqueue_module(self):
        assert "EVT301" not in _codes(
            "import heapq\nheapq.heappush(self._heap, event)\n",
            path="src/repro/sim/events.py")

    def test_evt302_fires_on_queue_poking(self):
        assert "EVT302" in _codes("""
            def handler(engine):
                engine._queue.pop()
        """)

    def test_evt302_fires_on_clock_write(self):
        assert "EVT302" in _codes("""
            def handler(engine):
                engine.now_s = 0.0
        """)

    def test_evt302_silent_on_public_api(self):
        assert "EVT302" not in _codes("""
            def handler(engine):
                engine.after(0.001, lambda: None, control=True)
        """)


# --- exception-hygiene rules --------------------------------------------


class TestExceptionRules:
    def test_exc401_fires_on_bare_except(self):
        assert "EXC401" in _codes("""
            try:
                migrate()
            except:
                pass
        """)

    def test_exc401_silent_on_typed_except(self):
        assert "EXC401" not in _codes("""
            try:
                migrate()
            except ValueError:
                pass
        """)

    def test_exc402_fires_on_swallowing_broad_except(self):
        assert "EXC402" in _codes("""
            try:
                migrate()
            except Exception:
                log("oops")
        """)

    def test_exc402_silent_when_reraising(self):
        assert "EXC402" not in _codes("""
            try:
                migrate()
            except Exception:
                cleanup()
                raise
        """)

    def test_exc403_fires_on_pass_in_resilience(self):
        assert "EXC403" in _codes("""
            try:
                evacuate()
            except MigrationError:
                pass
        """, path="src/repro/resilience/controller.py")

    def test_exc403_fires_on_bare_return_in_migration(self):
        assert "EXC403" in _codes("""
            def attempt():
                try:
                    copy_state()
                except OSError:
                    return
        """, path="src/repro/migration/executor.py")

    def test_exc403_silent_when_failure_is_recorded(self):
        assert "EXC403" not in _codes("""
            try:
                evacuate()
            except MigrationError:
                attempts -= 1
        """, path="src/repro/resilience/controller.py")

    def test_exc403_silent_outside_recovery_scopes(self):
        assert "EXC403" not in _codes("""
            try:
                render()
            except ValueError:
                pass
        """, path="src/repro/telemetry/recorder.py")


# --- suppression --------------------------------------------------------


class TestSuppression:
    def test_noqa_with_code_suppresses_that_rule(self):
        codes = _codes("""
            import random
            delay = random.uniform(0.0, 1.0)  # repro: noqa[DET102]
        """)
        assert "DET102" not in codes

    def test_noqa_is_per_rule(self):
        codes = _codes("""
            import random
            delay = random.uniform(0.0, 1.0)  # repro: noqa[UNIT201]
        """)
        assert "DET102" in codes

    def test_bare_noqa_suppresses_everything_on_line(self):
        codes = _codes("""
            import random
            delay = random.uniform(0.0, 1e3 * 1.0)  # repro: noqa
        """)
        assert codes == set()

    def test_noqa_in_string_literal_does_not_suppress(self):
        codes = _codes("""
            import random
            note = "# repro: noqa[DET102]"
            delay = random.uniform(0.0, 1.0)
        """)
        assert "DET102" in codes


# --- framework: parse errors, collection, formats -----------------------


class TestFramework:
    def test_parse_error_reports_offending_file(self):
        findings = lint_source("def broken(:\n", path="bad.py")
        assert len(findings) == 1
        assert findings[0].rule == PARSE_ERROR_RULE
        assert findings[0].severity is Severity.ERROR
        assert findings[0].path == "bad.py"
        assert "cannot parse" in findings[0].message

    def test_missing_path_raises_analysis_error(self):
        with pytest.raises(AnalysisError, match="does not exist"):
            collect_files(["/nonexistent/dir/xyz"])

    def test_empty_path_list_raises(self):
        with pytest.raises(AnalysisError, match="no paths"):
            collect_files([])

    def test_lint_paths_over_directory(self, tmp_path):
        (tmp_path / "a.py").write_text("import random\nrandom.seed(1)\n")
        (tmp_path / "b.py").write_text("x = 1\n")
        report = lint_paths([tmp_path])
        assert report.files_checked == 2
        assert {f.rule for f in report.findings} == {"DET102"}
        assert report.exit_code(Severity.ERROR) == 1
        assert report.exit_code(Severity.WARNING) == 1

    def test_exit_code_thresholds(self, tmp_path):
        (tmp_path / "warn.py").write_text("ms = t_s * 1e3\n")
        report = lint_paths([tmp_path])
        assert report.worst() is Severity.WARNING
        assert report.exit_code(Severity.ERROR) == 0
        assert report.exit_code(Severity.WARNING) == 1

    def test_json_output_schema(self, tmp_path):
        (tmp_path / "a.py").write_text("import random\nrandom.seed(1)\n")
        report = lint_paths([tmp_path])
        payload = json.loads(format_json(report))
        assert payload["version"] == 1
        assert payload["files_checked"] == 1
        (finding,) = payload["findings"]
        assert set(finding) == {"rule", "severity", "path", "line",
                                "col", "message", "context"}
        assert finding["rule"] == "DET102"
        assert finding["severity"] == "error"
        assert finding["line"] == 2
        assert finding["context"] == "random.seed(1)"

    def test_text_output_has_location_and_summary(self, tmp_path):
        (tmp_path / "a.py").write_text("import random\nrandom.seed(1)\n")
        report = lint_paths([tmp_path])
        text = format_text(report)
        assert "a.py:2:1: DET102" in text
        assert "1 error(s), 0 warning(s)" in text

    def test_rule_catalogue_lists_every_rule(self):
        catalogue = rule_catalogue()
        for rule in all_rules():
            assert rule.code in catalogue

    def test_registry_has_twelve_rules(self):
        assert len(all_rules()) >= 12


# --- baseline -----------------------------------------------------------


def _write_baseline(path, entries):
    path.write_text(json.dumps({"version": 1, "entries": entries}))


class TestBaseline:
    def test_baseline_absorbs_matching_finding(self, tmp_path):
        target = tmp_path / "a.py"
        target.write_text("import random\nrandom.seed(1)\n")
        baseline_path = tmp_path / "baseline.json"
        _write_baseline(baseline_path, [{
            "rule": "DET102", "path": target.as_posix(),
            "context": "random.seed(1)", "line": 2,
            "reason": "fixture for this test"}])
        report = lint_paths([target], baseline=Baseline.load(baseline_path))
        assert report.findings == []
        assert len(report.baselined) == 1
        assert report.exit_code(Severity.WARNING) == 0

    def test_baseline_matches_despite_line_drift(self, tmp_path):
        target = tmp_path / "a.py"
        target.write_text("# a new leading comment\n"
                          "import random\nrandom.seed(1)\n")
        baseline_path = tmp_path / "baseline.json"
        _write_baseline(baseline_path, [{
            "rule": "DET102", "path": target.as_posix(),
            "context": "random.seed(1)", "line": 2,
            "reason": "line number is stale on purpose"}])
        report = lint_paths([target], baseline=Baseline.load(baseline_path))
        assert report.findings == []

    def test_each_entry_absorbs_only_one_finding(self, tmp_path):
        target = tmp_path / "a.py"
        target.write_text("import random\nrandom.seed(1)\nrandom.seed(1)\n")
        baseline_path = tmp_path / "baseline.json"
        _write_baseline(baseline_path, [{
            "rule": "DET102", "path": target.as_posix(),
            "context": "random.seed(1)", "line": 2,
            "reason": "only the first occurrence is accepted"}])
        report = lint_paths([target], baseline=Baseline.load(baseline_path))
        assert len(report.findings) == 1
        assert len(report.baselined) == 1

    def test_stale_entries_are_reported(self, tmp_path):
        target = tmp_path / "a.py"
        target.write_text("x = 1\n")
        baseline_path = tmp_path / "baseline.json"
        _write_baseline(baseline_path, [{
            "rule": "DET102", "path": target.as_posix(),
            "context": "random.seed(1)", "line": 2,
            "reason": "the finding was fixed; entry should be pruned"}])
        report = lint_paths([target], baseline=Baseline.load(baseline_path))
        assert len(report.stale_baseline) == 1
        assert "prune" in format_text(report)

    def test_out_of_scope_entries_are_not_stale(self, tmp_path):
        target = tmp_path / "a.py"
        target.write_text("x = 1\n")
        other = tmp_path / "unchecked.py"
        other.write_text("import random\nrandom.seed(1)\n")
        baseline_path = tmp_path / "baseline.json"
        _write_baseline(baseline_path, [{
            "rule": "DET102", "path": other.as_posix(),
            "context": "random.seed(1)", "line": 2,
            "reason": "entry for a file outside the checked paths"}])
        report = lint_paths([target], baseline=Baseline.load(baseline_path))
        assert report.stale_baseline == []

    def test_baseline_requires_reason(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        _write_baseline(baseline_path, [{
            "rule": "DET102", "path": "a.py",
            "context": "random.seed(1)", "reason": "  "}])
        with pytest.raises(AnalysisError, match="reason"):
            Baseline.load(baseline_path)

    def test_baseline_rejects_bad_version(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text('{"version": 99, "entries": []}')
        with pytest.raises(AnalysisError, match="version"):
            Baseline.load(baseline_path)

    def test_missing_baseline_raises(self, tmp_path):
        with pytest.raises(AnalysisError, match="not found"):
            Baseline.load(tmp_path / "nope.json")

    def test_render_emits_loadable_document(self, tmp_path):
        finding = Finding(path="a.py", line=1, col=1, rule="DET102",
                          severity=Severity.ERROR, message="m",
                          context="random.seed(1)")
        baseline_path = tmp_path / "generated.json"
        baseline_path.write_text(Baseline.render([finding], reason="why"))
        loaded = Baseline.load(baseline_path)
        assert len(loaded) == 1
        assert loaded.entries[0].reason == "why"


# --- CLI wiring ---------------------------------------------------------


class TestLintCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        code = cli_main(["lint", "--no-baseline", str(tmp_path)])
        assert code == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_error_finding_fails_run(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import random\nrandom.seed(1)\n")
        code = cli_main(["lint", "--no-baseline", str(tmp_path)])
        assert code == 1
        assert "DET102" in capsys.readouterr().out

    def test_warning_passes_unless_fail_on_warning(self, tmp_path):
        (tmp_path / "warn.py").write_text("ms = t_s * 1e3\n")
        assert cli_main(["lint", "--no-baseline", str(tmp_path)]) == 0
        assert cli_main(["lint", "--no-baseline", "--fail-on", "warning",
                         str(tmp_path)]) == 1

    def test_nonexistent_path_is_clean_error(self, tmp_path, capsys):
        code = cli_main(["lint", str(tmp_path / "missing")])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "missing" in err

    def test_unparseable_file_reports_and_fails(self, tmp_path, capsys):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        code = cli_main(["lint", "--no-baseline", str(bad)])
        assert code == 1
        out = capsys.readouterr().out
        assert "broken.py" in out and "E000" in out

    def test_json_format_flag(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        code = cli_main(["lint", "--no-baseline", "--format", "json",
                         str(tmp_path)])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("import random\nrandom.seed(1)\n")
        baseline_path = tmp_path / "baseline.json"
        assert cli_main(["lint", "--no-baseline", "--write-baseline",
                         str(baseline_path), str(target)]) == 0
        # The generated baseline needs reasons filled in to load.
        document = json.loads(baseline_path.read_text())
        for entry in document["entries"]:
            entry["reason"] = "accepted for the round-trip test"
        baseline_path.write_text(json.dumps(document))
        capsys.readouterr()
        assert cli_main(["lint", "--baseline", str(baseline_path),
                         str(target)]) == 0

    def test_list_rules(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "DET101" in out and "EXC402" in out


# --- the tree itself ----------------------------------------------------


class TestSelfApplication:
    def test_library_tree_is_lint_clean(self):
        # src/repro must stay clean without any baseline help.
        report = lint_paths(["src/repro"])
        assert report.findings == [], format_text(report)
