"""API-quality meta-tests: docstrings everywhere, clean exports.

Deliverable-level guarantees enforced mechanically: every public
module, class, function, and method in :mod:`repro` carries a
docstring, every name in an ``__all__`` actually exists, and the
package imports without warnings.
"""

import importlib
import inspect
import pkgutil
import warnings

import pytest

import repro


def walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__,
                                      prefix="repro."):
        if info.name == "repro.__main__":
            continue  # importing it runs the CLI
        yield importlib.import_module(info.name)


def public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.ismodule(member):
            continue
        defined_here = getattr(member, "__module__", None) == \
            module.__name__
        if defined_here and (inspect.isclass(member)
                             or inspect.isfunction(member)):
            yield name, member


class TestDocstrings:
    def test_every_module_documented(self):
        undocumented = [module.__name__ for module in walk_modules()
                        if not (module.__doc__ or "").strip()]
        assert undocumented == []

    def test_every_public_class_and_function_documented(self):
        undocumented = []
        for module in walk_modules():
            for name, member in public_members(module):
                if not (member.__doc__ or "").strip():
                    undocumented.append(f"{module.__name__}.{name}")
        assert undocumented == []

    def test_every_public_method_documented(self):
        undocumented = []
        for module in walk_modules():
            for class_name, cls in public_members(module):
                if not inspect.isclass(cls):
                    continue
                for name, method in vars(cls).items():
                    if name.startswith("_"):
                        continue
                    target = method
                    if isinstance(method, property):
                        target = method.fget
                    elif isinstance(method, (staticmethod, classmethod)):
                        target = method.__func__
                    elif not inspect.isfunction(method):
                        continue
                    if not (getattr(target, "__doc__", "") or "").strip():
                        undocumented.append(
                            f"{module.__name__}.{class_name}.{name}")
        assert undocumented == []


class TestExports:
    def test_all_lists_are_accurate(self):
        broken = []
        for module in walk_modules():
            exported = getattr(module, "__all__", None)
            if exported is None:
                continue
            for name in exported:
                if not hasattr(module, name):
                    broken.append(f"{module.__name__}.{name}")
        assert broken == []

    def test_package_imports_cleanly(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            importlib.reload(importlib.import_module("repro.units"))


class TestCliProcess:
    def test_python_dash_m_repro_works(self):
        import subprocess
        import sys
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "table1"],
            capture_output=True, text=True, timeout=120)
        assert completed.returncode == 0
        assert "monitor" in completed.stdout

    def test_bad_usage_exits_nonzero(self):
        import subprocess
        import sys
        completed = subprocess.run(
            [sys.executable, "-m", "repro"],
            capture_output=True, text=True, timeout=120)
        assert completed.returncode != 0
