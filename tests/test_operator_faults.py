"""HardenedController under failure: aborted plans release guard rails."""

import pytest

from repro.core.operator import HardenedController, HardeningConfig
from repro.core.pam import select as pam_select
from repro.errors import ConfigurationError
from repro.harness.scenarios import figure1
from repro.migration.executor import (OUTCOME_ABORTED, MigrationRecord,
                                      PlanOutcome, RetryPolicy)
from repro.sim.faults import FaultInjector
from repro.sim.runner import SimulationRunner
from repro.traffic.packet import FixedSize
from repro.traffic.patterns import ProfiledArrivals, constant
from repro.units import gbps, usec


class FailFirstAttempts:
    """Failure hook that kills the first ``n`` attempts, then relents."""

    def __init__(self, n, fraction=0.5):
        self.n = n
        self.fraction = fraction
        self.calls = 0

    def __call__(self, action, attempt):
        self.calls += 1
        if self.calls <= self.n:
            return self.fraction
        return None


def build_runner(controller, offered=gbps(1.8), duration=0.03):
    generator = ProfiledArrivals(constant(offered), FixedSize(256),
                                 duration, seed=11, jitter=False)
    server = figure1().build_server()
    return SimulationRunner(server, generator, controller,
                            monitor_period_s=0.002)


class TestConfigValidation:
    def test_new_knobs_validated(self):
        with pytest.raises(ConfigurationError):
            HardeningConfig(telemetry_stale_s=0.0)
        with pytest.raises(ConfigurationError):
            HardeningConfig(action_timeout_s=-1.0)


class TestAbortedPlans:
    def test_abort_releases_cooldown_and_recovery_succeeds(self):
        # The first plan's three attempts all die mid-transfer and the
        # plan aborts.  The cooldown charged at admission is released,
        # so the very next tick replans; attempt four succeeds.
        hook = FailFirstAttempts(3)
        config = HardeningConfig(
            cooldown_s=0.004, flap_damp_s=0.02, migration_budget=4,
            enable_pullback=False,
            retry=RetryPolicy(max_attempts=3, backoff_base_s=usec(100.0)))
        controller = HardenedController(config=config, failure_hook=hook)
        result = build_runner(controller).run()
        assert controller.failed_plans == 1
        assert result.migrated_nfs == ["logger"]
        assert len(controller.attempts) == 4
        # With the abort near t=0.003, a retained cooldown would defer
        # replanning to t>=0.006; releasing it replans at the 0.004 tick.
        assert controller.attempts[3].started_s < 0.0055

    def test_failed_plan_does_not_leak_budget(self):
        hook = FailFirstAttempts(3)
        config = HardeningConfig(
            cooldown_s=0.004, flap_damp_s=0.02, migration_budget=4,
            enable_pullback=False,
            retry=RetryPolicy(max_attempts=3, backoff_base_s=usec(100.0)))
        controller = HardenedController(config=config, failure_hook=hook)
        build_runner(controller).run()
        # Three rolled-back/aborted attempts, one success: only the
        # success is charged.
        assert len(controller.migrations) == 1
        assert controller.budget_left == 3

    def test_abort_clears_damp_state_for_rolled_back_nfs(self):
        # White-box: an aborted plan must forget damp state for NFs
        # whose moves rolled back (they never moved), and hand back the
        # cooldown it charged at admission.
        controller = HardenedController()
        controller._last_moved["logger"] = 0.01
        controller._last_plan_s = 0.02
        plan = pam_select(figure1().placement, gbps(1.8))
        outcome = PlanOutcome(
            status=OUTCOME_ABORTED, started_s=0.02, completed_s=0.021,
            plan_size=len(plan.actions), actions_completed=0, attempts=3,
            failed_nf="logger", reason="injected-failure",
            records=[MigrationRecord(
                nf_name="logger", started_s=0.02, completed_s=0.021,
                cost=None, buffered_packets=0, outcome=OUTCOME_ABORTED,
                attempt=3, reason="injected-failure")])
        controller._on_outcome(plan, outcome, previous_plan_s=None)
        assert "logger" not in controller._last_moved
        assert controller._last_plan_s is None
        assert controller.failed_plans == 1


class TestStaleTelemetry:
    def test_dropout_suppresses_planning_until_telemetry_returns(self):
        # Telemetry freezes just before the first monitor tick; every
        # tick inside the window is suppressed as stale, and the
        # migration only happens once live samples return.
        config = HardeningConfig(
            cooldown_s=0.0, flap_damp_s=0.0, enable_pullback=False,
            telemetry_stale_s=0.0005)
        controller = HardenedController(config=config)
        runner = build_runner(controller, duration=0.02)
        FaultInjector(runner.network, runner.engine) \
            .telemetry_dropout(at_s=0.001, duration_s=0.008)
        result = runner.run()
        assert controller.stale_ticks >= 3
        assert result.migrated_nfs == ["logger"]
        assert min(result.migration_times_s) >= 0.009

    def test_no_stale_ticks_with_live_telemetry(self):
        config = HardeningConfig(
            cooldown_s=0.0, flap_damp_s=0.0, enable_pullback=False,
            telemetry_stale_s=0.0005)
        controller = HardenedController(config=config)
        result = build_runner(controller, duration=0.02).run()
        assert controller.stale_ticks == 0
        assert result.migrated_nfs == ["logger"]
