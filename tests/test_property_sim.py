"""Property-based tests: engine determinism and packet conservation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.scenarios import figure1
from repro.sim.engine import Engine
from repro.sim.network import ChainNetwork
from repro.telemetry.metrics import LatencySummary, percentile
from repro.traffic.packet import Packet
from repro.units import gbps


class TestEngineOrdering:
    @given(st.lists(st.floats(min_value=0.0, max_value=1.0),
                    min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_events_execute_in_nondecreasing_time_order(self, times):
        engine = Engine()
        executed = []
        for t in times:
            engine.at(t, lambda t=t: executed.append(engine.now_s))
        engine.run()
        assert executed == sorted(executed)
        assert len(executed) == len(times)

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0),
                    min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_equal_times_preserve_insertion_order(self, times):
        engine = Engine()
        executed = []
        for index, t in enumerate(times):
            engine.at(round(t, 2), lambda i=index: executed.append(i))
        engine.run()
        by_time = sorted(range(len(times)),
                         key=lambda i: (round(times[i], 2), i))
        assert executed == by_time


class TestConservation:
    @given(st.integers(min_value=1, max_value=120),
           st.floats(min_value=5e-7, max_value=5e-6),
           st.sampled_from([64, 256, 1500]))
    @settings(max_examples=20, deadline=None)
    def test_injected_equals_delivered_plus_dropped_plus_inflight(
            self, count, gap_s, size):
        server = figure1().build_server()
        server.refresh_demand(gbps(1.8))
        engine = Engine()
        network = ChainNetwork(server, engine)
        for i in range(count):
            network.inject(Packet(seq=i, size_bytes=size,
                                  arrival_s=i * gap_s))
        engine.run()
        network.check_conservation()
        assert network.injected == count
        assert len(network.delivered) + len(network.dropped) == count
        assert network.in_flight() == 0

    @given(st.integers(min_value=1, max_value=60))
    @settings(max_examples=20, deadline=None)
    def test_latency_always_positive(self, count):
        server = figure1().build_server()
        server.refresh_demand(gbps(1.0))
        engine = Engine()
        network = ChainNetwork(server, engine)
        for i in range(count):
            network.inject(Packet(seq=i, size_bytes=256,
                                  arrival_s=i * 2e-6))
        engine.run()
        assert all(p.latency_s > 0 for p in network.delivered)


class TestMetricsProperties:
    samples = st.lists(st.floats(min_value=1e-9, max_value=1.0),
                       min_size=1, max_size=200)

    @given(samples)
    @settings(max_examples=80, deadline=None)
    def test_summary_bounds(self, values):
        summary = LatencySummary.from_samples(values)
        # The mean of n identical floats can differ from them by one
        # ulp (sum/n rounding), hence the relative slack on that bound.
        slack = 1e-12
        assert summary.min_s * (1 - slack) <= summary.mean_s \
            <= summary.max_s * (1 + slack)
        assert summary.min_s <= summary.p50_s <= summary.p99_s <= \
            summary.max_s

    @given(samples, st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=80, deadline=None)
    def test_percentile_within_range(self, values, q):
        result = percentile(sorted(values), q)
        assert min(values) <= result <= max(values)

    @given(samples)
    @settings(max_examples=80, deadline=None)
    def test_percentile_monotone_in_q(self, values):
        ordered = sorted(values)
        results = [percentile(ordered, q / 10) for q in range(11)]
        assert results == sorted(results)
