"""Latency/throughput aggregation."""

import pytest

from repro.errors import SimulationError
from repro.telemetry.metrics import (LatencySummary, ThroughputSummary,
                                     percentile, relative_change)


class TestPercentile:
    def test_median_odd(self):
        assert percentile([1.0, 2.0, 3.0], 0.5) == 2.0

    def test_median_even_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)

    def test_extremes(self):
        values = [1.0, 5.0, 9.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 9.0

    def test_singleton(self):
        assert percentile([7.0], 0.99) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            percentile([], 0.5)

    def test_fraction_bounds(self):
        with pytest.raises(SimulationError):
            percentile([1.0], 1.5)

    def test_matches_numpy_linear(self):
        import numpy
        values = sorted([3.0, 1.0, 4.0, 1.5, 9.0, 2.6, 5.3])
        for q in (0.1, 0.25, 0.5, 0.9, 0.99):
            assert percentile(values, q) == \
                pytest.approx(float(numpy.percentile(values, q * 100)))


class TestLatencySummary:
    def test_from_samples(self):
        summary = LatencySummary.from_samples([1e-5, 2e-5, 3e-5])
        assert summary.count == 3
        assert summary.mean_s == pytest.approx(2e-5)
        assert summary.min_s == 1e-5
        assert summary.max_s == 3e-5

    def test_percentile_ordering(self):
        summary = LatencySummary.from_samples(
            [i * 1e-6 for i in range(1, 101)])
        assert summary.p50_s <= summary.p90_s <= summary.p99_s <= \
            summary.max_s

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            LatencySummary.from_samples([])

    def test_mean_usec(self):
        summary = LatencySummary.from_samples([2e-5])
        assert summary.mean_usec == pytest.approx(20.0)

    def test_describe_mentions_units(self):
        text = LatencySummary.from_samples([1e-5]).describe()
        assert "us" in text and "n=1" in text


class TestThroughputSummary:
    def test_goodput(self):
        summary = ThroughputSummary(delivered_packets=100,
                                    delivered_bytes=100 * 125,
                                    window_s=1e-3)
        assert summary.goodput_bps == pytest.approx(1e8)

    def test_packet_rate(self):
        summary = ThroughputSummary(10, 640, window_s=1e-3)
        assert summary.packet_rate_pps == pytest.approx(1e4)

    def test_zero_window_rejected(self):
        with pytest.raises(SimulationError):
            ThroughputSummary(1, 64, window_s=0.0).goodput_bps


class TestRelativeChange:
    def test_reduction(self):
        assert relative_change(82.0, 100.0) == pytest.approx(-0.18)

    def test_zero_baseline_rejected(self):
        with pytest.raises(SimulationError):
            relative_change(1.0, 0.0)
