"""The generative fuzzer: seeded draws, round-trips, and planting."""

import pytest

from repro.errors import ConfigurationError
from repro.soak.fuzzer import (BUG_CONSERVATION, BUG_PROTECTED_SHED,
                               FuzzSpace, PlantedBug, SoakCase,
                               default_space, generate_case, parse_plant,
                               plant)


class TestFuzzSpace:
    def test_round_trip(self):
        space = default_space(0.01)
        assert FuzzSpace.from_dict(space.to_dict()) == space

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FuzzSpace(duration_lo_s=0.02, duration_hi_s=0.01)
        with pytest.raises(ConfigurationError):
            FuzzSpace(packet_sizes=())
        with pytest.raises(ConfigurationError):
            FuzzSpace(resilient_frac=1.5)

    def test_default_space_caps_duration(self):
        capped = default_space(0.005)
        assert capped.duration_hi_s == 0.005
        assert capped.duration_lo_s <= capped.duration_hi_s
        assert default_space() == FuzzSpace()


class TestGenerateCase:
    def test_same_seed_same_case(self):
        space = default_space(0.01)
        assert generate_case(space, 42) == generate_case(space, 42)

    def test_different_seeds_differ(self):
        space = default_space(0.01)
        cases = {generate_case(space, seed).to_dict()["duration_s"]
                 for seed in range(20)}
        assert len(cases) > 1

    def test_case_round_trip(self):
        for seed in range(8):
            case = generate_case(default_space(0.01), seed)
            assert SoakCase.from_dict(case.to_dict()) == case

    def test_case_within_space(self):
        space = default_space(0.01)
        for seed in range(12):
            case = generate_case(space, seed)
            assert space.duration_lo_s <= case.duration_s \
                <= space.duration_hi_s
            assert case.packet_bytes in space.packet_sizes
            for fault in case.faults:
                assert 0.0 <= fault.at_s <= case.duration_s

    def test_faults_sorted_by_time(self):
        for seed in range(12):
            case = generate_case(default_space(0.01), seed)
            times = [fault.at_s for fault in case.faults]
            assert times == sorted(times)


class TestPlanting:
    def test_plant_adds_trigger_fault_when_absent(self):
        case = generate_case(default_space(0.01), 5)
        armed = plant(case, PlantedBug(BUG_CONSERVATION, "device-kill"))
        kinds = {fault.kind for fault in armed.faults}
        assert "device-kill" in kinds
        assert armed.planted == PlantedBug(BUG_CONSERVATION,
                                           "device-kill")

    def test_plant_reuses_existing_trigger_fault(self):
        case = generate_case(default_space(0.01), 5)
        assert any(f.kind == "crash" for f in case.faults)
        armed = plant(case, PlantedBug(BUG_CONSERVATION, "crash"))
        assert len(armed.faults) == len(case.faults)

    def test_protected_shed_plant_forces_resilient(self):
        case = generate_case(default_space(0.01), 5)
        armed = plant(case, PlantedBug(BUG_PROTECTED_SHED, "crash"))
        assert armed.resilient

    def test_planted_round_trips_through_dict(self):
        case = plant(generate_case(default_space(0.01), 5),
                     PlantedBug(BUG_CONSERVATION, "crash"))
        assert SoakCase.from_dict(case.to_dict()) == case

    def test_bad_bug_rejected(self):
        with pytest.raises(ConfigurationError):
            PlantedBug("nonsense", "crash")
        with pytest.raises(ConfigurationError):
            PlantedBug(BUG_CONSERVATION, "nonsense")


class TestParsePlant:
    def test_full_form(self):
        index, bug = parse_plant("5:conservation:brownout")
        assert index == 5
        assert bug == PlantedBug(BUG_CONSERVATION, "brownout")

    def test_default_trigger_is_crash(self):
        index, bug = parse_plant("0:protected-shed")
        assert index == 0
        assert bug == PlantedBug(BUG_PROTECTED_SHED, "crash")

    @pytest.mark.parametrize("text", [
        "", "5", "x:conservation", "-1:conservation",
        "5:bogus", "5:conservation:bogus", "5:conservation:crash:extra",
    ])
    def test_bad_specs_rejected(self, text):
        with pytest.raises(ConfigurationError):
            parse_plant(text)
