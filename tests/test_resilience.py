"""Resilience units: health FSM, degradation ladder, recovery planning."""

from dataclasses import replace

import pytest

from repro.chain import catalog
from repro.chain.builder import ChainBuilder
from repro.chain.nf import DeviceKind
from repro.errors import ConfigurationError
from repro.harness.scenarios import figure1
from repro.migration.cost import MigrationCostModel
from repro.resilience import (DEFAULT_PRIORITY_CLASSES, DegradationConfig,
                              DegradationLadder, HealthConfig, HealthState,
                              HealthTracker, IngressShedder, PriorityClass,
                              RecoveryConfig, StandbyAwareCostModel,
                              StandbyPool, plan_evacuation,
                              reachable_capacity_bps)
from repro.traffic.packet import Packet
from repro.units import gbps

#: Jitter-free watchdog config so thresholds land exactly.
EXACT = HealthConfig(suspect_after_s=0.004, failed_after_s=0.008,
                     recover_confirm_s=0.004, watchdog_jitter_frac=0.0)


class TestHealthConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HealthConfig(suspect_after_s=0.0)
        with pytest.raises(ConfigurationError):
            HealthConfig(suspect_after_s=0.01, failed_after_s=0.01)
        with pytest.raises(ConfigurationError):
            HealthConfig(min_reference_delta=0)
        with pytest.raises(ConfigurationError):
            HealthConfig(watchdog_jitter_frac=1.0)


class TestHealthTracker:
    def test_unobserved_entity_is_healthy(self):
        tracker = HealthTracker(EXACT)
        assert tracker.state_of("device:smartnic") is HealthState.HEALTHY
        assert tracker.entities() == []

    def test_first_observation_only_seeds(self):
        tracker = HealthTracker(EXACT)
        # Even a zero-progress first sample establishes watermarks,
        # never a stall (there is no history to stall against).
        assert tracker.observe("x", 0, 100, 0.0) is HealthState.HEALTHY
        assert tracker.transitions == []

    def test_stall_under_load_walks_suspect_then_failed(self):
        tracker = HealthTracker(EXACT)
        tracker.observe("x", 1, 10, 0.000)
        tracker.observe("x", 1, 20, 0.002)  # stall clock starts here
        assert tracker.observe("x", 1, 30, 0.006) is HealthState.SUSPECT
        assert tracker.observe("x", 1, 40, 0.010) is HealthState.FAILED
        assert [t.state for t in tracker.transitions] == \
            [HealthState.SUSPECT, HealthState.FAILED]
        assert all("no progress" in t.reason for t in tracker.transitions)

    def test_one_late_observation_passes_through_both_thresholds(self):
        # A single sample far past both thresholds must not get stuck
        # at SUSPECT: detection latency is bounded by observation
        # cadence, not doubled by it.
        tracker = HealthTracker(EXACT)
        tracker.observe("x", 1, 10, 0.000)
        tracker.observe("x", 1, 20, 0.002)
        assert tracker.observe("x", 1, 30, 0.012) is HealthState.FAILED
        assert len(tracker.transitions) == 2

    def test_idle_entity_never_suspected(self):
        tracker = HealthTracker(EXACT)
        tracker.observe("x", 5, 10, 0.0)
        for i in range(1, 10):
            # Reference flat: nothing was offered, flat progress is idle.
            assert tracker.observe("x", 5, 10, i * 0.004) \
                is HealthState.HEALTHY
        assert tracker.transitions == []

    def test_reference_delta_threshold_gates_stall(self):
        config = replace(EXACT, min_reference_delta=100)
        tracker = HealthTracker(config)
        tracker.observe("x", 1, 0, 0.0)
        for i in range(1, 8):
            tracker.observe("x", 1, 50, i * 0.004)  # advance of 50 < 100
        assert tracker.state_of("x") is HealthState.HEALTHY

    def test_progress_withdraws_suspicion(self):
        tracker = HealthTracker(EXACT)
        tracker.observe("x", 1, 10, 0.000)
        tracker.observe("x", 1, 20, 0.002)
        tracker.observe("x", 1, 30, 0.006)
        assert tracker.state_of("x") is HealthState.SUSPECT
        assert tracker.observe("x", 2, 40, 0.008) is HealthState.HEALTHY
        assert tracker.transitions[-1].reason == "progress resumed"

    def test_recovery_needs_sustained_progress(self):
        tracker = HealthTracker(EXACT)
        tracker.observe("x", 1, 10, 0.000)
        tracker.observe("x", 1, 20, 0.002)
        tracker.observe("x", 1, 30, 0.012)
        assert tracker.state_of("x") is HealthState.FAILED
        # First progress only *starts* the confirmation dwell.
        assert tracker.observe("x", 2, 40, 0.014) is HealthState.RECOVERING
        assert tracker.observe("x", 3, 50, 0.016) is HealthState.RECOVERING
        assert tracker.observe("x", 4, 60, 0.020) is HealthState.HEALTHY
        assert tracker.transitions[-1].reason == "recovery confirmed"

    def test_relapse_during_confirmation_fails_again(self):
        tracker = HealthTracker(EXACT)
        tracker.observe("x", 1, 10, 0.000)
        tracker.observe("x", 1, 20, 0.002)
        tracker.observe("x", 1, 30, 0.012)
        tracker.observe("x", 2, 40, 0.014)  # RECOVERING
        tracker.observe("x", 2, 50, 0.016)  # stall clock restarts
        assert tracker.observe("x", 2, 60, 0.020) is HealthState.FAILED
        assert tracker.transitions[-1].reason == \
            "stalled again during recovery confirmation"

    def test_exempt_freezes_state_and_resets_stall(self):
        tracker = HealthTracker(EXACT)
        tracker.observe("x", 1, 10, 0.000)
        tracker.observe("x", 1, 20, 0.002)
        tracker.observe("x", 1, 30, 0.006)
        assert tracker.state_of("x") is HealthState.SUSPECT
        # Paused for migration: no progress expected, state frozen.
        for i in range(4, 10):
            assert tracker.observe("x", 1, i * 10, i * 0.002,
                                   exempt=True) is HealthState.SUSPECT
        assert len(tracker.transitions) == 1
        # The stall window restarts from scratch afterwards.
        tracker.observe("x", 1, 200, 0.030)
        tracker.observe("x", 1, 210, 0.032)
        assert tracker.state_of("x") is HealthState.SUSPECT
        assert tracker.observe("x", 1, 220, 0.040) is HealthState.FAILED

    def test_force_failed_pins_and_is_idempotent(self):
        tracker = HealthTracker(EXACT)
        tracker.force_failed("nf:monitor", 0.01, "stranded")
        assert tracker.state_of("nf:monitor") is HealthState.FAILED
        assert tracker.transitions[-1].reason == "stranded"
        tracker.force_failed("nf:monitor", 0.02, "stranded")
        assert len(tracker.transitions) == 1

    def test_in_state_lists_entities(self):
        tracker = HealthTracker(EXACT)
        tracker.observe("a", 1, 10, 0.0)
        tracker.force_failed("b", 0.01, "test")
        assert tracker.in_state(HealthState.HEALTHY) == ["a"]
        assert tracker.in_state(HealthState.FAILED) == ["b"]

    def test_jitter_is_deterministic_bounded_and_per_entity(self):
        config = HealthConfig(watchdog_jitter_frac=0.1, seed=0)
        first, second = HealthTracker(config), HealthTracker(config)
        for entity in ("device:smartnic", "device:cpu", "nf:monitor"):
            assert first.suspect_after_s(entity) == \
                second.suspect_after_s(entity)
            lo = 0.9 * config.suspect_after_s
            hi = 1.1 * config.suspect_after_s
            assert lo <= first.suspect_after_s(entity) < hi
        assert first.suspect_after_s("device:smartnic") != \
            first.suspect_after_s("device:cpu")

    def test_zero_jitter_uses_configured_thresholds(self):
        tracker = HealthTracker(EXACT)
        assert tracker.suspect_after_s("anything") == EXACT.suspect_after_s
        assert tracker.failed_after_s("anything") == EXACT.failed_after_s


class TestPriorityClasses:
    def test_class_validation(self):
        with pytest.raises(ConfigurationError):
            PriorityClass("", 0.5)
        with pytest.raises(ConfigurationError):
            PriorityClass("x", 0.0)
        with pytest.raises(ConfigurationError):
            PriorityClass("x", 1.5)

    def test_shedder_validation(self):
        with pytest.raises(ConfigurationError):
            IngressShedder([])
        with pytest.raises(ConfigurationError):
            IngressShedder([PriorityClass("a", 0.5),
                            PriorityClass("b", 0.4)])
        with pytest.raises(ConfigurationError):
            IngressShedder([PriorityClass("a", 1.0, sheddable=False)])

    def test_degradation_config_validation(self):
        with pytest.raises(ConfigurationError):
            DegradationConfig(max_shed_fraction=1.5)
        with pytest.raises(ConfigurationError):
            DegradationConfig(headroom=1.0)
        with pytest.raises(ConfigurationError):
            DegradationConfig(dwell_s=-0.001)


class TestIngressShedder:
    @staticmethod
    def packets(count, flow="f0"):
        return [Packet(seq=i, size_bytes=512, arrival_s=i * 1e-6,
                       flow_id=flow) for i in range(count)]

    def test_classification_is_deterministic(self):
        a, b = IngressShedder(seed=0), IngressShedder(seed=0)
        for packet in self.packets(200):
            assert a.classify(packet).name == b.classify(packet).name

    def test_classification_tracks_shares(self):
        shedder = IngressShedder(seed=0)
        counts = {cls.name: 0 for cls in DEFAULT_PRIORITY_CLASSES}
        total = 4000
        for packet in self.packets(total):
            counts[shedder.classify(packet).name] += 1
        for cls in DEFAULT_PRIORITY_CLASSES:
            assert abs(counts[cls.name] / total - cls.share) < 0.05

    def test_levels_shed_lowest_classes_first(self):
        shedder = IngressShedder()
        assert shedder.max_level() == 2
        assert shedder.shed_share_at(0) == 0.0
        assert shedder.shed_share_at(1) == pytest.approx(0.3)
        assert shedder.shed_share_at(2) == pytest.approx(0.8)

    def test_set_level_clamps(self):
        shedder = IngressShedder()
        shedder.set_level(99)
        assert shedder.level == 2
        shedder.set_level(-3)
        assert shedder.level == 0

    def test_admit_sheds_only_engaged_classes(self):
        shedder = IngressShedder(seed=0)
        shedder.set_level(1)
        for packet in self.packets(2000):
            admitted = shedder.admit(packet)
            assert admitted == (shedder.classify(packet).name != "low")
        assert shedder.counters["low"].shed_packets > 0
        assert shedder.counters["normal"].shed_packets == 0
        assert shedder.counters["high"].shed_packets == 0
        assert shedder.protected_shed_packets() == 0
        # Offered counts admitted + shed alike.
        assert sum(c.offered_packets
                   for c in shedder.counters.values()) == 2000
        assert 0.0 < shedder.shed_fraction() < 0.5

    def test_protected_class_survives_deepest_level(self):
        shedder = IngressShedder(seed=0)
        shedder.set_level(shedder.max_level())
        for packet in self.packets(2000):
            shedder.admit(packet)
        assert shedder.counters["high"].shed_packets == 0
        assert shedder.protected_shed_packets() == 0
        assert shedder.counters["low"].shed_packets > 0
        assert shedder.counters["normal"].shed_packets > 0


class TestDegradationLadder:
    def test_required_level_is_smallest_sufficient(self):
        ladder = DegradationLadder(IngressShedder())
        assert ladder.required_level(gbps(1.0), gbps(2.0)) == 0
        # 2.2 offered vs 2.0 * 0.95 usable: shed need ~0.136 < 0.3.
        assert ladder.required_level(gbps(2.2), gbps(2.0)) == 1
        assert ladder.required_level(gbps(100.0), gbps(2.0)) == 2
        assert ladder.required_level(0.0, gbps(2.0)) == 0

    def test_required_level_respects_shed_cap(self):
        config = DegradationConfig(max_shed_fraction=0.25)
        ladder = DegradationLadder(IngressShedder(), config)
        # Even level 1 (30% share) would shed past the cap: stay at 0.
        assert ladder.required_level(gbps(100.0), gbps(2.0)) == 0

    def test_escalation_is_immediate(self):
        shedder = IngressShedder()
        ladder = DegradationLadder(shedder)
        assert ladder.update(gbps(2.2), gbps(2.0), 0.0) == 1
        assert shedder.level == 1
        assert ladder.level_changes == [(0.0, 1)]

    def test_deescalation_waits_out_dwell(self):
        shedder = IngressShedder()
        ladder = DegradationLadder(shedder,
                                   DegradationConfig(dwell_s=0.008))
        ladder.update(gbps(2.2), gbps(2.0), 0.000)
        # Load drops; the ladder must not flap back instantly.
        assert ladder.update(gbps(1.0), gbps(2.0), 0.002) == 1
        assert ladder.update(gbps(1.0), gbps(2.0), 0.006) == 1
        assert ladder.update(gbps(1.0), gbps(2.0), 0.010) == 0
        assert ladder.level_changes == [(0.000, 1), (0.010, 0)]

    def test_reescalation_resets_dwell(self):
        ladder = DegradationLadder(IngressShedder(),
                                   DegradationConfig(dwell_s=0.008))
        ladder.update(gbps(2.2), gbps(2.0), 0.000)
        ladder.update(gbps(1.0), gbps(2.0), 0.002)  # dwell starts
        ladder.update(gbps(2.2), gbps(2.0), 0.004)  # back under pressure
        # The earlier quiet spell must not count toward this dwell.
        assert ladder.update(gbps(1.0), gbps(2.0), 0.011) == 1
        assert ladder.update(gbps(1.0), gbps(2.0), 0.020) == 0

    def test_degraded_time_accumulates_while_level_nonzero(self):
        ladder = DegradationLadder(IngressShedder())
        ladder.update(gbps(2.2), gbps(2.0), 0.000)
        ladder.update(gbps(2.2), gbps(2.0), 0.004)
        ladder.update(gbps(2.2), gbps(2.0), 0.010)
        assert ladder.degraded_time_s == pytest.approx(0.010)


class TestRecoveryPlanning:
    def test_recovery_config_validation(self):
        with pytest.raises(ConfigurationError):
            RecoveryConfig(max_attempts_per_device=0)
        with pytest.raises(ConfigurationError):
            RecoveryConfig(standby_budget_bytes=-1)

    def test_evacuation_moves_every_nic_nf_to_cpu(self):
        placement = figure1().placement
        planning = plan_evacuation(placement, gbps(1.0),
                                   DeviceKind.SMARTNIC)
        plan = planning.plan
        assert [a.nf_name for a in plan.actions] == \
            ["logger", "monitor", "firewall"]
        assert all(a.target is DeviceKind.CPU for a in plan.actions)
        assert plan.policy == "evacuation"
        assert planning.unrecoverable == ()
        for nf in plan.after.chain:
            assert plan.after.device_of(nf.name) is DeviceKind.CPU
        # All four NFs on the CPU: capacity 1/(1/4 + 1/4 + 1/10 + 1/4).
        assert planning.survivor_capacity_bps == \
            pytest.approx(gbps(1.0) / 0.85)

    def test_feasible_load_marks_plan_alleviating(self):
        planning = plan_evacuation(figure1().placement, gbps(1.0),
                                   DeviceKind.SMARTNIC)
        assert planning.plan.alleviates

    def test_overloaded_survivor_defers_to_the_ladder(self):
        planning = plan_evacuation(figure1().placement, gbps(1.8),
                                   DeviceKind.SMARTNIC)
        assert not planning.plan.alleviates
        assert any("degradation ladder" in note
                   for note in planning.plan.notes)

    def test_nic_only_nf_is_unrecoverable(self):
        profiles = dict(catalog.FIGURE1_SCENARIO)
        profiles["monitor"] = replace(profiles["monitor"],
                                      cpu_capable=False)
        __, placement = (
            ChainBuilder("pinned", profiles=profiles)
            .cpu("load_balancer").nic("logger").nic("monitor")
            .nic("firewall").build(egress=DeviceKind.CPU))
        planning = plan_evacuation(placement, gbps(1.0),
                                   DeviceKind.SMARTNIC)
        assert planning.unrecoverable == ("monitor",)
        assert [a.nf_name for a in planning.plan.actions] == \
            ["logger", "firewall"]
        assert any("unrecoverable: monitor" in note
                   for note in planning.plan.notes)


class TestReachableCapacity:
    def test_figure1_reaches_the_border_move_optimum(self):
        # One border move away: logger joins the load balancer on the
        # CPU, giving min(1/(1/4+1/4), 1/(1/3.2+1/10)) = 2.0 Gbps.
        assert reachable_capacity_bps(figure1().placement) == \
            pytest.approx(gbps(2.0))

    def test_never_below_current_capacity(self):
        from repro.resources.model import LoadModel
        placement = figure1().placement
        current = LoadModel(placement, 0.0).chain_capacity()
        assert reachable_capacity_bps(placement) >= current
        evacuated = placement
        for name in ("logger", "monitor", "firewall"):
            evacuated = evacuated.moved(name, DeviceKind.CPU)
        assert reachable_capacity_bps(evacuated) >= \
            LoadModel(evacuated, 0.0).chain_capacity()


class TestStandby:
    MONITOR_STATE = 262144
    FIREWALL_STATE = 65536

    def test_greedy_picks_largest_state_first(self):
        pool = StandbyPool(figure1().placement, DeviceKind.SMARTNIC,
                           self.MONITOR_STATE)
        assert pool.prewarmed == frozenset({"monitor"})
        assert pool.spent_bytes == self.MONITOR_STATE

    def test_greedy_continues_past_oversized_candidates(self):
        # Monitor does not fit a 100 KiB budget; firewall still does.
        pool = StandbyPool(figure1().placement, DeviceKind.SMARTNIC,
                           100_000)
        assert pool.prewarmed == frozenset({"firewall"})
        assert pool.spent_bytes == self.FIREWALL_STATE

    def test_stateless_nfs_never_prewarmed(self):
        pool = StandbyPool(figure1().placement, DeviceKind.SMARTNIC,
                           10 * 1024 * 1024)
        assert pool.prewarmed == frozenset({"monitor", "firewall"})

    def test_zero_budget_prewarms_nothing(self):
        pool = StandbyPool(figure1().placement, DeviceKind.SMARTNIC, 0)
        assert pool.prewarmed == frozenset()
        assert pool.spent_bytes == 0

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            StandbyPool(figure1().placement, DeviceKind.SMARTNIC, -1)

    def test_warm_replica_moves_no_state(self):
        scenario = figure1()
        pcie = scenario.build_server().pcie
        monitor = catalog.FIGURE1_SCENARIO["monitor"]
        base = MigrationCostModel().estimate(monitor, pcie,
                                             active_flows=10)
        warm = StandbyAwareCostModel(
            prewarmed=frozenset({"monitor"})).estimate(monitor, pcie,
                                                       active_flows=10)
        assert warm.transfer_s < base.transfer_s

    def test_cold_nfs_cost_exactly_the_base_estimate(self):
        scenario = figure1()
        pcie = scenario.build_server().pcie
        logger = catalog.FIGURE1_SCENARIO["logger"]
        base = MigrationCostModel().estimate(logger, pcie)
        warm = StandbyAwareCostModel(
            prewarmed=frozenset({"monitor"})).estimate(logger, pcie)
        assert warm == base
