"""LoadModel: the paper's linear utilisation sums and what-if checks."""

import pytest

from repro.chain import catalog
from repro.chain.builder import ChainBuilder
from repro.chain.nf import DeviceKind
from repro.errors import CapacityError
from repro.resources.model import LoadModel
from repro.units import gbps

S = DeviceKind.SMARTNIC
C = DeviceKind.CPU


@pytest.fixture
def placement():
    _, placement = (ChainBuilder("f", profiles=catalog.FIGURE1_SCENARIO)
                    .cpu("load_balancer").nic("logger").nic("monitor")
                    .nic("firewall").build(egress=C))
    return placement


class TestAggregates:
    def test_nic_utilisation_at_canonical_load(self, placement):
        load = LoadModel(placement, gbps(1.8))
        # 1.8 * (1/4 + 1/3.2 + 1/10) = 1.1925
        assert load.nic_load().utilisation == pytest.approx(1.1925)

    def test_cpu_utilisation_at_canonical_load(self, placement):
        load = LoadModel(placement, gbps(1.8))
        assert load.cpu_load().utilisation == pytest.approx(0.45)

    def test_shares_sum_to_utilisation(self, placement):
        load = LoadModel(placement, gbps(1.8)).nic_load()
        assert sum(load.shares.values()) == pytest.approx(load.utilisation)

    def test_overloaded_flag(self, placement):
        assert LoadModel(placement, gbps(1.8)).nic_load().overloaded
        assert not LoadModel(placement, gbps(1.0)).nic_load().overloaded

    def test_headroom(self, placement):
        load = LoadModel(placement, gbps(1.0)).nic_load()
        assert load.headroom == pytest.approx(1.0 - load.utilisation)

    def test_overloaded_devices_order(self, placement):
        assert LoadModel(placement, gbps(1.8)).overloaded_devices() == [S]
        assert LoadModel(placement, gbps(1.0)).overloaded_devices() == []


class TestWhatIf:
    def test_cpu_load_with_matches_eq2(self, placement):
        load = LoadModel(placement, gbps(1.8))
        logger = placement.chain.get("logger")
        # 0.45 + 1.8/4 = 0.9
        assert load.cpu_load_with(logger) == pytest.approx(0.9)

    def test_nic_load_without_matches_eq3(self, placement):
        load = LoadModel(placement, gbps(1.8))
        logger = placement.chain.get("logger")
        # 1.8 * (1/3.2 + 1/10) = 0.7425
        assert load.nic_load_without(logger) == pytest.approx(0.7425)

    def test_nic_load_without_cpu_nf_is_identity(self, placement):
        load = LoadModel(placement, gbps(1.8))
        lb = placement.chain.get("load_balancer")
        assert load.nic_load_without(lb) == \
            pytest.approx(load.nic_load().utilisation)

    def test_after_move_consistency(self, placement):
        load = LoadModel(placement, gbps(1.8))
        logger = placement.chain.get("logger")
        moved = load.after_move("logger", C)
        assert moved.nic_load().utilisation == \
            pytest.approx(load.nic_load_without(logger))
        assert moved.cpu_load().utilisation == \
            pytest.approx(load.cpu_load_with(logger))


class TestThroughputSpec:
    def test_scalar_expands_to_all_nfs(self, placement):
        load = LoadModel(placement, gbps(1.0))
        assert set(load.throughput) == set(placement.chain.names())
        assert all(v == gbps(1.0) for v in load.throughput.values())

    def test_mapping_must_cover_chain(self, placement):
        with pytest.raises(CapacityError, match="omits"):
            LoadModel(placement, {"logger": gbps(1.0)})

    def test_mapping_rejects_negative(self, placement):
        spec = {name: gbps(1.0) for name in placement.chain.names()}
        spec["monitor"] = -1.0
        with pytest.raises(CapacityError, match="negative"):
            LoadModel(placement, spec)

    def test_negative_scalar_rejected(self, placement):
        with pytest.raises(CapacityError):
            LoadModel(placement, -1.0)

    def test_per_nf_throughput_honoured(self, placement):
        spec = {name: gbps(1.8) for name in placement.chain.names()}
        spec["firewall"] = gbps(0.9)  # firewall passes only half the load
        load = LoadModel(placement, spec)
        full = LoadModel(placement, gbps(1.8))
        assert load.nic_load().utilisation < full.nic_load().utilisation


class TestCapacityKnees:
    def test_nic_sustainable_throughput(self, placement):
        load = LoadModel(placement, gbps(1.0))
        # 1 / (1/4 + 1/3.2 + 1/10) Gbps
        assert load.max_sustainable_throughput(S) == \
            pytest.approx(gbps(1 / 0.6625))

    def test_empty_device_is_unbounded(self, placement):
        moved = placement.moved("logger", C).moved("monitor", C) \
                         .moved("firewall", C)
        load = LoadModel(moved, gbps(1.0))
        assert load.max_sustainable_throughput(S) == float("inf")

    def test_chain_capacity_is_min_of_devices(self, placement):
        load = LoadModel(placement, gbps(1.0))
        assert load.chain_capacity() == pytest.approx(
            min(load.max_sustainable_throughput(S),
                load.max_sustainable_throughput(C)))
