"""The online invariant engine: registry, hooks, and trip-once rules."""

import pytest

from repro.errors import ConfigurationError
from repro.soak.fuzzer import (BUG_CONSERVATION, BUG_PROTECTED_SHED,
                               PlantedBug, default_space, generate_case,
                               plant)
from repro.soak.invariants import (InvariantEngine, RuntimeInvariant,
                                   default_invariants,
                                   invariant_catalogue,
                                   register_invariant)
from repro.soak.scenario import build_case_scenario, run_case

#: Short cases keep every test in this module well under a second each.
_SPACE = default_space(0.008)


class TestRegistry:
    def test_catalogue_names_every_default_invariant(self):
        names = [name for name, _ in invariant_catalogue()]
        assert names == [type(inv).name for inv in default_invariants()]
        assert "virtual-time-monotonic" in names
        assert "packet-conservation-online" in names
        assert "queue-bounds" in names
        assert "budget-ledger" in names
        assert "health-fsm-legal" in names
        assert "zero-protected-shed-online" in names
        assert "drained-end-state" in names
        assert "resilience-end-state" in names

    def test_every_invariant_has_a_description(self):
        for name, description in invariant_catalogue():
            assert name and description

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            @register_invariant
            class Clash(RuntimeInvariant):  # noqa: F811 - intentional
                name = "queue-bounds"
                description = "clash"

    def test_unnamed_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="no name"):
            @register_invariant
            class Nameless(RuntimeInvariant):
                description = "no name attr"


class TestEngineLifecycle:
    def test_attach_twice_rejected(self):
        case = generate_case(_SPACE, 3)
        scenario = build_case_scenario(case)
        with pytest.raises(ConfigurationError, match="already attached"):
            scenario.invariants.attach(scenario.sim,
                                       hardened=scenario.hardened)

    def test_collect_before_run_rejected(self):
        scenario = build_case_scenario(generate_case(_SPACE, 3))
        with pytest.raises(ConfigurationError, match="before"):
            scenario.collect()

    def test_clean_case_checks_events_and_ticks(self):
        payload = run_case(generate_case(_SPACE, 3))
        assert payload["violations"] == []
        assert payload["events"] > 0
        assert payload["ticks"] > 0
        assert payload["injected"] >= payload["delivered"]

    def test_finalize_is_idempotent(self):
        scenario = build_case_scenario(generate_case(_SPACE, 3))
        scenario.prepare()
        scenario.run()
        first = scenario.invariants.finalize()
        assert scenario.invariants.finalize() == first


class TestTripping:
    def test_planted_conservation_bug_trips_conservation(self):
        case = plant(generate_case(_SPACE, 3),
                     PlantedBug(BUG_CONSERVATION, "crash"))
        payload = run_case(case)
        assert [v["invariant"] for v in payload["violations"]] == \
            ["packet-conservation"]

    def test_planted_protected_shed_bug_trips_shed_classes(self):
        case = plant(generate_case(_SPACE, 3),
                     PlantedBug(BUG_PROTECTED_SHED, "crash"))
        assert case.resilient  # the plant forces the resilient policy
        payload = run_case(case)
        assert [v["invariant"] for v in payload["violations"]] == \
            ["shed-classes"]

    def test_violations_recorded_once_per_invariant(self):
        # A planted bug fires an end-state invariant exactly once even
        # though the underlying check would flag it per call.
        case = plant(generate_case(_SPACE, 3),
                     PlantedBug(BUG_CONSERVATION, "crash"))
        violations = run_case(case)["violations"]
        names = [v["invariant"] for v in violations]
        assert len(names) == len(set(names))

    def test_scenario_crash_becomes_structured_violation(self):
        # Force a crash inside run_case's boundary with an impossible
        # case: duration must be positive for the arrival process.
        case = generate_case(_SPACE, 3)
        broken = type(case).from_dict(
            {**case.to_dict(), "duration_s": -1.0})
        payload = run_case(broken)
        assert len(payload["violations"]) == 1
        violation = payload["violations"][0]
        assert violation["invariant"] == "scenario-error"
        assert "scenario raised" in violation["detail"]
        # The structured traceback payload rides in Violation.data.
        data = violation["data"]
        assert data["type"]
        assert isinstance(data["frames"], list) and data["frames"]
        frame = data["frames"][-1]
        assert set(frame) >= {"file", "line", "function", "code"}
