"""Noop, random, and greedy-border baselines."""

import pytest

from repro.baselines.greedy_border import GreedyBorderPolicy
from repro.baselines.noop import NoopPolicy
from repro.baselines.random_policy import RandomPolicy
from repro.core.border import border_sets
from repro.core.pam import select as pam_select
from repro.errors import ScaleOutRequired
from repro.resources.model import LoadModel
from repro.units import gbps


class TestNoop:
    def test_never_migrates(self, fig1_placement, fig1_throughput):
        plan = NoopPolicy().select(fig1_placement, fig1_throughput)
        assert plan.is_noop
        assert not plan.alleviates  # the overload persists

    def test_name(self):
        assert NoopPolicy().name == "noop"


class TestRandom:
    def test_deterministic_for_seed(self, fig1_placement, fig1_throughput):
        a = RandomPolicy(seed=9).select(fig1_placement, fig1_throughput)
        b = RandomPolicy(seed=9).select(fig1_placement, fig1_throughput)
        assert a.migrated_names == b.migrated_names

    def test_alleviates_when_it_returns(self, fig1_placement,
                                        fig1_throughput):
        plan = RandomPolicy(seed=3).select(fig1_placement, fig1_throughput)
        after = LoadModel(plan.after, fig1_throughput)
        assert after.nic_load().utilisation < 1.0

    def test_only_moves_nic_nfs(self, fig1_placement, fig1_throughput):
        plan = RandomPolicy(seed=3).select(fig1_placement, fig1_throughput)
        nic_names = {nf.name for nf in fig1_placement.nic_nfs()}
        assert set(plan.migrated_names) <= nic_names

    def test_empty_plan_without_overload(self, fig1_placement):
        assert RandomPolicy().select(fig1_placement, gbps(1.0)).is_noop

    def test_strict_raises_when_hopeless(self, fig1_placement):
        with pytest.raises(ScaleOutRequired):
            RandomPolicy(strict=True).select(fig1_placement, gbps(3.0))


class TestGreedyBorder:
    def test_migrates_at_least_as_many_as_pam(self, fig1_placement,
                                              fig1_throughput):
        pam = pam_select(fig1_placement, fig1_throughput)
        greedy = GreedyBorderPolicy().select(fig1_placement,
                                             fig1_throughput)
        assert len(greedy.migrated_names) >= len(pam.migrated_names)

    def test_migrates_only_borders(self, fig1_placement, fig1_throughput):
        greedy = GreedyBorderPolicy().select(fig1_placement,
                                             fig1_throughput)
        placement = fig1_placement
        for action in greedy.actions:
            assert action.nf_name in border_sets(placement).all
            placement = placement.moved(action.nf_name, action.target)

    def test_never_adds_crossings(self, fig1_placement, fig1_throughput):
        greedy = GreedyBorderPolicy().select(fig1_placement,
                                             fig1_throughput)
        assert greedy.total_crossing_delta <= 0

    def test_wastes_cpu_relative_to_pam(self, fig1_placement,
                                        fig1_throughput):
        # The quantified claim behind PAM's stopping rule: greedy
        # over-migration leaves the CPU hotter than PAM does.
        pam = pam_select(fig1_placement, fig1_throughput)
        greedy = GreedyBorderPolicy().select(fig1_placement,
                                             fig1_throughput)
        pam_cpu = LoadModel(pam.after, fig1_throughput).cpu_load()
        greedy_cpu = LoadModel(greedy.after, fig1_throughput).cpu_load()
        assert greedy_cpu.utilisation >= pam_cpu.utilisation

    def test_empty_plan_without_overload(self, fig1_placement):
        assert GreedyBorderPolicy().select(fig1_placement,
                                           gbps(1.0)).is_noop
