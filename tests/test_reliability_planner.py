"""The joint migrate/replicate/shed planner and its policy registry."""

import json
from dataclasses import replace

import pytest

from repro.chain import catalog
from repro.chain.chain import ServiceChain
from repro.chain.nf import DeviceKind
from repro.chain.placement import Placement
from repro.errors import ConfigurationError
from repro.reliability import (DEFAULT_SYNC_REFRESH_HZ,
                               RELIABILITY_POLICIES, ReliabilityPlan,
                               ReliabilityPolicy, assess_candidates,
                               build_policy, plan_reliability,
                               register_policy, shed_damage_at)
from repro.resilience.degradation import (DEFAULT_PRIORITY_CLASSES,
                                          PriorityClass)
from repro.units import gbps

S = DeviceKind.SMARTNIC
C = DeviceKind.CPU

MIB = 1 << 20


@pytest.fixture()
def fig1_server(fig1_scenario):
    return fig1_scenario.build_server()


def plan(policy, server, budget, offered=gbps(1.8)):
    return plan_reliability(policy, server.placement, offered,
                            budget_bytes=budget, pcie=server.pcie)


class TestRegistry:
    def test_builtin_policies_registered(self):
        assert set(RELIABILITY_POLICIES) == \
            {"joint", "naive", "pam", "scaleout"}

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            build_policy("bogus")

    def test_duplicate_name_rejected(self):
        with pytest.raises(ConfigurationError):
            @register_policy
            class Impostor(ReliabilityPolicy):
                name = "joint"

    def test_unnamed_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            @register_policy
            class Nameless(ReliabilityPolicy):
                pass


class TestAssessment:
    def test_candidates_in_chain_order(self, fig1_server):
        candidates = assess_candidates(fig1_server.placement, S,
                                       fig1_server.pcie)
        assert [c.name for c in candidates] == \
            ["logger", "monitor", "firewall"]

    def test_stateless_replica_buys_nothing(self, fig1_server):
        # The logger re-steers as fast cold as warm: zero benefit.
        candidates = {c.name: c for c in
                      assess_candidates(fig1_server.placement, S,
                                        fig1_server.pcie)}
        assert candidates["logger"].benefit_s == 0.0
        assert candidates["monitor"].benefit_s > 0.0
        assert candidates["firewall"].benefit_s > 0.0

    def test_sync_charged_on_state_bytes_even_when_stateless(
            self, fig1_server):
        # The replica mirrors the state image whether or not migration
        # would replay it — a 1 MiB stateless logger is pure sync tax.
        candidates = {c.name: c for c in
                      assess_candidates(fig1_server.placement, S,
                                        fig1_server.pcie)}
        assert candidates["logger"].sync_bps == \
            8.0 * MIB * DEFAULT_SYNC_REFRESH_HZ

    def test_invalid_refresh_rate_rejected(self, fig1_server):
        with pytest.raises(ConfigurationError):
            assess_candidates(fig1_server.placement, S, fig1_server.pcie,
                              sync_refresh_hz=0.0)


class TestPolicies:
    def test_joint_spends_on_benefit_per_byte(self, fig1_server):
        result = plan("joint", fig1_server, MIB)
        assert result.prewarmed == ("monitor", "firewall")
        assert result.spent_bytes == 262144 + 65536

    def test_naive_wastes_budget_on_stateless_state(self, fig1_server):
        # First-fit in chain order blows the whole MiB on the logger.
        result = plan("naive", fig1_server, MIB)
        assert result.prewarmed == ("logger",)
        assert result.spent_bytes == MIB

    def test_pam_never_replicates(self, fig1_server):
        result = plan("pam", fig1_server, MIB)
        assert result.prewarmed == ()
        assert result.spent_bytes == 0
        assert result.sync_bps == 0.0
        assert all(a.action == "migrate" for a in result.actions)

    def test_scaleout_matches_pool_greedy(self, fig1_server):
        result = plan("scaleout", fig1_server, MIB)
        assert set(result.prewarmed) == {"monitor", "firewall"}

    def test_joint_strictly_dominates_naive(self, fig1_server):
        # The acceptance-criterion point: at the default budget the
        # joint planner beats naive on BOTH Pareto axes.
        joint = plan("joint", fig1_server, MIB)
        naive = plan("naive", fig1_server, MIB)
        assert joint.predicted_downtime_s < naive.predicted_downtime_s
        assert joint.headroom_bps > naive.headroom_bps

    def test_pam_anchors_max_headroom_max_downtime(self, fig1_server):
        pam = plan("pam", fig1_server, MIB)
        joint = plan("joint", fig1_server, MIB)
        assert pam.headroom_bps > joint.headroom_bps
        assert pam.predicted_downtime_s > joint.predicted_downtime_s


class TestPlanShape:
    def test_zero_budget_migrates_everything(self, fig1_server):
        result = plan("joint", fig1_server, 0)
        assert result.prewarmed == ()
        assert all(a.action == "migrate" for a in result.actions)
        pam = plan("pam", fig1_server, 0)
        assert result.predicted_downtime_s == pam.predicted_downtime_s

    def test_negative_budget_rejected(self, fig1_server):
        with pytest.raises(ConfigurationError):
            plan("joint", fig1_server, -1)

    def test_survivor_incapable_nf_sheds(self, fig1_server):
        nic_only = replace(catalog.get("monitor").renamed("nic_only"),
                           cpu_capable=False)
        chain = ServiceChain([catalog.get("load_balancer"), nic_only])
        placement = Placement(chain,
                              {"load_balancer": C, "nic_only": S},
                              ingress=S, egress=C)
        result = plan_reliability("joint", placement, gbps(1.0),
                                  budget_bytes=MIB,
                                  pcie=fig1_server.pcie)
        (action,) = result.actions
        assert action.action == "shed"
        assert action.downtime_s == 0.0

    def test_actions_cover_every_hosted_nf(self, fig1_server):
        result = plan("joint", fig1_server, MIB)
        assert [a.nf_name for a in result.actions] == \
            ["logger", "monitor", "firewall"]

    def test_headroom_is_capacity_minus_sync(self, fig1_server):
        result = plan("joint", fig1_server, MIB)
        assert result.headroom_bps == pytest.approx(
            result.survivor_capacity_bps - result.sync_bps)

    def test_unspent_preference_budget_noted(self, fig1_server):
        # Joint spends 320 KiB of the MiB: the note makes the slack
        # auditable instead of silently absorbed.
        result = plan("joint", fig1_server, MIB)
        assert any("unspent" in note for note in result.notes)


class TestDeterminism:
    def test_same_inputs_same_plan(self, fig1_server):
        first = plan("joint", fig1_server, MIB)
        second = plan("joint", fig1_server, MIB)
        assert first == second

    def test_plan_json_round_trips(self, fig1_server):
        for policy in sorted(RELIABILITY_POLICIES):
            original = plan(policy, fig1_server, MIB)
            wire = json.loads(json.dumps(original.to_dict()))
            assert ReliabilityPlan.from_dict(wire) == original


class TestShedDamage:
    def test_no_deficit_no_damage(self):
        assert shed_damage_at(gbps(1.0), gbps(1.5),
                              DEFAULT_PRIORITY_CLASSES) == 0.0

    def test_damage_engages_lowest_class_first(self):
        # A 10% deficit fits inside the low class's 30% share.
        damage = shed_damage_at(gbps(1.0), gbps(0.9),
                                DEFAULT_PRIORITY_CLASSES)
        assert damage == pytest.approx(0.1)

    def test_damage_monotone_in_deficit(self):
        damages = [shed_damage_at(gbps(1.0), gbps(1.0 - step / 10),
                                  DEFAULT_PRIORITY_CLASSES)
                   for step in range(0, 10)]
        assert damages == sorted(damages)

    def test_protected_class_never_contributes(self):
        # Even a total outage only accrues the sheddable 80%.
        damage = shed_damage_at(gbps(1.0), 0.0, DEFAULT_PRIORITY_CLASSES)
        assert damage == pytest.approx(0.8)

    def test_damage_weights_scale_the_score(self):
        weighted = (PriorityClass("high", 0.2, sheddable=False),
                    PriorityClass("normal", 0.5),
                    PriorityClass("low", 0.3, damage_weight=3.0))
        damage = shed_damage_at(gbps(1.0), gbps(0.9), weighted)
        assert damage == pytest.approx(0.3)
