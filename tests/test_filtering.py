"""NF filtering (pass_rate < 1): planning maths and simulation."""

import pytest

from dataclasses import replace

from repro.chain import catalog
from repro.chain.builder import ChainBuilder
from repro.chain.nf import DeviceKind, NFProfile
from repro.errors import CapacityError
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.scenarios import Scenario
from repro.resources.model import LoadModel, filtered_throughput
from repro.units import gbps

C = DeviceKind.CPU
S = DeviceKind.SMARTNIC


def filtering_scenario(pass_rate=0.8):
    """firewall (filters) -> monitor -> logger, host-terminated."""
    profiles = dict(catalog.FIGURE1_SCENARIO)
    profiles["firewall"] = replace(profiles["firewall"],
                                   pass_rate=pass_rate)
    chain, placement = (ChainBuilder("filter", profiles=profiles)
                        .nic("firewall")
                        .nic("monitor")
                        .nic("logger")
                        .build(egress=C))
    return Scenario(name="filter", chain=chain, placement=placement)


class TestProfileValidation:
    def test_pass_rate_bounds(self):
        with pytest.raises(CapacityError):
            NFProfile(name="x", pass_rate=0.0)
        with pytest.raises(CapacityError):
            NFProfile(name="x", pass_rate=1.1)

    def test_default_is_transparent(self):
        assert NFProfile(name="x").pass_rate == 1.0


class TestFilteredThroughput:
    def test_thinning_is_cumulative(self):
        scenario = filtering_scenario(pass_rate=0.5)
        spec = filtered_throughput(scenario.chain, gbps(2.0))
        assert spec["firewall"] == gbps(2.0)
        assert spec["monitor"] == gbps(1.0)
        assert spec["logger"] == gbps(1.0)  # logger passes everything

    def test_transparent_chain_is_uniform(self, fig1_chain):
        spec = filtered_throughput(fig1_chain, gbps(1.0))
        assert set(spec.values()) == {gbps(1.0)}

    def test_negative_load_rejected(self, fig1_chain):
        with pytest.raises(CapacityError):
            filtered_throughput(fig1_chain, -1.0)

    def test_scalar_loads_are_thinned_automatically(self):
        scenario = filtering_scenario(pass_rate=0.5)
        spec = filtered_throughput(scenario.chain, gbps(2.0))
        from_map = LoadModel(scenario.placement, spec)
        from_scalar = LoadModel(scenario.placement, gbps(2.0))
        assert from_scalar.nic_load().utilisation == pytest.approx(
            from_map.nic_load().utilisation)


class TestSimulatedFiltering:
    def run(self, pass_rate, offered=gbps(1.0), duration=0.01):
        scenario = filtering_scenario(pass_rate)
        return run_experiment(ExperimentConfig(
            scenario=scenario, offered_bps=offered,
            duration_s=duration))

    def test_filtered_fraction_matches_pass_rate(self):
        result = self.run(pass_rate=0.8)
        fraction = result.filtered / result.injected
        assert fraction == pytest.approx(0.2, abs=0.02)

    def test_conservation_includes_filtered(self):
        result = self.run(pass_rate=0.8)
        assert result.delivered + result.dropped + result.filtered == \
            result.injected

    def test_transparent_chain_filters_nothing(self):
        result = self.run(pass_rate=1.0)
        assert result.filtered == 0

    def test_filtering_is_deterministic(self):
        first = self.run(pass_rate=0.7)
        second = self.run(pass_rate=0.7)
        assert first.filtered == second.filtered

    def test_goodput_thinned_by_filtering(self):
        transparent = self.run(pass_rate=1.0)
        thinned = self.run(pass_rate=0.5)
        assert thinned.goodput_bps == pytest.approx(
            0.5 * transparent.goodput_bps, rel=0.05)

    def test_downstream_sees_less_load_than_uniform_model(self):
        # With heavy filtering, the chain survives an offered load that
        # the uniform model calls infeasible: at 2.5 Gbps the uniform
        # sum is 1.66 but the thinned one is 0.95, and the simulation
        # sheds nothing.
        result = self.run(pass_rate=0.5, offered=gbps(2.5),
                          duration=0.008)
        assert result.dropped == 0
        load = LoadModel(filtering_scenario(0.5).placement, gbps(2.5))
        assert load.nic_load().utilisation == pytest.approx(0.953125)

    def test_planning_with_filtered_map_matches_sim(self):
        # PAM fed the filtered map should not fire at 4 Gbps offered
        # (NIC util with thinning: fw 0.4 + monitor 0.625 + logger 0.5
        # = 1.525 -> overloaded! verify the map arithmetic instead).
        scenario = filtering_scenario(pass_rate=0.5)
        spec = filtered_throughput(scenario.chain, gbps(4.0))
        load = LoadModel(scenario.placement, spec)
        expected = 4 / 10 + 2 / 3.2 + 2 / 4
        assert load.nic_load().utilisation == pytest.approx(expected)
