"""Unit-conversion helpers."""

import math

import pytest

from repro import units


class TestRates:
    def test_gbps_roundtrip(self):
        assert units.as_gbps(units.gbps(3.2)) == pytest.approx(3.2)

    def test_mbps_roundtrip(self):
        assert units.as_mbps(units.mbps(640.0)) == pytest.approx(640.0)

    def test_gbps_magnitude(self):
        assert units.gbps(1.0) == 1e9

    def test_mbps_magnitude(self):
        assert units.mbps(1.0) == 1e6

    def test_gbps_is_decimal_not_binary(self):
        # Link rates are decimal: 10 GbE is 10^10 bits/s, not 2^33.
        assert units.gbps(10.0) == 1e10


class TestSizes:
    def test_kib(self):
        assert units.kib(1) == 1024

    def test_mib(self):
        assert units.mib(2) == 2 * 1024 * 1024

    def test_bits(self):
        assert units.bits(64) == 512

    def test_fractional_kib_truncates_to_bytes(self):
        assert units.kib(1.5) == 1536


class TestTimes:
    def test_usec_roundtrip(self):
        assert units.as_usec(units.usec(14.0)) == pytest.approx(14.0)

    def test_msec_roundtrip(self):
        assert units.as_msec(units.msec(2.5)) == pytest.approx(2.5)

    def test_usec_magnitude(self):
        assert units.usec(1.0) == 1e-6


class TestPacketArithmetic:
    def test_serialization_time_64b_at_10g(self):
        # 512 bits at 10^10 bps = 51.2 ns.
        assert units.serialization_time(64, units.gbps(10)) == \
            pytest.approx(51.2e-9)

    def test_wire_time_includes_ethernet_overhead(self):
        bare = units.serialization_time(64, units.gbps(10))
        wired = units.wire_time(64, units.gbps(10))
        extra = units.serialization_time(units.ETHERNET_OVERHEAD_BYTES,
                                         units.gbps(10))
        assert wired == pytest.approx(bare + extra)

    def test_wire_time_without_overhead(self):
        assert units.wire_time(64, units.gbps(10), include_overhead=False) == \
            pytest.approx(units.serialization_time(64, units.gbps(10)))

    def test_packets_per_second_1500b_line_rate(self):
        pps = units.packets_per_second(units.gbps(10), 1500)
        assert pps == pytest.approx(1e10 / 12000)

    def test_packets_per_second_with_overhead_is_lower(self):
        with_oh = units.packets_per_second(units.gbps(10), 64,
                                           include_overhead=True)
        without = units.packets_per_second(units.gbps(10), 64)
        assert with_oh < without

    def test_zero_rate_raises(self):
        with pytest.raises(ZeroDivisionError):
            units.serialization_time(64, 0.0)


# --- round-trip property tests (one per converter family) ---------------

from hypothesis import given
from hypothesis import strategies as st

_MAGNITUDES = st.floats(min_value=1e-3, max_value=1e6,
                        allow_nan=False, allow_infinity=False)


class TestRoundTripProperties:
    """Every to/from converter pair inverts within float rounding."""

    @given(_MAGNITUDES)
    def test_gbps_round_trip(self, value):
        assert units.as_gbps(units.gbps(value)) == pytest.approx(
            value, rel=1e-12)

    @given(_MAGNITUDES)
    def test_mbps_round_trip(self, value):
        assert units.as_mbps(units.mbps(value)) == pytest.approx(
            value, rel=1e-12)

    @given(_MAGNITUDES)
    def test_usec_round_trip(self, value):
        assert units.as_usec(units.usec(value)) == pytest.approx(
            value, rel=1e-12)

    @given(_MAGNITUDES)
    def test_msec_round_trip(self, value):
        assert units.as_msec(units.msec(value)) == pytest.approx(
            value, rel=1e-12)

    @given(st.integers(min_value=0, max_value=10**9))
    def test_kib_is_exact_for_whole_kilobytes(self, value):
        assert units.kib(value) == value * 1024

    @given(st.integers(min_value=0, max_value=10**6))
    def test_mib_is_exact_for_whole_mebibytes(self, value):
        assert units.mib(value) == value * 1024 * 1024

    @given(st.integers(min_value=0, max_value=2**40))
    def test_bits_is_exact_for_byte_counts(self, value):
        # Multiplying by 8 is a power-of-two scale: always exact.
        assert units.bits(value) == value * 8

    @given(st.integers(min_value=1, max_value=9000), _MAGNITUDES)
    def test_serialization_time_inverts_to_rate(self, nbytes, rate_gbps):
        rate = units.gbps(rate_gbps)
        elapsed = units.serialization_time(nbytes, rate)
        assert elapsed * rate == pytest.approx(units.bits(nbytes),
                                               rel=1e-12)

    @given(st.integers(min_value=64, max_value=1500), _MAGNITUDES)
    def test_wire_time_is_serialization_plus_overhead(self, nbytes,
                                                      rate_gbps):
        rate = units.gbps(rate_gbps)
        assert units.wire_time(nbytes, rate) == pytest.approx(
            units.serialization_time(
                nbytes + units.ETHERNET_OVERHEAD_BYTES, rate), rel=1e-12)

    @given(st.integers(min_value=64, max_value=1500), _MAGNITUDES)
    def test_packets_per_second_inverts_wire_time(self, nbytes,
                                                  rate_gbps):
        rate = units.gbps(rate_gbps)
        pps = units.packets_per_second(rate, nbytes)
        assert pps * units.bits(nbytes) == pytest.approx(rate, rel=1e-12)


class TestPaperTable1Exactness:
    """The paper's Table 1 constants survive the unit helpers exactly.

    Reproducibility hinges on the catalog capacities being bit-identical
    across machines: ``gbps`` of each Table 1 rate must equal the
    literal power-of-ten float, and the committed catalog must agree
    with the helpers bit-for-bit.
    """

    #: (paper Gbps value, exact bits/s literal) from Table 1.
    TABLE1_RATES = [
        (10.0, 10e9), (2.0, 2e9), (3.2, 3.2e9), (4.0, 4e9), (20.0, 20e9),
    ]
    #: Paper microsecond latencies used by the Table 1 profiles.
    TABLE1_LATENCIES_US = [20.0, 25.0, 22.0, 15.0]

    def test_gbps_is_exact_for_table1_rates(self):
        for paper_value, expected_bps in self.TABLE1_RATES:
            assert units.gbps(paper_value) == expected_bps  # bit-for-bit

    def test_gbps_round_trip_is_exact_for_table1_rates(self):
        for paper_value, _ in self.TABLE1_RATES:
            assert units.as_gbps(units.gbps(paper_value)) == paper_value

    def test_usec_round_trip_within_one_ulp_for_table1(self):
        for paper_value in self.TABLE1_LATENCIES_US:
            back = units.as_usec(units.usec(paper_value))
            assert abs(back - paper_value) <= math.ulp(paper_value)

    def test_catalog_matches_helpers_bit_for_bit(self):
        # The committed Table 1 catalog must be *the same doubles* the
        # helpers produce, so capacity checks replay identically.
        from repro.chain import catalog
        table = catalog.TABLE1
        assert table["firewall"].nic_capacity_bps == units.gbps(10.0)
        assert table["logger"].nic_capacity_bps == units.gbps(2.0)
        assert table["monitor"].nic_capacity_bps == units.gbps(3.2)
        assert table["load_balancer"].nic_capacity_bps == units.gbps(20.0)
        assert table["firewall"].base_latency_s == units.usec(20.0)
        assert table["monitor"].base_latency_s == units.usec(22.0)
