"""Unit-conversion helpers."""

import math

import pytest

from repro import units


class TestRates:
    def test_gbps_roundtrip(self):
        assert units.as_gbps(units.gbps(3.2)) == pytest.approx(3.2)

    def test_mbps_roundtrip(self):
        assert units.as_mbps(units.mbps(640.0)) == pytest.approx(640.0)

    def test_gbps_magnitude(self):
        assert units.gbps(1.0) == 1e9

    def test_mbps_magnitude(self):
        assert units.mbps(1.0) == 1e6

    def test_gbps_is_decimal_not_binary(self):
        # Link rates are decimal: 10 GbE is 10^10 bits/s, not 2^33.
        assert units.gbps(10.0) == 1e10


class TestSizes:
    def test_kib(self):
        assert units.kib(1) == 1024

    def test_mib(self):
        assert units.mib(2) == 2 * 1024 * 1024

    def test_bits(self):
        assert units.bits(64) == 512

    def test_fractional_kib_truncates_to_bytes(self):
        assert units.kib(1.5) == 1536


class TestTimes:
    def test_usec_roundtrip(self):
        assert units.as_usec(units.usec(14.0)) == pytest.approx(14.0)

    def test_msec_roundtrip(self):
        assert units.as_msec(units.msec(2.5)) == pytest.approx(2.5)

    def test_usec_magnitude(self):
        assert units.usec(1.0) == 1e-6


class TestPacketArithmetic:
    def test_serialization_time_64b_at_10g(self):
        # 512 bits at 10^10 bps = 51.2 ns.
        assert units.serialization_time(64, units.gbps(10)) == \
            pytest.approx(51.2e-9)

    def test_wire_time_includes_ethernet_overhead(self):
        bare = units.serialization_time(64, units.gbps(10))
        wired = units.wire_time(64, units.gbps(10))
        extra = units.serialization_time(units.ETHERNET_OVERHEAD_BYTES,
                                         units.gbps(10))
        assert wired == pytest.approx(bare + extra)

    def test_wire_time_without_overhead(self):
        assert units.wire_time(64, units.gbps(10), include_overhead=False) == \
            pytest.approx(units.serialization_time(64, units.gbps(10)))

    def test_packets_per_second_1500b_line_rate(self):
        pps = units.packets_per_second(units.gbps(10), 1500)
        assert pps == pytest.approx(1e10 / 12000)

    def test_packets_per_second_with_overhead_is_lower(self):
        with_oh = units.packets_per_second(units.gbps(10), 64,
                                           include_overhead=True)
        without = units.packets_per_second(units.gbps(10), 64)
        assert with_oh < without

    def test_zero_rate_raises(self):
        with pytest.raises(ZeroDivisionError):
            units.serialization_time(64, 0.0)
