"""StandbyPool acquisition edges and evacuation re-plan-on-abort.

Two reliability guarantees pinned here:

* :meth:`StandbyPool.acquire` totally resolves every replica request —
  an exhausted pool degrades to a migrate/shed decision, never a
  ``KeyError`` — and a campaign planned with a budget too small to
  prewarm anything still completes quarantine-free.
* The recovery loop survives repeated injected faults mid-evacuation:
  aborted plans are re-planned (up to the attempt cap, then abandoned
  with explicit drop accounting), chained device kills land both
  recoveries at a terminal status, and packet/byte conservation holds
  exactly throughout — the only residual ever allowed is packets
  stranded in a dead device's station queues.
"""

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain import catalog
from repro.chain.chain import ServiceChain
from repro.chain.nf import DeviceKind
from repro.chain.placement import Placement
from repro.exec import run_campaign
from repro.harness.scenarios import figure1
from repro.reliability import ReliabilityCampaign
from repro.resilience.recovery import (ACQUIRE_MIGRATE, ACQUIRE_REPLICA,
                                       ACQUIRE_SHED, StandbyPool)
from repro.resilience.scenarios import (_PACKET_BYTES, ResilienceScenario,
                                        build_resilient_controller)
from repro.traffic.packet import FixedSize
from repro.traffic.patterns import ProfiledArrivals, spike
from repro.units import gbps

S = DeviceKind.SMARTNIC
C = DeviceKind.CPU

MONITOR_STATE = 262144
FIREWALL_STATE = 65536


class TestAcquire:
    def test_prewarmed_name_acquires_replica(self):
        pool = StandbyPool(figure1().placement, S, MONITOR_STATE)
        assert pool.acquire("monitor") == ACQUIRE_REPLICA

    def test_exhausted_pool_degrades_to_migrate(self):
        # Budget fits only the monitor; the firewall's replica request
        # resolves to a cold migrate, not an error.
        pool = StandbyPool(figure1().placement, S, MONITOR_STATE)
        assert pool.acquire("firewall") == ACQUIRE_MIGRATE

    def test_zero_budget_everything_migrates(self):
        pool = StandbyPool(figure1().placement, S, 0)
        for name in ("logger", "monitor", "firewall"):
            assert pool.acquire(name) == ACQUIRE_MIGRATE

    def test_unknown_name_degrades_to_shed(self):
        # A name the protected device does not host cannot be replicated
        # or migrated off it — the total answer is shed, never KeyError.
        pool = StandbyPool(figure1().placement, S, MONITOR_STATE)
        assert pool.acquire("no-such-nf") == ACQUIRE_SHED

    def test_survivor_incapable_nf_sheds(self):
        nic_only = replace(catalog.get("monitor").renamed("nic_only"),
                           cpu_capable=False)
        chain = ServiceChain([catalog.get("load_balancer"), nic_only])
        placement = Placement(chain,
                              {"load_balancer": C, "nic_only": S},
                              ingress=S, egress=C)
        pool = StandbyPool(placement, S, 10 * MONITOR_STATE)
        assert pool.prewarmed == frozenset()
        assert pool.acquire("nic_only") == ACQUIRE_SHED

    def test_acquisitions_recorded_json_clean(self):
        pool = StandbyPool(figure1().placement, S, MONITOR_STATE)
        pool.acquire("monitor")
        pool.acquire("firewall")
        assert pool.acquisitions == {"monitor": ACQUIRE_REPLICA,
                                     "firewall": ACQUIRE_MIGRATE}


class TestPrewarmedOverride:
    def test_explicit_order_wins_over_greedy(self):
        # Greedy would take the monitor first; the explicit order asks
        # for the firewall and the budget only fits one.
        pool = StandbyPool(figure1().placement, S, MONITOR_STATE,
                           prewarmed=("firewall", "monitor"))
        assert pool.prewarmed == frozenset({"firewall"})
        assert pool.spent_bytes == FIREWALL_STATE

    def test_oversized_preference_skipped_not_fatal(self):
        pool = StandbyPool(figure1().placement, S, FIREWALL_STATE,
                           prewarmed=("monitor", "firewall"))
        assert pool.prewarmed == frozenset({"firewall"})

    def test_unknown_preference_names_ignored(self):
        pool = StandbyPool(figure1().placement, S, MONITOR_STATE,
                           prewarmed=("ghost", "monitor"))
        assert pool.prewarmed == frozenset({"monitor"})

    def test_never_overcommits_budget(self):
        pool = StandbyPool(figure1().placement, S,
                           MONITOR_STATE + FIREWALL_STATE - 1,
                           prewarmed=("monitor", "firewall"))
        assert pool.spent_bytes <= MONITOR_STATE + FIREWALL_STATE - 1
        assert pool.prewarmed == frozenset({"monitor"})


class TestTinyBudgetCampaign:
    def test_exhausted_pool_campaign_completes_quarantine_free(self):
        # Regression: a budget too small to prewarm anything used to be
        # an accounting edge; the joint policy must degrade every NF to
        # a migrate/shed decision and the run must finish violation-free.
        campaign = ReliabilityCampaign(scenario="device-kill",
                                       policies=("joint",), runs=1,
                                       seed=7, duration_s=0.02,
                                       budget_bytes=1)
        outcome = run_campaign(campaign)
        (payload,) = outcome.payloads
        assert payload["violations"] == []
        plan = payload["plan"]
        assert plan["prewarmed"] == []
        assert plan["spent_bytes"] == 0
        assert all(action["action"] in ("migrate", "shed")
                   for action in plan["actions"])


class FailFirstN:
    """Failure hook: fail the first ``n`` attempts touching ``nf_name``.

    Counts across plan runs (unlike ``ScheduledFailure``'s per-plan
    attempt numbering), so three failures exhaust one plan's per-action
    retries and force a full re-plan on the next recovery pulse.
    """

    def __init__(self, nf_name, n, fraction=0.5):
        self.nf_name = nf_name
        self.remaining = n
        self.fraction = fraction
        self.calls = []

    def __call__(self, action, attempt):
        self.calls.append((action.nf_name, attempt))
        if action.nf_name == self.nf_name and self.remaining > 0:
            self.remaining -= 1
            return self.fraction
        return None


def _scenario(duration_s=0.02, seed=7):
    profile = spike(base_bps=gbps(1.0), peak_bps=gbps(1.8),
                    start_s=0.2 * duration_s, duration_s=0.4 * duration_s)
    generator = ProfiledArrivals(profile, FixedSize(_PACKET_BYTES),
                                 duration_s=duration_s, seed=seed,
                                 jitter=False)
    return ResilienceScenario("replan", seed, generator,
                              build_resilient_controller(),
                              kill_device=S, kill_at_s=0.3 * duration_s)


def _dead_station_residual(scenario):
    """Packets stranded in station queues on dead devices."""
    residual = 0
    for station in scenario.sim.network.stations.values():
        if scenario.injector.is_device_dead(station.device.kind):
            residual += len(station.queue)
    return residual


def _assert_conserved(scenario):
    """Exact packet and byte conservation, dead-queue residual allowed."""
    network = scenario.sim.network
    accounted = (len(network.delivered) + len(network.dropped)
                 + len(network.filtered) + len(network.shed))
    residual = _dead_station_residual(scenario)
    assert accounted + residual == network.injected
    assert network.in_flight() == residual
    assert (accounted + residual) * _PACKET_BYTES == network.injected_bytes


class TestReplanOnAbort:
    def test_aborted_plan_is_replanned_and_completes(self):
        scenario = _scenario()
        hook = FailFirstN("monitor", 3)
        scenario.controller.inner.failure_hook = hook
        scenario.run()
        result = scenario.collect()
        (recovery,) = result.stats.recoveries
        assert recovery.status == "completed"
        assert recovery.attempts == 2
        assert set(recovery.evacuated) == {"monitor", "firewall"}
        _assert_conserved(scenario)

    def test_two_aborts_consume_the_attempt_cap(self):
        scenario = _scenario()
        scenario.controller.inner.failure_hook = FailFirstN("monitor", 6)
        scenario.run()
        result = scenario.collect()
        (recovery,) = result.stats.recoveries
        assert recovery.status == "completed"
        assert recovery.attempts == 3
        _assert_conserved(scenario)

    def test_exhausted_attempts_abandon_with_drop_accounting(self):
        scenario = _scenario()
        scenario.controller.inner.failure_hook = FailFirstN("monitor", 9)
        scenario.run()
        result = scenario.collect()
        (recovery,) = result.stats.recoveries
        assert recovery.status == "abandoned"
        assert recovery.attempts == 3
        # Abandonment drains the corpse's queues into explicit drops —
        # conservation still holds exactly.
        assert result.controller.abandoned_packets > 0
        _assert_conserved(scenario)

    def test_chained_kill_mid_evacuation_both_terminal(self):
        # The CPU dies while the SmartNIC evacuation is still retrying
        # its injected failures — both recoveries must reach a terminal
        # status and the books must still balance.
        scenario = _scenario()
        scenario.controller.inner.failure_hook = FailFirstN("monitor", 3)
        scenario.injector.kill_device(C, at_s=0.014)
        scenario.run()
        result = scenario.collect()
        assert len(result.stats.recoveries) == 2
        assert all(r.status is not None for r in result.stats.recoveries)
        nic = next(r for r in result.stats.recoveries
                   if r.device == S.value)
        assert nic.attempts == 2
        _assert_conserved(scenario)

    @given(seed=st.integers(min_value=0, max_value=40),
           failures=st.integers(min_value=0, max_value=9))
    @settings(max_examples=12, deadline=None)
    def test_property_bytes_conserved_under_injected_faults(self, seed,
                                                            failures):
        scenario = _scenario(seed=seed)
        scenario.controller.inner.failure_hook = \
            FailFirstN("monitor", failures)
        scenario.run()
        result = scenario.collect()
        assert all(r.status is not None for r in result.stats.recoveries)
        _assert_conserved(scenario)


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
