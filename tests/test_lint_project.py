"""Tests for the whole-program lint layer (repro.analysis.lint.project).

The fixture mini-package ``tests/fixtures/lintproj`` carries one
deliberate instance of each seeded violation class — a literal RNG seed
two calls deep, a ``_us`` value crossing into a ``_s`` parameter, a
set-ordered journal payload — next to clean twins that must stay quiet.
Golden files pin the call graph and the dataflow summaries so loader or
fixpoint regressions surface as a readable diff, not a silent rule
miss.
"""

import ast
import json
import subprocess
import textwrap
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.lint import (Baseline, format_sarif, lint_paths,
                                 lint_source, rule_catalogue)
from repro.analysis.lint.incremental import changed_python_files
from repro.analysis.lint.project import (all_project_rules, analyze_files,
                                         analyze_project, build_callgraph,
                                         build_project, dump_callgraph,
                                         dump_summaries, lint_project_files,
                                         module_name_from_layout,
                                         parse_files, run_project_rules)
from repro.cli import main as cli_main
from repro.errors import AnalysisError

FIXTURE = Path(__file__).parent / "fixtures" / "lintproj"
GOLDEN = Path(__file__).parent / "golden"


def _fixture_files():
    return sorted(FIXTURE.rglob("*.py"))


@pytest.fixture(scope="module")
def fixture_analysis():
    """One shared analysis of the fixture package."""
    return analyze_files(_fixture_files())


@pytest.fixture(scope="module")
def fixture_findings(fixture_analysis):
    return run_project_rules(fixture_analysis)


def _rules_at(findings, name):
    """Rule codes reported in the fixture module ``name``."""
    return {f.rule for f in findings if f.path.endswith(name)}


def _project_of_sources(named_sources):
    """Build a Project from in-memory ``{filename: source}`` modules."""
    triples = [(Path(name), textwrap.dedent(source),
                ast.parse(textwrap.dedent(source)))
               for name, source in named_sources.items()]
    return build_project(triples)


def _codes_of_sources(named_sources):
    analysis = analyze_project(_project_of_sources(named_sources))
    return [f.rule for f in run_project_rules(analysis)]


# --- loader / call graph ------------------------------------------------


class TestLoader:
    def test_module_names_follow_package_markers(self):
        assert module_name_from_layout(FIXTURE / "rng.py") == \
            "lintproj.rng"
        assert module_name_from_layout(FIXTURE / "__init__.py") == \
            "lintproj"

    def test_reexport_resolves_to_definition(self, fixture_analysis):
        project = fixture_analysis.project
        package = project.modules["lintproj"]
        resolved = project.resolve(package, "make_rng")
        assert resolved == "lintproj.rng.make_rng"
        assert project.function_at(resolved) is not None

    def test_callgraph_matches_golden(self, fixture_analysis):
        graph = build_callgraph(fixture_analysis.project)
        expected = (GOLDEN / "lintproj_callgraph.txt").read_text()
        assert dump_callgraph(graph, within="lintproj") + "\n" == expected

    def test_summaries_match_golden(self, fixture_analysis):
        expected = (GOLDEN / "lintproj_summaries.txt").read_text()
        assert dump_summaries(fixture_analysis,
                              within="lintproj") + "\n" == expected

    def test_fixpoint_terminates_quickly(self, fixture_analysis):
        assert fixture_analysis.rounds <= 8

    def test_dataclass_init_is_synthesized(self):
        project = _project_of_sources({"spec.py": """
            from dataclasses import dataclass

            @dataclass
            class Spec:
                name: str
                seed: int
        """})
        init = project.functions.get("spec.Spec.__init__")
        assert init is not None and init.synthetic
        assert init.params == ["name", "seed"]


# --- FLOW5xx seed provenance -------------------------------------------


class TestSeedProvenance:
    def test_flow501_literal_two_calls_deep(self, fixture_findings):
        hits = [f for f in fixture_findings if f.rule == "FLOW501"]
        assert len(hits) == 1
        assert hits[0].path.endswith("rng.py")
        assert "build_generator" in hits[0].message

    def test_flow502_wall_clock_seed(self, fixture_findings):
        assert "FLOW502" in _rules_at(fixture_findings, "rng.py")

    def test_parameter_seed_is_clean(self, fixture_findings):
        assert all("spec_rng" not in f.message for f in fixture_findings)

    def test_self_attribute_seed_is_clean(self, fixture_findings):
        assert all("FlowGen" not in f.message for f in fixture_findings)

    def test_flow503_fires_on_untraceable_seed(self):
        codes = _codes_of_sources({"m.py": """
            import random

            def build():
                seed = mystery_registry["seed"]
                return random.Random(seed)
        """})
        assert "FLOW503" in codes

    def test_seed_for_derivation_is_clean(self):
        codes = _codes_of_sources({"m.py": """
            import random
            from repro.exec.scenario import seed_for

            def build(campaign_seed, index):
                return random.Random(seed_for(campaign_seed, index))
        """})
        assert not any(code.startswith("FLOW") for code in codes)

    def test_dataclass_spec_field_seed_is_clean(self):
        codes = _codes_of_sources({"m.py": """
            import random
            from dataclasses import dataclass

            @dataclass
            class Spec:
                seed: int

            def build(spec):
                return random.Random(spec.seed)
        """})
        assert not any(code.startswith("FLOW") for code in codes)


# --- UNIT21x inter-procedural unit flow --------------------------------


class TestUnitFlow:
    def test_unit210_cross_call_mismatch(self, fixture_findings):
        hits = [f for f in fixture_findings if f.rule == "UNIT210"]
        assert len(hits) == 1
        assert "timeout_s" in hits[0].message

    def test_converted_call_is_clean(self, fixture_findings):
        lines = {f.line for f in fixture_findings
                 if f.path.endswith("timeflow.py")}
        source = (FIXTURE / "timeflow.py").read_text().splitlines()
        for line in lines:
            assert "poll_converted" not in source[line - 1]
            assert "poll_mystery" not in source[line - 1]

    def test_unit211_return_mismatch(self, fixture_findings):
        hits = [f for f in fixture_findings if f.rule == "UNIT211"]
        assert len(hits) == 1
        assert "elapsed_us" in hits[0].message

    def test_mismatch_through_assignment(self):
        codes = _codes_of_sources({"m.py": """
            def wait(timeout_s):
                return timeout_s

            def run():
                delay_us = 5.0
                held = delay_us
                return wait(held)
        """})
        assert "UNIT210" in codes

    def test_mismatch_through_return_summary(self):
        codes = _codes_of_sources({"m.py": """
            def sample_us():
                return 7.0

            def wait(timeout_s):
                return timeout_s

            def run():
                return wait(sample_us())
        """})
        assert "UNIT210" in codes


# --- JRN601 journal purity ---------------------------------------------


class TestJournalPurity:
    def test_jrn601_fires_at_both_sink_kinds(self, fixture_findings):
        hits = [f for f in fixture_findings if f.rule == "JRN601"]
        assert len(hits) == 2
        assert all(h.path.endswith("journal.py") for h in hits)

    def test_sorted_payload_is_clean(self, fixture_findings):
        source = (FIXTURE / "journal.py").read_text().splitlines()
        for f in fixture_findings:
            if f.path.endswith("journal.py"):
                assert "clean" not in source[f.line - 1]

    def test_wallclock_payload_flagged(self):
        codes = _codes_of_sources({"m.py": """
            import time

            def status_payload():
                return {"at": time.time()}
        """})
        assert "JRN601" in codes

    def test_id_derived_payload_flagged(self) -> None:
        codes = _codes_of_sources({"m.py": """
            def tag_payload(flow):
                return {"tag": id(flow)}
        """})
        assert "JRN601" in codes


# --- integration with lint_paths / suppression / baseline ---------------


VIOLATION = textwrap.dedent("""
    import random


    def fixed():
        return random.Random(99)
""")


class TestProjectMode:
    def test_fixture_package_fails_project_lint(self):
        report = lint_paths([FIXTURE], project=True)
        codes = {f.rule for f in report.findings}
        assert {"FLOW501", "FLOW502", "UNIT210", "JRN601"} <= codes

    def test_per_file_mode_unchanged(self):
        report = lint_paths([FIXTURE], project=False)
        assert not any(f.rule.startswith("FLOW")
                       for f in report.findings)

    def test_noqa_suppresses_project_finding(self, tmp_path):
        target = tmp_path / "m.py"
        target.write_text(VIOLATION.replace(
            "random.Random(99)",
            "random.Random(99)  # repro: noqa[FLOW501]"))
        report = lint_paths([tmp_path], project=True)
        assert not any(f.rule == "FLOW501" for f in report.findings)
        assert any(f.rule == "FLOW501" for f in report.suppressed)
        assert not any(f.rule == "SUP001" for f in report.findings)

    def test_baseline_absorbs_project_finding(self, tmp_path):
        target = tmp_path / "m.py"
        target.write_text(VIOLATION)
        raw = lint_paths([tmp_path], project=True)
        assert len(raw.findings) == 1
        entry = raw.findings[0]
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps({"version": 1, "entries": [{
            "rule": entry.rule, "path": entry.path,
            "context": entry.context,
            "reason": "historic fixture, tracked in #42"}]}))
        report = lint_paths([tmp_path],
                            baseline=Baseline.load(baseline_path),
                            project=True)
        assert report.findings == []
        assert len(report.baselined) == 1

    def test_project_entry_not_stale_in_per_file_run(self, tmp_path):
        # A baselined project-rule finding (FLOW501) cannot match in a
        # per-file run — the rule never fires there.  That makes the
        # entry out of scope, not stale: only project-mode runs may
        # declare project-rule entries prunable.
        target = tmp_path / "m.py"
        target.write_text(VIOLATION)
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps({"version": 1, "entries": [{
            "rule": "FLOW501", "path": target.as_posix(),
            "context": "return random.Random(99)",
            "reason": "historic fixture, tracked in #42"}]}))
        report = lint_paths([tmp_path],
                            baseline=Baseline.load(baseline_path),
                            project=False)
        assert report.stale_baseline == []

    def test_project_entry_stale_in_project_run(self, tmp_path):
        # The same dead entry IS stale when the project rules ran and
        # still produced nothing to absorb.
        target = tmp_path / "m.py"
        target.write_text("def clean():\n    return 1\n")
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(json.dumps({"version": 1, "entries": [{
            "rule": "FLOW501", "path": target.as_posix(),
            "context": "return random.Random(99)",
            "reason": "the finding was fixed; entry should be pruned"}]}))
        report = lint_paths([tmp_path],
                            baseline=Baseline.load(baseline_path),
                            project=True)
        assert [e.rule for e in report.stale_baseline] == ["FLOW501"]

    def test_committed_baseline_in_scope_for_both_modes(self):
        # The repo's own baseline holds only project-rule entries, so a
        # per-file run over the same trees must report nothing stale.
        baseline = Baseline.load("lint-baseline.json")
        report = lint_paths(["src/repro", "benchmarks", "examples"],
                            baseline=baseline, project=False)
        assert report.stale_baseline == []

    @pytest.mark.parametrize("rule,line", [
        ("UNIT210", "    return wait(delay_us)  # repro: noqa[UNIT210]"),
        ("JRN601", "    return {'x': id(flows)}  # repro: noqa[JRN601]"),
    ])
    def test_noqa_per_family(self, tmp_path, rule, line):
        target = tmp_path / "m.py"
        target.write_text(
            "def wait(timeout_s):\n"
            "    return timeout_s\n\n\n"
            "def go_payload(delay_us, flows):\n" + line + "\n")
        report = lint_paths([tmp_path], project=True)
        assert not any(f.rule == rule for f in report.findings)
        assert any(f.rule == rule for f in report.suppressed)

    @pytest.mark.parametrize("rule,line", [
        ("UNIT210", "    return wait(delay_us)"),
        ("JRN601", "    return {'x': id(flows)}"),
    ])
    def test_baseline_per_family(self, tmp_path, rule, line):
        target = tmp_path / "m.py"
        target.write_text(
            "def wait(timeout_s):\n"
            "    return timeout_s\n\n\n"
            "def go_payload(delay_us, flows):\n" + line + "\n")
        raw = lint_paths([tmp_path], project=True)
        entries = [{"rule": f.rule, "path": f.path,
                    "context": f.context, "reason": "known, tracked"}
                   for f in raw.findings if f.rule == rule]
        assert entries, f"expected a {rule} finding to baseline"
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(
            json.dumps({"version": 1, "entries": entries}))
        report = lint_paths([tmp_path],
                            baseline=Baseline.load(baseline_path),
                            project=True)
        assert not any(f.rule == rule for f in report.findings)
        assert any(f.rule == rule for f in report.baselined)

    def test_numpy_default_rng_is_traced(self):
        codes = _codes_of_sources({"m.py": """
            import numpy

            def make(seed):
                return numpy.random.default_rng(seed)

            def fixed():
                return make(42)
        """})
        assert "FLOW501" in codes

    def test_library_tree_is_project_clean(self):
        findings = lint_project_files(sorted(Path("src/repro").rglob("*.py")))
        assert findings == []

    def test_rule_catalogue_includes_project_rules(self):
        catalogue = rule_catalogue()
        for rule in all_project_rules():
            assert rule.code in catalogue


# --- SUP001 unused-noqa -------------------------------------------------


class TestUnusedNoqa:
    def test_unused_code_flagged(self):
        findings = lint_source("x = 1  # repro: noqa[DET101]\n", "a.py")
        assert [f.rule for f in findings] == ["SUP001"]
        assert "DET101" in findings[0].message

    def test_used_code_not_flagged(self):
        source = ("import random\n"
                  "r = random.Random()  # repro: noqa[DET101]\n")
        assert lint_source(source, "a.py") == []

    def test_partially_used_comma_list(self):
        source = ("import random\n"
                  "r = random.Random()  # repro: noqa[DET101,UNIT202]\n")
        findings = lint_source(source, "a.py")
        assert [f.rule for f in findings] == ["SUP001"]
        assert "UNIT202" in findings[0].message

    def test_blanket_marker_flagged_when_dead(self):
        findings = lint_source("x = 1  # repro: noqa\n", "a.py")
        assert [f.rule for f in findings] == ["SUP001"]

    def test_project_code_skipped_in_per_file_run(self):
        assert lint_source("x = 1  # repro: noqa[FLOW501]\n",
                           "a.py") == []

    def test_project_mode_flags_dead_project_code(self, tmp_path):
        target = tmp_path / "m.py"
        target.write_text("x = 1  # repro: noqa[FLOW501]\n")
        report = lint_paths([tmp_path], project=True)
        assert [f.rule for f in report.findings] == ["SUP001"]


# --- SARIF --------------------------------------------------------------


class TestSarif:
    def test_sarif_document_shape(self):
        report = lint_paths([FIXTURE], project=True)
        rules = sorted(all_project_rules(), key=lambda r: r.code)
        document = json.loads(format_sarif(report, rules))
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"FLOW501", "JRN601", "UNIT210", "E000"} <= ids
        assert run["results"], "fixture violations must appear"
        result = run["results"][0]
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith(".py")
        assert location["region"]["startLine"] >= 1

    def test_sarif_cli(self, tmp_path, capsys):
        target = tmp_path / "m.py"
        target.write_text("import random\nrandom.seed(3)\n")
        code = cli_main(["lint", "--no-baseline", "--format", "sarif",
                         str(tmp_path)])
        document = json.loads(capsys.readouterr().out)
        assert code == 1
        assert document["runs"][0]["results"][0]["ruleId"] == "DET102"


# --- incremental (--changed) -------------------------------------------


def _git(repo, *args):
    subprocess.run(["git", "-c", "user.email=t@t", "-c", "user.name=t",
                    *args], cwd=repo, check=True, capture_output=True)


class TestIncremental:
    def test_changed_files_vs_head(self, tmp_path):
        _git(tmp_path, "init", "-q")
        tracked = tmp_path / "tracked.py"
        tracked.write_text("x = 1\n")
        (tmp_path / "other.py").write_text("y = 1\n")
        _git(tmp_path, "add", ".")
        _git(tmp_path, "commit", "-qm", "seed")
        tracked.write_text("x = 2\n")
        fresh = tmp_path / "fresh.py"
        fresh.write_text("z = 1\n")
        changed = changed_python_files(base="HEAD", start=tmp_path)
        assert tracked.resolve().as_posix() in changed
        assert fresh.resolve().as_posix() in changed
        assert not any(p.endswith("other.py") for p in changed)

    def test_outside_a_repo_raises(self, tmp_path):
        with pytest.raises(AnalysisError):
            changed_python_files(start=tmp_path / "nowhere")

    def test_report_on_scopes_reporting_not_analysis(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("def helper(seed):\n"
                         "    import random\n"
                         "    return random.Random(seed)\n")
        dirty = tmp_path / "dirty.py"
        dirty.write_text("from clean import helper\n\n"
                         "def go():\n"
                         "    return helper(77)\n")
        scoped = lint_paths([tmp_path], project=True,
                            report_on={dirty.resolve().as_posix()})
        assert {f.rule for f in scoped.findings} == {"FLOW501"}
        other = lint_paths([tmp_path], project=True,
                           report_on={clean.resolve().as_posix()})
        assert not any(f.rule == "FLOW501" for f in other.findings)


# --- hypothesis: unit-tag propagation is monotone -----------------------


_SUFFIXES = st.sampled_from(["_s", "_us", "_ms", "_bps", ""])
_WRAPPERS = st.sampled_from(["blur", "via", "scale_by"])


class TestMonotonicity:
    @settings(max_examples=40, deadline=None)
    @given(param_suffix=_SUFFIXES, value_suffix=_SUFFIXES,
           wrapper=_WRAPPERS, indirect_assign=st.booleans())
    def test_unknown_converter_never_introduces_findings(
            self, param_suffix, value_suffix, wrapper, indirect_assign):
        """Wrapping any argument in an un-tagged units call is monotone:
        the wrapped program's findings are a subset of the unwrapped."""
        arg = f"value{value_suffix}"
        if indirect_assign:
            body = f"held = value{value_suffix}\n    held2 = held"
            arg = "held2"
        else:
            body = "held = 0"
        template = textwrap.dedent("""
            import units

            def sink(delay{p}):
                return delay{p}

            def caller(value{v}):
                {body}
                return sink({arg})
        """)
        plain = template.format(p=param_suffix, v=value_suffix,
                                body=body, arg=arg)
        wrapped = template.format(p=param_suffix, v=value_suffix,
                                  body=body,
                                  arg=f"units.{wrapper}({arg})")
        units_src = f"def {wrapper}(value):\n    return value\n"
        base = _codes_of_sources({"units.py": units_src, "m.py": plain})
        after = _codes_of_sources({"units.py": units_src,
                                   "m.py": wrapped})
        for code in set(after):
            assert after.count(code) <= base.count(code)

    @settings(max_examples=20, deadline=None)
    @given(param_suffix=_SUFFIXES, value_suffix=_SUFFIXES)
    def test_analysis_is_deterministic(self, param_suffix, value_suffix):
        source = textwrap.dedent(f"""
            def sink(delay{param_suffix}):
                return delay{param_suffix}

            def caller(value{value_suffix}):
                return sink(value{value_suffix})
        """)
        first = _codes_of_sources({"m.py": source})
        second = _codes_of_sources({"m.py": source})
        assert first == second
