"""Event queue and discrete-event engine."""

import pytest

from repro.errors import SchedulingError
from repro.sim.engine import Engine
from repro.sim.events import (PRIORITY_CONTROL, PRIORITY_DATA, EventQueue)


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.push(2.0, lambda: order.append("b"))
        queue.push(1.0, lambda: order.append("a"))
        queue.push(3.0, lambda: order.append("c"))
        while (event := queue.pop()) is not None:
            event.action()
        assert order == ["a", "b", "c"]

    def test_ties_broken_by_priority_then_insertion(self):
        queue = EventQueue()
        order = []
        queue.push(1.0, lambda: order.append("data1"), PRIORITY_DATA)
        queue.push(1.0, lambda: order.append("ctrl"), PRIORITY_CONTROL)
        queue.push(1.0, lambda: order.append("data2"), PRIORITY_DATA)
        while (event := queue.pop()) is not None:
            event.action()
        assert order == ["ctrl", "data1", "data2"]

    def test_cancelled_events_skipped(self):
        queue = EventQueue()
        fired = []
        event = queue.push(1.0, lambda: fired.append(1))
        event.cancel()
        assert queue.pop() is None
        assert fired == []

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        first.cancel()
        assert queue.peek_time() == 2.0

    def test_negative_time_rejected(self):
        with pytest.raises(SchedulingError):
            EventQueue().push(-1.0, lambda: None)


class TestEngine:
    def test_clock_advances_with_events(self):
        engine = Engine()
        times = []
        engine.at(0.5, lambda: times.append(engine.now_s))
        engine.at(1.5, lambda: times.append(engine.now_s))
        engine.run()
        assert times == [0.5, 1.5]
        assert engine.now_s == 1.5

    def test_after_is_relative(self):
        engine = Engine()
        seen = []
        engine.at(1.0, lambda: engine.after(0.5, lambda: seen.append(
            engine.now_s)))
        engine.run()
        assert seen == [1.5]

    def test_run_until_leaves_later_events_queued(self):
        engine = Engine()
        fired = []
        engine.at(1.0, lambda: fired.append(1))
        engine.at(2.0, lambda: fired.append(2))
        engine.run(until_s=1.5)
        assert fired == [1]
        assert engine.now_s == 1.5
        engine.run()
        assert fired == [1, 2]

    def test_event_exactly_at_horizon_runs(self):
        engine = Engine()
        fired = []
        engine.at(1.0, lambda: fired.append(1))
        engine.run(until_s=1.0)
        assert fired == [1]

    def test_max_events_cap(self):
        engine = Engine()
        fired = []
        for i in range(5):
            engine.at(float(i), lambda i=i: fired.append(i))
        engine.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_scheduling_in_the_past_rejected(self):
        engine = Engine()
        engine.at(1.0, lambda: None)
        engine.run()
        with pytest.raises(SchedulingError):
            engine.at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SchedulingError):
            Engine().after(-0.1, lambda: None)

    def test_control_events_run_before_data_at_same_time(self):
        engine = Engine()
        order = []
        engine.at(1.0, lambda: order.append("data"))
        engine.at(1.0, lambda: order.append("control"), control=True)
        engine.run()
        assert order == ["control", "data"]

    def test_events_processed_counter(self):
        engine = Engine()
        for i in range(4):
            engine.at(float(i), lambda: None)
        engine.run()
        assert engine.events_processed == 4

    def test_reentrant_run_rejected(self):
        engine = Engine()
        failures = []

        def reenter():
            try:
                engine.run()
            except SchedulingError:
                failures.append(True)

        engine.at(1.0, reenter)
        engine.run()
        assert failures == [True]
