"""Property-based tests for the extension modules: pull-back, traces,
graphs, filtering maths, result records."""

import json

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.chain.graph import EGRESS, INGRESS, Edge, GraphPlacement, ServiceGraph
from repro.chain.nf import DeviceKind, NFProfile
from repro.core.pam import PAMConfig
from repro.core.pam import select as pam_select
from repro.core.reverse import PullbackConfig, select_pullback
from repro.resources.model import LoadModel, filtered_throughput
from repro.traffic.trace import PacketTrace, TraceEntry, TraceReplay
from repro.units import gbps

from .test_property_placement import placements

C = DeviceKind.CPU
S = DeviceKind.SMARTNIC

loads = st.floats(min_value=0.1, max_value=4.0).map(gbps)


class TestPullbackProperties:
    @given(placements(min_len=1, max_len=8), loads)
    @settings(max_examples=50, deadline=None)
    def test_never_adds_crossings(self, placement, load):
        plan = select_pullback(placement, load)
        assert plan.after.pcie_crossings() <= placement.pcie_crossings()

    @given(placements(min_len=1, max_len=8), loads)
    @settings(max_examples=50, deadline=None)
    def test_never_overloads_the_nic(self, placement, load):
        plan = select_pullback(placement, load)
        after = LoadModel(plan.after, load)
        config = PullbackConfig()
        if plan.actions:
            assert after.nic_load().utilisation < config.nic_target

    @given(placements(min_len=1, max_len=8), loads)
    @settings(max_examples=50, deadline=None)
    def test_only_moves_toward_the_nic(self, placement, load):
        plan = select_pullback(placement, load)
        for action in plan.actions:
            assert action.source is C
            assert action.target is S

    @given(placements(min_len=2, max_len=6), loads)
    @settings(max_examples=40, deadline=None)
    def test_push_then_pull_is_stable(self, placement, load):
        """After PAM + pull-back at the same load, re-running either
        produces no further action (a fixed point, no oscillation)."""
        pushed = pam_select(placement, load, PAMConfig(strict=False))
        assume(pushed.alleviates)
        pulled = select_pullback(pushed.after, load,
                                 eligible=pushed.migrated_names)
        again = select_pullback(pulled.after, load,
                                eligible=pushed.migrated_names)
        assert again.is_noop
        # And PAM stays quiet on the pulled-back placement too.
        re_push = pam_select(pulled.after, load, PAMConfig(strict=False))
        if pulled.actions:
            # Pull-back only acts below trigger_below (0.5 util), far
            # under the overload threshold, so PAM must not re-fire.
            assert re_push.is_noop


class TestTraceProperties:
    entries = st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=1.0),
                  st.integers(min_value=64, max_value=1500),
                  st.integers(min_value=0, max_value=63)),
        min_size=1, max_size=60)

    @given(entries)
    @settings(max_examples=60, deadline=None)
    def test_serialisation_roundtrip(self, raw):
        raw.sort(key=lambda item: item[0])
        trace = PacketTrace([TraceEntry(*item) for item in raw])
        again = PacketTrace.loads(trace.dumps())
        assert again.entries == trace.entries

    @given(entries, st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=60, deadline=None)
    def test_time_scaling_preserves_counts_and_sizes(self, raw, scale):
        raw.sort(key=lambda item: item[0])
        trace = PacketTrace([TraceEntry(*item) for item in raw])
        packets = list(TraceReplay(trace, time_scale=scale).packets())
        assert len(packets) == len(trace)
        assert [p.size_bytes for p in packets] == \
            [e.size_bytes for e in trace.entries]
        arrivals = [p.arrival_s for p in packets]
        assert arrivals == sorted(arrivals)


class TestFilteredThroughputProperties:
    pass_rates = st.lists(st.floats(min_value=0.05, max_value=1.0),
                          min_size=1, max_size=8)

    @given(pass_rates, st.floats(min_value=0.0, max_value=10.0).map(gbps))
    @settings(max_examples=80, deadline=None)
    def test_thinning_is_monotone_along_the_chain(self, rates, load):
        from repro.chain.chain import ServiceChain
        nfs = [NFProfile(name=f"nf{i}", pass_rate=rate)
               for i, rate in enumerate(rates)]
        chain = ServiceChain(nfs)
        spec = filtered_throughput(chain, load)
        values = [spec[nf.name] for nf in chain]
        assert values == sorted(values, reverse=True)
        assert values[0] == load

    @given(pass_rates, st.floats(min_value=0.1, max_value=10.0).map(gbps))
    @settings(max_examples=80, deadline=None)
    def test_total_thinning_is_product_of_rates(self, rates, load):
        from repro.chain.chain import ServiceChain
        nfs = [NFProfile(name=f"nf{i}", pass_rate=rate)
               for i, rate in enumerate(rates)]
        chain = ServiceChain(nfs)
        spec = filtered_throughput(chain, load)
        expected_last = load
        for rate in rates[:-1]:
            expected_last *= rate
        assert spec[f"nf{len(rates) - 1}"] == \
            pytest_approx(expected_last)


def pytest_approx(value):
    import pytest
    return pytest.approx(value, rel=1e-9)


class TestGraphProperties:
    @st.composite
    def layered_graphs(draw):
        """Random 3-layer fork/join graphs with valid fractions."""
        width = draw(st.integers(min_value=1, max_value=4))
        branch_caps = draw(st.lists(
            st.floats(min_value=1.0, max_value=10.0),
            min_size=width, max_size=width))
        nfs = [NFProfile(name="head", nic_capacity_bps=gbps(10),
                         cpu_capacity_bps=gbps(5))]
        edges = [Edge(INGRESS, "head")]
        # Even split across branches.
        fraction = 1.0 / width
        fractions = [fraction] * (width - 1)
        fractions.append(1.0 - sum(fractions))  # exact sum
        for index in range(width):
            name = f"branch{index}"
            nfs.append(NFProfile(
                name=name, nic_capacity_bps=gbps(branch_caps[index]),
                cpu_capacity_bps=gbps(branch_caps[index])))
            edges.append(Edge("head", name, fractions[index]))
            edges.append(Edge(name, "tail"))
        nfs.append(NFProfile(name="tail", nic_capacity_bps=gbps(10),
                             cpu_capacity_bps=gbps(5)))
        edges.append(Edge("tail", EGRESS))
        return ServiceGraph(nfs, edges)

    @given(layered_graphs())
    @settings(max_examples=40, deadline=None)
    def test_shares_conserved_at_join(self, graph):
        assert graph.node_share("tail") == pytest_approx(1.0)
        branch_total = sum(graph.node_share(name) for name in
                           graph.names() if name.startswith("branch"))
        assert branch_total == pytest_approx(1.0)

    @given(layered_graphs(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_crossing_delta_consistent_with_recompute(self, graph, data):
        assignment = {name: data.draw(st.sampled_from([S, C]),
                                      label=name)
                      for name in graph.names()}
        placement = GraphPlacement(graph, assignment)
        name = data.draw(st.sampled_from(graph.names()), label="mover")
        target = placement.device_of(name).other()
        delta = placement.crossing_delta(name, target)
        moved = placement.moved(name, target)
        assert moved.expected_crossings() == pytest_approx(
            placement.expected_crossings() + delta)


class TestResultRecordProperties:
    @given(st.floats(min_value=1e-7, max_value=1e-2),
           st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_json_roundtrip_preserves_floats(self, latency, count):
        from repro.harness.results import ResultRecord
        record = ResultRecord(
            label="p", duration_s=0.01, injected=count, delivered=count,
            dropped=0, offered_bps=1e9, goodput_bps=9.9e8,
            mean_latency_s=latency, p50_latency_s=latency,
            p99_latency_s=latency * 2,
            component_means_s={"pcie": latency / 3},
            pcie_crossings=3, placement={"nf": "smartnic"},
            migrated_nfs=[])
        again = ResultRecord.loads(record.dumps())
        assert again == record
