"""Sweeps and table rendering."""

import pytest

from repro.chain.nf import DeviceKind
from repro.errors import ConfigurationError
from repro.harness.scenarios import figure1
from repro.harness.sweep import (measure_capacity, packet_size_sweep,
                                 pcie_latency_sweep, single_nf_scenario)
from repro.harness.tables import (render_capacity_table, render_figure1,
                                  render_figure2_latency,
                                  render_figure2_throughput,
                                  render_pcie_sweep, render_table)
from repro.chain import catalog
from repro.units import gbps, usec

S = DeviceKind.SMARTNIC
C = DeviceKind.CPU


class TestSizeSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return packet_size_sweep(figure1(), sizes=(64, 512),
                                 duration_s=0.006)

    def test_one_point_per_size(self, points):
        assert [p.packet_size_bytes for p in points] == [64, 512]

    def test_accessors(self, points):
        point = points[0]
        assert point.mean_latency_usec("pam") > 0
        assert point.goodput_gbps("pam") > 0

    def test_pam_wins_at_every_size(self, points):
        for point in points:
            assert point.mean_latency_usec("pam") < \
                point.mean_latency_usec("naive")


class TestMeasureCapacity:
    def test_finds_knee_of_single_nf(self):
        # Monitor on the NIC: configured theta^S = 3.2 Gbps.
        scenario = single_nf_scenario(catalog.get("monitor"), S)
        loads = [gbps(v) for v in (2.0, 2.8, 3.0, 3.2, 3.4, 3.8)]
        knee = measure_capacity(scenario, loads, duration_s=0.005)
        assert knee == pytest.approx(gbps(3.2), rel=0.08)

    def test_cpu_capacity_differs_from_nic(self):
        monitor = catalog.get("monitor")
        nic_knee = measure_capacity(
            single_nf_scenario(monitor, S),
            [gbps(v) for v in (2.0, 3.0, 3.2, 3.5)], duration_s=0.004)
        cpu_knee = measure_capacity(
            single_nf_scenario(monitor, C),
            [gbps(v) for v in (2.0, 3.5, 6.0, 9.0, 10.0, 11.0)],
            duration_s=0.004)
        assert cpu_knee > nic_knee  # Table 1: 10 vs 3.2

    def test_requires_loads(self):
        scenario = single_nf_scenario(catalog.get("monitor"), S)
        with pytest.raises(ConfigurationError):
            measure_capacity(scenario, [])


class TestPcieSweep:
    def test_gap_grows_with_crossing_cost(self):
        points = pcie_latency_sweep(
            lambda profile: figure1(server_profile=profile),
            crossing_latencies_s=[usec(2), usec(30)],
            duration_s=0.005)
        assert points[1].gap > points[0].gap

    def test_point_fields(self):
        points = pcie_latency_sweep(
            lambda profile: figure1(server_profile=profile),
            crossing_latencies_s=[usec(10)], duration_s=0.004)
        point = points[0]
        assert point.naive_latency_s > point.pam_latency_s


class TestRendering:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_render_figure1(self):
        from repro.harness.compare import compare_policies
        outcomes = compare_policies(figure1(), duration_s=0.004)
        text = render_figure1(outcomes)
        assert "(b) naive migration" in text
        assert "monitor" in text

    def test_render_figure2_tables(self):
        points = packet_size_sweep(figure1(), sizes=(64,),
                                   duration_s=0.004)
        latency_text = render_figure2_latency(points)
        throughput_text = render_figure2_throughput(points)
        assert "64" in latency_text and "pam" in latency_text
        assert "Gbps" in throughput_text

    def test_render_capacity_table(self):
        text = render_capacity_table(
            [("monitor", "smartnic", gbps(3.2), gbps(3.15))])
        assert "monitor" in text
        assert "1.6%" in text

    def test_render_pcie_sweep(self):
        points = pcie_latency_sweep(
            lambda profile: figure1(server_profile=profile),
            crossing_latencies_s=[usec(10)], duration_s=0.004)
        assert "pam saves" in render_pcie_sweep(points)
