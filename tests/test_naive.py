"""The naive / UNO-style baseline."""

import pytest

from repro.baselines.naive import NaiveConfig, NaivePolicy, select
from repro.chain import catalog
from repro.chain.builder import ChainBuilder
from repro.chain.nf import DeviceKind
from repro.errors import ScaleOutRequired
from repro.resources.model import LoadModel
from repro.units import gbps

C = DeviceKind.CPU


class TestFigure1Story:
    def test_migrates_the_bottleneck_monitor(self, fig1_placement,
                                             fig1_throughput):
        plan = select(fig1_placement, fig1_throughput)
        assert plan.migrated_names == ["monitor"]
        assert plan.alleviates

    def test_adds_two_pcie_crossings(self, fig1_placement, fig1_throughput):
        plan = select(fig1_placement, fig1_throughput)
        assert plan.total_crossing_delta == 2

    def test_policy_label(self, fig1_placement, fig1_throughput):
        assert select(fig1_placement, fig1_throughput).policy == "naive"

    def test_alleviates_nic(self, fig1_placement, fig1_throughput):
        plan = select(fig1_placement, fig1_throughput)
        after = LoadModel(plan.after, fig1_throughput)
        assert after.nic_load().utilisation < 1.0


class TestNoOverload:
    def test_empty_plan(self, fig1_placement):
        assert select(fig1_placement, gbps(1.0)).is_noop


class TestTable1Degenerate:
    def test_naive_equals_pam_when_bottleneck_is_border(self):
        # Under the literal Table 1 numbers logger (2 Gbps) is both the
        # bottleneck and the left border: the two policies coincide
        # (the inconsistency DESIGN.md documents).
        placement = (ChainBuilder("t", profiles=catalog.TABLE1)
                     .cpu("load_balancer").nic("logger").nic("monitor")
                     .nic("firewall").build(egress=C))[1]
        from repro.core.pam import select as pam_select
        naive_plan = select(placement, gbps(1.2))
        pam_plan = pam_select(placement, gbps(1.2))
        assert naive_plan.migrated_names == pam_plan.migrated_names == \
            ["logger"]


class TestFeasibility:
    def test_eq2_rejection_moves_to_next_bottleneck(self):
        from dataclasses import replace
        profiles = dict(catalog.FIGURE1_SCENARIO)
        # Make monitor expensive on CPU so Eq. 2 rejects it.
        profiles["monitor"] = replace(profiles["monitor"],
                                      cpu_capacity_bps=gbps(2.0))
        placement = (ChainBuilder("f", profiles=profiles)
                     .cpu("load_balancer").nic("logger").nic("monitor")
                     .nic("firewall").build(egress=C))[1]
        # 1.7 Gbps: monitor on CPU -> 0.425 + 0.85 = 1.275, rejected;
        # next-smallest theta^S is logger (4.0).
        plan = select(placement, gbps(1.7))
        assert plan.migrated_names[0] == "logger"
        assert any("eq2 rejects monitor" in note for note in plan.notes)

    def test_strict_raises_when_hopeless(self, fig1_placement):
        # At 3.0 Gbps every candidate fails Eq. 2 on the CPU.
        with pytest.raises(ScaleOutRequired):
            select(fig1_placement, gbps(3.0))

    def test_non_strict_returns_partial(self, fig1_placement):
        plan = select(fig1_placement, gbps(3.0), NaiveConfig(strict=False))
        assert not plan.alleviates

    def test_succeeds_where_pam_cannot(self, fig1_placement):
        # 2.2 Gbps: PAM's border pool fails Eq. 2 (logger would push the
        # CPU to 1.1) but naive may move the mid-chain monitor, whose
        # CPU cost is low — the freedom PAM trades for latency.
        from repro.core.pam import select as pam_select
        with pytest.raises(ScaleOutRequired):
            pam_select(fig1_placement, gbps(2.2))
        plan = select(fig1_placement, gbps(2.2))
        assert plan.alleviates
        assert plan.migrated_names == ["monitor"]


class TestPolicyWrapper:
    def test_wrapper_delegates(self, fig1_placement, fig1_throughput):
        policy = NaivePolicy()
        assert policy.name == "naive"
        plan = policy.select(fig1_placement, fig1_throughput)
        assert plan.migrated_names == ["monitor"]
