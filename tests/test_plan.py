"""MigrationPlan consistency validation."""

import pytest

from repro.chain.nf import DeviceKind
from repro.core.plan import MigrationAction, MigrationPlan
from repro.errors import InfeasiblePlanError

C = DeviceKind.CPU
S = DeviceKind.SMARTNIC


class TestAction:
    def test_noop_action_rejected(self):
        with pytest.raises(InfeasiblePlanError):
            MigrationAction("x", source=S, target=S, crossing_delta=0)

    def test_fields(self):
        action = MigrationAction("logger", source=S, target=C,
                                 crossing_delta=0)
        assert action.nf_name == "logger"
        assert action.crossing_delta == 0


class TestEmptyPlan:
    def test_empty_is_noop(self, fig1_placement):
        plan = MigrationPlan.empty(fig1_placement, "pam")
        assert plan.is_noop
        assert plan.migrated_names == []
        assert plan.total_crossing_delta == 0
        plan.validate()

    def test_empty_before_equals_after(self, fig1_placement):
        plan = MigrationPlan.empty(fig1_placement, "pam")
        assert plan.before == plan.after


class TestValidation:
    def valid_plan(self, placement):
        action = MigrationAction("logger", source=S, target=C,
                                 crossing_delta=0)
        return MigrationPlan(actions=(action,), before=placement,
                             after=placement.moved("logger", C),
                             alleviates=True, policy="pam")

    def test_valid_plan_passes(self, fig1_placement):
        self.valid_plan(fig1_placement).validate()

    def test_wrong_source_detected(self, fig1_placement):
        action = MigrationAction("load_balancer", source=S, target=C,
                                 crossing_delta=0)
        plan = MigrationPlan(
            actions=(action,), before=fig1_placement,
            after=fig1_placement, alleviates=True, policy="x")
        with pytest.raises(InfeasiblePlanError, match="source"):
            plan.validate()

    def test_wrong_crossing_delta_detected(self, fig1_placement):
        action = MigrationAction("logger", source=S, target=C,
                                 crossing_delta=7)
        plan = MigrationPlan(
            actions=(action,), before=fig1_placement,
            after=fig1_placement.moved("logger", C),
            alleviates=True, policy="x")
        with pytest.raises(InfeasiblePlanError, match="crossing delta"):
            plan.validate()

    def test_wrong_after_placement_detected(self, fig1_placement):
        action = MigrationAction("logger", source=S, target=C,
                                 crossing_delta=0)
        plan = MigrationPlan(
            actions=(action,), before=fig1_placement,
            after=fig1_placement,  # should be the moved placement
            alleviates=True, policy="x")
        with pytest.raises(InfeasiblePlanError, match="after"):
            plan.validate()

    def test_total_crossing_delta_sums_actions(self, fig1_placement):
        plan = self.valid_plan(fig1_placement)
        assert plan.total_crossing_delta == \
            plan.after.pcie_crossings() - plan.before.pcie_crossings()

    def test_multi_action_sequencing(self, fig1_placement):
        first = MigrationAction("logger", source=S, target=C,
                                crossing_delta=0)
        mid = fig1_placement.moved("logger", C)
        second = MigrationAction(
            "monitor", source=S, target=C,
            crossing_delta=mid.crossing_delta("monitor", C))
        plan = MigrationPlan(
            actions=(first, second), before=fig1_placement,
            after=mid.moved("monitor", C), alleviates=True, policy="x")
        plan.validate()
        assert plan.migrated_names == ["logger", "monitor"]
