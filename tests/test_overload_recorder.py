"""Overload detector hysteresis and the time-series recorder."""

import pytest

from repro.errors import ConfigurationError
from repro.telemetry.overload import OverloadDetector
from repro.telemetry.recorder import TimeSeriesRecorder


class TestDetectorMemoryless:
    def test_fires_immediately_by_default(self):
        detector = OverloadDetector()
        assert detector.update(1.2)
        assert detector.overloaded

    def test_clears_immediately_by_default(self):
        detector = OverloadDetector()
        detector.update(1.2)
        assert not detector.update(0.8)

    def test_threshold_is_strict(self):
        detector = OverloadDetector()
        assert not detector.update(1.0)


class TestDetectorHysteresis:
    def test_on_count_debounces(self):
        detector = OverloadDetector(on_count=3)
        assert not detector.update(1.5)
        assert not detector.update(1.5)
        assert detector.update(1.5)

    def test_streak_reset_by_under_sample(self):
        detector = OverloadDetector(on_count=2)
        detector.update(1.5)
        detector.update(0.5)  # streak broken
        assert not detector.update(1.5)
        assert detector.update(1.5)

    def test_off_count_debounces(self):
        detector = OverloadDetector(off_count=2)
        detector.update(1.5)
        assert detector.update(0.5)   # still on
        assert not detector.update(0.5)

    def test_episode_counter(self):
        detector = OverloadDetector()
        detector.update(1.5)
        detector.update(0.5)
        detector.update(1.5)
        assert detector.episodes == 2

    def test_reset(self):
        detector = OverloadDetector()
        detector.update(1.5)
        detector.reset()
        assert not detector.overloaded

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OverloadDetector(threshold=0.0)
        with pytest.raises(ConfigurationError):
            OverloadDetector(on_count=0)
        detector = OverloadDetector()
        with pytest.raises(ConfigurationError):
            detector.update(-0.1)


class TestRecorder:
    def test_record_and_read_back(self):
        recorder = TimeSeriesRecorder()
        recorder.record("nic", 0.0, 0.5)
        recorder.record("nic", 1.0, 0.9)
        assert recorder.values("nic") == [0.5, 0.9]

    def test_time_must_be_monotone_per_series(self):
        recorder = TimeSeriesRecorder()
        recorder.record("nic", 1.0, 0.5)
        with pytest.raises(ConfigurationError):
            recorder.record("nic", 0.5, 0.6)

    def test_series_are_independent(self):
        recorder = TimeSeriesRecorder()
        recorder.record("nic", 5.0, 1.0)
        recorder.record("cpu", 1.0, 1.0)  # earlier time, other series: fine
        assert recorder.names() == ["cpu", "nic"]

    def test_last_and_max(self):
        recorder = TimeSeriesRecorder()
        recorder.record("nic", 0.0, 0.5)
        recorder.record("nic", 1.0, 1.3)
        recorder.record("nic", 2.0, 0.9)
        assert recorder.last("nic").value == 0.9
        assert recorder.max("nic") == 1.3

    def test_missing_series(self):
        recorder = TimeSeriesRecorder()
        assert recorder.series("ghost") == []
        with pytest.raises(ConfigurationError):
            recorder.last("ghost")
