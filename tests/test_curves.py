"""Latency-vs-load curve sweeps."""

import pytest

from repro.errors import ConfigurationError
from repro.harness.curves import LatencyCurve, CurvePoint, latency_load_curve
from repro.harness.scenarios import figure1
from repro.units import gbps


@pytest.fixture(scope="module")
def curve():
    return latency_load_curve(figure1(),
                              [gbps(v) for v in (0.8, 1.3, 1.9)],
                              duration_s=0.005)


class TestSweep:
    def test_points_sorted_by_load(self, curve):
        loads = [point.offered_bps for point in curve.points]
        assert loads == sorted(loads)

    def test_hockey_stick_shape(self, curve):
        # Flat at 0.8 and 1.3 (both under the 1.509 knee), blow-up at 1.9.
        assert curve.points[1].mean_latency_s == pytest.approx(
            curve.points[0].mean_latency_s, rel=0.01)
        assert curve.points[2].mean_latency_s > \
            2 * curve.points[0].mean_latency_s

    def test_goodput_saturates(self, curve):
        assert curve.points[2].goodput_bps < gbps(1.6)

    def test_knee_detection(self, curve):
        assert curve.knee_bps() == pytest.approx(gbps(1.9))

    def test_knee_of_flat_curve_is_last_load(self):
        flat = latency_load_curve(figure1(),
                                  [gbps(0.5), gbps(0.8)],
                                  duration_s=0.004)
        assert flat.knee_bps() == pytest.approx(gbps(0.8))

    def test_render_and_spark(self, curve):
        text = curve.render()
        assert "Gbps" in text and "p99" in text
        assert len(curve.spark()) == len(curve.points)

    def test_empty_loads_rejected(self):
        with pytest.raises(ConfigurationError):
            latency_load_curve(figure1(), [])

    def test_empty_curve_knee_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyCurve(label="x", points=()).knee_bps()
