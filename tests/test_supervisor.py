"""Run supervision: deadlines, retries, dead-worker recovery, abort.

The supervisor's contract is that it changes *when and where* a request
executes, never *what it produces*: every test here compares a
supervised (and usually sabotaged) campaign against an unsupervised
serial reference and expects bit-exact payloads — plus the journal
trail (``run-attempt`` / ``campaign-abort``) that makes the recovery
auditable and resumable.

Process-spawning tests use the chaos campaign (registered, so workers
can rebuild it from JSON); in-process tests use a local grid campaign.
"""

import pytest

from repro.chaos.runner import ChaosConfig, ChaosRunner
from repro.checkpoint import read_journal
from repro.errors import CampaignAborted, ConfigurationError, ExecutionError
from repro.exec import (Campaign, FaultInjectedCampaign, FaultPlan,
                        RunRequest, SerialExecutor,
                        SupervisedParallelExecutor, SupervisedSerialExecutor,
                        SupervisionPolicy, WorkerFault, make_executor,
                        register_campaign, run_campaign, seed_for)
from repro.exec.driver import replay_campaign_journal

#: Short enough for CI, long enough for faults and a migration to land.
_DURATION_S = 0.01

#: Generous per-run deadline: only ``hang`` faults ever reach it.
_TIMEOUT_S = 60.0


class QuarantineGrid(Campaign):
    """Tiny deterministic campaign with a violation vocabulary."""

    kind = "test-quarantine-grid"

    def __init__(self, runs, seed=3):
        self.runs = runs
        self.seed = seed

    def fingerprint(self):
        return {"runs": self.runs, "seed": self.seed}

    def spec(self):
        return self.fingerprint()

    @classmethod
    def from_spec(cls, spec):
        return cls(int(spec["runs"]), int(spec["seed"]))

    def requests(self):
        return [RunRequest(index=i, seed=seed_for(self.seed, i))
                for i in range(self.runs)]

    def run_request(self, request):
        return {"index": request.index, "square": request.seed ** 2}

    def error_payload(self, request, error, details=None):
        return {"index": request.index, "scenario-error": error}


register_campaign(QuarantineGrid)


def _policy(**overrides):
    defaults = dict(run_timeout_s=_TIMEOUT_S, max_attempts=2,
                    backoff_base_s=0.01)
    defaults.update(overrides)
    return SupervisionPolicy(**defaults)


def _chaos_campaign(runs=3, seed=11, faults=()):
    from repro.chaos.runner import ChaosCampaign
    runner = ChaosRunner(runs=runs, seed=seed,
                         config=ChaosConfig(duration_s=_DURATION_S))
    inner = ChaosCampaign(runner)
    if faults:
        return FaultInjectedCampaign(inner, FaultPlan.parse_all(faults))
    return inner


class TestSupervisionPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SupervisionPolicy(run_timeout_s=0.0)
        with pytest.raises(ConfigurationError):
            SupervisionPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            SupervisionPolicy(max_failures=-1)
        with pytest.raises(ConfigurationError):
            SupervisionPolicy(jitter_frac=1.0)

    def test_inert_unless_something_is_configured(self):
        assert not SupervisionPolicy().active
        assert SupervisionPolicy(max_attempts=2).active
        assert SupervisionPolicy(run_timeout_s=1.0).active
        assert SupervisionPolicy(max_failures=3).active

    def test_backoff_is_seed_derived_and_capped(self):
        policy = SupervisionPolicy(backoff_base_s=0.1,
                                   backoff_multiplier=2.0,
                                   backoff_cap_s=0.15, jitter_frac=0.0)
        assert policy.backoff_s(7, 1) == pytest.approx(0.1)
        assert policy.backoff_s(7, 2) == pytest.approx(0.15)
        jittered = SupervisionPolicy(backoff_base_s=0.1, jitter_frac=0.2)
        assert jittered.backoff_s(7, 1) == jittered.backoff_s(7, 1)
        assert jittered.backoff_s(7, 1) != jittered.backoff_s(8, 1)
        assert 0.08 <= jittered.backoff_s(7, 1) <= 0.12

    def test_failure_budget_count_and_fraction(self):
        count = SupervisionPolicy(max_failures=2)
        assert count.allowed_failures(100) == 2
        assert not count.failures_exceeded(2, 100)
        assert count.failures_exceeded(3, 100)
        fraction = SupervisionPolicy(max_failures=0.25)
        assert fraction.allowed_failures(8) == 2
        unlimited = SupervisionPolicy()
        assert unlimited.allowed_failures(8) is None
        assert not unlimited.failures_exceeded(8, 8)


class TestMakeExecutorPolicy:
    def test_none_policy_keeps_plain_executors(self):
        assert isinstance(make_executor(1), SerialExecutor)

    def test_inert_policy_keeps_plain_executors(self):
        assert isinstance(make_executor(1, SupervisionPolicy()),
                          SerialExecutor)

    def test_active_policy_selects_supervised(self):
        policy = _policy()
        assert isinstance(make_executor(1, policy),
                          SupervisedSerialExecutor)
        executor = make_executor(2, policy)
        assert isinstance(executor, SupervisedParallelExecutor)
        assert executor.workers == 2


class TestFaultPlan:
    def test_parse_round_trip(self):
        fault = WorkerFault.parse("3:die:1,2")
        assert fault == WorkerFault(index=3, fault="die", attempts=(1, 2))
        assert WorkerFault.from_dict(fault.to_dict()) == fault
        plan = FaultPlan.parse_all(["0:hang", "2:error:1"])
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_bad_specs_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkerFault.parse("nonsense")
        with pytest.raises(ConfigurationError):
            WorkerFault.parse("0:frobnicate")
        with pytest.raises(ConfigurationError):
            WorkerFault.parse("x:die")
        with pytest.raises(ConfigurationError):
            FaultPlan.parse_all(["0:die", "0:hang"])

    def test_generated_plan_is_pure_function_of_seed(self):
        first = FaultPlan.generate(runs=40, seed=9)
        second = FaultPlan.generate(runs=40, seed=9)
        assert first == second
        assert first != FaultPlan.generate(runs=40, seed=10)
        # Generated plans must terminate under any executor.
        assert all(f.fault != "hang" for f in first.faults)


class TestSerialSupervision:
    def test_transient_error_is_retried_to_the_reference_payloads(self):
        reference = run_campaign(QuarantineGrid(4)).payloads
        campaign = FaultInjectedCampaign(QuarantineGrid(4),
                                         FaultPlan.parse_all(["2:error:1"]))
        outcome = run_campaign(campaign, executor=make_executor(1, _policy()))
        assert outcome.payloads == reference

    def test_exhausted_attempts_quarantine_through_error_payload(self):
        campaign = FaultInjectedCampaign(QuarantineGrid(3),
                                         FaultPlan.parse_all(["1:error"]))
        outcome = run_campaign(campaign, executor=make_executor(1, _policy()))
        assert "scenario-error" in outcome.payloads[1]
        assert "injected worker error" in outcome.payloads[1]["scenario-error"]

    def test_garbage_result_is_a_failed_attempt(self):
        reference = run_campaign(QuarantineGrid(3)).payloads
        campaign = FaultInjectedCampaign(
            QuarantineGrid(3), FaultPlan.parse_all(["0:garbage:1"]))
        outcome = run_campaign(campaign, executor=make_executor(1, _policy()))
        assert outcome.payloads == reference

    def test_default_error_payload_still_propagates(self):
        campaign = FaultInjectedCampaign(
            _PlainGrid(2), FaultPlan.parse_all(["0:error"]))
        with pytest.raises(ExecutionError, match="run 0"):
            run_campaign(campaign, executor=make_executor(1, _policy()))

    def test_keyboard_interrupt_leaves_a_resumable_journal(self, tmp_path):
        journal = str(tmp_path / "interrupted.jsonl")
        campaign = QuarantineGrid(4, seed=5)

        class InterruptingExecutor(SerialExecutor):
            def map(self, inner, requests):
                for completion in super().map(inner, requests):
                    yield completion
                    if completion[0] == 1:
                        raise KeyboardInterrupt
        with pytest.raises(KeyboardInterrupt):
            run_campaign(campaign, executor=InterruptingExecutor(),
                         journal_path=journal)
        records = read_journal(journal).records
        assert records[-1]["kind"] == "campaign-abort"
        assert records[-1]["error"].startswith("KeyboardInterrupt")
        assert records[-1]["completed"] == 2
        resumed = run_campaign(campaign, resume_from=journal)
        assert resumed.replayed == 2
        assert resumed.payloads == run_campaign(campaign).payloads


class _PlainGrid(QuarantineGrid):
    """QuarantineGrid without the violation vocabulary."""

    kind = "test-plain-grid"

    def error_payload(self, request, error, details=None):
        return Campaign.error_payload(self, request, error,
                                      details=details)


register_campaign(_PlainGrid)


class TestParallelSupervision:
    def test_clean_supervised_parallel_matches_serial(self):
        campaign = _chaos_campaign(runs=3)
        reference = run_campaign(campaign).payloads
        outcome = run_campaign(campaign, executor=make_executor(2, _policy()))
        assert outcome.payloads == reference

    def test_worker_killed_mid_run_is_retried_bit_exact(self, tmp_path):
        # Attempt 1 of run 1 dies with the OOM-kill exit code; the
        # supervisor rebuilds the pool, retries from the same seed, and
        # the merged report is the unfaulted serial reference.
        journal = str(tmp_path / "die.jsonl")
        reference = run_campaign(_chaos_campaign(runs=3)).payloads
        campaign = _chaos_campaign(runs=3, faults=["1:die:1"])
        outcome = run_campaign(campaign,
                               executor=make_executor(2, _policy()),
                               journal_path=journal)
        assert outcome.payloads == reference
        attempts = [r for r in read_journal(journal).records
                    if r["kind"] == "run-attempt"]
        assert len(attempts) == 1
        assert attempts[0]["index"] == 1
        assert attempts[0]["outcome"] == "worker-death"
        assert attempts[0]["requeued"] is True

    def test_worker_killed_campaign_resumes_bit_exact(self, tmp_path):
        journal = str(tmp_path / "resume.jsonl")
        reference = run_campaign(_chaos_campaign(runs=3)).payloads
        campaign = _chaos_campaign(runs=3, faults=["1:die:1"])
        run_campaign(campaign, executor=make_executor(2, _policy()),
                     journal_path=journal)
        resumed = run_campaign(campaign, resume_from=journal)
        assert resumed.replayed == 3
        assert resumed.executed == 0
        assert resumed.payloads == reference

    def test_run_attempt_records_ride_through_replay(self, tmp_path):
        journal = str(tmp_path / "attempts.jsonl")
        campaign = _chaos_campaign(runs=3, faults=["1:die:1"])
        run_campaign(campaign, executor=make_executor(2, _policy()),
                     journal_path=journal)
        # replay_campaign_journal sees the run-attempt records and
        # returns exactly the completed payloads, unperturbed.
        completed = replay_campaign_journal(campaign, journal)
        assert sorted(completed) == [0, 1, 2]
        assert completed[1] == run_campaign(_chaos_campaign(3)).payloads[1]

    def test_unrecoverable_death_quarantines_as_scenario_error(self):
        campaign = _chaos_campaign(runs=3, faults=["2:die"])
        outcome = run_campaign(campaign, executor=make_executor(2, _policy()))
        violations = outcome.payloads[2]["violations"]
        assert len(violations) == 1
        assert violations[0]["invariant"] == "scenario-error"
        assert "worker" in violations[0]["detail"]

    def test_quarantine_renders_identically_serial_and_parallel(self):
        # The quarantined payload is built from configured values only,
        # so the supervised serial and parallel executors must produce
        # byte-identical scenario-error records.
        campaign = _chaos_campaign(runs=2, faults=["0:error"])
        serial = run_campaign(campaign, executor=make_executor(1, _policy()))
        parallel = run_campaign(campaign,
                                executor=make_executor(2, _policy()))
        assert parallel.payloads == serial.payloads
        violations = serial.payloads[0]["violations"]
        assert violations[0]["invariant"] == "scenario-error"

    def test_hung_worker_is_killed_at_the_deadline(self):
        reference = run_campaign(QuarantineGrid(3)).payloads
        campaign = FaultInjectedCampaign(QuarantineGrid(3),
                                         FaultPlan.parse_all(["0:hang"]))
        policy = _policy(run_timeout_s=1.0)
        outcome = run_campaign(campaign, executor=make_executor(2, policy))
        assert "timeout" in outcome.payloads[0]["scenario-error"]
        assert outcome.payloads[1:] == reference[1:]

    def test_garbage_worker_result_is_retried(self):
        reference = run_campaign(QuarantineGrid(3)).payloads
        campaign = FaultInjectedCampaign(
            QuarantineGrid(3), FaultPlan.parse_all(["1:garbage:1"]))
        outcome = run_campaign(campaign, executor=make_executor(2, _policy()))
        assert outcome.payloads == reference


class TestAbortBudget:
    def test_budget_blown_raises_and_journals_campaign_abort(self, tmp_path):
        journal = str(tmp_path / "abort.jsonl")
        campaign = FaultInjectedCampaign(
            QuarantineGrid(4), FaultPlan.parse_all(["0:error", "1:error"]))
        policy = _policy(max_attempts=1, max_failures=0)
        with pytest.raises(CampaignAborted) as excinfo:
            run_campaign(campaign, executor=make_executor(1, policy),
                         journal_path=journal)
        assert excinfo.value.quarantined == 1
        records = read_journal(journal).records
        assert records[-1]["kind"] == "campaign-abort"
        assert "CampaignAborted" in records[-1]["error"]
        assert records[-1]["quarantined"] == 1

    def test_budget_with_headroom_completes(self):
        campaign = FaultInjectedCampaign(
            QuarantineGrid(4), FaultPlan.parse_all(["0:error"]))
        policy = _policy(max_attempts=1, max_failures=0.5)
        outcome = run_campaign(campaign, executor=make_executor(1, policy))
        assert "scenario-error" in outcome.payloads[0]

    def test_aborted_campaign_resumes_to_completion(self, tmp_path):
        # An aborted campaign's journal replays everything it recorded
        # — including the quarantined run's scenario-error payload,
        # which is a real result — and completes the rest of the grid.
        journal = str(tmp_path / "abort-resume.jsonl")
        reference = run_campaign(QuarantineGrid(4)).payloads
        poisoned = FaultInjectedCampaign(
            QuarantineGrid(4), FaultPlan.parse_all(["1:error"]))
        with pytest.raises(CampaignAborted):
            run_campaign(poisoned,
                         executor=make_executor(1, _policy(
                             max_attempts=1, max_failures=0)),
                         journal_path=journal)
        resumed = run_campaign(poisoned,
                               executor=make_executor(1, _policy()),
                               resume_from=journal)
        assert resumed.replayed == 2  # run 0 and the quarantined run 1
        assert "scenario-error" in resumed.payloads[1]
        assert resumed.payloads[0] == reference[0]
        assert resumed.payloads[2:] == reference[2:]


class TestStructuredQuarantineDetails:
    """Quarantined scenario-errors carry a structured traceback payload
    that is bit-exact across every executor (harness frames filtered)."""

    def _quarantine_violation(self, payload):
        violations = [v for v in payload["violations"]
                      if v["invariant"] == "scenario-error"]
        assert len(violations) == 1
        return violations[0]

    def test_supervised_serial_quarantine_carries_frames(self):
        campaign = _chaos_campaign(runs=2, faults=["1:error"])
        outcome = run_campaign(campaign,
                               executor=make_executor(1, _policy()))
        violation = self._quarantine_violation(outcome.payloads[1])
        data = violation["data"]
        assert data["type"] == "ExecutionError"
        assert "injected worker error" in data["message"]
        files = [frame["file"] for frame in data["frames"]]
        # The raise site (faultinject) is kept; the executor harness
        # frames are filtered so serial == parallel stays bit-exact.
        assert any(f.endswith("faultinject.py") for f in files)
        assert not any(f.endswith("supervisor.py")
                       or f.endswith("executors.py") for f in files)

    def test_quarantine_details_identical_across_executors(self):
        campaign = _chaos_campaign(runs=2, faults=["1:error"])
        serial = run_campaign(campaign,
                              executor=make_executor(1, _policy()))
        parallel = run_campaign(campaign,
                                executor=make_executor(2, _policy()))
        assert serial.payloads == parallel.payloads

    def test_plain_parallel_error_payload_carries_frames(self):
        # The unsupervised pool forwards the same structured payload.
        campaign = _chaos_campaign(runs=2, faults=["0:error"])
        outcome = run_campaign(campaign, executor=make_executor(2, None))
        violation = self._quarantine_violation(outcome.payloads[0])
        data = violation["data"]
        assert data["type"] == "ExecutionError"
        assert any(frame["file"].endswith("faultinject.py")
                   for frame in data["frames"])

    def test_worker_death_quarantine_has_no_details(self):
        # A dead worker leaves no raise site to report.
        campaign = _chaos_campaign(runs=2, faults=["1:die"])
        outcome = run_campaign(campaign,
                               executor=make_executor(2, _policy()))
        violation = self._quarantine_violation(outcome.payloads[1])
        assert "data" not in violation
