"""Exhaustive placement optimisation."""

import pytest

from repro.analysis.placement_opt import (MAX_CHAIN_LENGTH,
                                          MAX_PLACEMENT_CANDIDATES,
                                          PlacementSearchTruncated,
                                          candidate_space,
                                          enumerate_placements,
                                          optimality_gap,
                                          optimise_placement)
from repro.analysis.latency_model import predict_latency
from repro.chain import catalog
from repro.chain.chain import ServiceChain
from repro.chain.nf import DeviceKind
from repro.errors import ConfigurationError, ScaleOutRequired
from repro.resources.model import LoadModel
from repro.units import gbps

C = DeviceKind.CPU
S = DeviceKind.SMARTNIC


class TestEnumeration:
    def test_counts_two_to_the_n(self, fig1_chain):
        placements = list(enumerate_placements(fig1_chain))
        assert len(placements) == 2 ** len(fig1_chain)

    def test_respects_capabilities(self):
        chain = ServiceChain([catalog.get("dpi"), catalog.get("monitor")])
        placements = list(enumerate_placements(chain))
        # dpi is CPU-only: half the space disappears.
        assert len(placements) == 2
        assert all(p.device_of("dpi") is C for p in placements)

    def test_long_chain_truncates_with_structured_warning(self):
        nfs = [catalog.get("monitor").renamed(f"m{i}")
               for i in range(MAX_CHAIN_LENGTH + 1)]
        chain = ServiceChain(nfs)
        with pytest.warns(PlacementSearchTruncated) as caught:
            placements = list(enumerate_placements(chain))
        # Capped, not unbounded: exactly the cap's worth of candidates.
        assert len(placements) == MAX_PLACEMENT_CANDIDATES
        warning = caught[0].message
        assert warning.cap == MAX_PLACEMENT_CANDIDATES
        assert warning.space == candidate_space(chain) \
            == 2 ** (MAX_CHAIN_LENGTH + 1)
        assert warning.chain_name == chain.name

    def test_explicit_cap_truncates_deterministically(self, fig1_chain):
        with pytest.warns(PlacementSearchTruncated):
            capped = list(enumerate_placements(fig1_chain,
                                               max_candidates=3))
        full = list(enumerate_placements(fig1_chain))
        assert len(capped) == 3
        # The capped walk is a prefix of the full walk, not a sample.
        assert [str(p) for p in capped] == [str(p) for p in full[:3]]

    def test_invalid_cap_rejected(self, fig1_chain):
        with pytest.raises(ConfigurationError):
            list(enumerate_placements(fig1_chain, max_candidates=0))

    def test_truncated_optimise_flags_result(self, fig1_chain):
        with pytest.warns(PlacementSearchTruncated):
            result = optimise_placement(fig1_chain, gbps(1.0),
                                        egress=C, max_candidates=8)
        assert result.truncated
        assert result.total_count <= 8
        full = optimise_placement(fig1_chain, gbps(1.0), egress=C)
        assert not full.truncated


class TestOptimise:
    def test_optimum_is_feasible(self, fig1_scenario):
        result = optimise_placement(fig1_scenario.chain, gbps(1.8),
                                    egress=C)
        load = LoadModel(result.placement, gbps(1.8))
        assert load.nic_load().utilisation < 1.0
        assert load.cpu_load().utilisation < 1.0

    def test_optimum_beats_every_feasible_placement(self, fig1_scenario):
        result = optimise_placement(fig1_scenario.chain, gbps(1.8),
                                    egress=C)
        for placement in enumerate_placements(fig1_scenario.chain,
                                              egress=C):
            load = LoadModel(placement, gbps(1.8))
            if load.nic_load().utilisation >= 1.0 or \
                    load.cpu_load().utilisation >= 1.0:
                continue
            assert result.predicted_latency_s <= \
                predict_latency(placement, 256).total_s + 1e-15

    def test_counts_reported(self, fig1_scenario):
        result = optimise_placement(fig1_scenario.chain, gbps(1.8),
                                    egress=C)
        assert result.total_count == 16
        assert 0 < result.feasible_count < 16
        assert 0 < result.feasible_fraction < 1

    def test_light_load_prefers_minimal_crossings(self, fig1_scenario):
        # At a light load, many placements are feasible; the optimum
        # should have few crossings (crossings dominate the latency).
        result = optimise_placement(fig1_scenario.chain, gbps(0.5),
                                    egress=C)
        assert result.placement.pcie_crossings() <= 1

    def test_infeasible_load_raises(self, fig1_scenario):
        with pytest.raises(ScaleOutRequired):
            optimise_placement(fig1_scenario.chain, gbps(8.0), egress=C)


class TestOptimalityGap:
    def test_gap_of_optimum_is_zero(self, fig1_scenario):
        result = optimise_placement(fig1_scenario.chain, gbps(1.8),
                                    egress=C)
        assert optimality_gap(result.placement, gbps(1.8)) == \
            pytest.approx(0.0)

    def test_pam_gap_is_bounded(self, fig1_scenario, fig1_throughput):
        # PAM's single border move lands within ~35% of the 3-move
        # offline optimum on the canonical chain — the disruption-vs-
        # optimality trade-off ablation A9 quantifies.
        from repro.core.pam import select
        plan = select(fig1_scenario.placement, fig1_throughput)
        gap = optimality_gap(plan.after, fig1_throughput)
        assert 0.0 <= gap < 0.35

    def test_naive_gap_larger_than_pam(self, fig1_scenario,
                                       fig1_throughput):
        from repro.baselines.naive import select as naive_select
        from repro.core.pam import select as pam_select
        pam_gap = optimality_gap(
            pam_select(fig1_scenario.placement, fig1_throughput).after,
            fig1_throughput)
        naive_gap = optimality_gap(
            naive_select(fig1_scenario.placement, fig1_throughput).after,
            fig1_throughput)
        assert naive_gap > pam_gap
