"""Device base model: hosting, demand, processor-sharing rates."""

import pytest

from repro.chain import catalog
from repro.chain.nf import DeviceKind
from repro.devices.cpu import CPU
from repro.devices.smartnic import SmartNIC
from repro.errors import ConfigurationError, PlacementError
from repro.units import gbps


@pytest.fixture
def nic():
    return SmartNIC("nic")


@pytest.fixture
def cpu():
    return CPU("cpu")


class TestHosting:
    def test_host_and_evict(self, nic):
        monitor = catalog.get("monitor")
        nic.host(monitor)
        assert nic.hosts("monitor")
        assert nic.evict("monitor") == monitor
        assert not nic.hosts("monitor")

    def test_double_host_rejected(self, nic):
        nic.host(catalog.get("monitor"))
        with pytest.raises(PlacementError, match="already"):
            nic.host(catalog.get("monitor"))

    def test_evict_absent_rejected(self, nic):
        with pytest.raises(PlacementError):
            nic.evict("monitor")

    def test_incapable_nf_rejected(self, nic):
        with pytest.raises(PlacementError):
            nic.host(catalog.get("dpi"))  # dpi is CPU-only

    def test_hosted_nfs_order(self, nic):
        nic.host(catalog.get("monitor"))
        nic.host(catalog.get("logger"))
        assert [nf.name for nf in nic.hosted_nfs()] == ["monitor", "logger"]

    def test_queue_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            SmartNIC("nic", queue_capacity_packets=0)


class TestDemand:
    def test_demand_default_zero(self, nic):
        assert nic.demand == 0.0
        assert not nic.overloaded

    def test_overloaded_above_one(self, nic):
        nic.set_demand(1.2)
        assert nic.overloaded

    def test_exactly_one_is_not_overloaded(self, nic):
        nic.set_demand(1.0)
        assert not nic.overloaded

    def test_negative_demand_rejected(self, nic):
        with pytest.raises(ConfigurationError):
            nic.set_demand(-0.1)


class TestEffectiveRate:
    def test_native_rate_under_headroom(self, nic):
        monitor = catalog.get("monitor")
        nic.host(monitor)
        nic.set_demand(0.8)
        assert nic.effective_rate(monitor) == monitor.nic_capacity_bps

    def test_shared_rate_when_overloaded(self, nic):
        monitor = catalog.get("monitor")  # 3.2 Gbps on NIC
        logger = catalog.get("logger")    # 2.0 Gbps on NIC
        nic.host(monitor)
        nic.host(logger)
        nic.set_demand(1.5)
        shared = 1.0 / (1 / gbps(3.2) + 1 / gbps(2.0))
        assert nic.effective_rate(monitor) == pytest.approx(shared)
        assert nic.effective_rate(logger) == pytest.approx(shared)

    def test_explicit_shared_capacity_honoured(self, nic):
        monitor = catalog.get("monitor")
        nic.host(monitor)
        nic.set_demand(2.0, shared_capacity_bps=gbps(1.0))
        assert nic.effective_rate(monitor) == gbps(1.0)

    def test_shared_capacity_never_exceeds_native(self, nic):
        monitor = catalog.get("monitor")
        nic.host(monitor)
        nic.set_demand(1.1, shared_capacity_bps=gbps(100.0))
        assert nic.effective_rate(monitor) == monitor.nic_capacity_bps


class TestOccupancyAndServiceTime:
    def test_occupancy_is_bits_over_rate(self, nic):
        monitor = catalog.get("monitor")
        nic.host(monitor)
        assert nic.occupancy_time(monitor, 256) == \
            pytest.approx(2048 / gbps(3.2))

    def test_occupancy_requires_hosting(self, nic):
        with pytest.raises(PlacementError):
            nic.occupancy_time(catalog.get("monitor"), 256)

    def test_service_time_adds_pipeline_latency(self, nic):
        monitor = catalog.get("monitor")
        nic.host(monitor)
        assert nic.service_time(monitor, 256) == pytest.approx(
            nic.occupancy_time(monitor, 256) + monitor.base_latency_s)

    def test_overload_stretches_occupancy(self, nic):
        monitor = catalog.get("monitor")
        logger = catalog.get("logger")
        nic.host(monitor)
        nic.host(logger)
        before = nic.occupancy_time(monitor, 256)
        nic.set_demand(1.5)
        assert nic.occupancy_time(monitor, 256) > before


class TestSmartNICSpecifics:
    def test_line_rate_is_one_port(self, nic):
        assert nic.line_rate_bps == gbps(10.0)

    def test_clamp_offered_load(self, nic):
        assert nic.clamp_offered_load(gbps(25.0)) == gbps(10.0)
        assert nic.clamp_offered_load(gbps(2.0)) == gbps(2.0)

    def test_clamp_negative_rejected(self, nic):
        with pytest.raises(ConfigurationError):
            nic.clamp_offered_load(-1.0)

    def test_port_parameters_validated(self):
        with pytest.raises(ConfigurationError):
            SmartNIC("nic", port_rate_bps=0.0)
        with pytest.raises(ConfigurationError):
            SmartNIC("nic", num_ports=0)


class TestCPUSpecifics:
    def test_total_cores(self, cpu):
        assert cpu.total_cores == 12  # 2 sockets x 6 cores (paper testbed)

    def test_replica_capacity_decreases_with_hosting(self, cpu):
        assert cpu.replica_capacity() == 12
        cpu.host(catalog.get("monitor"))
        assert cpu.replica_capacity() == 11

    def test_parameters_validated(self):
        with pytest.raises(ConfigurationError):
            CPU("cpu", num_sockets=0)
        with pytest.raises(ConfigurationError):
            CPU("cpu", frequency_ghz=0.0)
