"""Built-in NF profile catalogs against the paper's Table 1."""

import pytest

from repro.chain import catalog
from repro.chain.nf import DeviceKind
from repro.errors import UnknownNFError
from repro.units import as_gbps, gbps


class TestTable1Literal:
    """The TABLE1 set must carry the paper's exact numbers."""

    @pytest.mark.parametrize("name,nic,cpu", [
        ("firewall", 10.0, 4.0),
        ("logger", 2.0, 4.0),
        ("monitor", 3.2, 10.0),
        ("load_balancer", 20.0, 4.0),  # paper: "> 10 Gbps" on the NIC
    ])
    def test_capacities(self, name, nic, cpu):
        profile = catalog.TABLE1[name]
        assert as_gbps(profile.nic_capacity_bps) == pytest.approx(nic)
        assert as_gbps(profile.cpu_capacity_bps) == pytest.approx(cpu)

    def test_contains_exactly_the_four_paper_nfs(self):
        assert sorted(catalog.TABLE1) == \
            ["firewall", "load_balancer", "logger", "monitor"]

    def test_logger_is_nic_bottleneck_in_table1(self):
        nic_caps = {n: p.nic_capacity_bps for n, p in catalog.TABLE1.items()}
        assert min(nic_caps, key=nic_caps.get) == "logger"


class TestFigure1Scenario:
    def test_monitor_is_nic_bottleneck(self):
        nic_caps = {n: p.nic_capacity_bps
                    for n, p in catalog.FIGURE1_SCENARIO.items()}
        assert min(nic_caps, key=nic_caps.get) == "monitor"

    def test_only_logger_differs_from_table1(self):
        for name, profile in catalog.FIGURE1_SCENARIO.items():
            if name == "logger":
                assert profile.nic_capacity_bps == gbps(4.0)
            else:
                assert profile == catalog.TABLE1[name]


class TestExtended:
    def test_extended_superset_of_table1(self):
        for name in catalog.TABLE1:
            assert name in catalog.EXTENDED

    def test_dpi_is_cpu_only(self):
        assert not catalog.EXTENDED["dpi"].nic_capable
        assert catalog.EXTENDED["dpi"].cpu_capable

    def test_all_profiles_have_positive_base_latency(self):
        for profile in catalog.EXTENDED.values():
            assert profile.base_latency_s > 0

    def test_stateless_nfs_marked(self):
        assert not catalog.EXTENDED["logger"].stateful
        assert not catalog.EXTENDED["gateway"].stateful
        assert catalog.EXTENDED["firewall"].stateful


class TestLookups:
    def test_get_known(self):
        assert catalog.get("monitor").name == "monitor"

    def test_get_unknown_raises_with_suggestions(self):
        with pytest.raises(UnknownNFError, match="known NFs"):
            catalog.get("quantum_router")

    def test_get_respects_profile_set(self):
        with pytest.raises(UnknownNFError):
            catalog.get("dpi", catalog.TABLE1)

    def test_names_sorted(self):
        names = catalog.names()
        assert names == sorted(names)
        assert "firewall" in names
