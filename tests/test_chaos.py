"""Chaos subsystem: schedules, invariant checks, campaigns."""

import pytest

from repro.chain.nf import DeviceKind
from repro.chaos import (ChaosConfig, ChaosRunner, ChaosSchedule,
                         check_invariants)
from repro.chaos.schedule import ChaosFault
from repro.errors import ConfigurationError
from repro.harness.scenarios import figure1
from repro.sim.engine import Engine
from repro.sim.faults import FaultInjector
from repro.sim.network import ChainNetwork
from repro.traffic.packet import Packet
from repro.units import gbps

NAMES = ["load_balancer", "logger", "monitor", "firewall"]


def drained_network(offered=gbps(1.0), count=300):
    server = figure1().build_server()
    server.refresh_demand(offered)
    engine = Engine()
    network = ChainNetwork(server, engine)
    for i in range(count):
        network.inject(Packet(seq=i, size_bytes=256, arrival_s=i * 2e-6))
    return server, engine, network


class TestChaosConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ChaosConfig(duration_s=0.0)
        with pytest.raises(ConfigurationError):
            ChaosConfig(max_crashes=-1)
        with pytest.raises(ConfigurationError):
            ChaosConfig(min_fault_duration_s=0.01,
                        max_fault_duration_s=0.005)
        with pytest.raises(ConfigurationError):
            ChaosConfig(brownout_scale_lo=0.0)
        with pytest.raises(ConfigurationError):
            ChaosConfig(migration_failure_rate=1.5)


class TestChaosSchedule:
    def test_deterministic_in_seed(self):
        a = ChaosSchedule.generate(NAMES, seed=5)
        b = ChaosSchedule.generate(NAMES, seed=5)
        assert [f.as_dict() for f in a.faults] == \
            [f.as_dict() for f in b.faults]

    def test_different_seeds_differ(self):
        fingerprints = {
            tuple(str(f.as_dict())
                  for f in ChaosSchedule.generate(NAMES, seed=s).faults)
            for s in range(10)}
        assert len(fingerprints) > 1

    def test_counts_and_windows_bounded(self):
        config = ChaosConfig()
        for seed in range(25):
            schedule = ChaosSchedule.generate(NAMES, config, seed=seed)
            by_kind = {}
            for fault in schedule.faults:
                by_kind[fault.kind] = by_kind.get(fault.kind, 0) + 1
                assert 0.0 < fault.at_s
                assert fault.at_s + fault.duration_s <= config.duration_s
                assert config.min_fault_duration_s <= fault.duration_s \
                    <= config.max_fault_duration_s
            assert by_kind.get("crash", 0) <= config.max_crashes
            assert by_kind.get("brownout", 0) <= config.max_brownouts
            assert by_kind.get("pcie-flap", 0) <= config.max_pcie_flaps
            assert by_kind.get("telemetry-dropout", 0) <= \
                config.max_telemetry_dropouts

    def test_apply_installs_every_fault(self):
        # Seed 7 draws a non-trivial composition (6 faults in the
        # shipped campaign); every one must land on the injector.
        schedule = ChaosSchedule.generate(NAMES, seed=7)
        assert schedule.faults
        __, engine, network = drained_network()
        injector = FaultInjector(network, engine)
        events = schedule.apply(injector)
        assert len(events) == len(schedule.faults)
        assert len(injector.events) == len(schedule.faults)

    def test_describe_lists_every_fault(self):
        schedule = ChaosSchedule.generate(NAMES, seed=7)
        assert len(schedule.describe().splitlines()) == len(schedule.faults)

    def test_empty_nf_list_rejected(self):
        with pytest.raises(ConfigurationError):
            ChaosSchedule.generate([], seed=0)


class TestInvariants:
    def test_clean_run_has_no_violations(self):
        server, engine, network = drained_network()
        engine.run()
        assert check_invariants(network, server) == []

    def test_paused_station_detected(self):
        server, engine, network = drained_network()
        engine.run()
        network.stations["monitor"].pause()
        violations = check_invariants(network, server)
        assert any(v.invariant == "station-resumed" for v in violations)

    def test_unreplayed_pause_buffer_detected(self):
        # Pausing before the run strands every packet in the pause
        # buffer: conservation must flag the undrained residue.
        server, engine, network = drained_network()
        network.stations["monitor"].pause()
        engine.run()
        violations = check_invariants(network, server)
        assert any(v.invariant == "packet-conservation"
                   for v in violations)

    def test_unrestored_brownout_detected(self):
        server, engine, network = drained_network()
        engine.run()
        server.nic.set_derate(0.5)
        violations = check_invariants(network, server)
        assert any(v.invariant == "faults-restored" for v in violations)

    def test_uncleared_flap_detected(self):
        server, engine, network = drained_network()
        engine.run()
        server.pcie.set_fault(1e-4)
        violations = check_invariants(network, server)
        assert any(v.invariant == "faults-restored" for v in violations)

    def test_stale_demand_detected(self):
        server, engine, network = drained_network()
        engine.run()
        # Pretend the last refresh used a different load than the one
        # the device demands were computed from.
        server.last_refresh_bps = gbps(1.5)
        violations = check_invariants(network, server)
        assert any(v.invariant == "demand-refreshed" for v in violations)


class TestResilienceKinds:
    def test_new_knob_validation(self):
        with pytest.raises(ConfigurationError):
            ChaosConfig(max_device_kills=-1)
        with pytest.raises(ConfigurationError):
            ChaosConfig(max_overload_windows=-1)
        with pytest.raises(ConfigurationError):
            ChaosConfig(overload_peak_bps=0.0)

    def test_enabling_new_kinds_preserves_legacy_draws(self):
        # Seed compatibility: the resilience kinds draw from the RNG
        # only when enabled, so a pre-existing seed must produce the
        # exact same crashes/brownouts/flaps/dropouts either way.
        for seed in range(10):
            base = ChaosSchedule.generate(NAMES, seed=seed)
            extended = ChaosSchedule.generate(
                NAMES, ChaosConfig(max_device_kills=2,
                                   max_overload_windows=2,
                                   resilient=True), seed=seed)
            legacy = [f.as_dict() for f in extended.faults
                      if f.kind not in ("device-kill", "overload")]
            assert legacy == [f.as_dict() for f in base.faults]

    def test_generated_kill_counts_bounded_and_smartnic_only(self):
        config = ChaosConfig(max_device_kills=2, max_overload_windows=2)
        for seed in range(25):
            schedule = ChaosSchedule.generate(NAMES, config, seed=seed)
            kills = [f for f in schedule.faults if f.kind == "device-kill"]
            overloads = [f for f in schedule.faults if f.kind == "overload"]
            assert len(kills) <= config.max_device_kills
            assert len(overloads) <= config.max_overload_windows
            assert all(f.device is DeviceKind.SMARTNIC for f in kills)
            assert all(f.magnitude == config.overload_peak_bps
                       for f in overloads)

    def test_device_kill_fault_applies_to_the_injector(self):
        schedule = ChaosSchedule(seed=0, config=ChaosConfig(), faults=[
            ChaosFault(kind="device-kill", at_s=1e-4, duration_s=0.0,
                       device=DeviceKind.SMARTNIC)])
        __, engine, network = drained_network()
        injector = FaultInjector(network, engine)
        events = schedule.apply(injector)
        assert len(events) == 1
        engine.run()
        assert injector.is_device_dead(DeviceKind.SMARTNIC)

    def test_overload_fault_is_runner_realised(self):
        # Overload is offered load, not a data-plane fault: apply()
        # installs nothing, the runner's traffic profile carries it.
        schedule = ChaosSchedule(seed=0, config=ChaosConfig(), faults=[
            ChaosFault(kind="overload", at_s=0.01, duration_s=0.005,
                       magnitude=2.4e9)])
        __, engine, network = drained_network()
        injector = FaultInjector(network, engine)
        assert schedule.apply(injector) == []
        assert injector.events == []


class TestCampaign:
    def test_runner_validation(self):
        with pytest.raises(ConfigurationError):
            ChaosRunner(runs=0)

    def test_campaign_is_deterministic(self):
        config = ChaosConfig(duration_s=0.02)
        first = ChaosRunner(runs=2, seed=41, config=config).run()
        second = ChaosRunner(runs=2, seed=41, config=config).run()
        assert first.ok and second.ok
        for a, b in zip(first.results, second.results):
            assert (a.injected, a.delivered, a.dropped, a.migrations,
                    a.attempts) == \
                (b.injected, b.delivered, b.dropped, b.migrations,
                 b.attempts)

    def test_acceptance_campaign_holds_all_invariants(self):
        # The PR's acceptance bar: >= 20 randomized scenarios, zero
        # invariant violations.  (Shorter scenarios than the CLI
        # default keep the suite's runtime in check; the CLI runs the
        # full-length campaign.)
        report = ChaosRunner(runs=20, seed=7,
                             config=ChaosConfig(duration_s=0.02)).run()
        assert report.runs == 20
        assert report.ok, report.render()
        # The campaign must actually exercise the fault machinery.
        assert sum(len(r.schedule.faults) for r in report.results) > 10
        assert sum(r.attempts for r in report.results) > 0
        rendered = report.render()
        assert "all invariants held" in rendered

    def test_resilient_campaign_holds_all_invariants(self):
        # With device kills and overload windows in the draw pool and
        # the ResilientController in charge, every scenario must still
        # end clean — recoveries terminal, protected classes untouched.
        config = ChaosConfig(duration_s=0.04, max_device_kills=1,
                             max_overload_windows=1, resilient=True)
        report = ChaosRunner(runs=5, seed=7, config=config).run()
        assert report.ok, report.render()
        # The campaign must actually exercise the new machinery.
        assert sum(r.recoveries for r in report.results) > 0
        assert sum(r.shed for r in report.results) > 0
        assert all(r.protected_shed == 0 for r in report.results)
        assert "shed" in report.render()

    def test_scenario_crash_is_recorded_as_violation(self, monkeypatch):
        # A chaos harness that dies on the bug it was built to surface
        # reports exit-code luck, not invariants: a raising scenario
        # must become a 'scenario-error' violation and the campaign
        # must carry on to the remaining seeds.
        runner = ChaosRunner(runs=2, seed=3,
                             config=ChaosConfig(duration_s=0.01))
        calls = []

        def explode(run_seed, schedule):
            calls.append(run_seed)
            if run_seed == 3:
                raise RuntimeError("boom")
            return original(run_seed, schedule)

        original = runner._execute
        monkeypatch.setattr(runner, "_execute", explode)
        report = runner.run()
        assert calls == [3, 4]
        assert not report.ok
        first = report.results[0]
        assert [v.invariant for v in first.violations] == ["scenario-error"]
        assert "RuntimeError" in first.violations[0].detail
        assert report.results[1].ok
