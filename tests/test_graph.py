"""Service graphs (DAGs) and graph PAM."""

import pytest

from repro.chain import catalog
from repro.chain.chain import ServiceChain
from repro.chain.graph import (EGRESS, INGRESS, Edge, GraphPlacement,
                               ServiceGraph)
from repro.chain.nf import DeviceKind, NFProfile
from repro.core import graph_pam
from repro.errors import (ConfigurationError, ScaleOutRequired,
                          UnknownNFError)
from repro.units import gbps

C = DeviceKind.CPU
S = DeviceKind.SMARTNIC


def nf(name, nic=4.0, cpu=4.0, **kw):
    return NFProfile(name=name, nic_capacity_bps=gbps(nic),
                     cpu_capacity_bps=gbps(cpu), **kw)


@pytest.fixture
def fork_graph():
    """classifier -> {ids (30%), fastpath (70%)} -> merger."""
    return ServiceGraph(
        [nf("classifier", nic=10), nf("ids", nic=1.5, cpu=3.0),
         nf("fastpath", nic=8), nf("merger", nic=10)],
        [Edge(INGRESS, "classifier"),
         Edge("classifier", "ids", 0.3),
         Edge("classifier", "fastpath", 0.7),
         Edge("ids", "merger"),
         Edge("fastpath", "merger"),
         Edge("merger", EGRESS)],
        name="fork")


class TestValidation:
    def test_cycle_rejected(self):
        with pytest.raises(ConfigurationError, match="cycle"):
            ServiceGraph(
                [nf("a"), nf("b")],
                [Edge(INGRESS, "a"), Edge("a", "b", 0.5),
                 Edge("a", EGRESS, 0.5), Edge("b", "a")])

    def test_unreachable_nf_rejected(self):
        with pytest.raises(ConfigurationError, match="unreachable"):
            ServiceGraph([nf("a"), nf("b")],
                         [Edge(INGRESS, "a"), Edge("a", EGRESS),
                          Edge("b", EGRESS)])

    def test_dead_end_rejected(self):
        with pytest.raises(ConfigurationError, match="no way out"):
            ServiceGraph([nf("a"), nf("b")],
                         [Edge(INGRESS, "a"), Edge("a", "b"),
                          Edge("a", EGRESS)])

    def test_split_fractions_must_sum_to_one(self):
        with pytest.raises(ConfigurationError, match="sum"):
            ServiceGraph(
                [nf("a"), nf("b"), nf("c")],
                [Edge(INGRESS, "a"), Edge("a", "b", 0.5),
                 Edge("a", "c", 0.6), Edge("b", EGRESS),
                 Edge("c", EGRESS)])

    def test_reserved_names_rejected(self):
        with pytest.raises(ConfigurationError, match="reserved"):
            ServiceGraph([nf(INGRESS)], [])

    def test_invalid_fraction(self):
        with pytest.raises(ConfigurationError):
            Edge("a", "b", 0.0)

    def test_self_loop_rejected(self):
        with pytest.raises(ConfigurationError):
            Edge("a", "a")


class TestShares:
    def test_branch_shares(self, fork_graph):
        assert fork_graph.node_share("classifier") == pytest.approx(1.0)
        assert fork_graph.node_share("ids") == pytest.approx(0.3)
        assert fork_graph.node_share("fastpath") == pytest.approx(0.7)
        assert fork_graph.node_share("merger") == pytest.approx(1.0)

    def test_edge_share(self, fork_graph):
        ids_edge = next(e for e in fork_graph.edges if e.dst == "ids")
        assert fork_graph.edge_share(ids_edge) == pytest.approx(0.3)

    def test_unknown_node(self, fork_graph):
        with pytest.raises(UnknownNFError):
            fork_graph.node_share("ghost")

    def test_chain_embedding_has_unit_shares(self):
        chain = ServiceChain([catalog.get("monitor"),
                              catalog.get("firewall")])
        graph = ServiceGraph.from_chain(chain)
        for name in graph.names():
            assert graph.node_share(name) == pytest.approx(1.0)


class TestGraphPlacement:
    def test_expected_crossings_weighted_by_share(self, fork_graph):
        # Only the IDS on the CPU: its in-edge (0.3) and out-edge (0.3)
        # cross, so expected crossings = 0.6.
        placement = GraphPlacement(fork_graph, {
            "classifier": S, "ids": C, "fastpath": S, "merger": S})
        assert placement.expected_crossings() == pytest.approx(0.6)

    def test_chain_embedding_matches_chain_crossings(self, fig1_placement):
        graph = ServiceGraph.from_chain(fig1_placement.chain)
        graph_placement = GraphPlacement(
            graph, fig1_placement.as_dict(),
            ingress=fig1_placement.ingress, egress=fig1_placement.egress)
        assert graph_placement.expected_crossings() == pytest.approx(
            fig1_placement.pcie_crossings())

    def test_crossing_delta(self, fork_graph):
        placement = GraphPlacement(fork_graph, {
            "classifier": S, "ids": C, "fastpath": S, "merger": S})
        # Moving the merger to the CPU: ids->merger stops crossing
        # (-0.3), fastpath->merger starts (+0.7), merger->egress(S)
        # starts (+1.0): delta = +1.4.
        assert placement.crossing_delta("merger", C) == pytest.approx(1.4)

    def test_incapable_assignment_rejected(self):
        graph = ServiceGraph(
            [nf("a"), nf("d", nic_capable=False)],
            [Edge(INGRESS, "a"), Edge("a", "d"), Edge("d", EGRESS)])
        with pytest.raises(ConfigurationError, match="cannot run"):
            GraphPlacement(graph, {"a": S, "d": S})

    def test_move_to_same_device_rejected(self, fork_graph):
        placement = GraphPlacement(fork_graph, {
            "classifier": S, "ids": C, "fastpath": S, "merger": S})
        with pytest.raises(ConfigurationError, match="already"):
            placement.moved("classifier", S)


class TestGraphPAM:
    def overloaded_placement(self, fork_graph):
        # All on NIC; host-terminated egress so the merger is a border.
        return GraphPlacement(fork_graph, {
            "classifier": S, "ids": S, "fastpath": S, "merger": S},
            egress=C)

    def test_no_overload_is_noop(self, fork_graph):
        placement = self.overloaded_placement(fork_graph)
        assert graph_pam.select(placement, gbps(0.5)).is_noop

    def test_candidates_respect_expected_crossings(self, fork_graph):
        placement = self.overloaded_placement(fork_graph)
        # NIC util at 2.2 Gbps: classifier 0.22 + ids 0.3*2.2/1.5=0.44
        # + fastpath 0.7*2.2/8=0.1925 + merger 0.22 = 1.07 > 1.
        plan = graph_pam.select(placement, gbps(2.2))
        assert plan.alleviates
        for action in plan.actions:
            assert action.crossing_delta <= 1e-9

    def test_migrating_ids_would_add_crossings_so_merger_moves(
            self, fork_graph):
        placement = self.overloaded_placement(fork_graph)
        plan = graph_pam.select(placement, gbps(2.2))
        # ids has the smallest theta^S (1.5) but sits mid-graph
        # (moving it costs +0.6 crossings); the merger borders the
        # host-side egress and moves for free.
        assert "ids" not in plan.migrated_names
        assert "merger" in plan.migrated_names

    def test_raises_when_hopeless(self, fork_graph):
        placement = self.overloaded_placement(fork_graph)
        with pytest.raises(ScaleOutRequired):
            graph_pam.select(placement, gbps(9.0))

    def test_chain_embedding_agrees_with_chain_pam(self, fig1_placement,
                                                   fig1_throughput):
        from repro.core.pam import select as chain_select
        graph = ServiceGraph.from_chain(fig1_placement.chain)
        graph_placement = GraphPlacement(
            graph, fig1_placement.as_dict(),
            ingress=fig1_placement.ingress, egress=fig1_placement.egress)
        graph_plan = graph_pam.select(graph_placement, fig1_throughput)
        chain_plan = chain_select(fig1_placement, fig1_throughput)
        assert graph_plan.migrated_names == chain_plan.migrated_names
