"""Deterministic snapshot/restore: the bit-exact resume guarantees.

The core property (hypothesis-driven): snapshot a chaos scenario at a
mid-run monitor tick, rebuild the identical seeded scenario fresh,
fast-forward-restore it, and the completed run's full
``(time_s, priority, seq)`` event trace and final metrics equal the
uninterrupted run's — for randomized seeds, checkpoint intervals, and
both the hardened and resilient control planes.
"""

import random
import tempfile

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.chaos.runner import ChaosRunner
from repro.chaos.schedule import ChaosConfig
from repro.checkpoint import (CheckpointManager, SimulationSnapshot,
                              SnapshotRegistry, resume_simulation,
                              rng_state_from_json, rng_state_to_json,
                              simulation_registry)
from repro.errors import CheckpointError
from repro.resilience.scenarios import resume_scenario, run_scenario


def _controller_of(scenario):
    return scenario.resilient if scenario.resilient is not None \
        else scenario.hardened


def _metrics_key(result):
    return (result.injected, result.delivered, result.dropped,
            result.filtered, result.shed,
            None if result.latency is None
            else (result.latency.mean_s, result.latency.p99_s),
            result.throughput.goodput_bps,
            result.migration_times_s, result.migrated_nfs,
            str(result.final_placement))


class TestSnapshotRoundTripProperty:
    @given(seed=st.integers(min_value=0, max_value=10_000),
           every=st.integers(min_value=2, max_value=7),
           resilient=st.booleans())
    @settings(max_examples=5, deadline=None)
    def test_resumed_run_replays_identical_trace_and_metrics(
            self, seed, every, resilient):
        config = ChaosConfig(duration_s=0.02, resilient=resilient)
        runner = ChaosRunner(runs=1, seed=seed, config=config)
        with tempfile.TemporaryDirectory() as directory:
            original = runner.build_scenario(seed)
            registry = simulation_registry(
                original.sim, controller=_controller_of(original),
                injector=original.injector)
            manager = CheckpointManager(
                original.sim, registry, directory, every=every)
            trace_a = []
            original.sim.engine.trace_to(trace_a)
            result_a = original.sim.run()
            assume(manager.written)  # long enough to hit a checkpoint
            snapshot = SimulationSnapshot.load(manager.written[-1])

            fresh = runner.build_scenario(seed)
            fresh_registry = simulation_registry(
                fresh.sim, controller=_controller_of(fresh),
                injector=fresh.injector)
            trace_b = []
            fresh.sim.engine.trace_to(trace_b)
            resume_simulation(snapshot, fresh.sim, fresh_registry)
            result_b = fresh.sim.run()

        # The resume replays the deterministic prefix, so with the trace
        # observer attached before replay, the FULL traces must match.
        assert trace_a == trace_b
        assert _metrics_key(result_a) == _metrics_key(result_b)


class TestSnapshotUnits:
    def test_rng_state_round_trips(self):
        rng = random.Random(1234)
        rng.random()
        state = rng.getstate()
        assert rng_state_from_json(rng_state_to_json(state)) == state
        # And the restored generator produces the same next draw.
        restored = random.Random(0)
        restored.setstate(rng_state_from_json(rng_state_to_json(state)))
        reference = random.Random(1234)
        reference.random()
        assert restored.random() == reference.random()

    def test_malformed_rng_state_rejected(self):
        with pytest.raises(CheckpointError):
            rng_state_from_json([3, [1, 2, 3]])  # missing gauss_next

    def test_snapshot_file_round_trips(self, tmp_path):
        snapshot = SimulationSnapshot(
            meta={"scenario": "x"}, time_s=0.5, events_processed=42,
            tick_index=3, components={"engine": {"seq_counter": 7}})
        path = str(tmp_path / "snap.json")
        snapshot.save(path)
        loaded = SimulationSnapshot.load(path)
        assert loaded.meta == snapshot.meta
        assert loaded.time_s == snapshot.time_s
        assert loaded.events_processed == 42
        assert loaded.components == snapshot.components

    def test_tampered_snapshot_rejected(self, tmp_path):
        snapshot = SimulationSnapshot(meta={}, time_s=0.1,
                                      events_processed=1, tick_index=1,
                                      components={})
        path = str(tmp_path / "snap.json")
        snapshot.save(path)
        text = (tmp_path / "snap.json").read_text()
        (tmp_path / "snap.json").write_text(
            text.replace('"events_processed":1', '"events_processed":2'))
        with pytest.raises(CheckpointError):
            SimulationSnapshot.load(path)

    def test_registry_rejects_duplicate_names(self):
        registry = SnapshotRegistry()

        class Component:
            def snapshot_state(self):
                return {}

            def restore_state(self, state):
                pass

        registry.register("c", Component())
        with pytest.raises(CheckpointError):
            registry.register("c", Component())

    def test_registry_verify_reports_divergence(self):
        registry = SnapshotRegistry()

        class Component:
            value = 1

            def snapshot_state(self):
                return {"value": self.value}

            def restore_state(self, state):
                self.value = state["value"]

        component = Component()
        registry.register("c", component)
        expected = registry.capture()
        component.value = 2
        with pytest.raises(CheckpointError, match="diverged"):
            registry.verify(expected)

    def test_verify_exclude_ignores_context_keys(self):
        registry = SnapshotRegistry()

        class Component:
            noise = 1

            def snapshot_state(self):
                return {"noise": self.noise}

            def restore_state(self, state):
                pass

        component = Component()
        registry.register("c", component, verify_exclude=("noise",))
        expected = registry.capture()
        component.noise = 99
        registry.verify(expected)  # does not raise

    def test_resume_requires_fresh_engine(self):
        config = ChaosConfig(duration_s=0.01)
        runner = ChaosRunner(runs=1, seed=3, config=config)
        scenario = runner.build_scenario(3)
        scenario.sim.run()
        snapshot = SimulationSnapshot(meta={}, time_s=0.0,
                                      events_processed=5, tick_index=1,
                                      components={})
        registry = simulation_registry(scenario.sim)
        with pytest.raises(CheckpointError, match="freshly built"):
            resume_simulation(snapshot, scenario.sim, registry)

    def test_manager_rejects_nonpositive_interval(self):
        config = ChaosConfig(duration_s=0.01)
        scenario = ChaosRunner(runs=1, seed=3,
                               config=config).build_scenario(3)
        registry = simulation_registry(scenario.sim)
        with pytest.raises(CheckpointError):
            CheckpointManager(scenario.sim, registry, ".", every=0)


class TestResilienceScenarioResume:
    @pytest.mark.parametrize("name", ["device-kill", "overload"])
    def test_scenario_resumes_bit_exact(self, name, tmp_path):
        reference = run_scenario(name, seed=7, duration_s=0.03)
        checkpointed = run_scenario(name, seed=7, duration_s=0.03,
                                    checkpoint_every=5,
                                    checkpoint_dir=str(tmp_path))
        assert checkpointed.checkpoints
        # Checkpointing itself must not perturb the run.
        assert _metrics_key(reference.result) == \
            _metrics_key(checkpointed.result)
        resumed = resume_scenario(checkpointed.checkpoints[0])
        assert _metrics_key(reference.result) == \
            _metrics_key(resumed.result)
        assert [(t.at_s, t.entity, t.state.value)
                for t in reference.controller.health.transitions] == \
               [(t.at_s, t.entity, t.state.value)
                for t in resumed.controller.health.transitions]
