"""Batch suite runner with baseline regression checking."""

import json

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.harness.suite import (baseline_path, check_suite, discover,
                                 render_checks, run_suite)

CONFIG_A = {
    "name": "suite-a",
    "chain": [
        {"nf": "load_balancer", "device": "cpu"},
        {"nf": "logger", "device": "smartnic"},
        {"nf": "monitor", "device": "smartnic"},
        {"nf": "firewall", "device": "smartnic"},
    ],
    "egress": "cpu",
    "workload": {"kind": "cbr", "rate_gbps": 1.4,
                 "packet_bytes": 256, "duration_s": 0.004},
    "policy": "noop",
}

CONFIG_B = dict(CONFIG_A, name="suite-b",
                workload={"kind": "cbr", "rate_gbps": 1.8,
                          "packet_bytes": 256, "duration_s": 0.004},
                policy="pam")


@pytest.fixture
def suite_dir(tmp_path):
    (tmp_path / "a.json").write_text(json.dumps(CONFIG_A))
    (tmp_path / "b.json").write_text(json.dumps(CONFIG_B))
    return tmp_path


class TestDiscovery:
    def test_finds_configs_not_records(self, suite_dir):
        (suite_dir / "a.result.json").write_text("{}")
        configs = discover(suite_dir)
        assert [p.name for p in configs] == ["a.json", "b.json"]

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            discover(tmp_path)

    def test_non_directory_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            discover(tmp_path / "missing")

    def test_baseline_path(self, suite_dir):
        assert baseline_path(suite_dir / "a.json").name == "a.result.json"


class TestRunAndCheck:
    def test_run_writes_baselines(self, suite_dir):
        entries = run_suite(suite_dir)
        assert len(entries) == 2
        for entry in entries:
            assert entry.result_path.exists()

    def test_check_passes_against_fresh_baselines(self, suite_dir):
        run_suite(suite_dir)
        checks = check_suite(suite_dir)
        assert all(check.ok for check in checks)

    def test_check_flags_missing_baseline(self, suite_dir):
        checks = check_suite(suite_dir)
        assert all(check.missing_baseline for check in checks)
        assert not any(check.ok for check in checks)

    def test_check_flags_structural_drift(self, suite_dir):
        run_suite(suite_dir)
        # Corrupt one baseline's placement: the check must fail.
        record_path = baseline_path(suite_dir / "b.json")
        data = json.loads(record_path.read_text())
        data["placement"]["logger"] = "smartnic"  # PAM moved it to cpu
        record_path.write_text(json.dumps(data))
        checks = {c.config_path.name: c for c in check_suite(suite_dir)}
        assert checks["a.json"].ok
        assert not checks["b.json"].ok
        assert any(m.field_name == "placement"
                   for m in checks["b.json"].mismatches)

    def test_render_checks_summarises(self, suite_dir):
        run_suite(suite_dir)
        text = render_checks(check_suite(suite_dir))
        assert "0 failing" in text


class TestSuiteCli:
    def test_run_then_check_via_cli(self, suite_dir, capsys):
        assert main(["suite", str(suite_dir)]) == 0
        assert "baselines written" in capsys.readouterr().out
        assert main(["suite", str(suite_dir), "--check"]) == 0
        assert "0 failing" in capsys.readouterr().out

    def test_check_without_baselines_fails(self, suite_dir, capsys):
        assert main(["suite", str(suite_dir), "--check"]) == 1
        assert "NO BASELINE" in capsys.readouterr().out
