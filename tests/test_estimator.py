"""Load-estimate smoothing (EWMA / Holt) and the smoothed controller."""

import pytest

from repro.core.planner import MigrationController, PAMPolicy
from repro.errors import ConfigurationError
from repro.harness.scenarios import figure1
from repro.sim.runner import SimulationRunner
from repro.telemetry.estimator import (EwmaEstimator, HoltEstimator,
                                       SmoothedController)
from repro.traffic.packet import FixedSize
from repro.traffic.patterns import ProfiledArrivals, sawtooth
from repro.units import gbps


class TestEwma:
    def test_first_sample_is_the_level(self):
        estimator = EwmaEstimator()
        assert estimator.update(5.0) == 5.0

    def test_smooths_toward_new_samples(self):
        estimator = EwmaEstimator(alpha=0.5)
        estimator.update(0.0)
        assert estimator.update(10.0) == 5.0
        assert estimator.update(10.0) == 7.5

    def test_alpha_one_is_passthrough(self):
        estimator = EwmaEstimator(alpha=1.0)
        estimator.update(1.0)
        assert estimator.update(42.0) == 42.0

    def test_damps_a_spike(self):
        estimator = EwmaEstimator(alpha=0.2)
        for _ in range(10):
            estimator.update(1.0)
        assert estimator.update(10.0) < 3.0

    def test_value_before_samples_raises(self):
        with pytest.raises(ConfigurationError):
            EwmaEstimator().value

    def test_reset(self):
        estimator = EwmaEstimator()
        estimator.update(5.0)
        estimator.reset()
        with pytest.raises(ConfigurationError):
            estimator.value

    def test_alpha_validated(self):
        with pytest.raises(ConfigurationError):
            EwmaEstimator(alpha=0.0)


class TestHolt:
    def test_tracks_a_ramp_with_less_lag_than_ewma(self):
        holt = HoltEstimator(alpha=0.4, beta=0.3)
        ewma = EwmaEstimator(alpha=0.4)
        samples = [float(i) for i in range(20)]
        for sample in samples:
            holt.update(sample)
            ewma.update(sample)
        true_value = samples[-1]
        assert abs(holt.value - true_value) < abs(ewma.value - true_value)

    def test_forecast_leads_a_ramp(self):
        holt = HoltEstimator()
        for i in range(20):
            holt.update(float(i))
        assert holt.forecast(1) > holt.value

    def test_forecast_zero_steps_is_level(self):
        holt = HoltEstimator()
        holt.update(3.0)
        assert holt.forecast(0) == holt.value

    def test_flat_series_has_no_trend(self):
        holt = HoltEstimator()
        for _ in range(10):
            holt.update(7.0)
        assert holt.forecast(5) == pytest.approx(7.0)

    def test_negative_steps_rejected(self):
        holt = HoltEstimator()
        holt.update(1.0)
        with pytest.raises(ConfigurationError):
            holt.forecast(-1)


class TestSmoothedController:
    def run_sawtooth(self, controller, duration=0.04):
        # Load oscillating 1.3..2.0 Gbps every 4 ms: raw windows flap
        # around the 1.509 knee.
        profile = sawtooth(gbps(1.3), gbps(2.0), period_s=0.004)
        generator = ProfiledArrivals(profile, FixedSize(256), duration,
                                     seed=9, jitter=False)
        server = figure1().build_server()
        return SimulationRunner(server, generator, controller,
                                monitor_period_s=0.002).run()

    def test_smoothing_reduces_scaleout_noise(self):
        # Raw control: every tooth's peak window exceeds even the CPU's
        # ability (2.0 Gbps fails Eq. 2), spamming scale-out events.
        raw_controller = MigrationController(PAMPolicy())
        self.run_sawtooth(raw_controller)
        smoothed_inner = MigrationController(PAMPolicy())
        smoothed = SmoothedController(smoothed_inner,
                                      EwmaEstimator(alpha=0.2))
        self.run_sawtooth(smoothed)
        assert len(smoothed_inner.scaleout_events) <= \
            len(raw_controller.scaleout_events)

    def test_migrations_visible_through_wrapper(self):
        inner = MigrationController(PAMPolicy())
        smoothed = SmoothedController(inner, EwmaEstimator(alpha=0.5))
        result = self.run_sawtooth(smoothed)
        assert result.migrated_nfs == [r.nf_name
                                       for r in smoothed.migrations]
