"""SFC ordering constraints."""

import pytest

from repro.chain import catalog
from repro.chain.chain import ServiceChain
from repro.chain.constraints import (DEFAULT_SFC_RULES, AtMostOne,
                                     MustBeEdge, MustPrecede, check_chain,
                                     validate_chain)
from repro.chain.nf import NFKind
from repro.errors import ConfigurationError


def chain_of(*names):
    return ServiceChain([catalog.get(name) for name in names])


class TestMustPrecede:
    rule = MustPrecede(NFKind.VPN, NFKind.IDS, reason="ciphertext")

    def test_correct_order_passes(self):
        assert self.rule.check(chain_of("vpn", "ids")) == []

    def test_reversed_order_flagged(self):
        violations = self.rule.check(chain_of("ids", "vpn"))
        assert len(violations) == 1
        assert "ciphertext" in violations[0].detail

    def test_absent_kinds_pass(self):
        assert self.rule.check(chain_of("monitor", "firewall")) == []

    def test_applies_to_renamed_instances(self):
        vpn = catalog.get("vpn").renamed("tunnel-endpoint")
        ids = catalog.get("ids").renamed("snort")
        violations = self.rule.check(ServiceChain([ids, vpn]))
        assert violations
        assert "tunnel-endpoint" in violations[0].detail


class TestAtMostOne:
    def test_single_passes(self):
        assert AtMostOne(NFKind.NAT).check(chain_of("nat", "monitor")) == []

    def test_duplicates_flagged(self):
        nat = catalog.get("nat")
        chain = ServiceChain([nat, nat.renamed("nat2")])
        violations = AtMostOne(NFKind.NAT).check(chain)
        assert violations
        assert "nat2" in violations[0].detail


class TestMustBeEdge:
    def test_head_and_tail_pass(self):
        rule = MustBeEdge(NFKind.LOAD_BALANCER)
        assert rule.check(chain_of("load_balancer", "monitor")) == []
        assert rule.check(chain_of("monitor", "load_balancer")) == []

    def test_mid_chain_flagged(self):
        rule = MustBeEdge(NFKind.LOAD_BALANCER)
        violations = rule.check(
            chain_of("monitor", "load_balancer", "firewall"))
        assert violations


class TestDefaultRules:
    def test_figure1_chain_is_compliant(self, fig1_chain):
        assert check_chain(fig1_chain) == []

    def test_preset_scenarios_are_compliant(self):
        from repro.harness.scenarios import (datacenter_inline,
                                             enterprise_edge, long_chain)
        for scenario in (datacenter_inline(), enterprise_edge(),
                         long_chain(6)):
            assert check_chain(scenario.chain) == [], scenario.name

    def test_ciphertext_inspection_rejected(self):
        chain = chain_of("ids", "vpn")
        violations = check_chain(chain)
        assert any("ciphertext" in v.detail for v in violations)

    def test_validate_raises_with_every_violation(self):
        chain = chain_of("ids", "vpn", "cache", "firewall")
        with pytest.raises(ConfigurationError) as excinfo:
            validate_chain(chain)
        message = str(excinfo.value)
        assert "ciphertext" in message
        assert "cache" in message

    def test_custom_rule_list(self):
        chain = chain_of("ids", "vpn")
        # With no rules, anything goes.
        assert check_chain(chain, rules=()) == []
