"""Pull-back (reverse PAM) selection."""

import pytest

from repro.chain.nf import DeviceKind
from repro.core.pam import select as pam_select
from repro.core.reverse import (PullbackConfig, _pullback_candidates,
                                select_pullback)
from repro.errors import ConfigurationError
from repro.resources.model import LoadModel
from repro.units import gbps

C = DeviceKind.CPU
S = DeviceKind.SMARTNIC


@pytest.fixture
def after_pam(fig1_placement):
    """The placement after PAM pushed logger aside at 1.8 Gbps."""
    return pam_select(fig1_placement, gbps(1.8)).after


class TestCandidates:
    def test_pushed_nf_is_a_candidate(self, after_pam):
        assert "logger" in _pullback_candidates(after_pam)

    def test_mid_cpu_segment_nf_is_not(self, fig1_placement):
        # Moving the LB to the NIC would change crossings (+2: it sits
        # between the wire... actually LB's upstream is the wire(S) and
        # downstream logger(S): moving LB to S *removes* 2 crossings,
        # so it IS a candidate. Verify via crossing_delta directly.
        for name in _pullback_candidates(fig1_placement):
            assert fig1_placement.crossing_delta(name, S) <= 0

    def test_sorted_by_descending_nic_capacity(self, after_pam):
        names = _pullback_candidates(after_pam)
        caps = [after_pam.chain.get(n).nic_capacity_bps for n in names]
        assert caps == sorted(caps, reverse=True)


class TestSelection:
    def test_pulls_logger_back_when_quiet(self, after_pam):
        plan = select_pullback(after_pam, gbps(0.8))
        assert "logger" in plan.migrated_names
        assert plan.total_crossing_delta <= 0

    def test_respects_nic_target(self, after_pam):
        plan = select_pullback(after_pam, gbps(0.8),
                               PullbackConfig(nic_target=0.8,
                                              trigger_below=0.5))
        load = LoadModel(plan.after, gbps(0.8))
        assert load.nic_load().utilisation < 0.8

    def test_no_pullback_while_busy(self, after_pam):
        # At 1.6 Gbps the NIC sits at 0.66 > trigger_below.
        plan = select_pullback(after_pam, gbps(1.6))
        assert plan.is_noop
        assert "too busy" in plan.notes[0]

    def test_pullback_never_overloads_nic(self, after_pam):
        for rate in (0.4, 0.6, 0.8, 1.0):
            plan = select_pullback(after_pam, gbps(rate))
            load = LoadModel(plan.after, gbps(rate))
            assert load.nic_load().utilisation < 1.0

    def test_roundtrip_pam_then_pullback_restores_offload(self,
                                                          fig1_placement):
        pushed = pam_select(fig1_placement, gbps(1.8)).after
        pulled = select_pullback(pushed, gbps(0.8)).after
        # Everything that can sit on the NIC is back on it.
        assert pulled.device_of("logger") is S

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            PullbackConfig(nic_target=0.0)
        with pytest.raises(ConfigurationError):
            PullbackConfig(nic_target=0.5, trigger_below=0.9)
