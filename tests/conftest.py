"""Shared fixtures for the PAM reproduction test suite."""

from __future__ import annotations

import pytest

from repro.chain import ChainBuilder, DeviceKind, catalog
from repro.devices.server import PAPER_TESTBED
from repro.harness.scenarios import (FIGURE1_THROUGHPUT_BPS, figure1,
                                     long_chain)
from repro.units import gbps


@pytest.fixture
def fig1_scenario():
    """The canonical Figure 1 scenario (fresh each test)."""
    return figure1()


@pytest.fixture
def fig1_placement(fig1_scenario):
    """Just the Figure 1 placement."""
    return fig1_scenario.placement


@pytest.fixture
def fig1_chain(fig1_scenario):
    """Just the Figure 1 chain."""
    return fig1_scenario.chain


@pytest.fixture
def fig1_throughput():
    """The canonical overload throughput (1.8 Gbps)."""
    return FIGURE1_THROUGHPUT_BPS


@pytest.fixture
def fig1_server(fig1_scenario):
    """A paper-testbed server with the Figure 1 placement installed."""
    return fig1_scenario.build_server()


@pytest.fixture
def long6_scenario():
    """A six-NF ablation chain with a large NIC segment."""
    return long_chain(6)


@pytest.fixture
def nic_only_placement():
    """A three-NF chain entirely on the SmartNIC (no borders to the CPU
    except via the host-terminated egress)."""
    _, placement = (
        ChainBuilder("nic-only", profiles=catalog.FIGURE1_SCENARIO)
        .nic("logger")
        .nic("monitor")
        .nic("firewall")
        .build())
    return placement
