"""The PAM selection algorithm against the paper's worked example."""

import pytest

from repro.chain import catalog
from repro.chain.builder import ChainBuilder
from repro.chain.nf import DeviceKind
from repro.core.pam import PAMConfig, select
from repro.core.feasibility import FeasibilityConfig
from repro.errors import ScaleOutRequired
from repro.resources.model import LoadModel
from repro.units import gbps

C = DeviceKind.CPU
S = DeviceKind.SMARTNIC


class TestFigure1Story:
    def test_migrates_exactly_logger(self, fig1_placement, fig1_throughput):
        plan = select(fig1_placement, fig1_throughput)
        assert plan.migrated_names == ["logger"]
        assert plan.alleviates

    def test_no_new_crossings(self, fig1_placement, fig1_throughput):
        plan = select(fig1_placement, fig1_throughput)
        assert plan.total_crossing_delta == 0
        assert plan.after.pcie_crossings() == \
            fig1_placement.pcie_crossings()

    def test_post_conditions_of_paper_equations(self, fig1_placement,
                                                fig1_throughput):
        plan = select(fig1_placement, fig1_throughput)
        after = LoadModel(plan.after, fig1_throughput)
        assert after.nic_load().utilisation < 1.0  # Eq. 3
        assert after.cpu_load().utilisation < 1.0  # Eq. 2

    def test_policy_label(self, fig1_placement, fig1_throughput):
        assert select(fig1_placement, fig1_throughput).policy == "pam"


class TestNoOverload:
    def test_returns_empty_plan(self, fig1_placement):
        plan = select(fig1_placement, gbps(1.0))
        assert plan.is_noop
        assert plan.alleviates
        assert "not overloaded" in plan.notes[0]


class TestSelectionRule:
    def test_picks_min_capacity_border_not_min_capacity_overall(self):
        # monitor (3.2) has the lowest theta^S but is mid-segment;
        # PAM must pick among borders {logger: 4, firewall: 10}.
        scenario_placement = (
            ChainBuilder("f", profiles=catalog.FIGURE1_SCENARIO)
            .cpu("load_balancer").nic("logger").nic("monitor")
            .nic("firewall").build(egress=C))[1]
        plan = select(scenario_placement, gbps(1.8))
        assert plan.migrated_names[0] == "logger"

    def test_cascades_when_one_border_is_not_enough(self):
        # Make the NIC so hot that shedding logger alone is not enough:
        # at 2.3 Gbps: util = 2.3*0.6625 = 1.52; without logger
        # 2.3*0.4125 = 0.95 < 1 -> single migration still suffices.
        # At 2.45: without logger 1.01 > 1 -> must also shed monitor,
        # but CPU: lb 0.61 + logger 0.61 = 1.22 > 1 already fails Eq.2.
        # Use a relaxed CPU (higher capacities) to let the cascade run.
        profiles = dict(catalog.FIGURE1_SCENARIO)
        lb = profiles["load_balancer"]
        from dataclasses import replace
        profiles["load_balancer"] = replace(lb, cpu_capacity_bps=gbps(40.0))
        profiles["logger"] = replace(profiles["logger"],
                                     cpu_capacity_bps=gbps(40.0))
        profiles["monitor"] = replace(profiles["monitor"],
                                      cpu_capacity_bps=gbps(40.0))
        placement = (ChainBuilder("f", profiles=profiles)
                     .cpu("load_balancer").nic("logger").nic("monitor")
                     .nic("firewall").build(egress=C))[1]
        plan = select(placement, gbps(2.45))
        assert plan.migrated_names == ["logger", "monitor"]
        assert plan.alleviates
        assert plan.total_crossing_delta == 0  # still border-only moves

    def test_eq2_rejection_falls_back_to_other_border(self):
        # Shrink logger's CPU capacity so Eq. 2 rejects it; PAM must
        # fall back to the other border (firewall).
        from dataclasses import replace
        profiles = dict(catalog.FIGURE1_SCENARIO)
        profiles["logger"] = replace(profiles["logger"],
                                     cpu_capacity_bps=gbps(2.0))
        placement = (ChainBuilder("f", profiles=profiles)
                     .cpu("load_balancer").nic("logger").nic("monitor")
                     .nic("firewall").build(egress=C))[1]
        # At 1.7: logger on CPU would give 0.425 + 0.85 = 1.275 -> reject;
        # firewall passes Eq. 2 (0.85) and its removal passes Eq. 3
        # (1.7 * (1/4 + 1/3.2) = 0.956 < 1).
        plan = select(placement, gbps(1.7))
        assert "logger" not in plan.migrated_names
        assert plan.migrated_names[0] == "firewall"
        assert any("eq2 rejects logger" in note for note in plan.notes)


class TestScaleOutEscalation:
    def test_raises_when_cpu_cannot_absorb(self, fig1_placement):
        # 2.0 Gbps: every border fails Eq. 2 or Eq. 3 never holds.
        with pytest.raises(ScaleOutRequired) as excinfo:
            select(fig1_placement, gbps(2.2))
        assert excinfo.value.nic_utilisation > 1.0

    def test_partial_plan_when_not_strict(self, fig1_placement):
        plan = select(fig1_placement, gbps(2.2),
                      PAMConfig(strict=False))
        assert not plan.alleviates

    def test_epsilon_tightens_selection(self, fig1_placement):
        # With a 12% margin the CPU check 0.9 < 0.88 fails for logger,
        # and firewall (0.45 + 0.45 = 0.9) fails equally; Eq.3 with
        # margin also never holds -> scale out.
        config = PAMConfig(feasibility=FeasibilityConfig(epsilon=0.12))
        with pytest.raises(ScaleOutRequired):
            select(fig1_placement, gbps(1.8), config)


class TestPlanIntegrity:
    def test_only_border_nfs_migrate(self, fig1_placement, fig1_throughput):
        from repro.core.border import border_sets
        plan = select(fig1_placement, fig1_throughput)
        placement = fig1_placement
        for action in plan.actions:
            assert action.nf_name in border_sets(placement).all
            placement = placement.moved(action.nf_name, action.target)

    def test_crossing_delta_never_positive(self, fig1_placement,
                                           fig1_throughput):
        plan = select(fig1_placement, fig1_throughput)
        assert all(action.crossing_delta <= 0 for action in plan.actions)
