"""ChainNetwork: routing, crossings, endpoints, conservation."""

import pytest

from repro.chain import catalog
from repro.chain.builder import ChainBuilder
from repro.chain.nf import DeviceKind
from repro.devices.server import PAPER_TESTBED
from repro.sim.engine import Engine
from repro.sim.network import ChainNetwork
from repro.traffic.packet import Packet

C = DeviceKind.CPU
S = DeviceKind.SMARTNIC


def build_network(placement):
    server = PAPER_TESTBED.build()
    server.install(placement)
    engine = Engine()
    return server, engine, ChainNetwork(server, engine)


def run_one_packet(network, engine, size=256):
    packet = Packet(seq=0, size_bytes=size, arrival_s=0.0)
    network.inject(packet)
    engine.run()
    return packet


@pytest.fixture
def fig1_net(fig1_placement):
    return build_network(fig1_placement)


class TestDelivery:
    def test_packet_traverses_whole_chain(self, fig1_net):
        server, engine, network = fig1_net
        packet = run_one_packet(network, engine)
        assert packet.delivered
        assert len(network.delivered) == 1

    def test_crossings_match_placement(self, fig1_net):
        server, engine, network = fig1_net
        run_one_packet(network, engine)
        assert server.pcie.stats.crossings == \
            server.placement.pcie_crossings() == 3

    def test_latency_equals_component_sum(self, fig1_net):
        server, engine, network = fig1_net
        packet = run_one_packet(network, engine)
        record = network.ledger.record_for(0)
        assert packet.latency_s == pytest.approx(record.total)

    def test_pcie_component_matches_crossing_times(self, fig1_net):
        server, engine, network = fig1_net
        run_one_packet(network, engine)
        record = network.ledger.record_for(0)
        assert record.pcie == pytest.approx(
            3 * server.pcie.crossing_time(256))

    def test_processing_component_sums_all_nfs(self, fig1_net):
        server, engine, network = fig1_net
        run_one_packet(network, engine)
        record = network.ledger.record_for(0)
        expected = sum(
            server.device(server.placement.device_of(nf.name))
                  .service_time(nf, 256)
            for nf in server.placement.chain)
        assert record.processing == pytest.approx(expected)


class TestEndpoints:
    def test_host_terminated_chain_has_no_egress_wire(self, fig1_placement):
        # fig1 egress is CPU: exactly one wire serialisation (ingress).
        server, engine, network = build_network(fig1_placement)
        run_one_packet(network, engine)
        record = network.ledger.record_for(0)
        from repro.units import wire_time
        assert record.wire == pytest.approx(
            wire_time(256, server.nic.port_rate_bps))

    def test_bump_in_wire_pays_wire_twice(self):
        _, placement = (ChainBuilder("b", profiles=catalog.FIGURE1_SCENARIO)
                        .nic("monitor").build())
        server, engine, network = build_network(placement)
        run_one_packet(network, engine)
        record = network.ledger.record_for(0)
        from repro.units import wire_time
        assert record.wire == pytest.approx(
            2 * wire_time(256, server.nic.port_rate_bps))

    def test_host_originated_chain_skips_ingress_wire(self):
        _, placement = (ChainBuilder("o", profiles=catalog.FIGURE1_SCENARIO)
                        .cpu("monitor").build(ingress=C, egress=C))
        server, engine, network = build_network(placement)
        run_one_packet(network, engine)
        record = network.ledger.record_for(0)
        assert record.wire == 0.0
        assert record.pcie == 0.0

    def test_cpu_tail_to_nic_egress_crosses_back(self):
        _, placement = (ChainBuilder("t", profiles=catalog.FIGURE1_SCENARIO)
                        .cpu("monitor").build())
        server, engine, network = build_network(placement)
        run_one_packet(network, engine)
        assert server.pcie.stats.crossings == 2  # in and back out


class TestConservation:
    def test_counters_balance_after_full_drain(self, fig1_net):
        server, engine, network = fig1_net
        for i in range(10):
            network.inject(Packet(seq=i, size_bytes=256,
                                  arrival_s=i * 1e-5))
        engine.run()
        network.check_conservation()
        assert network.injected == 10
        assert len(network.delivered) == 10
        assert network.in_flight() == 0

    def test_in_flight_positive_mid_run(self, fig1_net):
        server, engine, network = fig1_net
        network.inject(Packet(seq=0, size_bytes=256, arrival_s=0.0))
        engine.run(until_s=1e-6)  # long before chain latency elapses
        assert network.in_flight() == 1

    def test_arrived_bytes_advances_with_clock(self, fig1_net):
        server, engine, network = fig1_net
        network.inject(Packet(seq=0, size_bytes=256, arrival_s=0.0))
        network.inject(Packet(seq=1, size_bytes=256, arrival_s=1.0))
        assert network.arrived_bytes == 0  # nothing has arrived yet
        engine.run(until_s=0.5)
        assert network.arrived_bytes == 256
