"""Multi-chain consolidation: aggregate model, PAM across chains, sim."""

import pytest

from repro.chain import catalog
from repro.chain.builder import ChainBuilder
from repro.chain.nf import DeviceKind
from repro.errors import ConfigurationError, ScaleOutRequired
from repro.multichain import (ChainLoad, MultiChainLoadModel,
                              MultiChainRunner, select_multichain)
from repro.traffic.generators import ConstantBitRate
from repro.traffic.packet import FixedSize
from repro.units import gbps

C = DeviceKind.CPU
S = DeviceKind.SMARTNIC


def chain_a():
    """LB on CPU, logger+monitor on NIC (prefix 'a/')."""
    _, placement = (ChainBuilder("a", profiles=catalog.FIGURE1_SCENARIO)
                    .cpu("load_balancer", rename="a/lb")
                    .nic("logger", rename="a/logger")
                    .nic("monitor", rename="a/monitor")
                    .build(egress=C))
    return placement


def chain_b():
    """firewall+monitor on NIC, bump-in-the-wire (prefix 'b/')."""
    _, placement = (ChainBuilder("b", profiles=catalog.FIGURE1_SCENARIO)
                    .nic("firewall", rename="b/firewall")
                    .nic("monitor", rename="b/monitor")
                    .cpu("load_balancer", rename="b/lb")
                    .build())
    return placement


@pytest.fixture
def chains():
    return [ChainLoad(chain_a(), gbps(1.0)), ChainLoad(chain_b(), gbps(1.0))]


class TestAggregateModel:
    def test_utilisation_sums_across_chains(self, chains):
        model = MultiChainLoadModel(chains)
        singles = [c.model() for c in chains]
        assert model.nic_utilisation() == pytest.approx(
            sum(m.nic_load().utilisation for m in singles))

    def test_duplicate_nf_names_rejected(self):
        with pytest.raises(ConfigurationError, match="unique"):
            MultiChainLoadModel([ChainLoad(chain_a(), gbps(1.0)),
                                 ChainLoad(chain_a(), gbps(1.0))])

    def test_needs_a_chain(self):
        with pytest.raises(ConfigurationError):
            MultiChainLoadModel([])

    def test_what_ifs_consistent_with_after_move(self, chains):
        model = MultiChainLoadModel(chains)
        logger = chains[0].placement.chain.get("a/logger")
        moved = model.after_move(0, "a/logger", C)
        assert moved.nic_utilisation() == pytest.approx(
            model.nic_without(0, logger))
        assert moved.cpu_utilisation() == pytest.approx(
            model.cpu_with(0, logger))

    def test_shared_capacity_headroom(self, chains):
        model = MultiChainLoadModel(chains)
        assert model.shared_capacity(S) == pytest.approx(
            1.0 / model.nic_utilisation())


class TestMultiChainPAM:
    def test_no_overload_is_noop(self, chains):
        plan = select_multichain(chains)
        # combined NIC at 1 Gbps each:
        # a: 1*(1/4+1/3.2)=0.5625 ; b: 1*(1/10+1/3.2)=0.4125 -> 0.975.
        assert plan.is_noop

    def test_overload_picks_global_min_theta_border(self):
        chains = [ChainLoad(chain_a(), gbps(1.1)),
                  ChainLoad(chain_b(), gbps(1.0))]
        # Aggregate NIC: 0.61875 + 0.4125 = 1.031 > 1.
        plan = select_multichain(chains)
        assert not plan.is_noop
        # Candidate borders: a/logger (4.0), a/monitor (3.2, right
        # border of chain a), b/firewall (10, left border), b/monitor
        # (3.2, right border of b).  Min theta^S = 3.2, tie between
        # the monitors; chain order breaks the tie -> a/monitor.
        first = plan.actions[0]
        assert first.nf_name == "a/monitor"
        assert first.crossing_delta <= 0
        assert plan.alleviates

    def test_crossing_safety_across_chains(self):
        chains = [ChainLoad(chain_a(), gbps(1.3)),
                  ChainLoad(chain_b(), gbps(1.1))]
        plan = select_multichain(chains, strict=False)
        assert all(a.crossing_delta <= 0 for a in plan.actions)

    def test_raises_when_cpu_exhausted(self):
        chains = [ChainLoad(chain_a(), gbps(3.5)),
                  ChainLoad(chain_b(), gbps(3.5))]
        with pytest.raises(ScaleOutRequired):
            select_multichain(chains)

    def test_actions_for_chain_filter(self):
        chains = [ChainLoad(chain_a(), gbps(1.1)),
                  ChainLoad(chain_b(), gbps(1.0))]
        plan = select_multichain(chains)
        for action in plan.actions_for_chain(0):
            assert action.chain_index == 0


class TestMultiChainSim:
    def make_runner(self, rate_a=gbps(0.8), rate_b=gbps(0.8),
                    duration=0.004):
        return MultiChainRunner([
            (chain_a(), ConstantBitRate(rate_a, FixedSize(256), duration)),
            (chain_b(), ConstantBitRate(rate_b, FixedSize(256), duration,
                                        seed=2)),
        ])

    def test_both_chains_deliver(self):
        results = self.make_runner().run()
        assert len(results) == 2
        for result in results:
            assert result.delivered == result.injected
            assert result.dropped == 0

    def test_per_chain_latency_reflects_geometry(self):
        results = self.make_runner().run()
        by_name = {r.chain_name: r for r in results}
        # Chain a crosses PCIe twice (C ingress-adjacent + host egress),
        # chain b also twice, but chain a has the slower logger; just
        # check both yield sane, distinct latency profiles.
        assert by_name["a"].latency is not None
        assert by_name["b"].latency is not None

    def test_interference_through_shared_device(self):
        # Chain b's latency must rise when chain a overloads the NIC,
        # even though chain b's own load is unchanged.
        light = self.make_runner(rate_a=gbps(0.3)).run()
        heavy = self.make_runner(rate_a=gbps(1.8)).run()
        b_light = next(r for r in light if r.chain_name == "b")
        b_heavy = next(r for r in heavy if r.chain_name == "b")
        assert b_heavy.latency.mean_s > b_light.latency.mean_s

    def test_pam_plan_restores_multichain_health(self):
        chains = [ChainLoad(chain_a(), gbps(1.1)),
                  ChainLoad(chain_b(), gbps(1.0))]
        plan = select_multichain(chains)
        after = MultiChainLoadModel(list(plan.after))
        assert after.nic_utilisation() < 1.0
        assert after.cpu_utilisation() < 1.0

    def test_duplicate_names_rejected_at_hosting(self):
        with pytest.raises(Exception):
            MultiChainRunner([
                (chain_a(), ConstantBitRate(gbps(0.5), FixedSize(256),
                                            0.002)),
                (chain_a(), ConstantBitRate(gbps(0.5), FixedSize(256),
                                            0.002)),
            ])


class TestLiveMultiChainControl:
    """Closed-loop cross-chain migration on the shared server."""

    def run_closed_loop(self, rate_a, rate_b, duration=0.03):
        from repro.multichain import MultiChainController

        def factory(server, engine, networks):
            return MultiChainController(server, engine, networks)

        runner = MultiChainRunner(
            [(chain_a(), ConstantBitRate(rate_a, FixedSize(256),
                                         duration)),
             (chain_b(), ConstantBitRate(rate_b, FixedSize(256),
                                         duration, seed=2))],
            controller_factory=factory)
        results = runner.run()
        return runner, {r.chain_name: r for r in results}

    def test_overload_triggers_cross_chain_migration(self):
        runner, results = self.run_closed_loop(gbps(1.1), gbps(1.0))
        records = runner.controller.records
        assert len(records) >= 1
        assert records[0].nf_name == "a/monitor"

    def test_no_migration_under_light_load(self):
        runner, __ = self.run_closed_loop(gbps(0.6), gbps(0.6))
        assert runner.controller.records == []

    def test_no_loss_through_live_migration(self):
        __, results = self.run_closed_loop(gbps(1.1), gbps(1.0))
        for result in results.values():
            assert result.dropped == 0

    def test_final_placements_reflect_moves(self):
        runner, __ = self.run_closed_loop(gbps(1.1), gbps(1.0))
        final = runner.final_placements()
        moved = runner.controller.records[0]
        assert final[moved.chain_index].device_of(moved.nf_name) is C

    def test_aggregate_demand_relaxed_after_migration(self):
        runner, __ = self.run_closed_loop(gbps(1.1), gbps(1.0))
        assert runner.server.nic.demand < 1.0
