"""Resilience end-to-end: the acceptance scenarios, replay, detection.

Pins the PR's two acceptance stories (SmartNIC death mid-spike and
infeasible sustained overload), bit-exact determinism of both, and the
detection property that motivates progress-based health tracking: a
frozen telemetry sample must not mask an NF crash from the watchdog.
"""

import pytest

from repro.chain.nf import DeviceKind
from repro.chaos.invariants import (check_invariants,
                                    check_resilience_invariants)
from repro.harness.scenarios import figure1
from repro.resilience import HealthState
from repro.resilience.scenarios import (build_resilient_controller,
                                        run_device_kill, run_overload_shed,
                                        run_scenario)
from repro.errors import ConfigurationError
from repro.sim.faults import FaultInjector
from repro.sim.runner import SimulationRunner
from repro.traffic.packet import FixedSize
from repro.traffic.patterns import ProfiledArrivals, constant
from repro.units import gbps


def scenario_violations(run):
    controller = run.controller
    violations = check_invariants(controller.network, controller.server,
                                  controller.executor)
    violations.extend(check_resilience_invariants(
        controller, controller.config.degradation.max_shed_fraction))
    return violations


class TestDeviceKillScenario:
    @pytest.fixture(scope="class")
    def run(self):
        return run_device_kill()

    def test_watchdog_detects_the_death_after_the_kill(self, run):
        kill_at = 0.3 * 0.08
        states = [(t.state, t.at_s) for t in run.controller.health.transitions
                  if t.entity == "device:smartnic"]
        assert [s for s, __ in states] == \
            [HealthState.SUSPECT, HealthState.FAILED]
        assert all(at > kill_at for __, at in states)

    def test_survivors_end_up_on_the_cpu(self, run):
        placement = run.result.final_placement
        for nf in placement.chain:
            assert placement.device_of(nf.name) is DeviceKind.CPU

    def test_recovery_completes_and_records_latency(self, run):
        assert len(run.stats.recoveries) == 1
        recovery = run.stats.recoveries[0]
        assert recovery.device == "smartnic"
        assert recovery.status == "completed"
        assert recovery.attempts >= 1
        assert run.time_to_recover_s is not None
        assert run.time_to_recover_s > 0.0

    def test_no_violations_no_protected_shed_no_abandonment(self, run):
        assert scenario_violations(run) == []
        assert run.stats.protected_shed_packets == 0
        assert run.stats.abandoned_packets == 0
        assert run.result.delivered > 0


class TestOverloadScenario:
    @pytest.fixture(scope="class")
    def run(self):
        return run_overload_shed()

    def test_only_the_low_class_is_shed(self, run):
        by_name = {cls.name: cls for cls in run.stats.classes}
        assert by_name["low"].shed_packets > 0
        assert by_name["normal"].shed_packets == 0
        assert by_name["high"].shed_packets == 0
        assert run.stats.protected_shed_packets == 0

    def test_shedding_stays_on_the_first_rung(self, run):
        # 2.2 Gbps offered vs the 2.0 Gbps border-move optimum needs
        # only the low class (0.3 share); deeper rungs must not engage.
        assert run.stats.level_changes
        assert max(level for __, level in run.stats.level_changes) == 1
        assert run.stats.degraded_time_s > 0.0
        assert 0.0 < run.stats.shed_fraction <= \
            run.controller.config.degradation.max_shed_fraction

    def test_pam_settles_the_admitted_load(self, run):
        # With low shed, the planner reaches the 2.0 Gbps split:
        # {load_balancer, logger} on CPU, {monitor, firewall} on NIC.
        placement = run.result.final_placement
        assert placement.device_of("load_balancer") is DeviceKind.CPU
        assert placement.device_of("logger") is DeviceKind.CPU
        assert placement.device_of("monitor") is DeviceKind.SMARTNIC
        assert placement.device_of("firewall") is DeviceKind.SMARTNIC

    def test_no_failures_and_no_violations(self, run):
        assert run.stats.recoveries == ()
        assert scenario_violations(run) == []


class TestDeterminism:
    @staticmethod
    def fingerprint(run):
        return (
            run.result.injected, run.result.delivered, run.result.dropped,
            run.stats,
            tuple(run.controller.health.transitions),
            tuple((r.device, r.status, r.detected_s, r.completed_s,
                   r.attempts, tuple(r.evacuated))
                  for r in run.controller.recoveries),
        )

    def test_device_kill_replays_bit_exact(self):
        first = run_device_kill(duration_s=0.05)
        second = run_device_kill(duration_s=0.05)
        assert self.fingerprint(first) == self.fingerprint(second)

    def test_overload_replays_bit_exact(self):
        first = run_overload_shed(duration_s=0.04)
        second = run_overload_shed(duration_s=0.04)
        assert self.fingerprint(first) == self.fingerprint(second)

    def test_seeds_change_the_run(self):
        assert self.fingerprint(run_device_kill(seed=7, duration_s=0.05)) \
            != self.fingerprint(run_device_kill(seed=8, duration_s=0.05))


class TestRunScenario:
    def test_dispatch_by_name(self):
        run = run_scenario("overload", duration_s=0.02)
        assert run.name == "overload"

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            run_scenario("meteor-strike")

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            run_device_kill(duration_s=0.0)
        with pytest.raises(ConfigurationError):
            run_overload_shed(duration_s=-1.0)


class TestTelemetryCannotMaskACrash:
    """An NF crash inside a telemetry dropout must still be detected.

    The monitor's load sample freezes for the whole crash window, so a
    telemetry-driven detector would see a healthy chain throughout.
    The watchdog reads live progress counters instead: the crashed NF
    stalls against its advancing upstream and is declared failed while
    the telemetry is still frozen.
    """

    DURATION_S = 0.04
    DROPOUT_AT_S, DROPOUT_LEN_S = 0.006, 0.030
    CRASH_AT_S, CRASH_LEN_S = 0.010, 0.016

    @pytest.fixture(scope="class")
    def controller(self):
        scenario = figure1()
        server = scenario.build_server()
        controller = build_resilient_controller()
        generator = ProfiledArrivals(constant(gbps(1.0)), FixedSize(512),
                                     duration_s=self.DURATION_S, seed=7,
                                     jitter=False)
        sim = SimulationRunner(server, generator, controller,
                               monitor_period_s=0.002)
        injector = FaultInjector(sim.network, sim.engine, seed=7)
        injector.telemetry_dropout(self.DROPOUT_AT_S, self.DROPOUT_LEN_S)
        injector.crash_nf("monitor", self.CRASH_AT_S, self.CRASH_LEN_S)
        sim.run()
        sim.engine.run()
        return controller

    def monitor_transitions(self, controller):
        return [t for t in controller.health.transitions
                if t.entity == "nf:monitor"]

    def test_crash_detected_while_telemetry_is_frozen(self, controller):
        failed = [t for t in self.monitor_transitions(controller)
                  if t.state is HealthState.FAILED]
        assert failed, "the crashed NF was never declared failed"
        at = failed[0].at_s
        assert self.CRASH_AT_S < at < \
            self.DROPOUT_AT_S + self.DROPOUT_LEN_S

    def test_starved_downstream_nf_is_not_defamed(self, controller):
        # Firewall receives nothing while monitor is down; its
        # reference (monitor's progress) is flat, so it stays healthy.
        assert not any(t.entity == "nf:firewall"
                       for t in controller.health.transitions)

    def test_devices_stay_healthy(self, controller):
        # Other stations keep serving on both devices: an NF crash must
        # not read as a device failure (no spurious evacuation).
        assert not any(t.entity.startswith("device:")
                       for t in controller.health.transitions)
        assert controller.recoveries == []

    def test_nf_recovers_after_restart(self, controller):
        states = [t.state for t in self.monitor_transitions(controller)]
        assert HealthState.RECOVERING in states
        assert controller.health.state_of("nf:monitor") in (
            HealthState.RECOVERING, HealthState.HEALTHY)

    def test_no_shedding_at_feasible_load(self, controller):
        assert controller.shedder.shed_packets == 0
        assert controller.ladder.level_changes == []
