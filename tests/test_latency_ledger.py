"""Latency decomposition records."""

import pytest

from repro.errors import SimulationError
from repro.sim.latency import COMPONENTS, LatencyLedger, LatencyRecord


class TestRecord:
    def test_add_accumulates(self):
        record = LatencyRecord(seq=0)
        record.add("pcie", 1e-5)
        record.add("pcie", 2e-5)
        assert record.pcie == pytest.approx(3e-5)

    def test_total_is_component_sum(self):
        record = LatencyRecord(seq=0)
        record.add("wire", 1e-6)
        record.add("processing", 2e-6)
        record.add("queueing", 3e-6)
        record.add("pcie", 4e-6)
        assert record.total == pytest.approx(1e-5)

    def test_unknown_component_rejected(self):
        with pytest.raises(SimulationError):
            LatencyRecord(seq=0).add("teleport", 1e-6)

    def test_negative_contribution_rejected(self):
        with pytest.raises(SimulationError):
            LatencyRecord(seq=0).add("pcie", -1e-9)


class TestLedger:
    def test_record_for_creates_once(self):
        ledger = LatencyLedger()
        first = ledger.record_for(7)
        second = ledger.record_for(7)
        assert first is second
        assert len(ledger) == 1

    def test_records_sorted_by_seq(self):
        ledger = LatencyLedger()
        ledger.record_for(3)
        ledger.record_for(1)
        ledger.record_for(2)
        assert [r.seq for r in ledger.records()] == [1, 2, 3]

    def test_component_means(self):
        ledger = LatencyLedger()
        ledger.record_for(0).add("pcie", 2e-5)
        ledger.record_for(1).add("pcie", 4e-5)
        means = ledger.component_means()
        assert means["pcie"] == pytest.approx(3e-5)
        assert means["wire"] == 0.0

    def test_component_means_subset(self):
        ledger = LatencyLedger()
        ledger.record_for(0).add("pcie", 2e-5)
        ledger.record_for(1).add("pcie", 8e-5)
        means = ledger.component_means(seqs=[1])
        assert means["pcie"] == pytest.approx(8e-5)

    def test_component_means_empty(self):
        means = LatencyLedger().component_means()
        assert set(means) == set(COMPONENTS)
        assert all(v == 0.0 for v in means.values())
