"""ChainBuilder fluent API."""

import pytest

from repro.chain import catalog
from repro.chain.builder import ChainBuilder
from repro.chain.nf import DeviceKind, NFProfile
from repro.errors import ConfigurationError, UnknownNFError
from repro.units import gbps


class TestBuilder:
    def test_builds_chain_and_placement(self):
        chain, placement = (ChainBuilder("t")
                            .cpu("load_balancer")
                            .nic("monitor")
                            .build())
        assert chain.names() == ["load_balancer", "monitor"]
        assert placement.device_of("monitor") is DeviceKind.SMARTNIC
        assert placement.device_of("load_balancer") is DeviceKind.CPU

    def test_unknown_catalog_name_raises(self):
        with pytest.raises(UnknownNFError):
            ChainBuilder("t").nic("warp_drive")

    def test_duplicate_requires_rename(self):
        builder = ChainBuilder("t").nic("monitor")
        with pytest.raises(ConfigurationError, match="rename"):
            builder.nic("monitor")

    def test_rename_allows_duplicates(self):
        chain, _ = (ChainBuilder("t")
                    .nic("monitor")
                    .nic("monitor", rename="monitor-egress")
                    .build())
        assert chain.names() == ["monitor", "monitor-egress"]

    def test_accepts_explicit_profile(self):
        custom = NFProfile(name="custom", nic_capacity_bps=gbps(1.0),
                           cpu_capacity_bps=gbps(1.0))
        chain, _ = ChainBuilder("t").nic(custom).build()
        assert chain.get("custom").nic_capacity_bps == gbps(1.0)

    def test_build_endpoints_default_to_nic(self):
        _, placement = ChainBuilder("t").nic("monitor").build()
        assert placement.ingress is DeviceKind.SMARTNIC
        assert placement.egress is DeviceKind.SMARTNIC

    def test_build_endpoints_override(self):
        _, placement = ChainBuilder("t").nic("monitor").build(
            egress=DeviceKind.CPU)
        assert placement.egress is DeviceKind.CPU

    def test_profiles_parameter_scopes_lookup(self):
        builder = ChainBuilder("t", profiles=catalog.TABLE1)
        with pytest.raises(UnknownNFError):
            builder.nic("nat")  # nat only exists in EXTENDED
