"""Eq. 2 / Eq. 3 constraint checks."""

import pytest

from repro.core.feasibility import (FeasibilityConfig, both_overloaded,
                                    cpu_can_host, nic_alleviated,
                                    nic_alleviated_without)
from repro.errors import ConfigurationError
from repro.resources.model import LoadModel
from repro.units import gbps


@pytest.fixture
def load(fig1_placement):
    return LoadModel(fig1_placement, gbps(1.8))


class TestEq2:
    def test_logger_fits_on_cpu(self, load, fig1_chain):
        # 0.45 + 0.45 = 0.9 < 1
        assert cpu_can_host(load, fig1_chain.get("logger"))

    def test_strict_inequality_at_exactly_one(self, fig1_placement,
                                               fig1_chain):
        # At 2.0 Gbps: 0.5 + 0.5 = 1.0, which the paper's strict
        # inequality rejects.
        load = LoadModel(fig1_placement, gbps(2.0))
        assert not cpu_can_host(load, fig1_chain.get("logger"))

    def test_cpu_incapable_nf_rejected(self, fig1_placement):
        from repro.chain import catalog
        load = LoadModel(fig1_placement, gbps(0.1))
        nf = catalog.get("dpi").renamed("x")
        # dpi can't run on NIC; build a cpu-incapable probe instead.
        from repro.chain.nf import NFProfile
        probe = NFProfile(name="logger", cpu_capable=False)
        assert not cpu_can_host(load, probe)

    def test_epsilon_margin(self, load, fig1_chain):
        # 0.9 < 1 passes plainly but fails with a 15% margin.
        tight = FeasibilityConfig(epsilon=0.15)
        assert not cpu_can_host(load, fig1_chain.get("logger"), tight)


class TestEq3:
    def test_removing_logger_alleviates(self, load, fig1_chain):
        # 1.8 * (1/3.2 + 1/10) = 0.7425 < 1
        assert nic_alleviated_without(load, fig1_chain.get("logger"))

    def test_removing_firewall_does_not(self, load, fig1_chain):
        # 1.8 * (1/4 + 1/3.2) = 1.0125 >= 1
        assert not nic_alleviated_without(load, fig1_chain.get("firewall"))

    def test_nic_alleviated_current_state(self, fig1_placement):
        assert not nic_alleviated(LoadModel(fig1_placement, gbps(1.8)))
        assert nic_alleviated(LoadModel(fig1_placement, gbps(1.0)))


class TestJointOverload:
    def test_not_both_at_canonical_load(self, load):
        assert not both_overloaded(load)

    def test_both_at_extreme_load(self, fig1_placement):
        load = LoadModel(fig1_placement, gbps(8.0))
        assert both_overloaded(load)


class TestConfig:
    def test_epsilon_bounds(self):
        with pytest.raises(ConfigurationError):
            FeasibilityConfig(epsilon=1.0)
        with pytest.raises(ConfigurationError):
            FeasibilityConfig(epsilon=-0.1)

    def test_threshold(self):
        assert FeasibilityConfig(epsilon=0.1).threshold == pytest.approx(0.9)
        assert FeasibilityConfig().threshold == 1.0
