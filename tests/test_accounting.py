"""Resource accounting: device-seconds bills."""

import pytest

from repro.baselines.noop import NoopPolicy
from repro.core.planner import MigrationController, PAMPolicy
from repro.core.operator import HardenedController, HardeningConfig
from repro.errors import ConfigurationError
from repro.harness.scenarios import figure1
from repro.sim.runner import SimulationRunner
from repro.telemetry.accounting import (ResourceBill, bill_from_monitor,
                                        integrate_series)
from repro.telemetry.monitor import LoadMonitor
from repro.telemetry.recorder import TimeSeriesRecorder
from repro.traffic.generators import ConstantBitRate
from repro.traffic.packet import FixedSize
from repro.traffic.patterns import ProfiledArrivals, spike
from repro.units import gbps


class TestIntegration:
    def test_rectangle(self):
        recorder = TimeSeriesRecorder()
        recorder.record("u", 0.0, 0.5)
        recorder.record("u", 2.0, 0.5)
        assert integrate_series(recorder, "u") == pytest.approx(1.0)

    def test_triangle(self):
        recorder = TimeSeriesRecorder()
        recorder.record("u", 0.0, 0.0)
        recorder.record("u", 2.0, 1.0)
        assert integrate_series(recorder, "u") == pytest.approx(1.0)

    def test_needs_two_samples(self):
        recorder = TimeSeriesRecorder()
        recorder.record("u", 0.0, 1.0)
        with pytest.raises(ConfigurationError):
            integrate_series(recorder, "u")


class TestBill:
    def run_billed(self, controller):
        monitor = LoadMonitor(inner=controller)
        server = figure1().build_server()
        generator = ConstantBitRate(gbps(1.8), FixedSize(256), 0.02)
        SimulationRunner(server, generator, monitor,
                         monitor_period_s=0.002).run()
        return bill_from_monitor(monitor.recorder)

    def test_bill_fields_consistent(self):
        bill = self.run_billed(MigrationController(PAMPolicy()))
        assert bill.span_s > 0
        assert bill.nic_mean_utilisation == pytest.approx(
            bill.nic_device_seconds / bill.span_s)
        assert "dev-ms" in bill.describe()

    def test_pam_moves_load_from_nic_to_cpu(self):
        noop_bill = self.run_billed(MigrationController(NoopPolicy()))
        pam_bill = self.run_billed(MigrationController(PAMPolicy()))
        # After PAM the NIC bill shrinks and the CPU bill grows.
        assert pam_bill.nic_device_seconds < noop_bill.nic_device_seconds
        assert pam_bill.cpu_device_seconds > noop_bill.cpu_device_seconds

    def test_pullback_reduces_the_cpu_bill(self):
        """Quantify the pull-back's point: after the spike, leaving the
        logger on the CPU keeps paying; pulling it back stops the bill."""
        profile = spike(base_bps=gbps(0.9), peak_bps=gbps(1.8),
                        start_s=0.005, duration_s=0.01)

        def run(controller):
            monitor = LoadMonitor(inner=controller)
            server = figure1().build_server()
            generator = ProfiledArrivals(profile, FixedSize(256), 0.05,
                                         seed=11, jitter=False)
            SimulationRunner(server, generator, monitor,
                             monitor_period_s=0.002).run()
            return bill_from_monitor(monitor.recorder)

        sticky = run(HardenedController(config=HardeningConfig(
            cooldown_s=0.0, flap_damp_s=0.0, enable_pullback=False)))
        pulled = run(HardenedController(config=HardeningConfig(
            cooldown_s=0.0, flap_damp_s=0.0, enable_pullback=True)))
        assert pulled.cpu_device_seconds < sticky.cpu_device_seconds
        assert pulled.nic_device_seconds > sticky.nic_device_seconds
