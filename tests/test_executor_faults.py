"""Executor fault tolerance: timeout, rollback, retry/backoff, abort."""

import random

import pytest

from repro.core.pam import select as pam_select
from repro.errors import ConfigurationError
from repro.migration.executor import (OUTCOME_ABORTED, OUTCOME_ROLLED_BACK,
                                      OUTCOME_SUCCEEDED, MigrationExecutor,
                                      ProbabilisticFailure, RetryPolicy,
                                      ScheduledFailure)
from repro.sim.engine import Engine
from repro.sim.network import ChainNetwork
from repro.traffic.packet import Packet
from repro.units import gbps, usec


class Harness:
    """A live figure-1 simulation with a configurable executor."""

    def __init__(self, fig1_scenario, **executor_kwargs):
        self.scenario = fig1_scenario
        self.server = fig1_scenario.build_server()
        self.server.refresh_demand(gbps(1.8))
        self.engine = Engine()
        self.network = ChainNetwork(self.server, self.engine)
        self.executor = MigrationExecutor(self.server, self.network,
                                          self.engine, **executor_kwargs)
        self.outcomes = []

    def inject_cbr(self, count, gap_s=2e-6, size=256):
        for i in range(count):
            self.network.inject(Packet(seq=i, size_bytes=size,
                                       arrival_s=i * gap_s))

    def apply_at(self, at_s=1e-4, offered=gbps(1.8)):
        plan = pam_select(self.scenario.placement, offered)
        self.engine.at(
            at_s,
            lambda: self.executor.apply(plan, offered,
                                        on_outcome=self.outcomes.append),
            control=True)
        return plan


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter_frac=1.0)

    def test_exponential_growth_capped(self):
        policy = RetryPolicy(max_attempts=8, backoff_base_s=1e-4,
                             backoff_multiplier=2.0, backoff_cap_s=3e-4,
                             jitter_frac=0.0)
        rng = random.Random(0)
        delays = [policy.delay_s(n, rng) for n in (1, 2, 3, 4)]
        assert delays == pytest.approx([1e-4, 2e-4, 3e-4, 3e-4])

    def test_jitter_is_deterministic_under_fixed_seed(self):
        policy = RetryPolicy(jitter_frac=0.2)
        first = [policy.delay_s(n, random.Random(42)) for n in (1, 2, 3)]
        second = [policy.delay_s(n, random.Random(42)) for n in (1, 2, 3)]
        assert first == second

    def test_jitter_bounded(self):
        policy = RetryPolicy(backoff_base_s=1e-4, jitter_frac=0.1,
                             backoff_cap_s=1.0)
        rng = random.Random(1)
        for __ in range(50):
            delay = policy.delay_s(1, rng)
            assert 0.9e-4 <= delay <= 1.1e-4


class TestFailureHooks:
    def test_probabilistic_is_seeded(self):
        action = object()
        hook_a = ProbabilisticFailure(0.5, seed=3)
        hook_b = ProbabilisticFailure(0.5, seed=3)
        draws_a = [hook_a(action, 1) for __ in range(20)]
        draws_b = [hook_b(action, 1) for __ in range(20)]
        assert draws_a == draws_b
        assert any(d is not None for d in draws_a)
        assert any(d is None for d in draws_a)

    def test_probability_validation(self):
        with pytest.raises(ConfigurationError):
            ProbabilisticFailure(1.5)
        with pytest.raises(ConfigurationError):
            ProbabilisticFailure(0.5, fraction=2.0)


class TestMidTransferFailure:
    def test_rollback_then_retry_succeeds_loss_free(self, fig1_scenario):
        # The headline scenario: attempt 1 dies mid-transfer, rolls the
        # NF back onto the NIC, backs off, retries, and lands — without
        # dropping a single buffered packet.
        hook = ScheduledFailure({("logger", 1): 0.5})
        h = Harness(fig1_scenario, failure_hook=hook,
                    retry=RetryPolicy(max_attempts=3,
                                      backoff_base_s=usec(100.0)))
        h.inject_cbr(500)
        h.apply_at()
        h.engine.run()
        assert hook.triggered == [("logger", 1)]
        outcome = h.outcomes[0]
        assert outcome.succeeded
        assert outcome.attempts == 2
        assert [r.outcome for r in outcome.records] == \
            [OUTCOME_ROLLED_BACK, OUTCOME_SUCCEEDED]
        assert h.server.placement.device_of("logger").value == "cpu"
        # Loss-free: everything injected is eventually delivered.
        assert len(h.network.delivered) == 500
        assert len(h.network.dropped) == 0

    def test_rollback_restores_binding_and_demand(self, fig1_scenario):
        # Every attempt fails: the NF must end where it started, with
        # device demand identical to the pre-plan refresh.
        hook = ScheduledFailure({("logger", n): 0.5 for n in (1, 2)})
        h = Harness(fig1_scenario, failure_hook=hook,
                    retry=RetryPolicy(max_attempts=2,
                                      backoff_base_s=usec(100.0)))
        nic_before = h.server.nic.demand
        cpu_before = h.server.cpu.demand
        h.inject_cbr(400)
        h.apply_at()
        h.engine.run()
        outcome = h.outcomes[0]
        assert outcome.status == OUTCOME_ABORTED
        assert outcome.failed_nf == "logger"
        assert outcome.reason == "injected-failure"
        assert h.server.placement.device_of("logger").value == "smartnic"
        assert h.network.stations["logger"].device.kind.value == "smartnic"
        assert h.server.nic.demand == pytest.approx(nic_before)
        assert h.server.cpu.demand == pytest.approx(cpu_before)
        # Rollback is loss-free too: the pause buffer replays in place.
        assert len(h.network.delivered) == 400
        assert len(h.network.dropped) == 0

    def test_busy_false_after_every_terminal_outcome(self, fig1_scenario):
        for failures in ({}, {("logger", 1): 0.5},
                         {("logger", 1): 0.5, ("logger", 2): 0.5}):
            h = Harness(fig1_scenario,
                        failure_hook=ScheduledFailure(failures),
                        retry=RetryPolicy(max_attempts=2,
                                          backoff_base_s=usec(100.0)))
            h.inject_cbr(200)
            h.apply_at()
            h.engine.run()
            assert not h.executor.busy
            assert len(h.outcomes) == 1
            assert not h.network.stations["logger"].paused

    def test_retry_backoff_schedule_deterministic_under_seed(self,
                                                             fig1_scenario):
        starts = []
        for __ in range(2):
            hook = ScheduledFailure({("logger", 1): 0.5,
                                     ("logger", 2): 0.5})
            h = Harness(fig1_scenario, failure_hook=hook,
                        retry=RetryPolicy(max_attempts=3,
                                          backoff_base_s=usec(100.0),
                                          jitter_frac=0.2),
                        retry_seed=77)
            h.inject_cbr(300)
            h.apply_at()
            h.engine.run()
            starts.append([r.started_s for r in h.executor.records])
        assert starts[0] == starts[1]
        assert len(starts[0]) == 3
        # Exponential backoff: the second gap (retry 2) exceeds the
        # first even under +-20% jitter.
        r = h.executor.records
        gap1 = r[1].started_s - r[0].completed_s
        gap2 = r[2].started_s - r[1].completed_s
        assert gap2 > gap1

    def test_failure_mid_plan_leaves_remaining_actions_unexecuted(
            self, fig1_scenario):
        # Build a two-action plan by hand; kill the first action on
        # every attempt.  The second action must never run and the
        # placement must equal the starting one.
        from repro.core.plan import MigrationAction, MigrationPlan
        from repro.chain.nf import DeviceKind
        placement = fig1_scenario.placement
        first = MigrationAction(
            nf_name="logger", source=DeviceKind.SMARTNIC,
            target=DeviceKind.CPU,
            crossing_delta=placement.crossing_delta("logger",
                                                    DeviceKind.CPU))
        mid = placement.moved("logger", DeviceKind.CPU)
        second = MigrationAction(
            nf_name="monitor", source=DeviceKind.SMARTNIC,
            target=DeviceKind.CPU,
            crossing_delta=mid.crossing_delta("monitor", DeviceKind.CPU))
        plan = MigrationPlan(
            actions=(first, second), before=placement,
            after=mid.moved("monitor", DeviceKind.CPU),
            alleviates=True, policy="test")
        hook = ScheduledFailure({("logger", n): 0.5 for n in (1, 2, 3)})
        h = Harness(fig1_scenario, failure_hook=hook,
                    retry=RetryPolicy(max_attempts=3,
                                      backoff_base_s=usec(100.0)))
        h.inject_cbr(300)
        h.engine.at(1e-4,
                    lambda: h.executor.apply(plan, gbps(1.8),
                                             on_outcome=h.outcomes.append),
                    control=True)
        h.engine.run()
        outcome = h.outcomes[0]
        assert outcome.status == OUTCOME_ABORTED
        assert outcome.actions_completed == 0
        assert outcome.plan_size == 2
        assert {r.nf_name for r in outcome.records} == {"logger"}
        assert h.server.placement == placement
        h.network.check_conservation()
        assert len(h.network.delivered) == 300


class TestTimeouts:
    def test_action_timeout_rolls_back(self, fig1_scenario):
        # A timeout far below the migration cost (~115 us for logger)
        # must abort every attempt.
        h = Harness(fig1_scenario, action_timeout_s=usec(40.0),
                    retry=RetryPolicy(max_attempts=2,
                                      backoff_base_s=usec(100.0)))
        h.inject_cbr(300)
        h.apply_at()
        h.engine.run()
        outcome = h.outcomes[0]
        assert outcome.status == OUTCOME_ABORTED
        assert outcome.reason == "timeout"
        assert h.server.placement.device_of("logger").value == "smartnic"
        assert len(h.network.delivered) == 300

    def test_generous_timeout_does_not_fire(self, fig1_scenario):
        h = Harness(fig1_scenario, action_timeout_s=0.05)
        h.inject_cbr(300)
        h.apply_at()
        h.engine.run()
        assert h.outcomes[0].succeeded
        assert h.outcomes[0].attempts == 1

    def test_drain_timeout_bounded(self, fig1_scenario, monkeypatch):
        # Make the logger's station *look* perpetually busy to the
        # executor: the bounded drain wait must give up and record a
        # drain-timeout instead of polling forever.
        from repro.sim.nfinstance import NFStation
        h = Harness(fig1_scenario, drain_timeout_s=2e-4,
                    retry=RetryPolicy(max_attempts=1))
        h.inject_cbr(100)
        h.apply_at()
        original = NFStation.busy
        monkeypatch.setattr(
            NFStation, "busy",
            property(lambda self: True if self.profile.name == "logger"
                     else original.fget(self)))
        h.engine.run()
        outcome = h.outcomes[0]
        assert outcome.status == OUTCOME_ABORTED
        assert outcome.reason == "drain-timeout"
        assert not h.executor.busy
        # The rollback (without rebind — the station never drained)
        # still resumed the data path loss-free.
        assert len(h.network.delivered) == 100

    def test_invalid_timeouts_rejected(self, fig1_scenario):
        with pytest.raises(ConfigurationError):
            Harness(fig1_scenario, action_timeout_s=0.0)
        with pytest.raises(ConfigurationError):
            Harness(fig1_scenario, drain_timeout_s=-1.0)
