"""Flow table: determinism, Zipf weighting, hash splits."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.traffic.flows import FiveTuple, FlowTable


class TestFiveTuple:
    def test_hash_bucket_deterministic(self):
        ft = FiveTuple("10.0.0.1", "192.168.0.1", 1234, 80)
        assert ft.hash_bucket(4) == ft.hash_bucket(4)

    def test_hash_bucket_in_range(self):
        ft = FiveTuple("10.0.0.1", "192.168.0.1", 1234, 80)
        assert 0 <= ft.hash_bucket(7) < 7

    def test_invalid_bucket_count(self):
        ft = FiveTuple("10.0.0.1", "192.168.0.1", 1234, 80)
        with pytest.raises(ConfigurationError):
            ft.hash_bucket(0)


class TestFlowTable:
    def test_deterministic_for_seed(self):
        assert FlowTable(seed=3).flows == FlowTable(seed=3).flows

    def test_different_seeds_differ(self):
        assert FlowTable(seed=3).flows != FlowTable(seed=4).flows

    def test_len(self):
        assert len(FlowTable(num_flows=17)) == 17

    def test_needs_flows(self):
        with pytest.raises(ConfigurationError):
            FlowTable(num_flows=0)

    def test_zipf_exponent_validated(self):
        with pytest.raises(ConfigurationError):
            FlowTable(zipf_s=0.0)

    def test_pick_flow_in_range(self):
        table = FlowTable(num_flows=8)
        rng = random.Random(1)
        for _ in range(100):
            assert 0 <= table.pick_flow(rng) < 8

    def test_pick_flow_skewed_toward_low_ranks(self):
        table = FlowTable(num_flows=64, zipf_s=1.2)
        rng = random.Random(1)
        picks = [table.pick_flow(rng) for _ in range(4000)]
        assert picks.count(0) > picks.count(63)

    def test_split_partitions_all_flows(self):
        table = FlowTable(num_flows=50)
        buckets = table.split(4)
        assert sum(len(b) for b in buckets) == 50
        assert sorted(f for b in buckets for f in b) == list(range(50))

    def test_flow_lookup(self):
        table = FlowTable(num_flows=5)
        assert isinstance(table.flow(2), FiveTuple)
