"""M/D/1 cross-validation of the simulator's queueing path."""

import pytest

from repro.analysis.queueing import (bottleneck_wait, md1_mean_wait,
                                     predict_chain_queueing,
                                     predict_station)
from repro.chain import catalog
from repro.chain.chain import ServiceChain
from repro.chain.nf import DeviceKind
from repro.chain.placement import Placement
from repro.errors import ConfigurationError
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.scenarios import Scenario, figure1
from repro.traffic.generators import PoissonArrivals
from repro.traffic.packet import FixedSize
from repro.units import gbps

S = DeviceKind.SMARTNIC


class TestFormula:
    def test_zero_load_zero_wait(self):
        assert md1_mean_wait(1e-6, 0.0) == 0.0

    def test_wait_grows_with_utilisation(self):
        waits = [md1_mean_wait(1e-6, rho) for rho in (0.2, 0.5, 0.8)]
        assert waits == sorted(waits)

    def test_half_load_equals_half_service(self):
        # rho=0.5: W = 0.5*S/(2*0.5) = S/2.
        assert md1_mean_wait(2e-6, 0.5) == pytest.approx(1e-6)

    def test_saturated_rejected(self):
        with pytest.raises(ConfigurationError):
            md1_mean_wait(1e-6, 1.0)

    def test_invalid_service_time(self):
        with pytest.raises(ConfigurationError):
            md1_mean_wait(0.0, 0.5)


class TestStationPrediction:
    def test_utilisation_matches_linear_model(self, fig1_placement):
        prediction = predict_station(fig1_placement, "monitor",
                                     gbps(1.6), 256)
        # rho = theta_cur/theta_monitor^S = 1.6/3.2.
        assert prediction.utilisation == pytest.approx(0.5)

    def test_sojourn_is_wait_plus_service(self, fig1_placement):
        prediction = predict_station(fig1_placement, "monitor",
                                     gbps(1.0), 256)
        assert prediction.mean_sojourn_s == pytest.approx(
            prediction.mean_wait_s + prediction.service_time_s)

    def test_bounds_relationship(self, fig1_placement):
        rate = gbps(1.2)
        assert bottleneck_wait(fig1_placement, rate, 256) <= \
            predict_chain_queueing(fig1_placement, rate, 256)


class TestSimulatorCrossValidation:
    """The independent check: simulated queueing vs M/D/1 theory."""

    def measure_queueing(self, rate_bps, packet_bytes=256,
                         duration=0.05):
        scenario = figure1()
        generator = PoissonArrivals(rate_bps, FixedSize(packet_bytes),
                                    duration, seed=21)
        result = run_experiment(ExperimentConfig(
            scenario=scenario, generator=generator))
        return result.component_means_s["queueing"]

    @pytest.mark.parametrize("rate_gbps", [0.8, 1.2])
    def test_measured_wait_within_theory_bounds(self, rate_gbps):
        rate = gbps(rate_gbps)
        placement = figure1().placement
        measured = self.measure_queueing(rate)
        lower = bottleneck_wait(placement, rate, 256)
        upper = predict_chain_queueing(placement, rate, 256)
        # 15% slack for finite-horizon sampling noise.
        assert measured >= lower * 0.85
        assert measured <= upper * 1.15

    def test_single_station_matches_md1_closely(self):
        # One monitor alone on the NIC: textbook M/D/1.
        chain = ServiceChain([catalog.get("monitor")], name="solo")
        placement = Placement.all_on(chain, S, ingress=S, egress=S)
        scenario = Scenario(name="solo", chain=chain, placement=placement)
        rate = gbps(1.92)  # rho = 0.6
        generator = PoissonArrivals(rate, FixedSize(256), 0.08, seed=3)
        result = run_experiment(ExperimentConfig(
            scenario=scenario, generator=generator))
        predicted = predict_station(placement, "monitor", rate,
                                    256).mean_wait_s
        measured = result.component_means_s["queueing"]
        assert measured == pytest.approx(predicted, rel=0.10)
