"""Packets and size distributions."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.traffic.packet import (PAPER_SIZE_SWEEP, FixedSize, IMixSize,
                                  Packet, UniformSize)


class TestPacket:
    def test_latency_none_before_departure(self):
        packet = Packet(seq=0, size_bytes=64, arrival_s=1.0)
        assert packet.latency_s is None
        assert not packet.delivered

    def test_latency_after_departure(self):
        packet = Packet(seq=0, size_bytes=64, arrival_s=1.0, departure_s=1.5)
        assert packet.latency_s == pytest.approx(0.5)
        assert packet.delivered

    def test_dropped_packet_is_not_delivered(self):
        packet = Packet(seq=0, size_bytes=64, arrival_s=1.0,
                        departure_s=1.5, dropped_at="monitor")
        assert not packet.delivered


class TestPaperSweep:
    def test_covers_64_to_1500(self):
        assert PAPER_SIZE_SWEEP[0] == 64
        assert PAPER_SIZE_SWEEP[-1] == 1500

    def test_strictly_increasing(self):
        assert list(PAPER_SIZE_SWEEP) == sorted(set(PAPER_SIZE_SWEEP))


class TestFixedSize:
    def test_sample_is_constant(self):
        dist = FixedSize(256)
        rng = random.Random(1)
        assert {dist.sample(rng) for _ in range(10)} == {256}

    def test_mean(self):
        assert FixedSize(512).mean_bytes() == 512.0

    def test_undersized_frame_rejected(self):
        with pytest.raises(ConfigurationError):
            FixedSize(32)

    def test_jumbo_limit(self):
        with pytest.raises(ConfigurationError):
            FixedSize(9001)
        assert FixedSize(9000).size_bytes == 9000


class TestUniformSize:
    def test_samples_within_bounds(self):
        dist = UniformSize(64, 128)
        rng = random.Random(1)
        for _ in range(100):
            assert 64 <= dist.sample(rng) <= 128

    def test_mean(self):
        assert UniformSize(64, 128).mean_bytes() == 96.0

    def test_empty_range_rejected(self):
        with pytest.raises(ConfigurationError):
            UniformSize(128, 64)


class TestIMix:
    def test_samples_only_imix_sizes(self):
        dist = IMixSize()
        rng = random.Random(1)
        assert {dist.sample(rng) for _ in range(200)} <= {64, 570, 1500}

    def test_mean_matches_weights(self):
        # (7*64 + 4*570 + 1*1500) / 12
        assert IMixSize().mean_bytes() == pytest.approx((448 + 2280 + 1500) / 12)

    def test_small_sizes_dominate(self):
        dist = IMixSize()
        rng = random.Random(7)
        samples = [dist.sample(rng) for _ in range(1200)]
        assert samples.count(64) > samples.count(1500)
