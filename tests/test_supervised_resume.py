"""Journal torn-tail recovery under the *supervised parallel* executor.

The serial executors' torn-tail path is pinned by
``tests/test_chaos_resume.py``; this module pins the same guarantees
when the journal was written (and is resumed) by
:class:`SupervisedParallelExecutor` — whose completions can land out of
index order and whose attempt records interleave with run-results —
including a SIGKILL landing while the journal is mid-append.
"""

import os
import signal
import subprocess
import sys
import time
import warnings
from pathlib import Path

import pytest

from repro.chaos.runner import ChaosCampaign, ChaosRunner
from repro.chaos.schedule import ChaosConfig
from repro.checkpoint import read_journal
from repro.exec import SupervisionPolicy, make_executor, run_campaign

_CONFIG = ChaosConfig(duration_s=0.01)
_POLICY = SupervisionPolicy(run_timeout_s=60.0, max_attempts=2,
                            backoff_base_s=0.01)
_POLL_INTERVAL_S = 0.05
_MAX_POLLS = 600


def _campaign(runs=4, seed=11):
    return ChaosCampaign(ChaosRunner(runs=runs, seed=seed,
                                     config=_CONFIG))


def _truncate_to_results(journal, keep):
    """Keep campaign-start/progress and the first ``keep`` results."""
    outcome = read_journal(journal)
    with open(journal, "r", encoding="utf-8") as handle:
        raw = handle.read().splitlines()
    kept = 0
    lines = []
    for line, record in zip(raw, outcome.records):
        kind = record.get("kind")
        if kind == "run-result":
            if kept == keep:
                break
            kept += 1
        elif kind not in ("campaign-start", "campaign-progress",
                          "run-attempt"):
            break
        lines.append(line)
    with open(journal, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")


def _append_torn_record(journal):
    """Plant a half-written record — a write cut off mid-append."""
    with open(journal, "a", encoding="utf-8") as handle:
        handle.write('{"crc": 3, "record": {"kind": "run-res')


class TestSupervisedParallelTornTail:
    def test_torn_tail_resumes_bit_exact(self, tmp_path):
        journal = str(tmp_path / "supervised.jsonl")
        reference = run_campaign(_campaign()).payloads
        run_campaign(_campaign(), executor=make_executor(2, _POLICY),
                     journal_path=journal, checkpoint_every=1)
        _truncate_to_results(journal, keep=2)
        _append_torn_record(journal)

        resumed = None
        with pytest.warns(RuntimeWarning, match="resuming from the last"):
            resumed = run_campaign(_campaign(),
                                   executor=make_executor(2, _POLICY),
                                   resume_from=journal)
        assert resumed.replayed == 2
        assert resumed.payloads == reference
        # The rewritten journal carries the full campaign again.
        kinds = [r["kind"] for r in read_journal(journal).records]
        assert kinds.count("run-result") == 4
        assert kinds[-1] == "campaign-end"

    def test_torn_tail_fresh_journal_not_tolerated(self, tmp_path):
        # The tolerance is a resume-path property; a torn tail in a
        # journal being *written* (no resume) must still fail loudly.
        journal = str(tmp_path / "fresh.jsonl")
        run_campaign(_campaign(), executor=make_executor(2, _POLICY),
                     journal_path=journal)
        with open(journal, "r", encoding="utf-8") as handle:
            intact = handle.read()
        assert read_journal(journal).records[-1]["kind"] == "campaign-end"
        assert intact.endswith("\n")


@pytest.mark.skipif(not hasattr(signal, "SIGKILL"),
                    reason="requires POSIX SIGKILL")
class TestSupervisedParallelSigkill:
    def test_sigkill_mid_append_resumes_bit_exact(self, tmp_path):
        """SIGKILL a supervised-parallel campaign, then resume its torn
        journal with the same executor.

        The kill lands whenever the poll catches the journal with one
        intact run-result; a half-written record is then appended so
        the mid-append state is exercised deterministically on every
        run, wherever the kill actually landed.
        """
        journal = str(tmp_path / "killed.jsonl")
        src_root = Path(__file__).resolve().parents[1] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src_root)]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
        command = [sys.executable, "-m", "repro", "chaos",
                   "--runs", "4", "--seed", "11", "--duration", "0.01",
                   "--workers", "2", "--max-attempts", "2",
                   "--run-timeout", "60",
                   "--journal", journal, "--checkpoint-every", "1"]
        process = subprocess.Popen(command, env=env,
                                   stdout=subprocess.DEVNULL,
                                   stderr=subprocess.DEVNULL)
        killed = False
        try:
            for _ in range(_MAX_POLLS):
                if os.path.exists(journal):
                    with warnings.catch_warnings():
                        warnings.simplefilter("ignore", RuntimeWarning)
                        results = read_journal(
                            journal,
                            tolerate_torn_tail=True).of_kind("run-result")
                    if len(results) >= 1:
                        break
                if process.poll() is not None:
                    break
                time.sleep(_POLL_INTERVAL_S)
            if process.poll() is None:
                process.send_signal(signal.SIGKILL)
                killed = True
        finally:
            process.wait()
        assert os.path.exists(journal)
        _append_torn_record(journal)

        reference = run_campaign(_campaign()).payloads
        with warnings.catch_warnings():
            # The planted torn tail warns by design; when the campaign
            # finished before the kill, there is nothing left to warn
            # about either way.
            warnings.simplefilter("ignore", RuntimeWarning)
            resumed = run_campaign(_campaign(),
                                   executor=make_executor(2, _POLICY),
                                   resume_from=journal)
        assert resumed.payloads == reference
        if killed:
            assert resumed.replayed >= 1
        kinds = [r["kind"] for r in read_journal(journal).records]
        assert kinds.count("run-result") == 4
        assert kinds[-1] == "campaign-end"
