"""Result persistence and config-driven experiments."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.harness.config import ExperimentSpec, load, parse
from repro.harness.experiment import steady_state
from repro.harness.results import Mismatch, ResultRecord, compare
from repro.harness.scenarios import figure1
from repro.units import gbps


@pytest.fixture(scope="module")
def sample_result():
    return steady_state(figure1(), gbps(1.0), duration_s=0.004)


BASE_CONFIG = {
    "name": "fig1",
    "chain": [
        {"nf": "load_balancer", "device": "cpu"},
        {"nf": "logger", "device": "smartnic"},
        {"nf": "monitor", "device": "smartnic"},
        {"nf": "firewall", "device": "smartnic"},
    ],
    "egress": "cpu",
    "profiles": "figure1",
    "workload": {"kind": "cbr", "rate_gbps": 1.8,
                 "packet_bytes": 256, "duration_s": 0.008},
    "policy": "pam",
}


class TestResultRecord:
    def test_roundtrip(self, sample_result, tmp_path):
        record = ResultRecord.from_result(sample_result, label="x")
        path = tmp_path / "r.json"
        record.save(path)
        again = ResultRecord.load(path)
        assert again == record

    def test_fields(self, sample_result):
        record = ResultRecord.from_result(sample_result)
        assert record.pcie_crossings == 3
        assert record.placement["logger"] == "smartnic"
        assert record.mean_latency_s > 0

    def test_bad_json_rejected(self):
        with pytest.raises(ConfigurationError, match="not a result"):
            ResultRecord.loads("{nope")

    def test_wrong_version_rejected(self, sample_result):
        record = ResultRecord.from_result(sample_result)
        data = json.loads(record.dumps())
        data["version"] = 99
        with pytest.raises(ConfigurationError, match="version"):
            ResultRecord.loads(json.dumps(data))

    def test_unknown_field_rejected(self, sample_result):
        data = json.loads(ResultRecord.from_result(sample_result).dumps())
        data["bogus"] = 1
        with pytest.raises(ConfigurationError, match="malformed"):
            ResultRecord.loads(json.dumps(data))


class TestCompare:
    def test_identical_records_match(self, sample_result):
        a = ResultRecord.from_result(sample_result)
        assert compare(a, a) == []

    def test_latency_within_tolerance(self, sample_result):
        a = ResultRecord.from_result(sample_result)
        data = json.loads(a.dumps())
        data["mean_latency_s"] *= 1.02
        b = ResultRecord.loads(json.dumps(data))
        assert compare(a, b, latency_rtol=0.05) == []
        assert any(m.field_name == "mean_latency_s"
                   for m in compare(a, b, latency_rtol=0.01))

    def test_structural_mismatch_reported(self, sample_result):
        a = ResultRecord.from_result(sample_result)
        data = json.loads(a.dumps())
        data["pcie_crossings"] = 5
        b = ResultRecord.loads(json.dumps(data))
        names = [m.field_name for m in compare(a, b)]
        assert "pcie_crossings" in names


class TestConfigParsing:
    def test_full_pipeline(self):
        spec = parse(BASE_CONFIG)
        assert spec.name == "fig1"
        result = spec.run()
        assert result.migrated_nfs == ["logger"]  # PAM reacted

    def test_noop_policy_has_no_controller(self):
        config = dict(BASE_CONFIG, policy="noop")
        result = parse(config).run()
        assert result.migrated_nfs == []

    def test_missing_chain_rejected(self):
        with pytest.raises(ConfigurationError, match="chain"):
            parse({"workload": BASE_CONFIG["workload"]})

    def test_unknown_device_path_in_error(self):
        config = json.loads(json.dumps(BASE_CONFIG))
        config["chain"][2]["device"] = "gpu"
        with pytest.raises(ConfigurationError, match=r"chain\[2\]"):
            parse(config)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="policy"):
            parse(dict(BASE_CONFIG, policy="quantum"))

    def test_unknown_profiles_rejected(self):
        with pytest.raises(ConfigurationError, match="profiles"):
            parse(dict(BASE_CONFIG, profiles="secret"))

    def test_unknown_workload_kind(self):
        config = dict(BASE_CONFIG,
                      workload={"kind": "teleport", "packet_bytes": 64,
                                "duration_s": 0.001})
        with pytest.raises(ConfigurationError, match="workload"):
            parse(config)

    def test_imix_and_uniform_sizes(self):
        for sizes in ("imix", {"kind": "uniform", "lo": 64, "hi": 128}):
            config = dict(BASE_CONFIG)
            config["workload"] = dict(BASE_CONFIG["workload"],
                                      packet_bytes=sizes)
            parse(config)  # validates without raising

    def test_spike_workload(self):
        config = dict(BASE_CONFIG)
        config["workload"] = {"kind": "spike", "base_gbps": 1.3,
                              "peak_gbps": 1.8, "start_s": 0.002,
                              "packet_bytes": 256, "duration_s": 0.01}
        result = parse(config).run()
        assert result.migrated_nfs == ["logger"]

    def test_server_overrides(self):
        config = dict(BASE_CONFIG,
                      server={"pcie_crossing_us": 50.0})
        spec = parse(config)
        assert spec.runner.server.pcie.crossing_latency_s == \
            pytest.approx(50e-6)

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "exp.json"
        path.write_text(json.dumps(BASE_CONFIG))
        spec = load(path)
        assert isinstance(spec, ExperimentSpec)

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "exp.json"
        path.write_text("{")
        with pytest.raises(ConfigurationError, match="invalid JSON"):
            load(path)
