"""Placement: assignment validation, crossings, segments, moves."""

import pytest

from repro.chain import catalog
from repro.chain.builder import ChainBuilder
from repro.chain.chain import ServiceChain
from repro.chain.nf import DeviceKind
from repro.chain.placement import Placement
from repro.errors import PlacementError

S = DeviceKind.SMARTNIC
C = DeviceKind.CPU


def fig1():
    return (ChainBuilder("f", profiles=catalog.FIGURE1_SCENARIO)
            .cpu("load_balancer").nic("logger").nic("monitor").nic("firewall")
            .build(egress=C))


class TestValidation:
    def test_missing_nf_rejected(self):
        chain = ServiceChain([catalog.get("monitor"), catalog.get("logger")])
        with pytest.raises(PlacementError, match="omits"):
            Placement(chain, {"monitor": S})

    def test_extra_nf_rejected(self):
        chain = ServiceChain([catalog.get("monitor")])
        with pytest.raises(PlacementError, match="outside"):
            Placement(chain, {"monitor": S, "logger": C})

    def test_incapable_assignment_rejected(self):
        chain = ServiceChain([catalog.get("dpi")])
        with pytest.raises(PlacementError, match="cannot run"):
            Placement(chain, {"dpi": S})

    def test_all_on_factory(self):
        chain = ServiceChain([catalog.get("monitor"), catalog.get("logger")])
        placement = Placement.all_on(chain, S)
        assert placement.nic_nfs() == list(chain.nfs)
        assert placement.cpu_nfs() == []

    def test_from_nic_set_factory(self):
        chain = ServiceChain([catalog.get("monitor"), catalog.get("logger")])
        placement = Placement.from_nic_set(chain, ["monitor"])
        assert placement.device_of("monitor") is S
        assert placement.device_of("logger") is C


class TestCrossings:
    def test_figure1_has_three_crossings(self):
        _, placement = fig1()
        # wire(S) -> LB(C) -> logger/monitor/firewall(S) -> host(C)
        assert placement.pcie_crossings() == 3

    def test_all_on_nic_bump_in_wire_has_zero(self):
        chain = ServiceChain([catalog.get("monitor"), catalog.get("logger")])
        assert Placement.all_on(chain, S).pcie_crossings() == 0

    def test_all_on_cpu_bump_in_wire_has_two(self):
        chain = ServiceChain([catalog.get("monitor"), catalog.get("logger")])
        assert Placement.all_on(chain, C).pcie_crossings() == 2

    def test_device_path_includes_endpoints(self):
        _, placement = fig1()
        path = placement.device_path()
        assert path[0] is S  # wire ingress
        assert path[-1] is C  # host-terminated egress
        assert len(path) == len(placement.chain) + 2

    def test_alternating_chain_counts_every_hop(self):
        chain = ServiceChain([catalog.get("monitor"), catalog.get("logger"),
                              catalog.get("firewall")])
        placement = Placement(chain, {"monitor": S, "logger": C,
                                      "firewall": S})
        # S | S C S | S -> crossings at S->C and C->S only.
        assert placement.pcie_crossings() == 2


class TestSegments:
    def test_segments_of_figure1(self):
        _, placement = fig1()
        segments = placement.segments()
        assert [tuple(s) for s in segments] == \
            [("load_balancer",), ("logger", "monitor", "firewall")]

    def test_segments_filtered_by_device(self):
        _, placement = fig1()
        nic_segments = placement.segments(S)
        assert [tuple(s) for s in nic_segments] == \
            [("logger", "monitor", "firewall")]

    def test_single_device_single_segment(self):
        chain = ServiceChain([catalog.get("monitor"), catalog.get("logger")])
        assert len(Placement.all_on(chain, S).segments()) == 1


class TestMoves:
    def test_moved_returns_new_placement(self):
        _, placement = fig1()
        moved = placement.moved("logger", C)
        assert moved.device_of("logger") is C
        assert placement.device_of("logger") is S  # original untouched

    def test_moved_preserves_endpoints(self):
        _, placement = fig1()
        moved = placement.moved("logger", C)
        assert moved.ingress is placement.ingress
        assert moved.egress is placement.egress

    def test_move_to_same_device_rejected(self):
        _, placement = fig1()
        with pytest.raises(PlacementError, match="already"):
            placement.moved("logger", S)

    def test_move_to_incapable_device_rejected(self):
        chain = ServiceChain([catalog.get("dpi"), catalog.get("monitor")])
        placement = Placement(chain, {"dpi": C, "monitor": C})
        with pytest.raises(PlacementError):
            placement.moved("dpi", S)


class TestCrossingDelta:
    def test_border_move_is_zero(self):
        _, placement = fig1()
        assert placement.crossing_delta("logger", C) == 0
        assert placement.crossing_delta("firewall", C) == 0

    def test_mid_segment_move_is_plus_two(self):
        _, placement = fig1()
        assert placement.crossing_delta("monitor", C) == 2

    def test_singleton_segment_move_is_minus_two(self):
        chain = ServiceChain([catalog.get("load_balancer"),
                              catalog.get("monitor"),
                              catalog.get("firewall")])
        placement = Placement(chain, {"load_balancer": C, "monitor": S,
                                      "firewall": C},
                              ingress=C, egress=C)
        assert placement.crossing_delta("monitor", C) == -2


class TestEquality:
    def test_equality_covers_endpoints(self):
        chain = ServiceChain([catalog.get("monitor")])
        a = Placement(chain, {"monitor": S})
        b = Placement(chain, {"monitor": S}, egress=C)
        assert a != b

    def test_hash_consistent_with_eq(self):
        chain = ServiceChain([catalog.get("monitor")])
        a = Placement(chain, {"monitor": S})
        b = Placement(chain, {"monitor": S})
        assert a == b
        assert hash(a) == hash(b)

    def test_as_dict_is_a_copy(self):
        _, placement = fig1()
        snapshot = placement.as_dict()
        snapshot["logger"] = C
        assert placement.device_of("logger") is S
