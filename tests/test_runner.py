"""SimulationRunner: aggregates, control loop, windowed goodput."""

import pytest

from repro.errors import ConfigurationError
from repro.harness.scenarios import figure1
from repro.sim.runner import SimulationRunner, simulate
from repro.traffic.generators import ConstantBitRate
from repro.traffic.packet import FixedSize
from repro.units import as_gbps, gbps


def make_runner(offered=gbps(1.0), duration=0.005, controller=None,
                monitor_period_s=0.002):
    server = figure1().build_server()
    generator = ConstantBitRate(offered, FixedSize(256), duration)
    return SimulationRunner(server, generator, controller,
                            monitor_period_s=monitor_period_s)


class TestAggregates:
    def test_everything_delivered_under_capacity(self):
        result = make_runner().run()
        assert result.dropped == 0
        assert result.delivered + 0 == result.injected

    def test_goodput_tracks_offered_under_capacity(self):
        result = make_runner(offered=gbps(1.0)).run()
        assert result.goodput_bps == pytest.approx(gbps(1.0), rel=0.05)

    def test_goodput_saturates_at_chain_capacity(self):
        # Figure-1 placement capacity: 1/(1/4+1/3.2+1/10) ~ 1.509 Gbps.
        result = make_runner(offered=gbps(2.4), duration=0.01).run()
        assert result.goodput_bps == pytest.approx(gbps(1.509), rel=0.06)

    def test_latency_summary_present(self):
        result = make_runner().run()
        assert result.latency is not None
        assert result.latency.count == result.delivered

    def test_component_means_cover_delivered_packets(self):
        result = make_runner().run()
        total_components = sum(result.component_means_s.values())
        assert total_components == pytest.approx(result.latency.mean_s)

    def test_delivery_rate(self):
        result = make_runner().run()
        assert result.delivery_rate == 1.0

    def test_final_placement_reported(self):
        result = make_runner().run()
        assert result.final_placement.device_of("logger").value == "smartnic"


class TestControlLoop:
    def test_controller_sees_offered_estimate(self):
        seen = []

        class Probe:
            def on_tick(self, context):
                seen.append(context.offered_bps)

        make_runner(offered=gbps(1.2), duration=0.01,
                    controller=Probe()).run()
        assert len(seen) >= 3
        # Estimates (after the first partial window) track the true rate.
        assert as_gbps(seen[1]) == pytest.approx(1.2, rel=0.05)

    def test_tick_cadence(self):
        times = []

        class Probe:
            def on_tick(self, context):
                times.append(context.now_s)

        make_runner(duration=0.01, controller=Probe(),
                    monitor_period_s=0.002).run()
        gaps = [round(b - a, 9) for a, b in zip(times, times[1:])]
        assert all(g == pytest.approx(0.002) for g in gaps)

    def test_demand_refreshed_without_controller(self):
        runner = make_runner(offered=gbps(1.8), duration=0.005)
        result = runner.run()
        assert runner.server.nic.demand > 1.0  # overloaded as measured

    def test_invalid_monitor_period(self):
        with pytest.raises(ConfigurationError):
            make_runner(monitor_period_s=0.0)


class TestSimulateWrapper:
    def test_one_call_convenience(self):
        server = figure1().build_server()
        generator = ConstantBitRate(gbps(1.0), FixedSize(256), 0.003)
        result = simulate(server, generator)
        assert result.delivered > 0
