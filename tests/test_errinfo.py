"""Structured exception payloads: shape, filtering, and bounds."""

from repro.exec.errinfo import exception_payload


def _raise_nested(depth):
    if depth == 0:
        raise ValueError("bottom of the stack")
    _raise_nested(depth - 1)


class TestExceptionPayload:
    def test_basic_shape(self):
        try:
            raise KeyError("missing")
        except KeyError as exc:
            payload = exception_payload(exc)
        assert payload["type"] == "KeyError"
        assert payload["message"] == "'missing'"
        frame = payload["frames"][-1]
        # Outside the package the file is reduced to its basename.
        assert frame["file"] == "test_errinfo.py"
        assert frame["function"] == "test_basic_shape"
        assert frame["line"] > 0
        assert "raise KeyError" in frame["code"]

    def test_payload_is_json_clean(self):
        import json
        try:
            _raise_nested(3)
        except ValueError as exc:
            payload = exception_payload(exc)
        assert json.loads(json.dumps(payload)) == payload

    def test_deep_stacks_keep_innermost_frames(self):
        try:
            _raise_nested(40)
        except ValueError as exc:
            payload = exception_payload(exc)
        assert len(payload["frames"]) == 12
        assert payload["truncated"] > 0
        # Innermost frame (the raise site) survives truncation.
        assert payload["frames"][-1]["function"] == "_raise_nested"
        assert "raise ValueError" in payload["frames"][-1]["code"]

    def test_shallow_stacks_have_no_truncated_marker(self):
        try:
            raise RuntimeError("shallow")
        except RuntimeError as exc:
            payload = exception_payload(exc)
        assert "truncated" not in payload

    def test_paths_are_package_relative(self):
        from repro.errors import ConfigurationError
        from repro.exec.campaign import build_campaign
        try:
            build_campaign("no-such-kind", {})
        except ConfigurationError as exc:
            payload = exception_payload(exc)
        files = [frame["file"] for frame in payload["frames"]]
        assert "repro/exec/campaign.py" in files
        assert not any(frame["file"].startswith("/")
                       for frame in payload["frames"]
                       if frame["file"].startswith("repro/"))
