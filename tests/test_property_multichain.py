"""Property tests: multi-chain aggregate model and cross-chain PAM."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.chain.chain import ServiceChain
from repro.chain.nf import DeviceKind, NFProfile
from repro.chain.placement import Placement
from repro.multichain import ChainLoad, MultiChainLoadModel, select_multichain
from repro.units import gbps

C = DeviceKind.CPU
S = DeviceKind.SMARTNIC


@st.composite
def chain_sets(draw):
    """1-3 co-located chains with globally unique NF names."""
    num_chains = draw(st.integers(1, 3))
    chains = []
    for chain_index in range(num_chains):
        length = draw(st.integers(1, 4))
        nfs = [NFProfile(name=f"c{chain_index}/nf{i}",
                         nic_capacity_bps=gbps(draw(st.floats(1.0, 10.0))),
                         cpu_capacity_bps=gbps(draw(st.floats(1.0, 10.0))))
               for i in range(length)]
        chain = ServiceChain(nfs, name=f"c{chain_index}")
        devices = draw(st.lists(st.sampled_from([S, C]),
                                min_size=length, max_size=length))
        placement = Placement(chain, {nf.name: device for nf, device
                                      in zip(nfs, devices)})
        rate = gbps(draw(st.floats(0.1, 3.0)))
        chains.append(ChainLoad(placement, rate))
    return chains


class TestAggregateConsistency:
    @given(chain_sets())
    @settings(max_examples=50, deadline=None)
    def test_utilisation_is_sum_of_singles(self, chains):
        model = MultiChainLoadModel(chains)
        for device in (S, C):
            singles = sum(c.model().device_load(device).utilisation
                          for c in chains)
            assert model.device_utilisation(device) == \
                pytest_approx(singles)

    @given(chain_sets(), st.data())
    @settings(max_examples=50, deadline=None)
    def test_after_move_matches_what_ifs(self, chains, data):
        model = MultiChainLoadModel(chains)
        movable = [(index, nf.name)
                   for index, chain in enumerate(chains)
                   for nf in chain.placement.nic_nfs()
                   if nf.cpu_capable]
        assume(movable)
        index, name = data.draw(st.sampled_from(movable))
        nf = chains[index].placement.chain.get(name)
        moved = model.after_move(index, name, C)
        assert moved.nic_utilisation() == pytest_approx(
            model.nic_without(index, nf))
        assert moved.cpu_utilisation() == pytest_approx(
            model.cpu_with(index, nf))


class TestCrossChainPAMProperties:
    @given(chain_sets())
    @settings(max_examples=50, deadline=None)
    def test_plan_never_adds_crossings_anywhere(self, chains):
        plan = select_multichain(chains, strict=False)
        for before, after in zip(plan.before, plan.after):
            assert after.placement.pcie_crossings() <= \
                before.placement.pcie_crossings()

    @given(chain_sets())
    @settings(max_examples=50, deadline=None)
    def test_success_leaves_both_devices_under_one(self, chains):
        plan = select_multichain(chains, strict=False)
        after = MultiChainLoadModel(list(plan.after))
        if plan.alleviates and plan.actions:
            assert after.nic_utilisation() < 1.0
            assert after.cpu_utilisation() < 1.0

    @given(chain_sets())
    @settings(max_examples=50, deadline=None)
    def test_noop_iff_not_overloaded(self, chains):
        model = MultiChainLoadModel(chains)
        plan = select_multichain(chains, strict=False)
        if not model.nic_overloaded():
            assert plan.is_noop

    @given(chain_sets())
    @settings(max_examples=50, deadline=None)
    def test_untouched_chains_keep_their_placement(self, chains):
        plan = select_multichain(chains, strict=False)
        touched = {action.chain_index for action in plan.actions}
        for index, (before, after) in enumerate(zip(plan.before,
                                                    plan.after)):
            if index not in touched:
                assert before.placement == after.placement


def pytest_approx(value):
    import pytest
    return pytest.approx(value, rel=1e-9, abs=1e-12)
