"""ServiceChain: ordering, lookup, neighbourhood, derived chains."""

import pytest

from repro.chain import catalog
from repro.chain.chain import ServiceChain
from repro.chain.nf import DeviceKind
from repro.errors import ConfigurationError, UnknownNFError


@pytest.fixture
def chain():
    return ServiceChain([catalog.get("load_balancer"), catalog.get("logger"),
                         catalog.get("monitor"), catalog.get("firewall")],
                        name="t")


class TestConstruction:
    def test_empty_chain_rejected(self):
        with pytest.raises(ConfigurationError):
            ServiceChain([])

    def test_duplicate_names_rejected(self):
        nf = catalog.get("monitor")
        with pytest.raises(ConfigurationError, match="renamed"):
            ServiceChain([nf, nf])

    def test_same_profile_twice_via_rename(self):
        nf = catalog.get("monitor")
        chain = ServiceChain([nf, nf.renamed("monitor2")])
        assert chain.names() == ["monitor", "monitor2"]

    def test_len_and_iteration_order(self, chain):
        assert len(chain) == 4
        assert [nf.name for nf in chain] == \
            ["load_balancer", "logger", "monitor", "firewall"]


class TestLookup:
    def test_getitem(self, chain):
        assert chain[1].name == "logger"

    def test_contains(self, chain):
        assert "monitor" in chain
        assert "nat" not in chain

    def test_get_unknown_raises(self, chain):
        with pytest.raises(UnknownNFError, match="it contains"):
            chain.get("nat")

    def test_position(self, chain):
        assert chain.position("load_balancer") == 0
        assert chain.position("firewall") == 3

    def test_position_unknown_raises(self, chain):
        with pytest.raises(UnknownNFError):
            chain.position("nat")


class TestNeighbourhood:
    def test_upstream_of_head_is_none(self, chain):
        assert chain.upstream("load_balancer") is None

    def test_downstream_of_tail_is_none(self, chain):
        assert chain.downstream("firewall") is None

    def test_upstream_downstream_mid_chain(self, chain):
        assert chain.upstream("monitor").name == "logger"
        assert chain.downstream("monitor").name == "firewall"

    def test_head_tail_predicates(self, chain):
        assert chain.is_head("load_balancer")
        assert chain.is_tail("firewall")
        assert not chain.is_head("monitor")
        assert not chain.is_tail("monitor")


class TestDerived:
    def test_subchain(self, chain):
        sub = chain.subchain(1, 3)
        assert sub.names() == ["logger", "monitor"]

    def test_subchain_invalid_bounds(self, chain):
        with pytest.raises(ConfigurationError):
            chain.subchain(3, 3)
        with pytest.raises(ConfigurationError):
            chain.subchain(0, 99)

    def test_min_capacity_nf_on_nic(self, chain):
        # Table 1: logger (2 Gbps) is the NIC minimum of these four.
        assert chain.min_capacity_nf(DeviceKind.SMARTNIC).name == "logger"

    def test_min_capacity_nf_skips_incapable(self):
        chain = ServiceChain([catalog.get("dpi"), catalog.get("monitor")])
        assert chain.min_capacity_nf(DeviceKind.SMARTNIC).name == "monitor"

    def test_min_capacity_no_candidates_raises(self):
        chain = ServiceChain([catalog.get("dpi")])
        with pytest.raises(ConfigurationError):
            chain.min_capacity_nf(DeviceKind.SMARTNIC)


class TestEquality:
    def test_equal_chains(self, chain):
        other = ServiceChain(list(chain.nfs), name="other-name")
        assert chain == other  # name is cosmetic

    def test_hashable(self, chain):
        assert chain in {chain}
