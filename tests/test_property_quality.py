"""Property tests batch 3: constraints, histograms, statistics, diagrams."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.chain import ServiceChain
from repro.chain.constraints import (AtMostOne, MustBeEdge, MustPrecede,
                                     check_chain)
from repro.chain.diagram import render_placement
from repro.chain.nf import DeviceKind, NFKind, NFProfile
from repro.harness.stats import MetricSummary
from repro.telemetry.histogram import LatencyHistogram
from repro.units import gbps

from .test_property_placement import placements

KINDS = [NFKind.FIREWALL, NFKind.IDS, NFKind.VPN, NFKind.MONITOR,
         NFKind.NAT, NFKind.LOAD_BALANCER]


@st.composite
def kinded_chains(draw):
    """Chains of 1-8 NFs with random kinds."""
    kinds = draw(st.lists(st.sampled_from(KINDS), min_size=1, max_size=8))
    nfs = [NFProfile(name=f"nf{i}", kind=kind,
                     nic_capacity_bps=gbps(2.0 + i))
           for i, kind in enumerate(kinds)]
    return ServiceChain(nfs)


class TestConstraintProperties:
    @given(kinded_chains())
    @settings(max_examples=80, deadline=None)
    def test_must_precede_violations_are_real_inversions(self, chain):
        rule = MustPrecede(NFKind.VPN, NFKind.IDS)
        violations = rule.check(chain)
        positions_vpn = [i for i, nf in enumerate(chain)
                         if nf.kind is NFKind.VPN]
        positions_ids = [i for i, nf in enumerate(chain)
                         if nf.kind is NFKind.IDS]
        has_inversion = any(v > i for v in positions_vpn
                            for i in positions_ids)
        assert bool(violations) == has_inversion

    @given(kinded_chains())
    @settings(max_examples=80, deadline=None)
    def test_at_most_one_counts(self, chain):
        rule = AtMostOne(NFKind.NAT)
        count = sum(1 for nf in chain if nf.kind is NFKind.NAT)
        assert bool(rule.check(chain)) == (count > 1)

    @given(kinded_chains())
    @settings(max_examples=80, deadline=None)
    def test_edge_rule_never_flags_endpoints(self, chain):
        rule = MustBeEdge(NFKind.LOAD_BALANCER)
        for violation in rule.check(chain):
            assert chain.names()[0] not in violation.detail.split("'")[1] \
                or len(chain) > 2

    @given(kinded_chains())
    @settings(max_examples=80, deadline=None)
    def test_empty_rule_list_always_passes(self, chain):
        assert check_chain(chain, rules=()) == []


class TestHistogramProperties:
    samples = st.lists(st.floats(min_value=1e-6, max_value=0.99),
                       min_size=1, max_size=200)

    @given(samples)
    @settings(max_examples=80, deadline=None)
    def test_total_equals_bucket_sums(self, values):
        histogram = LatencyHistogram()
        histogram.extend(values)
        bucketed = sum(count for *_, count in histogram.nonzero_buckets())
        assert bucketed + histogram.underflow + histogram.overflow == \
            len(values)

    @given(samples)
    @settings(max_examples=80, deadline=None)
    def test_quantiles_monotone(self, values):
        histogram = LatencyHistogram()
        histogram.extend(values)
        quantiles = [histogram.quantile(q / 10) for q in range(11)]
        assert quantiles == sorted(quantiles)

    @given(samples)
    @settings(max_examples=80, deadline=None)
    def test_quantile_brackets_true_median_within_bucket(self, values):
        # quantile(0.5) returns the upper bound of the bucket holding
        # the ceil(n/2)-th smallest sample, so it can be at most one
        # bucket-width below that sample's value.
        histogram = LatencyHistogram(buckets_per_decade=8)
        histogram.extend(values)
        rank = math.ceil(0.5 * len(values)) - 1
        covered_sample = sorted(values)[rank]
        estimate = histogram.quantile(0.5)
        step = 10 ** (1 / 8)
        assert estimate >= covered_sample / (step * 1.001)


class TestStatsProperties:
    samples = st.lists(st.floats(min_value=-1e3, max_value=1e3),
                       min_size=2, max_size=40)

    @given(samples)
    @settings(max_examples=80, deadline=None)
    def test_mean_within_range(self, values):
        summary = MetricSummary("m", tuple(values))
        assert min(values) - 1e-9 <= summary.mean <= max(values) + 1e-9

    @given(samples)
    @settings(max_examples=80, deadline=None)
    def test_stdev_nonnegative_and_zero_for_constant(self, values):
        summary = MetricSummary("m", tuple(values))
        assert summary.stdev >= 0
        constant = MetricSummary("m", tuple([values[0]] * len(values)))
        assert constant.stdev == pytest_approx_zero()

    @given(samples)
    @settings(max_examples=80, deadline=None)
    def test_ci_shrinks_with_replication(self, values):
        once = MetricSummary("m", tuple(values))
        # Repeating the same sample set 4x shrinks the CI ~2x (sqrt(n)).
        repeated = MetricSummary("m", tuple(values * 4))
        if once.stdev > 0:
            assert repeated.ci95_halfwidth < once.ci95_halfwidth


def pytest_approx_zero():
    import pytest
    return pytest.approx(0.0, abs=1e-9)


class TestDiagramProperties:
    @given(placements(min_len=1, max_len=6))
    @settings(max_examples=60, deadline=None)
    def test_every_nf_rendered_exactly_once(self, placement):
        text = render_placement(placement)
        for name in placement.chain.names():
            assert text.count(f"[{name}]") == 1

    @given(placements(min_len=1, max_len=6))
    @settings(max_examples=60, deadline=None)
    def test_crossing_marks_match_geometry(self, placement):
        text = render_placement(placement)
        lines = text.splitlines()
        marks = lines[1] if len(lines) == 4 else ""
        assert marks.count("X") == placement.pcie_crossings()

    @given(placements(min_len=1, max_len=6))
    @settings(max_examples=60, deadline=None)
    def test_footer_states_crossings(self, placement):
        text = render_placement(placement)
        assert f"PCIe crossings: {placement.pcie_crossings()}" in text
