"""Arrival-process generators: rates, determinism, shapes."""

import pytest

from repro.errors import ConfigurationError
from repro.traffic.generators import (ConstantBitRate, OnOffBursts,
                                      PoissonArrivals, RampArrivals,
                                      cbr_64_to_1500)
from repro.traffic.packet import FixedSize
from repro.units import bits, gbps, mbps


def realised_rate_bps(packets, duration_s):
    return sum(bits(p.size_bytes) for p in packets) / duration_s


class TestConstantBitRate:
    def test_interarrival_is_exact(self):
        gen = ConstantBitRate(gbps(1.0), FixedSize(256), duration_s=0.001)
        packets = list(gen.packets())
        gaps = {round(b.arrival_s - a.arrival_s, 12)
                for a, b in zip(packets, packets[1:])}
        assert len(gaps) == 1  # perfectly even spacing

    def test_realised_rate_matches_target(self):
        gen = ConstantBitRate(gbps(1.0), FixedSize(256), duration_s=0.002)
        packets = list(gen.packets())
        assert realised_rate_bps(packets, 0.002) == \
            pytest.approx(gbps(1.0), rel=0.01)

    def test_sequence_numbers_monotone(self):
        gen = ConstantBitRate(mbps(100), FixedSize(64), duration_s=0.001)
        seqs = [p.seq for p in gen.packets()]
        assert seqs == list(range(len(seqs)))

    def test_arrivals_within_horizon(self):
        gen = ConstantBitRate(mbps(100), FixedSize(64), duration_s=0.001)
        assert all(p.arrival_s < 0.001 for p in gen.packets())

    def test_deterministic_across_iterations(self):
        gen = ConstantBitRate(mbps(100), FixedSize(64), duration_s=0.001)
        first = [(p.seq, p.arrival_s) for p in gen.packets()]
        second = [(p.seq, p.arrival_s) for p in gen.packets()]
        assert first == second

    def test_rate_validated(self):
        with pytest.raises(ConfigurationError):
            ConstantBitRate(0.0, FixedSize(64), duration_s=0.001)

    def test_duration_validated(self):
        with pytest.raises(ConfigurationError):
            ConstantBitRate(mbps(1), FixedSize(64), duration_s=0.0)

    def test_convenience_constructor(self):
        gen = cbr_64_to_1500(gbps(1.0), 1500, duration_s=0.001)
        assert all(p.size_bytes == 1500 for p in gen.packets())


class TestPoisson:
    def test_mean_rate_approximates_target(self):
        gen = PoissonArrivals(gbps(1.0), FixedSize(256), duration_s=0.01,
                              seed=5)
        packets = list(gen.packets())
        assert realised_rate_bps(packets, 0.01) == \
            pytest.approx(gbps(1.0), rel=0.1)

    def test_interarrivals_vary(self):
        gen = PoissonArrivals(gbps(1.0), FixedSize(256), duration_s=0.001,
                              seed=5)
        packets = list(gen.packets())
        gaps = {round(b.arrival_s - a.arrival_s, 12)
                for a, b in zip(packets, packets[1:])}
        assert len(gaps) > 10

    def test_seed_reproducibility(self):
        a = [p.arrival_s for p in PoissonArrivals(
            gbps(1.0), FixedSize(256), 0.001, seed=5).packets()]
        b = [p.arrival_s for p in PoissonArrivals(
            gbps(1.0), FixedSize(256), 0.001, seed=5).packets()]
        assert a == b


class TestOnOffBursts:
    def test_mean_rate_between_low_and_high(self):
        gen = OnOffBursts(low_bps=mbps(500), high_bps=gbps(2.0),
                          size_dist=FixedSize(256), duration_s=0.05,
                          mean_dwell_s=0.005, seed=2)
        packets = list(gen.packets())
        realised = realised_rate_bps(packets, 0.05)
        assert mbps(500) * 0.5 < realised < gbps(2.0)

    def test_repeated_iteration_resets_modulation(self):
        gen = OnOffBursts(low_bps=mbps(500), high_bps=gbps(2.0),
                          size_dist=FixedSize(256), duration_s=0.01,
                          seed=2)
        first = [p.arrival_s for p in gen.packets()]
        second = [p.arrival_s for p in gen.packets()]
        assert first == second

    def test_rates_validated(self):
        with pytest.raises(ConfigurationError):
            OnOffBursts(low_bps=gbps(2.0), high_bps=gbps(1.0),
                        size_dist=FixedSize(64), duration_s=0.01)


class TestRamp:
    def test_rate_at_endpoints(self):
        gen = RampArrivals(mbps(100), gbps(1.0), FixedSize(256),
                           duration_s=0.01)
        assert gen.rate_at(0.0) == mbps(100)
        assert gen.rate_at(0.01) == gbps(1.0)

    def test_rate_clamped_outside_horizon(self):
        gen = RampArrivals(mbps(100), gbps(1.0), FixedSize(256),
                           duration_s=0.01)
        assert gen.rate_at(-1.0) == mbps(100)
        assert gen.rate_at(99.0) == gbps(1.0)

    def test_arrivals_accelerate(self):
        gen = RampArrivals(mbps(100), gbps(1.0), FixedSize(256),
                           duration_s=0.01)
        packets = list(gen.packets())
        first_gap = packets[1].arrival_s - packets[0].arrival_s
        last_gap = packets[-1].arrival_s - packets[-2].arrival_s
        assert last_gap < first_gap

    def test_bounds_validated(self):
        with pytest.raises(ConfigurationError):
            RampArrivals(gbps(1.0), gbps(1.0), FixedSize(64), 0.01)


class TestCountEstimate:
    def test_estimate_close_to_actual(self):
        gen = ConstantBitRate(gbps(1.0), FixedSize(256), duration_s=0.005)
        actual = len(list(gen.packets()))
        assert gen.count_estimate() == pytest.approx(actual, rel=0.02)
