"""Campaign-level journal resume: replay completed runs, redo the rest."""

import os
import signal

import pytest

from repro.chaos.crashresume import run_crash_resume_check
from repro.chaos.runner import ChaosRunner
from repro.chaos.schedule import ChaosConfig
from repro.checkpoint import read_journal
from repro.errors import ConfigurationError

_CONFIG = ChaosConfig(duration_s=0.01)


def _campaign(**kwargs):
    return ChaosRunner(runs=4, seed=11, config=_CONFIG, **kwargs)


def _truncate_after_results(path, keep):
    """Rewrite the journal with only campaign-start + ``keep`` results."""
    outcome = read_journal(path)
    kept = 0
    lines = []
    with open(path, "r", encoding="utf-8") as handle:
        raw = handle.read().splitlines()
    for line, record in zip(raw, outcome.records):
        kind = record.get("kind")
        if kind == "run-result":
            if kept == keep:
                break
            kept += 1
        elif kind not in ("campaign-start", "campaign-progress"):
            break
        lines.append(line)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")


class TestCampaignResume:
    def test_resume_is_bit_exact_and_counts_replays(self, tmp_path):
        journal = str(tmp_path / "campaign.jsonl")
        reference = _campaign().run()
        _campaign(journal_path=journal, checkpoint_every=1).run()
        _truncate_after_results(journal, keep=2)

        resumed_runner = _campaign(resume_from=journal)
        resumed = resumed_runner.run()
        assert resumed_runner.replayed_runs == 2
        assert resumed.render() == reference.render()
        # The rewritten journal holds the full campaign again.
        kinds = [r["kind"] for r in read_journal(journal).records]
        assert kinds.count("run-result") == 4
        assert kinds[-1] == "campaign-end"

    def test_full_journal_resume_replays_everything(self, tmp_path):
        journal = str(tmp_path / "campaign.jsonl")
        reference = _campaign(journal_path=journal).run()
        resumed_runner = _campaign(resume_from=journal)
        assert resumed_runner.run().render() == reference.render()
        assert resumed_runner.replayed_runs == 4

    def test_torn_tail_resumes_with_warning(self, tmp_path):
        journal = str(tmp_path / "campaign.jsonl")
        reference = _campaign(journal_path=journal,
                              checkpoint_every=1).run()
        with open(journal, "a", encoding="utf-8") as handle:
            handle.write('{"crc": 3, "record": {"kind": "run-res')
        resumed_runner = _campaign(resume_from=journal)
        with pytest.warns(RuntimeWarning, match="resuming from the last"):
            resumed = resumed_runner.run()
        assert resumed.render() == reference.render()

    def test_fingerprint_mismatch_refuses_resume(self, tmp_path):
        journal = str(tmp_path / "campaign.jsonl")
        _campaign(journal_path=journal).run()
        different_seed = ChaosRunner(runs=4, seed=99, config=_CONFIG,
                                     resume_from=journal)
        with pytest.raises(ConfigurationError, match="fingerprint"):
            different_seed.run()

    def test_journal_without_campaign_start_rejected(self, tmp_path):
        journal = str(tmp_path / "campaign.jsonl")
        _campaign(journal_path=journal).run()
        with open(journal, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        with open(journal, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines[1:]) + "\n")
        with pytest.raises(ConfigurationError):
            _campaign(resume_from=journal).run()


@pytest.mark.skipif(not hasattr(signal, "SIGKILL"),
                    reason="requires POSIX SIGKILL")
class TestCrashResumeSmoke:
    def test_sigkilled_campaign_resumes_bit_exact(self, tmp_path):
        outcome = run_crash_resume_check(
            runs=4, seed=7, duration_s=0.01,
            journal_path=str(tmp_path / "journal.jsonl"),
            kill_after_runs=1)
        assert outcome.killed
        assert outcome.journaled_before_kill >= 1
        assert outcome.replayed_runs == outcome.journaled_before_kill
        assert outcome.match, outcome.render()
        assert os.path.exists(str(tmp_path / "journal.jsonl"))
