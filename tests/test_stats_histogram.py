"""Replication statistics and latency histograms."""

import pytest

from repro.errors import ConfigurationError
from repro.harness.experiment import ExperimentConfig
from repro.harness.scenarios import figure1
from repro.harness.stats import (MetricSummary, replicate, t_quantile_95)
from repro.telemetry.histogram import LatencyHistogram
from repro.traffic.generators import PoissonArrivals
from repro.traffic.packet import FixedSize
from repro.units import gbps, usec


class TestMetricSummary:
    def test_mean_and_stdev(self):
        summary = MetricSummary("m", (1.0, 2.0, 3.0))
        assert summary.mean == 2.0
        assert summary.stdev == pytest.approx(1.0)

    def test_single_sample_has_zero_spread(self):
        summary = MetricSummary("m", (5.0,))
        assert summary.stdev == 0.0
        assert summary.ci95_halfwidth == 0.0

    def test_ci_uses_t_quantile(self):
        summary = MetricSummary("m", (1.0, 2.0, 3.0))
        expected = t_quantile_95(2) * summary.stdev / (3 ** 0.5)
        assert summary.ci95_halfwidth == pytest.approx(expected)

    def test_describe(self):
        text = MetricSummary("m", (1.0, 2.0)).describe(scale=10, unit="x")
        assert "±" in text and "n=2" in text

    def test_t_quantile_bounds(self):
        assert t_quantile_95(1) == pytest.approx(12.706)
        assert t_quantile_95(100) == pytest.approx(1.960)
        with pytest.raises(ConfigurationError):
            t_quantile_95(0)


class TestReplicate:
    def poisson_config(self):
        # Poisson workloads are seed-sensitive, so replication produces
        # genuinely different samples per seed.
        return ExperimentConfig(scenario=figure1(), offered_bps=gbps(1.2),
                                packet_size_bytes=256, duration_s=0.006)

    def test_summaries_cover_default_metrics(self):
        # CBR is seed-insensitive; use it to verify plumbing cheaply.
        report = replicate(self.poisson_config(), seeds=[1, 2, 3])
        for name in ("goodput_bps", "delivery_rate", "mean_latency_s",
                     "p99_latency_s"):
            assert report[name].count == 3

    def test_results_retained(self):
        report = replicate(self.poisson_config(), seeds=[1, 2])
        assert len(report.results) == 2

    def test_custom_metric_extractor(self):
        report = replicate(self.poisson_config(), seeds=[1, 2],
                           metrics=lambda r: {"drops": float(r.dropped)})
        assert set(report.metrics) == {"drops"}

    def test_duplicate_seeds_rejected(self):
        with pytest.raises(ConfigurationError, match="distinct"):
            replicate(self.poisson_config(), seeds=[1, 1])

    def test_empty_seeds_rejected(self):
        with pytest.raises(ConfigurationError):
            replicate(self.poisson_config(), seeds=[])

    def test_prebuilt_generator_rejected(self):
        config = ExperimentConfig(
            scenario=figure1(),
            generator=PoissonArrivals(gbps(1.0), FixedSize(256), 0.004))
        with pytest.raises(ConfigurationError, match="seed"):
            replicate(config, seeds=[1, 2])


class TestHistogram:
    def test_counts_and_total(self):
        histogram = LatencyHistogram()
        histogram.extend([usec(10), usec(12), usec(100)])
        assert histogram.total == 3
        assert sum(count for *_, count in histogram.nonzero_buckets()) == 3

    def test_under_and_overflow(self):
        histogram = LatencyHistogram(lo_s=usec(10), hi_s=usec(100))
        histogram.extend([usec(1), usec(50), usec(500)])
        assert histogram.underflow == 1
        assert histogram.overflow == 1

    def test_bucket_bounds_are_contiguous(self):
        histogram = LatencyHistogram(buckets_per_decade=4)
        __, upper1 = histogram.bucket_bounds(1)
        lower2, __ = histogram.bucket_bounds(2)
        assert upper1 == pytest.approx(lower2)

    def test_quantile_monotone(self):
        histogram = LatencyHistogram()
        histogram.extend([usec(v) for v in (10, 10, 10, 50, 200, 200)])
        values = [histogram.quantile(q / 10) for q in range(1, 11)]
        assert values == sorted(values)

    def test_quantile_brackets_true_value(self):
        histogram = LatencyHistogram(buckets_per_decade=10)
        histogram.extend([usec(100)] * 100)
        q50 = histogram.quantile(0.5)
        assert usec(80) < q50 < usec(130)

    def test_multimodal_detection(self):
        histogram = LatencyHistogram()
        histogram.extend([usec(10)] * 50 + [usec(5000)] * 5)
        assert histogram.is_multimodal()
        unimodal = LatencyHistogram()
        unimodal.extend([usec(10 + i) for i in range(50)])
        assert not unimodal.is_multimodal()

    def test_render(self):
        histogram = LatencyHistogram()
        histogram.extend([usec(10)] * 5)
        assert "us" in histogram.render()
        assert LatencyHistogram().render() == "(empty histogram)"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LatencyHistogram(lo_s=1.0, hi_s=0.5)
        with pytest.raises(ConfigurationError):
            LatencyHistogram().add(-1.0)
        with pytest.raises(ConfigurationError):
            LatencyHistogram().quantile(0.5)  # empty

    def test_migration_transient_is_bimodal(self):
        """The histogram separates the steady state from the transient."""
        from repro.core.planner import MigrationController, PAMPolicy
        from repro.harness.experiment import run_experiment
        config = ExperimentConfig(
            scenario=figure1(), offered_bps=gbps(1.8),
            packet_size_bytes=256, duration_s=0.02,
            controller=MigrationController(PAMPolicy()))
        result = run_experiment(config)
        # Rebuild the histogram from the delivered packets' latencies
        # via the summary quantiles is lossy; instead drive it with the
        # component data we have: use p50 vs max spread as a proxy and
        # verify the histogram flags the separation.
        histogram = LatencyHistogram(buckets_per_decade=8)
        histogram.extend([result.latency.p50_s] * 95
                         + [result.latency.max_s] * 5)
        assert histogram.is_multimodal()
