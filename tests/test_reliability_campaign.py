"""The reliability campaign: grid, payloads, journal, bit-exactness."""

import json
import os

import pytest

from repro.errors import ConfigurationError
from repro.exec import (build_campaign, make_executor, run_campaign,
                        seed_for)
from repro.reliability import (ReliabilityCampaign, render_payload,
                               render_payloads)

GOLDEN = os.path.join(os.path.dirname(__file__), "golden",
                      "reliability_devkill_runs1_seed7.txt")

#: Short enough for CI, long enough for the kill and the evacuation.
_DURATION_S = 0.02


def _campaign(**overrides):
    spec = dict(scenario="device-kill",
                policies=("joint", "pam", "naive"),
                runs=1, seed=7, duration_s=_DURATION_S)
    spec.update(overrides)
    return ReliabilityCampaign(**spec)


class TestGrid:
    def test_policy_major_requests(self):
        requests = _campaign(runs=2).requests()
        assert [(r.params["policy"], r.params["rep"])
                for r in requests] == \
            [("joint", 0), ("joint", 1), ("pam", 0), ("pam", 1),
             ("naive", 0), ("naive", 1)]
        assert [r.index for r in requests] == list(range(6))

    def test_policies_compared_on_paired_seeds(self):
        requests = _campaign(runs=2).requests()
        by_rep = {}
        for request in requests:
            by_rep.setdefault(request.params["rep"],
                              set()).add(request.seed)
        # Every policy's rep r runs at the same seed.
        assert by_rep == {0: {seed_for(7, 0)}, 1: {seed_for(7, 1)}}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            _campaign(scenario="bogus")
        with pytest.raises(ConfigurationError):
            _campaign(policies=())
        with pytest.raises(ConfigurationError):
            _campaign(policies=("joint", "bogus"))
        with pytest.raises(ConfigurationError):
            _campaign(runs=0)
        with pytest.raises(ConfigurationError):
            _campaign(budget_bytes=-1)


class TestSpec:
    def test_fingerprint_matches_spec(self):
        campaign = _campaign()
        assert campaign.fingerprint() == campaign.spec()

    def test_from_spec_round_trips(self):
        campaign = _campaign(runs=3, budget_bytes=4096)
        rebuilt = ReliabilityCampaign.from_spec(campaign.spec())
        assert rebuilt.fingerprint() == campaign.fingerprint()

    def test_registered_as_builtin_kind(self):
        rebuilt = build_campaign("reliability", _campaign().spec())
        assert isinstance(rebuilt, ReliabilityCampaign)


class TestPayloads:
    def test_payload_json_clean_and_renders(self):
        campaign = _campaign(policies=("joint",))
        (request,) = campaign.requests()
        payload = campaign.run_request(request)
        wire = json.loads(json.dumps(payload))
        assert wire == payload
        assert payload["violations"] == []
        report = render_payload(payload)
        assert "policy=joint" in report
        assert "verdict: ok" in report

    def test_error_payload_is_a_violation(self):
        campaign = _campaign()
        request = campaign.requests()[0]
        payload = campaign.error_payload(request, "worker died")
        assert json.loads(json.dumps(payload)) == payload
        assert len(payload["violations"]) == 1
        report = render_payload(payload)
        assert "VIOLATION" in report
        assert "verdict: INVARIANTS BROKEN" in report

    def test_end_record_totals(self):
        campaign = _campaign()
        payloads = [{"violations": []}, {"violations": [1, 2]}]
        assert campaign.end_record(payloads) == \
            {"runs": 2, "violations": 2}


class TestGolden:
    def _render(self, workers):
        outcome = run_campaign(_campaign(),
                               executor=make_executor(workers))
        return render_payloads(outcome.payloads)

    def test_serial_matches_golden(self):
        with open(GOLDEN, encoding="utf-8") as handle:
            golden = handle.read()
        assert self._render(1) + "\n" == golden

    def test_parallel_matches_golden(self):
        with open(GOLDEN, encoding="utf-8") as handle:
            golden = handle.read()
        assert self._render(2) + "\n" == golden


class TestJournal:
    def test_parallel_resume_matches_serial(self, tmp_path):
        journal = str(tmp_path / "reliability.jsonl")
        run_campaign(_campaign(), executor=make_executor(2),
                     journal_path=journal, checkpoint_every=1)
        resumed = run_campaign(_campaign(), resume_from=journal)
        serial = run_campaign(_campaign())
        assert resumed.replayed == 3
        assert resumed.payloads == serial.payloads
        assert render_payloads(resumed.payloads) == \
            render_payloads(serial.payloads)

    def test_partial_journal_resumes_bit_exact(self, tmp_path):
        journal = str(tmp_path / "partial.jsonl")
        run_campaign(_campaign(), journal_path=journal,
                     checkpoint_every=1)
        with open(journal, encoding="utf-8") as handle:
            lines = handle.readlines()
        # Cut right after the first run-result — as if the process
        # died mid-campaign.
        first = next(i for i, line in enumerate(lines)
                     if '"run-result"' in line)
        kept = lines[:first + 1]
        truncated = str(tmp_path / "truncated.jsonl")
        with open(truncated, "w", encoding="utf-8") as handle:
            handle.writelines(kept)
        resumed = run_campaign(_campaign(), resume_from=truncated)
        serial = run_campaign(_campaign())
        assert resumed.replayed == 1
        assert resumed.executed == 2
        assert resumed.payloads == serial.payloads
