"""Closed-form analysis, cross-validated against the simulator."""

import pytest

from repro.analysis import (Regime, capacity_report, headroom_gained,
                            predict_crossing_penalty, predict_latency,
                            predict_policy_gap, rank_migration_candidates)
from repro.baselines.naive import select as naive_select
from repro.chain.nf import DeviceKind
from repro.core.pam import select as pam_select
from repro.errors import ConfigurationError
from repro.harness.experiment import steady_state
from repro.harness.scenarios import figure1
from repro.units import gbps

C = DeviceKind.CPU
S = DeviceKind.SMARTNIC


class TestPredictLatency:
    def test_breakdown_sums_to_total(self, fig1_placement):
        prediction = predict_latency(fig1_placement, 256)
        assert prediction.total_s == pytest.approx(
            prediction.wire_s + prediction.processing_s +
            prediction.pcie_s)

    def test_crossings_match_placement(self, fig1_placement):
        assert predict_latency(fig1_placement, 256).crossings == \
            fig1_placement.pcie_crossings()

    def test_monotone_in_packet_size(self, fig1_placement):
        small = predict_latency(fig1_placement, 64).total_s
        large = predict_latency(fig1_placement, 1500).total_s
        assert large > small

    def test_invalid_size(self, fig1_placement):
        with pytest.raises(ConfigurationError):
            predict_latency(fig1_placement, 0)

    @pytest.mark.parametrize("size", [64, 256, 1500])
    def test_simulator_matches_closed_form_exactly(self, size):
        """THE cross-validation: below the knee, under CBR, the
        discrete-event simulator must reproduce the closed form."""
        scenario = figure1()
        prediction = predict_latency(scenario.placement, size)
        result = steady_state(scenario, gbps(1.2), size,
                              duration_s=0.004)
        assert result.latency.mean_s == pytest.approx(
            prediction.total_s, rel=1e-9)

    def test_naive_penalty_is_two_crossings(self, fig1_placement,
                                            fig1_throughput):
        naive = naive_select(fig1_placement, fig1_throughput)
        pam = pam_select(fig1_placement, fig1_throughput)
        naive_latency = predict_latency(naive.after, 256).total_s
        pam_latency = predict_latency(pam.after, 256).total_s
        # PAM moved the logger (same theta both sides, so no processing
        # change); naive moved the monitor, whose CPU form is faster
        # (theta 3.2 -> 10).  The analytic gap is therefore the two
        # extra crossings minus the monitor's processing speed-up.
        monitor = fig1_placement.chain.get("monitor")
        speedup = 256 * 8 * (1 / monitor.nic_capacity_bps
                             - 1 / monitor.cpu_capacity_bps)
        assert naive_latency - pam_latency == pytest.approx(
            predict_crossing_penalty(256) - speedup, rel=1e-6)

    def test_policy_gap_reproduces_headline(self, fig1_placement,
                                            fig1_throughput):
        naive = naive_select(fig1_placement, fig1_throughput)
        pam = pam_select(fig1_placement, fig1_throughput)
        gap = predict_policy_gap(fig1_placement, naive.after, pam.after,
                                 256)
        assert 0.15 < gap < 0.25  # naive ~18% above PAM


class TestCapacityReport:
    def test_figure1_knees(self, fig1_placement):
        report = capacity_report(fig1_placement)
        assert report.nic_knee_bps == pytest.approx(gbps(1 / 0.6625))
        assert report.cpu_knee_bps == pytest.approx(gbps(4.0))
        assert report.binding_device is S

    def test_regimes(self, fig1_placement):
        report = capacity_report(fig1_placement)
        assert report.regime_at(gbps(1.0)) is Regime.NOMINAL
        assert report.regime_at(gbps(1.8)) is Regime.NIC_OVERLOADED
        assert report.regime_at(gbps(8.0)) is Regime.BOTH_OVERLOADED

    def test_cpu_overload_regime(self, fig1_placement):
        # All NFs on the CPU: the CPU knee binds.
        all_cpu = fig1_placement.moved("logger", C).moved("monitor", C) \
                                .moved("firewall", C)
        report = capacity_report(all_cpu)
        assert report.binding_device is C
        assert report.regime_at(gbps(2.0)) is Regime.CPU_OVERLOADED

    def test_negative_load_rejected(self, fig1_placement):
        with pytest.raises(ConfigurationError):
            capacity_report(fig1_placement).regime_at(-1.0)


class TestHeadroom:
    def test_gain_positive_for_nic_nfs(self, fig1_placement):
        assert headroom_gained(fig1_placement, "monitor") > 0

    def test_gain_zero_for_cpu_nfs(self, fig1_placement):
        assert headroom_gained(fig1_placement, "load_balancer") == 0.0

    def test_min_theta_gains_most(self, fig1_placement):
        # The paper's Step 2 rule in capacity terms: the smallest
        # theta^S NF yields the largest NIC-knee gain.
        ranked = rank_migration_candidates(fig1_placement)
        assert ranked[0][0] == "monitor"  # theta^S = 3.2, the minimum
        gains = [gain for _, gain in ranked]
        assert gains == sorted(gains, reverse=True)
