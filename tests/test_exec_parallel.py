"""Parallel-vs-serial bit-exactness across campaign kinds.

The contract the whole execution core rests on: a campaign's merged
report depends only on its spec and seed, never on the executor, the
worker count, or the completion order.  These tests pin it three ways —
against a committed golden file, against a live serial reference, and
as a hypothesis property over small grids.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos.runner import ChaosCampaign, ChaosConfig, ChaosRunner
from repro.exec import make_executor, run_campaign
from repro.harness.scenarios import figure1
from repro.harness.sweep import packet_size_sweep
from repro.resilience.campaign import ResilienceCampaign

GOLDEN = os.path.join(os.path.dirname(__file__), "golden",
                      "chaos_runs4_seed11.txt")

#: Short enough for CI, long enough for faults and a migration to land.
_DURATION_S = 0.01


def _chaos_render(workers):
    runner = ChaosRunner(runs=4, seed=11,
                         config=ChaosConfig(duration_s=_DURATION_S),
                         workers=workers)
    return runner.run().render()


class TestChaosGolden:
    def test_serial_matches_golden(self):
        with open(GOLDEN, encoding="utf-8") as handle:
            golden = handle.read()
        assert _chaos_render(1) + "\n" == golden

    def test_parallel_matches_golden(self):
        with open(GOLDEN, encoding="utf-8") as handle:
            golden = handle.read()
        assert _chaos_render(2) + "\n" == golden


class TestParallelMatchesSerial:
    def test_resilience_campaign(self):
        campaign = ResilienceCampaign("device-kill", runs=2, seed=5,
                                      duration_s=0.02)
        serial = run_campaign(campaign, executor=make_executor(1))
        parallel = run_campaign(campaign, executor=make_executor(2))
        assert parallel.payloads == serial.payloads

    def test_size_sweep(self):
        sizes = [256, 1024]
        serial = packet_size_sweep(figure1(), sizes=sizes,
                                   duration_s=0.005, workers=1)
        parallel = packet_size_sweep(figure1(), sizes=sizes,
                                     duration_s=0.005, workers=2)
        assert ([p.to_record() for p in parallel]
                == [p.to_record() for p in serial])

    def test_parallel_resume_matches_serial(self, tmp_path):
        journal = str(tmp_path / "chaos.jsonl")
        config = ChaosConfig(duration_s=_DURATION_S)
        campaign = ChaosCampaign(ChaosRunner(runs=4, seed=11,
                                             config=config))
        run_campaign(campaign, executor=make_executor(2),
                     journal_path=journal)
        resumed = run_campaign(campaign, resume_from=journal)
        serial = run_campaign(campaign)
        assert resumed.replayed == 4
        assert resumed.payloads == serial.payloads


@settings(max_examples=4, deadline=None)
@given(runs=st.integers(min_value=1, max_value=3),
       seed=st.integers(min_value=0, max_value=50))
def test_chaos_parallel_grid_property(runs, seed):
    """Chaos grids merge identically under serial and parallel."""
    config = ChaosConfig(duration_s=0.005)
    serial = ChaosRunner(runs=runs, seed=seed, config=config,
                         workers=1).run()
    parallel = ChaosRunner(runs=runs, seed=seed, config=config,
                           workers=2).run()
    assert parallel.render() == serial.render()


@settings(max_examples=3, deadline=None)
@given(runs=st.integers(min_value=1, max_value=2),
       seed=st.integers(min_value=0, max_value=20))
def test_resilience_parallel_grid_property(runs, seed):
    """Resilience grids merge identically under serial and parallel."""
    campaign = ResilienceCampaign("overload", runs=runs, seed=seed,
                                  duration_s=0.02)
    serial = run_campaign(campaign, executor=make_executor(1))
    parallel = run_campaign(campaign, executor=make_executor(2))
    assert parallel.payloads == serial.payloads
