"""End-to-end integration: the full overload -> detect -> migrate ->
recover loop, and the headline paper numbers."""

import pytest

from repro.baselines.naive import NaivePolicy
from repro.core.planner import MigrationController, PAMPolicy
from repro.harness.compare import compare_policies, latency_gap
from repro.harness.scenarios import figure1
from repro.sim.runner import SimulationRunner
from repro.telemetry.monitor import SERIES_CPU, SERIES_NIC, LoadMonitor
from repro.traffic.generators import ConstantBitRate
from repro.traffic.packet import FixedSize
from repro.traffic.patterns import ProfiledArrivals, spike
from repro.units import gbps


class TestHeadlineNumbers:
    """The paper's S3 claims, as assertions."""

    @pytest.fixture(scope="class")
    def outcomes(self):
        return compare_policies(figure1(), duration_s=0.01)

    def test_pam_latency_15_to_25_percent_below_naive(self, outcomes):
        gap = latency_gap(outcomes)
        assert -0.25 <= gap <= -0.15  # paper: -18% average

    def test_pam_latency_within_2_percent_of_before(self, outcomes):
        # "almost unchanged compared to the latency before migration"
        before = outcomes["noop"].mean_latency_s
        pam = outcomes["pam"].mean_latency_s
        assert abs(pam - before) / before < 0.02

    def test_throughput_improved_after_migration(self, outcomes):
        # "the throughput of the service chain of PAM is improved"
        assert outcomes["pam"].goodput_bps > \
            1.2 * outcomes["noop"].goodput_bps

    def test_naive_pays_exactly_two_extra_crossings(self, outcomes):
        assert outcomes["naive"].pcie_crossings - \
            outcomes["noop"].pcie_crossings == 2

    def test_pam_pcie_component_unchanged(self, outcomes):
        noop_pcie = outcomes["noop"].latency_run.component_means_s["pcie"]
        pam_pcie = outcomes["pam"].latency_run.component_means_s["pcie"]
        naive_pcie = outcomes["naive"].latency_run.component_means_s["pcie"]
        assert pam_pcie == pytest.approx(noop_pcie, rel=0.01)
        assert naive_pcie > pam_pcie * 1.5


class TestTrafficSpikeClosedLoop:
    """A load spike overloads the NIC mid-run; PAM reacts live."""

    def run_spike(self, policy):
        profile = spike(base_bps=gbps(1.3), peak_bps=gbps(1.8),
                        start_s=0.01, duration_s=0.05)
        generator = ProfiledArrivals(profile, FixedSize(256),
                                     duration_s=0.04, seed=11,
                                     jitter=False)
        server = figure1().build_server()
        controller = MigrationController(policy)
        monitor = LoadMonitor(inner=controller)
        runner = SimulationRunner(server, generator, monitor,
                                  monitor_period_s=0.002)
        return runner.run(), monitor

    def test_pam_reacts_after_spike_onset(self):
        result, _ = self.run_spike(PAMPolicy())
        assert result.migrated_nfs == ["logger"]
        assert result.migration_times_s[0] > 0.01

    def test_nic_utilisation_recovers(self):
        result, monitor = self.run_spike(PAMPolicy())
        nic = monitor.recorder.values(SERIES_NIC)
        assert max(nic) > 1.0
        assert nic[-1] < 1.0

    def test_cpu_takes_on_the_pushed_nf(self):
        __, monitor = self.run_spike(PAMPolicy())
        cpu = monitor.recorder.values(SERIES_CPU)
        assert cpu[-1] > cpu[0]  # CPU absorbed the logger
        assert cpu[-1] < 1.0     # without becoming a hot spot (Eq. 2)

    def test_no_loss_through_the_whole_episode(self):
        result, _ = self.run_spike(PAMPolicy())
        assert result.dropped == 0
        assert result.delivery_rate == 1.0

    def test_naive_and_pam_converge_to_different_placements(self):
        pam_result, _ = self.run_spike(PAMPolicy())
        naive_result, _ = self.run_spike(NaivePolicy())
        assert pam_result.final_placement != naive_result.final_placement
        assert pam_result.final_placement.pcie_crossings() < \
            naive_result.final_placement.pcie_crossings()

    def test_post_migration_latency_lower_under_pam(self):
        pam_result, _ = self.run_spike(PAMPolicy())
        naive_result, _ = self.run_spike(NaivePolicy())
        assert pam_result.latency.mean_s < naive_result.latency.mean_s


class TestDeterminism:
    def test_identical_runs_produce_identical_results(self):
        def one_run():
            server = figure1().build_server()
            generator = ConstantBitRate(gbps(1.8), FixedSize(256), 0.012)
            controller = MigrationController(PAMPolicy())
            return SimulationRunner(server, generator, controller,
                                    monitor_period_s=0.002).run()

        a = one_run()
        b = one_run()
        assert a.latency.mean_s == b.latency.mean_s
        assert a.delivered == b.delivered
        assert a.migration_times_s == b.migration_times_s
