"""Physical Ethernet port model (opt-in line-rate enforcement)."""

import pytest

from dataclasses import replace

from repro.devices.smartnic import SmartNIC
from repro.devices.server import ServerProfile
from repro.harness.experiment import steady_state
from repro.harness.scenarios import Scenario, figure1
from repro.units import gbps, wire_time


class TestPortArithmetic:
    def test_contention_off_is_pure_serialisation(self):
        nic = SmartNIC("n")
        expected = wire_time(1500, nic.port_rate_bps)
        assert nic.rx_time(1500, 0.0) == expected
        assert nic.rx_time(1500, 0.0) == expected  # no occupancy kept

    def test_back_to_back_frames_queue(self):
        nic = SmartNIC("n", model_port_contention=True)
        first = nic.rx_time(1500, 0.0)
        second = nic.rx_time(1500, 0.0)
        assert second == pytest.approx(2 * first)

    def test_spaced_frames_do_not_queue(self):
        nic = SmartNIC("n", model_port_contention=True)
        first = nic.rx_time(1500, 0.0)
        later = nic.rx_time(1500, 1.0)
        assert later == pytest.approx(first)

    def test_rx_and_tx_are_independent_ports(self):
        nic = SmartNIC("n", model_port_contention=True)
        nic.rx_time(1500, 0.0)
        # TX is idle even though RX is busy (full duplex).
        assert nic.tx_time(1500, 0.0) == \
            pytest.approx(wire_time(1500, nic.port_rate_bps))

    def test_reset_clears_occupancy(self):
        nic = SmartNIC("n", model_port_contention=True)
        nic.rx_time(1500, 0.0)
        nic.reset_ports()
        assert nic.rx_time(1500, 0.0) == \
            pytest.approx(wire_time(1500, nic.port_rate_bps))


class TestEndToEnd:
    def contended_scenario(self):
        base = figure1()
        return Scenario(
            name="ports", chain=base.chain, placement=base.placement,
            server_profile=replace(ServerProfile(),
                                   nic_model_port_contention=True))

    def test_below_line_rate_unaffected_under_cbr(self):
        # CBR at 1.4 Gbps: interarrival always exceeds the frame's wire
        # time, so the physical port adds nothing.
        plain = steady_state(figure1(), gbps(1.4), 256, duration_s=0.004)
        physical = steady_state(self.contended_scenario(), gbps(1.4),
                                256, duration_s=0.004)
        assert physical.latency.mean_s == pytest.approx(
            plain.latency.mean_s, rel=1e-9)

    def test_above_line_rate_queues_at_the_port(self):
        # 12 Gbps offered into a 10 GbE port: with the physical port the
        # wire component inflates as frames wait for the line.
        plain = steady_state(figure1(), gbps(12.0), 1500,
                             duration_s=0.002)
        physical = steady_state(self.contended_scenario(), gbps(12.0),
                                1500, duration_s=0.002)
        assert physical.component_means_s["wire"] > \
            2 * plain.component_means_s["wire"]
