"""Cross-feature integration: presets x policies, faults under control,
traces through suites, diagrams after live migrations."""

import json

import pytest

from repro.baselines.naive import NaivePolicy
from repro.chain.diagram import render_placement
from repro.core.operator import HardenedController, HardeningConfig
from repro.core.planner import MigrationController, PAMPolicy
from repro.core.reverse import PullbackConfig
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.scenarios import (datacenter_inline, enterprise_edge,
                                     figure1, long_chain)
from repro.sim.faults import FaultInjector
from repro.sim.runner import SimulationRunner
from repro.traffic.generators import ConstantBitRate, PoissonArrivals
from repro.traffic.packet import FixedSize
from repro.traffic.trace import TraceReplay, record
from repro.units import gbps


class TestPresetPolicyMatrix:
    """Every preset scenario under every live policy, no crashes."""

    @pytest.mark.parametrize("scenario_factory", [
        figure1, enterprise_edge, lambda: long_chain(6)])
    @pytest.mark.parametrize("policy_factory", [PAMPolicy, NaivePolicy])
    def test_closed_loop_is_stable(self, scenario_factory, policy_factory):
        scenario = scenario_factory()
        controller = MigrationController(policy_factory())
        result = run_experiment(ExperimentConfig(
            scenario=scenario,
            offered_bps=scenario.throughput_bps,
            duration_s=0.015,
            controller=controller))
        # Whatever the policy did, nothing was lost and the books balance.
        assert result.delivered + result.dropped + result.filtered == \
            result.injected
        # Any executed migration kept the placement valid.
        for name in result.final_placement.chain.names():
            result.final_placement.device_of(name)

    def test_pam_never_worse_crossings_than_naive_on_presets(self):
        for scenario in (figure1(), enterprise_edge(), long_chain(6)):
            pam = MigrationController(PAMPolicy())
            naive = MigrationController(NaivePolicy())
            pam_result = run_experiment(ExperimentConfig(
                scenario=scenario, offered_bps=scenario.throughput_bps,
                duration_s=0.015, controller=pam))
            naive_result = run_experiment(ExperimentConfig(
                scenario=scenario, offered_bps=scenario.throughput_bps,
                duration_s=0.015, controller=naive))
            assert pam_result.final_placement.pcie_crossings() <= \
                naive_result.final_placement.pcie_crossings()


class TestFaultsUnderControl:
    def test_crash_during_migration_episode(self):
        """An NF crash overlapping a PAM migration: books still balance."""
        server = figure1().build_server()
        generator = ConstantBitRate(gbps(1.8), FixedSize(256), 0.02)
        controller = MigrationController(PAMPolicy())
        runner = SimulationRunner(server, generator, controller,
                                  monitor_period_s=0.002)
        injector = FaultInjector(runner.network, runner.engine, seed=3)
        # Crash the firewall around when the logger migration fires.
        event = injector.crash_nf("firewall", at_s=0.003,
                                  downtime_s=0.001)
        result = runner.run()
        assert result.migrated_nfs == ["logger"]
        assert result.dropped == event.packets_lost
        assert result.delivered + result.dropped == result.injected

    def test_hardened_loop_survives_loss(self):
        server = figure1().build_server()
        generator = ConstantBitRate(gbps(1.8), FixedSize(256), 0.02)
        controller = HardenedController(config=HardeningConfig(
            cooldown_s=0.002,
            pullback=PullbackConfig(trigger_below=0.5)))
        runner = SimulationRunner(server, generator, controller,
                                  monitor_period_s=0.002)
        FaultInjector(runner.network, runner.engine, seed=3) \
            .random_loss(0.05)
        result = runner.run()
        # Surviving load (~1.71 Gbps) still overloads the NIC: the
        # hardened loop must have reacted.
        assert "logger" in result.migrated_nfs


class TestTraceThroughTheStack:
    def test_recorded_trace_reproduces_policy_decisions(self, tmp_path):
        """Record a bursty workload, replay it from disk: the controller
        makes the identical migration at the identical time."""
        generator = PoissonArrivals(gbps(1.8), FixedSize(256), 0.015,
                                    seed=6)
        trace = record(generator)
        path = tmp_path / "episode.trace"
        trace.save(path)

        def run(workload):
            server = figure1().build_server()
            controller = MigrationController(PAMPolicy())
            return SimulationRunner(server, workload, controller,
                                    monitor_period_s=0.002).run()

        live = run(generator)
        from repro.traffic.trace import PacketTrace
        replayed = run(TraceReplay(PacketTrace.load(path)))
        assert replayed.migrated_nfs == live.migrated_nfs
        assert replayed.migration_times_s == live.migration_times_s
        assert replayed.latency.mean_s == pytest.approx(
            live.latency.mean_s, rel=1e-12)


class TestDiagramsTrackLiveState:
    def test_diagram_changes_after_closed_loop_migration(self):
        scenario = figure1()
        before = render_placement(scenario.placement)
        controller = MigrationController(PAMPolicy())
        result = run_experiment(ExperimentConfig(
            scenario=scenario, offered_bps=gbps(1.8),
            duration_s=0.012, controller=controller))
        after = render_placement(result.final_placement)
        assert before != after
        assert "PCIe crossings: 3" in after  # PAM kept the count
        # The logger now renders on the CPU lane.
        cpu_line = [line for line in after.splitlines()
                    if line.startswith("CPU")][0]
        assert "[logger]" in cpu_line
