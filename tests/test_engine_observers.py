"""Tests for the engine's observer list and batched trace observers."""

from repro.sim.engine import Engine


def _schedule_three(engine):
    order = []
    engine.at(0.001, lambda: order.append("a"))
    engine.at(0.002, lambda: order.append("b"))
    engine.at(0.003, lambda: order.append("c"))
    return order


class TestObserverList:
    def test_observer_sees_every_event_in_order(self):
        engine = Engine()
        _schedule_three(engine)
        seen = []
        engine.add_observer(lambda event: seen.append(event.time_s))
        engine.run()
        assert seen == [0.001, 0.002, 0.003]

    def test_observers_fire_in_subscription_order(self):
        engine = Engine()
        _schedule_three(engine)
        calls = []
        engine.add_observer(lambda event: calls.append("first"))
        engine.add_observer(lambda event: calls.append("second"))
        engine.run(max_events=1)
        assert calls == ["first", "second"]

    def test_remove_observer_stops_delivery(self):
        engine = Engine()
        _schedule_three(engine)
        seen = []
        def observer(event):
            seen.append(event.time_s)
        engine.add_observer(observer)
        engine.run(max_events=1)
        engine.remove_observer(observer)
        engine.run()
        assert seen == [0.001]

    def test_remove_absent_observer_is_noop(self):
        engine = Engine()
        engine.remove_observer(lambda event: None)

    def test_observer_may_unsubscribe_mid_event(self):
        engine = Engine()
        _schedule_three(engine)
        seen = []
        def once(event):
            seen.append(event.time_s)
            engine.remove_observer(once)
        engine.add_observer(once)
        engine.run()
        assert seen == [0.001]

    def test_trace_to_records_time_priority_seq(self):
        engine = Engine()
        _schedule_three(engine)
        engine.at(0.001, lambda: None, control=True)
        trace = []
        engine.trace_to(trace)
        engine.run()
        assert trace == sorted(trace)
        assert all(len(entry) == 3 for entry in trace)

    def test_no_legacy_on_event_property(self):
        # The deprecated single-slot `on_event` observer is gone; the
        # list API is the only subscription surface.
        assert not hasattr(Engine, "on_event")


class TestTraceObservers:
    def test_batches_arrive_in_execution_order(self):
        engine = Engine()
        _schedule_three(engine)
        engine.at(0.001, lambda: None, control=True)
        batches = []
        engine.add_trace_observer(lambda keys: batches.append(list(keys)))
        engine.run()
        keys = [key for batch in batches for key in batch]
        assert keys == sorted(keys)
        assert len(keys) == 4

    def test_run_returns_with_trace_flushed(self):
        engine = Engine()
        _schedule_three(engine)
        sink = []
        engine.trace_to(sink)
        engine.run(max_events=2)
        assert len(sink) == 2
        engine.run()
        assert len(sink) == 3

    def test_remove_trace_observer_stops_delivery(self):
        engine = Engine()
        _schedule_three(engine)
        batches = []
        def observer(keys):
            batches.append(list(keys))
        engine.add_trace_observer(observer)
        engine.run(max_events=1)
        engine.remove_trace_observer(observer)
        engine.run()
        assert sum(len(batch) for batch in batches) == 1

    def test_trace_and_per_event_observers_agree(self):
        engine = Engine()
        _schedule_three(engine)
        per_event = []
        engine.add_observer(
            lambda event: per_event.append(
                (event.time_s, event.priority, event.seq)))
        traced = []
        engine.trace_to(traced)
        engine.run()
        assert traced == per_event
