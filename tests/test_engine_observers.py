"""Tests for the engine's observer list (and the deprecated on_event)."""

from repro.sim.engine import Engine


def _schedule_three(engine):
    order = []
    engine.at(0.001, lambda: order.append("a"))
    engine.at(0.002, lambda: order.append("b"))
    engine.at(0.003, lambda: order.append("c"))
    return order


class TestObserverList:
    def test_observer_sees_every_event_in_order(self):
        engine = Engine()
        _schedule_three(engine)
        seen = []
        engine.add_observer(lambda event: seen.append(event.time_s))
        engine.run()
        assert seen == [0.001, 0.002, 0.003]

    def test_observers_fire_in_subscription_order(self):
        engine = Engine()
        _schedule_three(engine)
        calls = []
        engine.add_observer(lambda event: calls.append("first"))
        engine.add_observer(lambda event: calls.append("second"))
        engine.run(max_events=1)
        assert calls == ["first", "second"]

    def test_remove_observer_stops_delivery(self):
        engine = Engine()
        _schedule_three(engine)
        seen = []
        def observer(event):
            seen.append(event.time_s)
        engine.add_observer(observer)
        engine.run(max_events=1)
        engine.remove_observer(observer)
        engine.run()
        assert seen == [0.001]

    def test_remove_absent_observer_is_noop(self):
        engine = Engine()
        engine.remove_observer(lambda event: None)

    def test_observer_may_unsubscribe_mid_event(self):
        engine = Engine()
        _schedule_three(engine)
        seen = []
        def once(event):
            seen.append(event.time_s)
            engine.remove_observer(once)
        engine.add_observer(once)
        engine.run()
        assert seen == [0.001]

    def test_trace_to_records_time_priority_seq(self):
        engine = Engine()
        _schedule_three(engine)
        engine.at(0.001, lambda: None, control=True)
        trace = []
        engine.trace_to(trace)
        engine.run()
        assert trace == sorted(trace)
        assert all(len(entry) == 3 for entry in trace)


class TestDeprecatedOnEvent:
    def test_assignment_still_observes(self):
        engine = Engine()
        _schedule_three(engine)
        seen = []
        engine.on_event = lambda event: seen.append(event.time_s)
        engine.run()
        assert seen == [0.001, 0.002, 0.003]

    def test_getter_returns_assigned_observer(self):
        engine = Engine()
        assert engine.on_event is None
        def observer(event):
            pass
        engine.on_event = observer
        assert engine.on_event is observer

    def test_reassignment_replaces_only_the_legacy_slot(self):
        engine = Engine()
        _schedule_three(engine)
        calls = []
        engine.add_observer(lambda event: calls.append("listed"))
        engine.on_event = lambda event: calls.append("old")
        engine.on_event = lambda event: calls.append("new")
        engine.run(max_events=1)
        assert calls == ["listed", "new"]

    def test_assigning_none_clears_the_legacy_observer(self):
        engine = Engine()
        _schedule_three(engine)
        seen = []
        engine.on_event = lambda event: seen.append(event.time_s)
        engine.on_event = None
        engine.run()
        assert seen == []
        assert engine.on_event is None

    def test_remove_observer_clears_legacy_slot_too(self):
        engine = Engine()
        def observer(event):
            pass
        engine.on_event = observer
        engine.remove_observer(observer)
        assert engine.on_event is None
