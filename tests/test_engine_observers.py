"""Tests for the engine's observer list (and the deprecated on_event)."""

import warnings

import pytest

from repro.sim.engine import Engine


def _legacy(engine):
    """Read/write the deprecated property without tripping the filter."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return engine.on_event


def _assign_legacy(engine, observer):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        engine.on_event = observer


def _schedule_three(engine):
    order = []
    engine.at(0.001, lambda: order.append("a"))
    engine.at(0.002, lambda: order.append("b"))
    engine.at(0.003, lambda: order.append("c"))
    return order


class TestObserverList:
    def test_observer_sees_every_event_in_order(self):
        engine = Engine()
        _schedule_three(engine)
        seen = []
        engine.add_observer(lambda event: seen.append(event.time_s))
        engine.run()
        assert seen == [0.001, 0.002, 0.003]

    def test_observers_fire_in_subscription_order(self):
        engine = Engine()
        _schedule_three(engine)
        calls = []
        engine.add_observer(lambda event: calls.append("first"))
        engine.add_observer(lambda event: calls.append("second"))
        engine.run(max_events=1)
        assert calls == ["first", "second"]

    def test_remove_observer_stops_delivery(self):
        engine = Engine()
        _schedule_three(engine)
        seen = []
        def observer(event):
            seen.append(event.time_s)
        engine.add_observer(observer)
        engine.run(max_events=1)
        engine.remove_observer(observer)
        engine.run()
        assert seen == [0.001]

    def test_remove_absent_observer_is_noop(self):
        engine = Engine()
        engine.remove_observer(lambda event: None)

    def test_observer_may_unsubscribe_mid_event(self):
        engine = Engine()
        _schedule_three(engine)
        seen = []
        def once(event):
            seen.append(event.time_s)
            engine.remove_observer(once)
        engine.add_observer(once)
        engine.run()
        assert seen == [0.001]

    def test_trace_to_records_time_priority_seq(self):
        engine = Engine()
        _schedule_three(engine)
        engine.at(0.001, lambda: None, control=True)
        trace = []
        engine.trace_to(trace)
        engine.run()
        assert trace == sorted(trace)
        assert all(len(entry) == 3 for entry in trace)


class TestDeprecatedOnEvent:
    def test_getter_warns_deprecation(self):
        engine = Engine()
        with pytest.warns(DeprecationWarning, match="add_observer"):
            engine.on_event

    def test_setter_warns_deprecation(self):
        engine = Engine()
        with pytest.warns(DeprecationWarning, match="add_observer"):
            engine.on_event = lambda event: None

    def test_assignment_still_observes(self):
        engine = Engine()
        _schedule_three(engine)
        seen = []
        _assign_legacy(engine, lambda event: seen.append(event.time_s))
        engine.run()
        assert seen == [0.001, 0.002, 0.003]

    def test_getter_returns_assigned_observer(self):
        engine = Engine()
        assert _legacy(engine) is None
        def observer(event):
            pass
        _assign_legacy(engine, observer)
        assert _legacy(engine) is observer

    def test_reassignment_replaces_only_the_legacy_slot(self):
        engine = Engine()
        _schedule_three(engine)
        calls = []
        engine.add_observer(lambda event: calls.append("listed"))
        _assign_legacy(engine, lambda event: calls.append("old"))
        _assign_legacy(engine, lambda event: calls.append("new"))
        engine.run(max_events=1)
        assert calls == ["listed", "new"]

    def test_assigning_none_clears_the_legacy_observer(self):
        engine = Engine()
        _schedule_three(engine)
        seen = []
        _assign_legacy(engine, lambda event: seen.append(event.time_s))
        _assign_legacy(engine, None)
        engine.run()
        assert seen == []
        assert _legacy(engine) is None

    def test_remove_observer_clears_legacy_slot_too(self):
        engine = Engine()
        def observer(event):
            pass
        _assign_legacy(engine, observer)
        engine.remove_observer(observer)
        assert _legacy(engine) is None
