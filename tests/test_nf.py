"""NFProfile model: validation, capacity lookups, utilisation shares."""

import pytest

from repro.chain.nf import DeviceKind, NFInstanceId, NFKind, NFProfile
from repro.errors import CapacityError
from repro.units import gbps


def make_nf(**overrides):
    defaults = dict(name="nf", nic_capacity_bps=gbps(4.0),
                    cpu_capacity_bps=gbps(2.0))
    defaults.update(overrides)
    return NFProfile(**defaults)


class TestValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(CapacityError):
            make_nf(name="")

    def test_non_positive_nic_capacity_rejected(self):
        with pytest.raises(CapacityError):
            make_nf(nic_capacity_bps=0.0)

    def test_non_positive_cpu_capacity_rejected(self):
        with pytest.raises(CapacityError):
            make_nf(cpu_capacity_bps=-1.0)

    def test_incapable_device_capacity_not_validated(self):
        # A CPU-only NF may carry a nonsense NIC capacity; it is never read.
        nf = make_nf(nic_capable=False, nic_capacity_bps=-5.0)
        assert nf.cpu_capable

    def test_must_run_somewhere(self):
        with pytest.raises(CapacityError):
            make_nf(nic_capable=False, cpu_capable=False)

    def test_negative_base_latency_rejected(self):
        with pytest.raises(CapacityError):
            make_nf(base_latency_s=-1e-6)

    def test_negative_state_rejected(self):
        with pytest.raises(CapacityError):
            make_nf(state_bytes=-1)


class TestCapacityLookup:
    def test_capacity_on_smartnic(self):
        assert make_nf().capacity_on(DeviceKind.SMARTNIC) == gbps(4.0)

    def test_capacity_on_cpu(self):
        assert make_nf().capacity_on(DeviceKind.CPU) == gbps(2.0)

    def test_capacity_on_incapable_device_raises(self):
        nf = make_nf(nic_capable=False)
        with pytest.raises(CapacityError):
            nf.capacity_on(DeviceKind.SMARTNIC)

    def test_can_run_on(self):
        nf = make_nf(cpu_capable=False)
        assert nf.can_run_on(DeviceKind.SMARTNIC)
        assert not nf.can_run_on(DeviceKind.CPU)


class TestUtilisationShare:
    def test_linear_model(self):
        nf = make_nf()
        assert nf.utilisation_share(DeviceKind.SMARTNIC, gbps(1.0)) == \
            pytest.approx(0.25)

    def test_share_scales_linearly(self):
        nf = make_nf()
        one = nf.utilisation_share(DeviceKind.CPU, gbps(0.5))
        two = nf.utilisation_share(DeviceKind.CPU, gbps(1.0))
        assert two == pytest.approx(2 * one)

    def test_share_of_zero_throughput_is_zero(self):
        assert make_nf().utilisation_share(DeviceKind.CPU, 0.0) == 0.0

    def test_negative_throughput_rejected(self):
        with pytest.raises(CapacityError):
            make_nf().utilisation_share(DeviceKind.CPU, -1.0)

    def test_share_above_one_means_overload(self):
        nf = make_nf()
        assert nf.utilisation_share(DeviceKind.CPU, gbps(3.0)) > 1.0


class TestRenamedAndIdentity:
    def test_renamed_keeps_capacities(self):
        clone = make_nf().renamed("nf2")
        assert clone.name == "nf2"
        assert clone.nic_capacity_bps == gbps(4.0)

    def test_renamed_is_a_new_object(self):
        original = make_nf()
        assert original.renamed("other") != original

    def test_profile_is_hashable(self):
        assert len({make_nf(), make_nf()}) == 1

    def test_device_kind_other(self):
        assert DeviceKind.SMARTNIC.other() is DeviceKind.CPU
        assert DeviceKind.CPU.other() is DeviceKind.SMARTNIC

    def test_instance_id_str(self):
        assert str(NFInstanceId("fw")) == "fw"
        assert str(NFInstanceId("fw", replica=2)) == "fw#2"
