"""MigrationController: the closed detect->plan->execute loop."""

import pytest

from repro.baselines.naive import NaivePolicy
from repro.core.planner import MigrationController, PAMPolicy
from repro.harness.scenarios import figure1
from repro.sim.runner import SimulationRunner
from repro.telemetry.monitor import SERIES_NIC, LoadMonitor
from repro.telemetry.overload import OverloadDetector
from repro.traffic.generators import ConstantBitRate
from repro.traffic.packet import FixedSize
from repro.units import gbps


def closed_loop(policy, offered=gbps(1.8), duration=0.02):
    server = figure1().build_server()
    generator = ConstantBitRate(offered, FixedSize(256), duration)
    controller = MigrationController(policy)
    runner = SimulationRunner(server, generator, controller,
                              monitor_period_s=0.002)
    return runner.run(), controller


class TestClosedLoopPAM:
    def test_overload_triggers_logger_migration(self):
        result, controller = closed_loop(PAMPolicy())
        assert result.migrated_nfs == ["logger"]
        assert result.final_placement.device_of("logger").value == "cpu"

    def test_no_migration_under_light_load(self):
        result, _ = closed_loop(PAMPolicy(), offered=gbps(1.0))
        assert result.migrated_nfs == []

    def test_no_packet_loss_through_the_episode(self):
        result, _ = closed_loop(PAMPolicy())
        assert result.dropped == 0

    def test_migration_time_recorded_within_run(self):
        result, _ = closed_loop(PAMPolicy())
        assert len(result.migration_times_s) == 1
        assert 0.0 < result.migration_times_s[0] < result.duration_s

    def test_pcie_crossings_unchanged_after_pam(self):
        result, _ = closed_loop(PAMPolicy())
        assert result.final_placement.pcie_crossings() == \
            figure1().placement.pcie_crossings()


class TestClosedLoopNaive:
    def test_naive_migrates_monitor_and_adds_crossings(self):
        result, _ = closed_loop(NaivePolicy())
        assert result.migrated_nfs == ["monitor"]
        assert result.final_placement.pcie_crossings() == \
            figure1().placement.pcie_crossings() + 2


class TestControllerBehaviour:
    def test_scaleout_escalation_is_recorded(self):
        result, controller = closed_loop(PAMPolicy(), offered=gbps(2.2))
        assert result.migrated_nfs == []
        assert len(controller.scaleout_events) >= 1

    def test_react_once_limits_to_one_plan(self):
        controller_policy = PAMPolicy()
        server = figure1().build_server()
        generator = ConstantBitRate(gbps(1.8), FixedSize(256), 0.03)
        controller = MigrationController(controller_policy, react_once=True)
        result = SimulationRunner(server, generator, controller,
                                  monitor_period_s=0.002).run()
        assert result.migrated_nfs == ["logger"]

    def test_detector_debounce_delays_reaction(self):
        detector = OverloadDetector(on_count=4)
        server = figure1().build_server()
        generator = ConstantBitRate(gbps(1.8), FixedSize(256), 0.02)
        controller = MigrationController(PAMPolicy(), detector=detector)
        result = SimulationRunner(server, generator, controller,
                                  monitor_period_s=0.002).run()
        # First possible reaction is the 4th tick at 8 ms.
        assert result.migration_times_s[0] > 0.008


class TestLoadMonitorWrapper:
    def test_records_series_and_delegates(self):
        server = figure1().build_server()
        generator = ConstantBitRate(gbps(1.8), FixedSize(256), 0.02)
        inner = MigrationController(PAMPolicy())
        monitor = LoadMonitor(inner=inner)
        result = SimulationRunner(server, generator, monitor,
                                  monitor_period_s=0.002).run()
        nic_series = monitor.recorder.values(SERIES_NIC)
        assert len(nic_series) >= 5
        assert max(nic_series) > 1.0        # overload observed
        assert nic_series[-1] < 1.0         # alleviated by the migration
        assert result.migrated_nfs == ["logger"]

    def test_monitor_without_inner_is_pure_observer(self):
        server = figure1().build_server()
        generator = ConstantBitRate(gbps(1.8), FixedSize(256), 0.01)
        monitor = LoadMonitor()
        result = SimulationRunner(server, generator, monitor,
                                  monitor_period_s=0.002).run()
        assert result.migrated_nfs == []
        assert monitor.migrations == []
