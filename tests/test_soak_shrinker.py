"""The shrinker: determinism, 1-minimality, and the reproducer format."""

import pytest

from repro.chaos.schedule import ChaosFault
from repro.errors import CheckpointError, ConfigurationError
from repro.soak.fuzzer import (BUG_CONSERVATION, BUG_PROTECTED_SHED,
                               PlantedBug, SoakCase, default_space,
                               generate_case, plant)
from repro.soak.shrinker import (ReplayOutcome, load_reproducer,
                                 replay_reproducer, shrink_case,
                                 violation_signature, write_reproducer)

_SPACE = default_space(0.008)


def _fault(kind, at_s, duration_s=0.002):
    return ChaosFault(kind=kind, at_s=at_s, duration_s=duration_s)


def _synthetic_case(faults):
    base = generate_case(_SPACE, 1)
    return base.with_faults(faults)


def _oracle_requiring(*kinds):
    """A run function failing iff all ``kinds`` appear in the faults."""
    def run(case):
        present = {fault.kind for fault in case.faults}
        failing = all(kind in present for kind in kinds)
        violations = ([{"invariant": "synthetic", "detail": "tripped"}]
                      if failing else [])
        return {"seed": case.seed, "case": case.to_dict(),
                "violations": violations}
    return run


class TestSyntheticShrinks:
    def test_single_culprit_out_of_many(self):
        faults = [_fault("crash", 0.001), _fault("brownout", 0.002),
                  _fault("pcie-flap", 0.003), _fault("crash", 0.004),
                  _fault("telemetry-dropout", 0.005),
                  _fault("brownout", 0.006)]
        case = _synthetic_case(faults)
        result = shrink_case(case, run=_oracle_requiring("pcie-flap"))
        assert [f.kind for f in result.case.faults] == ["pcie-flap"]
        assert result.signature == ("synthetic",)

    def test_two_interacting_culprits_kept(self):
        faults = [_fault("crash", 0.001), _fault("brownout", 0.002),
                  _fault("pcie-flap", 0.003),
                  _fault("telemetry-dropout", 0.004)]
        case = _synthetic_case(faults)
        result = shrink_case(case,
                             run=_oracle_requiring("crash", "brownout"))
        assert sorted(f.kind for f in result.case.faults) == \
            ["brownout", "crash"]

    def test_failure_without_faults_shrinks_to_empty(self):
        case = _synthetic_case([_fault("crash", 0.001),
                                _fault("brownout", 0.002)])
        result = shrink_case(case, run=_oracle_requiring())
        assert result.case.faults == ()

    def test_simplification_rounds_times_and_durations(self):
        case = _synthetic_case(
            [_fault("crash", 0.0031415926, duration_s=0.0071)])
        result = shrink_case(case, run=_oracle_requiring("crash"))
        fault = result.case.faults[0]
        assert fault.duration_s == 0.002
        assert fault.at_s == round(fault.at_s, 2)

    def test_non_failing_case_rejected(self):
        case = _synthetic_case([_fault("crash", 0.001)])
        with pytest.raises(ConfigurationError, match="nothing to shrink"):
            shrink_case(case, run=_oracle_requiring("brownout"))


@pytest.mark.parametrize("bug", [BUG_CONSERVATION, BUG_PROTECTED_SHED])
class TestPlantedBugClasses:
    """The acceptance property: 1-minimal for both planted bug classes."""

    def test_shrinks_to_single_trigger_event(self, bug):
        armed = plant(generate_case(_SPACE, 12), PlantedBug(bug, "crash"))
        assert len(armed.faults) > 1
        result = shrink_case(armed)
        assert len(result.case.faults) == 1
        assert result.case.faults[0].kind == "crash"

    def test_shrink_is_deterministic_to_the_byte(self, bug, tmp_path):
        armed = plant(generate_case(_SPACE, 12), PlantedBug(bug, "crash"))
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        write_reproducer(first, shrink_case(armed))
        write_reproducer(second, shrink_case(armed))
        assert first.read_bytes() == second.read_bytes()

    def test_reproducer_replays_bit_exact(self, bug, tmp_path):
        armed = plant(generate_case(_SPACE, 12), PlantedBug(bug, "crash"))
        path = tmp_path / "repro.json"
        write_reproducer(path, shrink_case(armed))
        outcome = replay_reproducer(path)
        assert outcome.match
        assert "bit-exact" in outcome.render()


class TestReproducerFormat:
    def _result(self):
        case = _synthetic_case([_fault("crash", 0.001)])
        return shrink_case(case, run=_oracle_requiring("crash"))

    def test_document_round_trip(self, tmp_path):
        path = tmp_path / "repro.json"
        result = self._result()
        write_reproducer(path, result)
        document = load_reproducer(path)
        assert document["format"] == "soak-reproducer"
        assert document["version"] == 1
        assert SoakCase.from_dict(document["case"]) == result.case
        assert document["signature"] == ["synthetic"]
        assert document["shrink"]["events"] == 1

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_reproducer(tmp_path / "absent.json")

    def test_bad_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(CheckpointError, match="not valid JSON"):
            load_reproducer(path)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"format": "something-else"}', encoding="utf-8")
        with pytest.raises(CheckpointError, match="soak-reproducer"):
            load_reproducer(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "new.json"
        path.write_text('{"format": "soak-reproducer", "version": 99}',
                        encoding="utf-8")
        with pytest.raises(CheckpointError, match="unsupported version"):
            load_reproducer(path)

    def test_diverging_replay_reports_mismatch(self):
        case = _synthetic_case([_fault("crash", 0.001)])
        outcome = ReplayOutcome(
            case=case,
            expected=[{"invariant": "synthetic", "detail": "tripped"}],
            actual=[])
        assert not outcome.match
        assert "DIVERGED" in outcome.render()

    def test_signature_sorted_and_deduplicated(self):
        violations = [{"invariant": "b"}, {"invariant": "a"},
                      {"invariant": "b"}]
        assert violation_signature(violations) == ("a", "b")
