"""Placement diagrams and the explain report."""

import pytest

from repro.analysis.explain import explain_placement
from repro.chain.diagram import render_placement
from repro.chain.nf import DeviceKind
from repro.cli import main
from repro.units import gbps

C = DeviceKind.CPU


class TestDiagram:
    def test_lanes_and_footer(self, fig1_placement):
        text = render_placement(fig1_placement)
        lines = text.splitlines()
        assert lines[0].startswith("NIC")
        assert any(line.startswith("CPU") for line in lines)
        assert "PCIe crossings: 3" in text

    def test_every_nf_appears_once(self, fig1_placement):
        text = render_placement(fig1_placement)
        for name in fig1_placement.chain.names():
            assert text.count(f"[{name}]") == 1

    def test_crossing_marks_match_count(self, fig1_placement):
        text = render_placement(fig1_placement)
        marks_line = text.splitlines()[1]
        assert marks_line.count("X") == fig1_placement.pcie_crossings()

    def test_nfs_drawn_on_their_lane(self, fig1_placement):
        text = render_placement(fig1_placement)
        nic_line, __, cpu_line, __ = text.splitlines()
        assert "[monitor]" in nic_line
        assert "[load_balancer]" in cpu_line

    def test_endpoints_labelled(self, fig1_placement):
        text = render_placement(fig1_placement)
        assert "wire>" in text
        assert ">host" in text  # host-terminated egress

    def test_migration_redraws(self, fig1_placement):
        before = render_placement(fig1_placement)
        after = render_placement(fig1_placement.moved("monitor", C))
        assert "PCIe crossings: 5" in after
        assert before != after


class TestExplain:
    def test_overloaded_report_sections(self, fig1_placement):
        text = explain_placement(fig1_placement, gbps(1.8))
        assert "nic_overloaded" in text
        assert "push logger aside" in text
        assert "closed-form latency" in text
        assert "border vNFs" in text

    def test_healthy_report(self, fig1_placement):
        text = explain_placement(fig1_placement, gbps(1.0))
        assert "nominal" in text
        assert "nothing to do" in text

    def test_scaleout_report(self, fig1_placement):
        text = explain_placement(fig1_placement, gbps(2.4))
        assert "scale out" in text

    def test_cli_explain(self, capsys):
        assert main(["explain", "--load", "1.8"]) == 0
        out = capsys.readouterr().out
        assert "PCIe crossings: 3" in out
        assert "push logger aside" in out
