"""Property-based tests: placement geometry invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain import catalog
from repro.chain.chain import ServiceChain
from repro.chain.nf import DeviceKind, NFProfile
from repro.chain.placement import Placement
from repro.units import gbps

C = DeviceKind.CPU
S = DeviceKind.SMARTNIC


def generic_nf(index: int) -> NFProfile:
    return NFProfile(name=f"nf{index}",
                     nic_capacity_bps=gbps(1.0 + index),
                     cpu_capacity_bps=gbps(1.0 + index / 2))


@st.composite
def placements(draw, min_len=1, max_len=8):
    """Random chains with random device assignments and endpoints."""
    length = draw(st.integers(min_len, max_len))
    chain = ServiceChain([generic_nf(i) for i in range(length)])
    devices = draw(st.lists(st.sampled_from([S, C]),
                            min_size=length, max_size=length))
    ingress = draw(st.sampled_from([S, C]))
    egress = draw(st.sampled_from([S, C]))
    assignment = {f"nf{i}": devices[i] for i in range(length)}
    return Placement(chain, assignment, ingress=ingress, egress=egress)


class TestCrossingGeometry:
    @given(placements())
    def test_crossings_equal_device_path_switches(self, placement):
        path = placement.device_path()
        switches = sum(1 for a, b in zip(path, path[1:]) if a is not b)
        assert placement.pcie_crossings() == switches

    @given(placements())
    def test_crossings_parity_matches_endpoints(self, placement):
        # A walk that starts and ends on the same device switches an
        # even number of times; different endpoints give odd parity.
        crossings = placement.pcie_crossings()
        if placement.ingress is placement.egress:
            assert crossings % 2 == 0
        else:
            assert crossings % 2 == 1

    @given(placements())
    def test_segments_partition_the_chain(self, placement):
        names = [name for segment in placement.segments()
                 for name in segment]
        assert names == placement.chain.names()

    @given(placements())
    def test_segments_alternate_devices(self, placement):
        segment_devices = [placement.device_of(segment[0])
                           for segment in placement.segments()]
        assert all(a is not b for a, b in
                   zip(segment_devices, segment_devices[1:]))

    @given(placements(min_len=1))
    def test_nic_and_cpu_sets_partition(self, placement):
        nic = {nf.name for nf in placement.nic_nfs()}
        cpu = {nf.name for nf in placement.cpu_nfs()}
        assert nic | cpu == set(placement.chain.names())
        assert nic & cpu == set()


class TestMoveProperties:
    @given(placements(min_len=1), st.data())
    def test_crossing_delta_is_in_minus2_0_plus2(self, placement, data):
        name = data.draw(st.sampled_from(placement.chain.names()))
        target = placement.device_of(name).other()
        delta = placement.crossing_delta(name, target)
        assert delta in (-2, 0, 2)

    @given(placements(min_len=1), st.data())
    def test_move_is_involutive_on_crossings(self, placement, data):
        name = data.draw(st.sampled_from(placement.chain.names()))
        target = placement.device_of(name).other()
        there = placement.moved(name, target)
        back = there.moved(name, placement.device_of(name))
        assert back.pcie_crossings() == placement.pcie_crossings()
        assert back == placement

    @given(placements(min_len=1), st.data())
    def test_move_changes_exactly_one_assignment(self, placement, data):
        name = data.draw(st.sampled_from(placement.chain.names()))
        target = placement.device_of(name).other()
        moved = placement.moved(name, target)
        before = placement.as_dict()
        after = moved.as_dict()
        changed = [n for n in before if before[n] != after[n]]
        assert changed == [name]
