"""Offered-load time profiles."""

import pytest

from repro.errors import ConfigurationError
from repro.traffic.packet import FixedSize
from repro.traffic.patterns import (ProfiledArrivals, constant, diurnal,
                                    sawtooth, spike)
from repro.units import bits, gbps, mbps


class TestSpike:
    def test_base_outside_window(self):
        profile = spike(mbps(500), gbps(2.0), start_s=0.01, duration_s=0.005)
        assert profile(0.0) == mbps(500)
        assert profile(0.02) == mbps(500)

    def test_peak_inside_window(self):
        profile = spike(mbps(500), gbps(2.0), start_s=0.01, duration_s=0.005)
        assert profile(0.012) == gbps(2.0)

    def test_window_is_half_open(self):
        profile = spike(mbps(500), gbps(2.0), start_s=0.01, duration_s=0.005)
        assert profile(0.01) == gbps(2.0)
        assert profile(0.015) == mbps(500)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            spike(gbps(2.0), gbps(1.0), 0.0, 1.0)  # peak < base
        with pytest.raises(ConfigurationError):
            spike(mbps(1), mbps(2), 0.0, 0.0)  # empty window


class TestDiurnal:
    def test_oscillates_between_bounds(self):
        profile = diurnal(mbps(500), gbps(2.0), period_s=1.0)
        values = [profile(t / 100) for t in range(100)]
        assert min(values) == pytest.approx(mbps(500), rel=0.01)
        assert max(values) == pytest.approx(gbps(2.0), rel=0.01)

    def test_periodicity(self):
        profile = diurnal(mbps(500), gbps(2.0), period_s=0.5)
        assert profile(0.1) == pytest.approx(profile(0.6))


class TestSawtooth:
    def test_ramps_and_resets(self):
        profile = sawtooth(mbps(500), gbps(2.0), period_s=1.0)
        assert profile(0.0) == mbps(500)
        assert profile(0.999) == pytest.approx(gbps(2.0), rel=0.01)
        assert profile(1.0) == mbps(500)  # reset

    def test_monotone_within_period(self):
        profile = sawtooth(mbps(500), gbps(2.0), period_s=1.0)
        values = [profile(t / 10) for t in range(10)]
        assert values == sorted(values)


class TestConstant:
    def test_flat(self):
        profile = constant(gbps(1.0))
        assert profile(0.0) == profile(123.0) == gbps(1.0)

    def test_validated(self):
        with pytest.raises(ConfigurationError):
            constant(0.0)


class TestProfiledArrivals:
    def test_spike_generates_denser_arrivals(self):
        profile = spike(mbps(500), gbps(5.0), start_s=0.005, duration_s=0.005)
        gen = ProfiledArrivals(profile, FixedSize(256), duration_s=0.01,
                               seed=3, jitter=False)
        packets = list(gen.packets())
        before = sum(1 for p in packets if p.arrival_s < 0.005)
        during = sum(1 for p in packets if p.arrival_s >= 0.005)
        assert during > 3 * before

    def test_jitterless_profile_is_deterministic_cbr(self):
        gen = ProfiledArrivals(constant(gbps(1.0)), FixedSize(256),
                               duration_s=0.001, jitter=False)
        packets = list(gen.packets())
        gaps = {round(b.arrival_s - a.arrival_s, 12)
                for a, b in zip(packets, packets[1:])}
        assert len(gaps) == 1

    def test_mean_rate_of_constant_profile(self):
        gen = ProfiledArrivals(constant(gbps(1.0)), FixedSize(256),
                               duration_s=0.001)
        assert gen.mean_rate_bps() == pytest.approx(gbps(1.0))

    def test_mean_rate_of_spike_profile(self):
        profile = spike(gbps(1.0), gbps(3.0), start_s=0.0, duration_s=0.5)
        gen = ProfiledArrivals(profile, FixedSize(256), duration_s=1.0)
        assert gen.mean_rate_bps() == pytest.approx(gbps(2.0), rel=0.01)
