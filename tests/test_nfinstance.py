"""NFStation: queueing, service, pipelining, pause/resume."""

import pytest

from repro.chain import catalog
from repro.devices.cpu import CPU
from repro.devices.smartnic import SmartNIC
from repro.errors import MigrationError
from repro.sim.engine import Engine
from repro.sim.latency import LatencyLedger
from repro.sim.nfinstance import NFStation
from repro.traffic.packet import Packet
from repro.units import gbps


class Harness:
    """One station on one device plus a completion collector."""

    def __init__(self, nf_name="monitor", device=None):
        self.engine = Engine()
        self.ledger = LatencyLedger()
        self.device = device or SmartNIC("nic")
        self.profile = catalog.get(nf_name)
        self.device.host(self.profile)
        self.completed = []
        self.station = NFStation(self.profile, self.device, self.engine,
                                 self.ledger, self._on_complete)

    def _on_complete(self, packet, nf_name, now_s):
        self.completed.append((packet.seq, now_s))

    def inject(self, seq, at_s, size=256):
        packet = Packet(seq=seq, size_bytes=size, arrival_s=at_s)
        self.engine.at(at_s, lambda: self.station.accept(packet))
        return packet


class TestService:
    def test_single_packet_latency_components(self):
        h = Harness()
        h.inject(0, at_s=0.0)
        h.engine.run()
        assert len(h.completed) == 1
        record = h.ledger.record_for(0)
        expected = h.device.occupancy_time(h.profile, 256) + \
            h.profile.base_latency_s
        assert record.processing == pytest.approx(expected)
        assert record.queueing == 0.0

    def test_completion_time_is_occupancy_plus_pipeline(self):
        h = Harness()
        h.inject(0, at_s=0.0)
        h.engine.run()
        _, when = h.completed[0]
        assert when == pytest.approx(
            h.device.occupancy_time(h.profile, 256) + h.profile.base_latency_s)

    def test_back_to_back_packets_queue(self):
        h = Harness()
        h.inject(0, at_s=0.0)
        h.inject(1, at_s=0.0)
        h.engine.run()
        assert h.ledger.record_for(1).queueing > 0.0

    def test_pipelining_not_head_of_line_blocked_by_base_latency(self):
        # Two packets arriving together must both finish within one
        # base-latency window plus two occupancy slots: the pipeline
        # delay does not serialise.
        h = Harness()
        h.inject(0, at_s=0.0)
        h.inject(1, at_s=0.0)
        h.engine.run()
        occupancy = h.device.occupancy_time(h.profile, 256)
        last = max(t for _, t in h.completed)
        assert last == pytest.approx(2 * occupancy + h.profile.base_latency_s)

    def test_completion_order_fifo(self):
        h = Harness()
        for i in range(5):
            h.inject(i, at_s=0.0)
        h.engine.run()
        assert [seq for seq, _ in h.completed] == list(range(5))

    def test_served_counters(self):
        h = Harness()
        h.inject(0, at_s=0.0, size=100)
        h.inject(1, at_s=0.0, size=200)
        h.engine.run()
        assert h.station.served_packets == 2
        assert h.station.served_bytes == 300


class TestDrops:
    def test_drop_marks_packet(self):
        device = SmartNIC("nic", queue_capacity_packets=1)
        h = Harness(device=device)
        accepted = []
        # Fill: one being served is dequeued immediately, so we need
        # 1 (serving) + 1 (queued) + 1 (dropped).
        packets = [Packet(seq=i, size_bytes=256, arrival_s=0.0)
                   for i in range(3)]
        h.engine.at(0.0, lambda: accepted.extend(
            h.station.accept(p) for p in packets))
        h.engine.run()
        assert accepted == [True, True, False]
        assert packets[2].dropped_at == "monitor"


class TestPauseResume:
    def test_paused_station_buffers(self):
        h = Harness()
        h.engine.at(0.0, h.station.pause)
        h.inject(0, at_s=0.001)
        h.engine.run()
        assert h.completed == []
        assert h.station.buffered == 1

    def test_resume_replays_in_order(self):
        h = Harness()
        h.engine.at(0.0, h.station.pause)
        h.inject(0, at_s=0.001)
        h.inject(1, at_s=0.002)
        h.engine.at(0.005, h.station.resume)
        h.engine.run()
        assert [seq for seq, _ in h.completed] == [0, 1]

    def test_buffer_wait_counts_as_queueing(self):
        h = Harness()
        h.engine.at(0.0, h.station.pause)
        h.inject(0, at_s=0.001)
        h.engine.at(0.005, h.station.resume)
        h.engine.run()
        assert h.ledger.record_for(0).queueing >= 0.004 - 1e-12

    def test_pause_drains_queue_into_buffer(self):
        h = Harness()
        h.inject(0, at_s=0.0)
        h.inject(1, at_s=0.0)
        h.inject(2, at_s=0.0)
        # Pause right after the first service starts: 0 is in service,
        # 1 and 2 are queued and must be carried to the buffer.
        h.engine.at(1e-9, h.station.pause)
        h.engine.run()
        assert h.station.buffered == 2
        assert len(h.completed) == 1  # in-flight packet drains

    def test_double_pause_rejected(self):
        h = Harness()
        h.station.pause()
        with pytest.raises(MigrationError):
            h.station.pause()

    def test_resume_without_pause_rejected(self):
        h = Harness()
        with pytest.raises(MigrationError):
            h.station.resume()


class TestRebind:
    def test_rebind_switches_device(self):
        h = Harness(nf_name="logger")
        cpu = CPU("cpu")
        cpu.host(h.profile)
        h.station.pause()
        h.station.rebind(cpu)
        h.station.resume()
        assert h.station.device is cpu

    def test_rebind_requires_pause(self):
        h = Harness()
        cpu = CPU("cpu")
        with pytest.raises(MigrationError):
            h.station.rebind(cpu)

    def test_service_rate_changes_after_rebind(self):
        # Logger: 4 Gbps on NIC (figure-1 catalog has 2 on TABLE1),
        # 4 Gbps on CPU per Table 1 — use monitor: 3.2 NIC vs 10 CPU.
        h = Harness(nf_name="monitor")
        cpu = CPU("cpu")
        cpu.host(h.profile)
        nic_occupancy = h.device.occupancy_time(h.profile, 256)
        h.station.pause()
        h.station.rebind(cpu)
        cpu_occupancy = h.station.device.occupancy_time(h.profile, 256)
        assert cpu_occupancy < nic_occupancy  # monitor is faster on CPU


class TestPacedResume:
    def _paused_with_backlog(self, count=5):
        h = Harness()
        h.engine.at(0.0, h.station.pause)
        for i in range(count):
            h.inject(i, at_s=0.001 + i * 1e-6)
        h.engine.run(until_s=0.002)
        return h

    def test_paced_resume_preserves_order(self):
        h = self._paused_with_backlog()
        h.engine.at(0.003, lambda: h.station.resume(paced_rate_bps=1e9))
        h.engine.run()
        assert [seq for seq, _ in h.completed] == list(range(5))

    def test_paced_resume_spreads_admissions(self):
        h = self._paused_with_backlog()
        h.engine.at(0.003, lambda: h.station.resume(paced_rate_bps=1e8))
        h.engine.run()
        # 256B at 100 Mbps = 20.48 us between releases; the last packet
        # cannot complete before 4 pacing gaps have elapsed.
        last_done = max(t for _, t in h.completed)
        assert last_done >= 0.003 + 4 * (2048 / 1e8)

    def test_arrivals_during_drain_stay_behind_backlog(self):
        h = self._paused_with_backlog(count=3)
        # A new packet arrives mid-drain; it must complete after the
        # three buffered ones.
        h.inject(99, at_s=0.0031)
        h.engine.at(0.003, lambda: h.station.resume(paced_rate_bps=1e8))
        h.engine.run()
        assert [seq for seq, _ in h.completed] == [0, 1, 2, 99]

    def test_station_unpauses_after_drain(self):
        h = self._paused_with_backlog(count=2)
        h.engine.at(0.003, lambda: h.station.resume(paced_rate_bps=1e9))
        h.engine.run()
        assert not h.station.paused
        assert h.station.buffered == 0

    def test_invalid_rate_rejected(self):
        h = self._paused_with_backlog(count=1)
        with pytest.raises(MigrationError):
            h.station.resume(paced_rate_bps=0.0)
