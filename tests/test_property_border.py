"""Property-based tests: border-set invariants (the paper's key claim)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.chain.nf import DeviceKind
from repro.core.border import border_sets, refreshed_border_sets

from .test_property_placement import placements

C = DeviceKind.CPU
S = DeviceKind.SMARTNIC


class TestBorderDefinition:
    @given(placements())
    def test_borders_are_nic_resident(self, placement):
        sets = border_sets(placement)
        for name in sets.all:
            assert placement.device_of(name) is S

    @given(placements())
    def test_border_moves_never_add_crossings(self, placement):
        # THE paper invariant: pushing any border NF to the CPU keeps
        # the PCIe crossing count constant (or shrinks it).
        sets = border_sets(placement)
        for name in sets.all:
            assert placement.crossing_delta(name, C) <= 0

    @given(placements())
    def test_non_border_nic_moves_add_exactly_two(self, placement):
        sets = border_sets(placement)
        for nf in placement.nic_nfs():
            if nf.name not in sets.all:
                assert placement.crossing_delta(nf.name, C) == 2

    @given(placements())
    def test_per_segment_border_counts(self, placement):
        # Each NIC segment contributes its first NF to B_L iff the hop
        # before it is CPU-side, and its last to B_R iff the hop after
        # is; interior NFs are never borders.
        sets = border_sets(placement)
        for segment in placement.segments(S):
            interior = set(segment[1:-1])
            assert not (interior & sets.all)

    @given(placements())
    def test_singleton_in_both_sets_iff_surrounded(self, placement):
        sets = border_sets(placement)
        both = sets.left & sets.right
        for name in both:
            # Surrounded on both sides by CPU hops.
            assert placement.crossing_delta(name, C) == -2


class TestIncrementalMaintenance:
    @given(placements(min_len=1), st.data())
    def test_incremental_refresh_matches_recompute(self, placement, data):
        sets = border_sets(placement)
        candidates = sorted(n for n in sets.all
                            if placement.chain.get(n).cpu_capable)
        if not candidates:
            return
        name = data.draw(st.sampled_from(candidates))
        was_left = name in sets.left
        after = placement.moved(name, C)
        incremental = refreshed_border_sets(after, sets, name, was_left)
        assert incremental == border_sets(after)
