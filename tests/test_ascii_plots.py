"""ASCII chart rendering."""

import pytest

from repro.errors import ConfigurationError
from repro.telemetry.ascii_plots import (bar_chart, sparkline,
                                         utilisation_timeline)


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3])) == 3

    def test_monotone_data_monotone_glyphs(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line == "▁▂▃▄▅▆▇█"

    def test_constant_data_mid_scale(self):
        assert sparkline([5.0, 5.0]) == "▄▄"

    def test_pinned_scale(self):
        # With a 0..10 scale, a 5 is mid-level even if it is the max.
        line = sparkline([5.0], lo=0.0, hi=10.0)
        assert line in "▃▄▅"

    def test_values_clamped_to_scale(self):
        line = sparkline([99.0], lo=0.0, hi=1.0)
        assert line == "█"

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            sparkline([])

    def test_inverted_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            sparkline([1.0], lo=5.0, hi=0.0)


class TestBarChart:
    def test_longest_bar_is_full_width(self):
        chart = bar_chart([("a", 10.0), ("b", 5.0)], width=10)
        lines = chart.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_zero_value_renders_stub(self):
        chart = bar_chart([("a", 0.0), ("b", 1.0)])
        assert "▏" in chart.splitlines()[0]

    def test_unit_suffix(self):
        assert "us" in bar_chart([("a", 3.0)], unit="us")

    def test_labels_aligned(self):
        chart = bar_chart([("short", 1.0), ("a-long-label", 2.0)])
        lines = chart.splitlines()
        # Bars start at the same column for both labels.
        assert lines[0].index("█") == lines[1].index("█")
        assert lines[0].startswith("short        ")

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            bar_chart([])

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            bar_chart([("a", -1.0)])


class TestUtilisationTimeline:
    def test_markers_flag_overload_samples(self):
        text = utilisation_timeline([0.0, 0.001, 0.002],
                                    [0.5, 1.2, 0.7])
        marker_line = text.splitlines()[-1]
        assert marker_line == " ^ "

    def test_header_mentions_range(self):
        text = utilisation_timeline([0.0, 0.01], [0.5, 0.6])
        assert "0ms..10ms" in text

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            utilisation_timeline([0.0], [1.0, 2.0])
