"""Property-based tests: PAM post-conditions over random chains/loads."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.chain.nf import DeviceKind
from repro.core.border import border_sets
from repro.core.pam import PAMConfig
from repro.core.pam import select as pam_select
from repro.baselines.naive import NaiveConfig
from repro.baselines.naive import select as naive_select
from repro.resources.model import LoadModel
from repro.units import gbps

from .test_property_placement import placements

C = DeviceKind.CPU
S = DeviceKind.SMARTNIC

loads = st.floats(min_value=0.1, max_value=6.0).map(gbps)


class TestPAMPostConditions:
    @given(placements(min_len=2, max_len=8), loads)
    @settings(max_examples=60, deadline=None)
    def test_never_adds_crossings(self, placement, load):
        plan = pam_select(placement, load, PAMConfig(strict=False))
        assert plan.total_crossing_delta <= 0
        assert plan.after.pcie_crossings() <= placement.pcie_crossings()

    @given(placements(min_len=2, max_len=8), loads)
    @settings(max_examples=60, deadline=None)
    def test_success_implies_both_devices_ok(self, placement, load):
        plan = pam_select(placement, load, PAMConfig(strict=False))
        if plan.alleviates:
            after = LoadModel(plan.after, load)
            if plan.actions:
                # Eq. 3 alleviated the NIC and every Eq. 2 check kept
                # the CPU strictly under capacity.
                assert after.nic_load().utilisation < 1.0
                assert after.cpu_load().utilisation < 1.0
            else:
                # Empty success plan: the NIC was simply not overloaded
                # (the CPU is not PAM's concern in that case).
                assert not after.nic_load().overloaded

    @given(placements(min_len=2, max_len=8), loads)
    @settings(max_examples=60, deadline=None)
    def test_migrates_only_borders_of_intermediate_placements(
            self, placement, load):
        plan = pam_select(placement, load, PAMConfig(strict=False))
        current = placement
        for action in plan.actions:
            assert action.nf_name in border_sets(current).all
            current = current.moved(action.nf_name, action.target)

    @given(placements(min_len=2, max_len=8), loads)
    @settings(max_examples=60, deadline=None)
    def test_no_nf_migrates_twice(self, placement, load):
        plan = pam_select(placement, load, PAMConfig(strict=False))
        names = plan.migrated_names
        assert len(names) == len(set(names))

    @given(placements(min_len=2, max_len=8), loads)
    @settings(max_examples=60, deadline=None)
    def test_plan_internally_consistent(self, placement, load):
        # validate() is also called inside select(); re-run explicitly.
        pam_select(placement, load, PAMConfig(strict=False)).validate()

    @given(placements(min_len=2, max_len=8), loads)
    @settings(max_examples=60, deadline=None)
    def test_noop_iff_nic_not_overloaded(self, placement, load):
        plan = pam_select(placement, load, PAMConfig(strict=False))
        overloaded = LoadModel(placement, load).nic_load().overloaded
        if not overloaded:
            assert plan.is_noop
        if plan.is_noop and plan.alleviates:
            assert not overloaded


class TestPAMvsNaive:
    @given(placements(min_len=2, max_len=8), loads)
    @settings(max_examples=60, deadline=None)
    def test_pam_never_more_crossings_than_naive(self, placement, load):
        pam = pam_select(placement, load, PAMConfig(strict=False))
        naive = naive_select(placement, load, NaiveConfig(strict=False))
        if pam.alleviates and naive.alleviates:
            assert pam.after.pcie_crossings() <= \
                naive.after.pcie_crossings()

    @given(placements(min_len=2, max_len=8), loads)
    @settings(max_examples=60, deadline=None)
    def test_naive_alleviates_whenever_pam_does(self, placement, load):
        # Naive's candidate pool is a superset of PAM's, so PAM success
        # implies naive success (the converse is false).
        pam = pam_select(placement, load, PAMConfig(strict=False))
        if pam.alleviates:
            naive = naive_select(placement, load, NaiveConfig(strict=False))
            assert naive.alleviates
