"""CapacityTable lookups, calibration helpers, rendering."""

import math

import pytest

from repro.chain import catalog
from repro.chain.nf import DeviceKind
from repro.resources.capacity import CapacityTable
from repro.errors import CapacityError, UnknownNFError
from repro.units import gbps


@pytest.fixture
def table():
    return CapacityTable.from_mapping(catalog.TABLE1)


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(CapacityError):
            CapacityTable([])

    def test_duplicates_rejected(self):
        nf = catalog.get("monitor")
        with pytest.raises(CapacityError):
            CapacityTable([nf, nf])

    def test_len_and_contains(self, table):
        assert len(table) == 4
        assert "monitor" in table
        assert "nat" not in table


class TestLookups:
    def test_theta_on_both_devices(self, table):
        assert table.theta("monitor", DeviceKind.SMARTNIC) == gbps(3.2)
        assert table.theta("monitor", DeviceKind.CPU) == gbps(10.0)

    def test_unknown_raises(self, table):
        with pytest.raises(UnknownNFError):
            table.theta("nat", DeviceKind.CPU)

    def test_names_in_insertion_order(self, table):
        assert table.names() == ["firewall", "logger", "monitor",
                                 "load_balancer"]


class TestCalibration:
    def test_relative_error_zero_for_exact(self, table):
        assert table.relative_error("logger", DeviceKind.SMARTNIC,
                                    gbps(2.0)) == 0.0

    def test_relative_error_symmetric(self, table):
        over = table.relative_error("logger", DeviceKind.SMARTNIC, gbps(2.2))
        under = table.relative_error("logger", DeviceKind.SMARTNIC, gbps(1.8))
        assert over == pytest.approx(under) == pytest.approx(0.1)


class TestRendering:
    def test_rows_report_gbps(self, table):
        rows = {name: (nic, cpu) for name, nic, cpu in table.rows()}
        assert rows["monitor"] == (pytest.approx(3.2), pytest.approx(10.0))

    def test_incapable_rendered_as_nan_then_na(self):
        table = CapacityTable([catalog.get("dpi")])
        __, nic, __ = table.rows()[0]
        assert math.isnan(nic)
        assert "n/a" in table.render()

    def test_render_contains_all_nfs(self, table):
        text = table.render()
        for name in table.names():
            assert name in text
