"""Telemetry export: CSV series, JSONL packet dumps."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.harness.scenarios import figure1
from repro.sim.engine import Engine
from repro.sim.network import ChainNetwork
from repro.telemetry.export import (load_packets_jsonl, packets_to_jsonl,
                                    series_to_csv)
from repro.telemetry.recorder import TimeSeriesRecorder
from repro.traffic.packet import Packet
from repro.units import gbps


@pytest.fixture
def run_network():
    server = figure1().build_server()
    server.refresh_demand(gbps(1.0))
    engine = Engine()
    network = ChainNetwork(server, engine)
    for i in range(20):
        network.inject(Packet(seq=i, size_bytes=256, arrival_s=i * 2e-6))
    engine.run()
    return network


class TestSeriesCsv:
    def test_writes_all_series(self, tmp_path):
        recorder = TimeSeriesRecorder()
        recorder.record("nic", 0.0, 0.5)
        recorder.record("nic", 1.0, 0.9)
        recorder.record("cpu", 0.0, 0.2)
        path = tmp_path / "series.csv"
        rows = series_to_csv(recorder, path)
        assert rows == 3
        lines = path.read_text().splitlines()
        assert lines[0] == "series,time_s,value"
        assert any(line.startswith("cpu,") for line in lines[1:])

    def test_empty_recorder_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            series_to_csv(TimeSeriesRecorder(), tmp_path / "x.csv")

    def test_values_roundtrip_exactly(self, tmp_path):
        recorder = TimeSeriesRecorder()
        recorder.record("nic", 1 / 3, 2 / 7)
        path = tmp_path / "series.csv"
        series_to_csv(recorder, path)
        __, time_s, value = path.read_text().splitlines()[1].split(",")
        assert float(time_s) == 1 / 3
        assert float(value) == 2 / 7


class TestPacketsJsonl:
    def test_dump_and_load(self, tmp_path, run_network):
        path = tmp_path / "packets.jsonl"
        count = packets_to_jsonl(run_network.delivered, path,
                                 ledger=run_network.ledger)
        assert count == 20
        rows = load_packets_jsonl(path)
        assert len(rows) == 20
        assert rows[0]["seq"] == 0
        assert rows[0]["latency_s"] > 0

    def test_component_columns_present_with_ledger(self, tmp_path,
                                                   run_network):
        path = tmp_path / "packets.jsonl"
        packets_to_jsonl(run_network.delivered, path,
                         ledger=run_network.ledger)
        row = load_packets_jsonl(path)[0]
        component_sum = sum(row[f"latency_{c}_s"] for c in
                            ("wire", "processing", "queueing", "pcie"))
        assert component_sum == pytest.approx(row["latency_s"])

    def test_no_ledger_no_component_columns(self, tmp_path, run_network):
        path = tmp_path / "packets.jsonl"
        packets_to_jsonl(run_network.delivered, path)
        assert "latency_pcie_s" not in load_packets_jsonl(path)[0]

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            packets_to_jsonl([], tmp_path / "x.jsonl")

    def test_corrupt_file_located(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"seq": 1}\nnot-json\n')
        with pytest.raises(ConfigurationError, match=":2"):
            load_packets_jsonl(path)
