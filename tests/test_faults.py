"""Failure injection: crashes, loss, brownouts, flaps, dropouts."""

import pytest

from repro.chain.nf import DeviceKind
from repro.core.pam import select as pam_select
from repro.core.planner import MigrationController, PAMPolicy
from repro.errors import ConfigurationError
from repro.harness.scenarios import figure1
from repro.migration.executor import (OUTCOME_ABORTED, MigrationExecutor,
                                      RetryPolicy)
from repro.sim.engine import Engine
from repro.sim.faults import FaultInjector
from repro.sim.network import ChainNetwork
from repro.sim.runner import SimulationRunner
from repro.traffic.generators import ConstantBitRate
from repro.traffic.packet import FixedSize, Packet
from repro.units import gbps, usec


def live_network(offered=gbps(1.0)):
    server = figure1().build_server()
    server.refresh_demand(offered)
    engine = Engine()
    network = ChainNetwork(server, engine)
    return server, engine, network


def inject_cbr(network, count, gap_s=2e-6):
    for i in range(count):
        network.inject(Packet(seq=i, size_bytes=256, arrival_s=i * gap_s))


class TestCrash:
    def test_packets_dropped_during_downtime(self):
        __, engine, network = live_network()
        injector = FaultInjector(network, engine)
        inject_cbr(network, 500)
        event = injector.crash_nf("monitor", at_s=2e-4, downtime_s=3e-4)
        engine.run()
        network.check_conservation()
        assert event.packets_lost > 0
        assert len(network.dropped) == event.packets_lost
        assert all(p.dropped_at == "monitor" for p in network.dropped)

    def test_traffic_resumes_after_restart(self):
        __, engine, network = live_network()
        injector = FaultInjector(network, engine)
        inject_cbr(network, 500)
        injector.crash_nf("monitor", at_s=2e-4, downtime_s=2e-4)
        engine.run()
        # Packets arriving after the restart complete the chain.
        late_delivered = [p for p in network.delivered
                          if p.arrival_s > 4.5e-4]
        assert late_delivered
        assert not injector.is_failed("monitor")

    def test_queue_contents_lost_on_crash(self):
        # Saturate monitor so its queue is non-empty when the crash hits.
        __, engine, network = live_network(offered=gbps(3.0))
        network.server.refresh_demand(gbps(3.0))
        injector = FaultInjector(network, engine)
        inject_cbr(network, 1000, gap_s=6e-7)
        event = injector.crash_nf("monitor", at_s=3e-4, downtime_s=1e-4)
        engine.run()
        assert event.packets_lost > 0

    def test_unknown_nf_rejected(self):
        __, engine, network = live_network()
        injector = FaultInjector(network, engine)
        with pytest.raises(ConfigurationError):
            injector.crash_nf("ghost", at_s=0.0, downtime_s=1e-3)

    def test_invalid_downtime_rejected(self):
        __, engine, network = live_network()
        injector = FaultInjector(network, engine)
        with pytest.raises(ConfigurationError):
            injector.crash_nf("monitor", at_s=0.0, downtime_s=0.0)


class TestRepeatedCrash:
    def test_same_nf_crashes_and_restarts_twice(self):
        __, engine, network = live_network()
        injector = FaultInjector(network, engine)
        inject_cbr(network, 800)
        first = injector.crash_nf("monitor", at_s=2e-4, downtime_s=1e-4)
        second = injector.crash_nf("monitor", at_s=6e-4, downtime_s=1e-4)
        engine.run()
        network.check_conservation()
        assert first.packets_lost > 0
        assert second.packets_lost > 0
        assert not injector.is_failed("monitor")
        # Traffic flows again after the second restart.
        late = [p for p in network.delivered if p.arrival_s > 7.5e-4]
        assert late

    def test_losses_attributed_to_the_right_window(self):
        __, engine, network = live_network()
        injector = FaultInjector(network, engine)
        inject_cbr(network, 800)
        first = injector.crash_nf("monitor", at_s=2e-4, downtime_s=1e-4)
        second = injector.crash_nf("monitor", at_s=6e-4, downtime_s=1e-4)
        engine.run()
        assert first.packets_lost + second.packets_lost == \
            len(network.dropped)
        # Packets delivered between the two outages prove the restart
        # in the middle actually worked.
        between = [p for p in network.delivered
                   if 3.5e-4 < p.arrival_s < 5.5e-4]
        assert between

    def test_overlapping_windows_extend_downtime(self):
        __, engine, network = live_network()
        injector = FaultInjector(network, engine)
        inject_cbr(network, 600)
        injector.crash_nf("monitor", at_s=2e-4, downtime_s=2e-4)
        # Overlaps the first window; holds the NF down until 7e-4.
        injector.crash_nf("monitor", at_s=3e-4, downtime_s=4e-4)
        probes = []
        engine.at(4.5e-4,
                  lambda: probes.append(injector.is_failed("monitor")),
                  control=True)
        engine.run()
        # Still down after the first window's restart time.
        assert probes == [True]
        assert not injector.is_failed("monitor")
        network.check_conservation()


class TestDeviceBrownout:
    def test_derate_applied_and_restored(self):
        server, engine, network = live_network()
        injector = FaultInjector(network, engine)
        inject_cbr(network, 500)
        injector.brownout(DeviceKind.SMARTNIC, at_s=2e-4, duration_s=3e-4,
                          capacity_scale=0.5)
        probes = []
        engine.at(3.5e-4, lambda: probes.append(server.nic.derate),
                  control=True)
        engine.run()
        assert probes == [0.5]
        assert server.nic.derate == 1.0
        network.check_conservation()

    def test_overlapping_brownouts_take_deepest_and_latest(self):
        server, engine, network = live_network()
        injector = FaultInjector(network, engine)
        inject_cbr(network, 800)
        injector.brownout(DeviceKind.SMARTNIC, at_s=2e-4, duration_s=2e-4,
                          capacity_scale=0.7)
        injector.brownout(DeviceKind.SMARTNIC, at_s=3e-4, duration_s=6e-4,
                          capacity_scale=0.5)
        probes = []
        engine.at(3.5e-4, lambda: probes.append(server.nic.derate),
                  control=True)
        # After the first window ends the deeper, longer one still holds.
        engine.at(5e-4, lambda: probes.append(server.nic.derate),
                  control=True)
        engine.run()
        assert probes == [0.5, 0.5]
        assert server.nic.derate == 1.0

    def test_deep_brownout_overloads_the_device(self):
        # At 1.0 Gbps the NIC digests the chain comfortably; derated to
        # 10% capacity for most of the run it cannot, and queues
        # overflow once the backlog exceeds the 1024-packet queue.
        server, engine, network = live_network()
        injector = FaultInjector(network, engine)
        inject_cbr(network, 3000)
        injector.brownout(DeviceKind.SMARTNIC, at_s=2e-4, duration_s=5e-3,
                          capacity_scale=0.1)
        engine.run()
        network.check_conservation()
        assert network.dropped

    def test_validation(self):
        server, engine, network = live_network()
        injector = FaultInjector(network, engine)
        with pytest.raises(ConfigurationError):
            injector.brownout(DeviceKind.CPU, at_s=0.0, duration_s=0.0,
                              capacity_scale=0.5)
        with pytest.raises(ConfigurationError):
            injector.brownout(DeviceKind.CPU, at_s=0.0, duration_s=1e-3,
                              capacity_scale=1.0)


class TestPcieFlap:
    def test_extra_latency_applied_and_cleared(self):
        server, engine, network = live_network()
        injector = FaultInjector(network, engine)
        inject_cbr(network, 300)
        injector.pcie_flap(at_s=1e-4, duration_s=2e-4,
                           extra_latency_s=usec(50.0))
        probes = []
        engine.at(2e-4,
                  lambda: probes.append(server.pcie.fault_extra_latency_s),
                  control=True)
        engine.run()
        assert probes == [usec(50.0)]
        assert server.pcie.fault_extra_latency_s == 0.0
        network.check_conservation()

    def test_overlapping_flaps_take_worst_spike(self):
        server, engine, network = live_network()
        injector = FaultInjector(network, engine)
        inject_cbr(network, 400)
        injector.pcie_flap(at_s=1e-4, duration_s=2e-4,
                           extra_latency_s=usec(50.0))
        injector.pcie_flap(at_s=2e-4, duration_s=4e-4,
                           extra_latency_s=usec(120.0))
        probes = []
        engine.at(2.5e-4,
                  lambda: probes.append(server.pcie.fault_extra_latency_s),
                  control=True)
        engine.run()
        assert probes == [usec(120.0)]
        assert server.pcie.fault_extra_latency_s == 0.0

    def test_flap_can_push_a_migration_past_its_timeout(self):
        # The documented interplay: a flap mid-migration inflates the
        # state-DMA time past the per-action deadline, forcing a
        # rollback instead of a slow success.
        server, engine, network = live_network(offered=gbps(1.8))
        executor = MigrationExecutor(server, network, engine,
                                     action_timeout_s=2e-4,
                                     retry=RetryPolicy(max_attempts=1))
        injector = FaultInjector(network, engine)
        inject_cbr(network, 300)
        injector.pcie_flap(at_s=5e-5, duration_s=5e-4,
                           extra_latency_s=3e-4)
        plan = pam_select(server.placement, gbps(1.8))
        outcomes = []
        engine.at(1e-4,
                  lambda: executor.apply(plan, gbps(1.8),
                                         on_outcome=outcomes.append),
                  control=True)
        engine.run()
        assert outcomes[0].status == OUTCOME_ABORTED
        assert outcomes[0].reason == "timeout"
        assert server.placement.device_of("logger").value == "smartnic"
        network.check_conservation()

    def test_validation(self):
        server, engine, network = live_network()
        injector = FaultInjector(network, engine)
        with pytest.raises(ConfigurationError):
            injector.pcie_flap(at_s=0.0, duration_s=0.0,
                               extra_latency_s=usec(10.0))
        with pytest.raises(ConfigurationError):
            injector.pcie_flap(at_s=0.0, duration_s=1e-3,
                               extra_latency_s=0.0)


class TestTelemetryDropout:
    def test_sample_freezes_then_recovers(self):
        __, engine, network = live_network()
        injector = FaultInjector(network, engine)
        inject_cbr(network, 800)
        injector.telemetry_dropout(at_s=2e-4, duration_s=4e-4)
        samples = []
        for probe_at in (3e-4, 5e-4, 8e-4):
            engine.at(probe_at,
                      lambda: samples.append(network.telemetry_sample()),
                      control=True)
        engine.run()
        # Both in-window probes see the identical frozen sample with a
        # stale timestamp; the post-window probe is live again.
        assert samples[0] == samples[1]
        assert samples[0][1] == pytest.approx(2e-4)
        assert samples[2][1] == pytest.approx(8e-4)
        assert samples[2][0] > samples[0][0]

    def test_validation(self):
        __, engine, network = live_network()
        injector = FaultInjector(network, engine)
        with pytest.raises(ConfigurationError):
            injector.telemetry_dropout(at_s=0.0, duration_s=0.0)


class TestRandomLoss:
    def test_loss_rate_approximates_probability(self):
        __, engine, network = live_network()
        injector = FaultInjector(network, engine, seed=5)
        inject_cbr(network, 2000)
        injector.random_loss(0.1)
        engine.run()
        network.check_conservation()
        rate = len(network.dropped) / network.injected
        assert rate == pytest.approx(0.1, abs=0.03)

    def test_loss_is_seeded(self):
        losses = []
        for _ in range(2):
            __, engine, network = live_network()
            injector = FaultInjector(network, engine, seed=5)
            inject_cbr(network, 500)
            injector.random_loss(0.2)
            engine.run()
            losses.append(len(network.dropped))
        assert losses[0] == losses[1]

    def test_probability_bounds(self):
        __, engine, network = live_network()
        injector = FaultInjector(network, engine)
        with pytest.raises(ConfigurationError):
            injector.random_loss(0.0)
        with pytest.raises(ConfigurationError):
            injector.random_loss(1.0)

    def test_double_install_rejected(self):
        # A second wrapper would silently compound the drop probability.
        __, engine, network = live_network()
        injector = FaultInjector(network, engine)
        injector.random_loss(0.1)
        with pytest.raises(ConfigurationError):
            injector.random_loss(0.1)


class TestFaultsDoNotConfuseThePlanner:
    def test_pam_still_fires_with_loss_upstream(self):
        # 10% ingress loss thins the measured load; at 1.8 Gbps offered
        # the surviving ~1.62 Gbps still overloads the NIC (knee 1.51),
        # so the controller must still migrate.
        server = figure1().build_server()
        generator = ConstantBitRate(gbps(1.8), FixedSize(256), 0.02)
        controller = MigrationController(PAMPolicy())
        runner = SimulationRunner(server, generator, controller,
                                  monitor_period_s=0.002)
        FaultInjector(runner.network, runner.engine, seed=7) \
            .random_loss(0.1)
        result = runner.run()
        assert result.migrated_nfs == ["logger"]
