"""Failure injection: NF crashes and random loss."""

import pytest

from repro.core.planner import MigrationController, PAMPolicy
from repro.errors import ConfigurationError
from repro.harness.scenarios import figure1
from repro.sim.engine import Engine
from repro.sim.faults import FaultInjector
from repro.sim.network import ChainNetwork
from repro.sim.runner import SimulationRunner
from repro.traffic.generators import ConstantBitRate
from repro.traffic.packet import FixedSize, Packet
from repro.units import gbps


def live_network(offered=gbps(1.0)):
    server = figure1().build_server()
    server.refresh_demand(offered)
    engine = Engine()
    network = ChainNetwork(server, engine)
    return server, engine, network


def inject_cbr(network, count, gap_s=2e-6):
    for i in range(count):
        network.inject(Packet(seq=i, size_bytes=256, arrival_s=i * gap_s))


class TestCrash:
    def test_packets_dropped_during_downtime(self):
        __, engine, network = live_network()
        injector = FaultInjector(network, engine)
        inject_cbr(network, 500)
        event = injector.crash_nf("monitor", at_s=2e-4, downtime_s=3e-4)
        engine.run()
        network.check_conservation()
        assert event.packets_lost > 0
        assert len(network.dropped) == event.packets_lost
        assert all(p.dropped_at == "monitor" for p in network.dropped)

    def test_traffic_resumes_after_restart(self):
        __, engine, network = live_network()
        injector = FaultInjector(network, engine)
        inject_cbr(network, 500)
        injector.crash_nf("monitor", at_s=2e-4, downtime_s=2e-4)
        engine.run()
        # Packets arriving after the restart complete the chain.
        late_delivered = [p for p in network.delivered
                          if p.arrival_s > 4.5e-4]
        assert late_delivered
        assert not injector.is_failed("monitor")

    def test_queue_contents_lost_on_crash(self):
        # Saturate monitor so its queue is non-empty when the crash hits.
        __, engine, network = live_network(offered=gbps(3.0))
        network.server.refresh_demand(gbps(3.0))
        injector = FaultInjector(network, engine)
        inject_cbr(network, 1000, gap_s=6e-7)
        event = injector.crash_nf("monitor", at_s=3e-4, downtime_s=1e-4)
        engine.run()
        assert event.packets_lost > 0

    def test_unknown_nf_rejected(self):
        __, engine, network = live_network()
        injector = FaultInjector(network, engine)
        with pytest.raises(ConfigurationError):
            injector.crash_nf("ghost", at_s=0.0, downtime_s=1e-3)

    def test_invalid_downtime_rejected(self):
        __, engine, network = live_network()
        injector = FaultInjector(network, engine)
        with pytest.raises(ConfigurationError):
            injector.crash_nf("monitor", at_s=0.0, downtime_s=0.0)


class TestRandomLoss:
    def test_loss_rate_approximates_probability(self):
        __, engine, network = live_network()
        injector = FaultInjector(network, engine, seed=5)
        inject_cbr(network, 2000)
        injector.random_loss(0.1)
        engine.run()
        network.check_conservation()
        rate = len(network.dropped) / network.injected
        assert rate == pytest.approx(0.1, abs=0.03)

    def test_loss_is_seeded(self):
        losses = []
        for _ in range(2):
            __, engine, network = live_network()
            injector = FaultInjector(network, engine, seed=5)
            inject_cbr(network, 500)
            injector.random_loss(0.2)
            engine.run()
            losses.append(len(network.dropped))
        assert losses[0] == losses[1]

    def test_probability_bounds(self):
        __, engine, network = live_network()
        injector = FaultInjector(network, engine)
        with pytest.raises(ConfigurationError):
            injector.random_loss(0.0)
        with pytest.raises(ConfigurationError):
            injector.random_loss(1.0)


class TestFaultsDoNotConfuseThePlanner:
    def test_pam_still_fires_with_loss_upstream(self):
        # 10% ingress loss thins the measured load; at 1.8 Gbps offered
        # the surviving ~1.62 Gbps still overloads the NIC (knee 1.51),
        # so the controller must still migrate.
        server = figure1().build_server()
        generator = ConstantBitRate(gbps(1.8), FixedSize(256), 0.02)
        controller = MigrationController(PAMPolicy())
        runner = SimulationRunner(server, generator, controller,
                                  monitor_period_s=0.002)
        FaultInjector(runner.network, runner.engine, seed=7) \
            .random_loss(0.1)
        result = runner.run()
        assert result.migrated_nfs == ["logger"]
