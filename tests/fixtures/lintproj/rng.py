"""Seed-provenance fixtures: FLOW501/FLOW502 positives + clean twins."""

import random
import time


def make_rng(seed):
    """The innermost constructor every path funnels through."""
    return random.Random(seed)


def build_generator(seed):
    """One indirection layer: its ``seed`` is a transitive seed param."""
    return make_rng(seed)


def fixed_rng():
    """FLOW501: the literal is two calls away from random.Random."""
    return build_generator(1234)


def clock_rng():
    """FLOW502: wall clock masquerading as a seed."""
    return make_rng(int(time.time()))


def spec_rng(spec_seed):
    """Clean: the seed arrives as a parameter."""
    return make_rng(spec_seed)


class FlowGen:
    """Clean: seed stored in __init__, used from another method."""

    def __init__(self, seed):
        self.seed = seed

    def rng(self):
        return random.Random(self.seed)
