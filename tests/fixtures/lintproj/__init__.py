"""Fixture mini-package for whole-program lint tests.

Every module here carries deliberately seeded violations (and their
clean twins) exercised by ``tests/test_lint_project.py``: a literal
RNG seed hidden two calls deep, a ``_us`` value crossing into a
``_s`` parameter, and a set-ordered journal payload.  The package
also re-exports a symbol so the loader's re-export canonicalisation
has something to chew on.
"""

from .rng import make_rng

__all__ = ["make_rng"]
