"""Journal-purity fixtures: JRN601 positives + cleansed twins."""


class JournalWriter:
    """Minimal stand-in; the name alone marks ``append`` as a sink."""

    def __init__(self):
        self.records = []

    def append(self, payload):
        self.records.append(payload)


def order_payload(flows):
    """JRN601 (payload-return): list built in set-iteration order."""
    unique = set(flows)
    return {"flows": list(unique)}


def record(journal, flows):
    """JRN601 (journal-append): the taint arrives through a call."""
    journal.append(order_payload(flows))


def clean_payload(flows):
    """Clean: sorted(...) pins the order, discharging the taint."""
    return {"flows": sorted(set(flows))}


def record_clean(journal, flows):
    """Clean twin of :func:`record`."""
    journal.append(clean_payload(flows))
