"""Unit-flow fixtures: UNIT210/UNIT211 positives + converter-clean twins."""

from . import units


def wait_for(timeout_s):
    """Sink parameter declared in seconds."""
    return timeout_s + 0.0


def poll(interval_us):
    """UNIT210: microseconds handed straight to a seconds parameter."""
    return wait_for(interval_us)


def poll_converted(interval_us):
    """Clean: the sanctioned converter re-tags the value."""
    return wait_for(units.usec(interval_us))


def poll_mystery(interval_us):
    """Clean by monotonicity: an unknown converter yields an untagged
    value, which is never flagged."""
    return wait_for(units.mystery_scale(interval_us))


def elapsed_us(start_s, end_s):
    """UNIT211: the name promises microseconds, the body returns seconds."""
    return end_s - start_s
