"""Fixture stand-in for :mod:`repro.units`.

The dataflow layer recognises converter calls by *module name* (any
module whose dotted name ends in ``.units``), so this copy gives the
fixture package sanctioned conversion points without importing the
real library.
"""


def usec(value_us: float) -> float:
    """Microseconds -> seconds."""
    return value_us / 1_000_000.0


def as_usec(value_s: float) -> float:
    """Seconds -> microseconds."""
    return value_s * 1_000_000.0


def mystery_scale(value: float) -> float:
    """A converter the analysis has no unit entry for (stays untagged)."""
    return value * 8.0
