"""The one-call reproduction API."""

import pytest

from repro.cli import main
from repro.harness.paper import (ArtefactResult, ReproductionReport,
                                 reproduce_all)


@pytest.fixture(scope="module")
def report():
    # Short horizons: this exercises the full pipeline, the benches
    # cover the well-sampled runs.
    return reproduce_all(duration_s=0.005)


class TestReproduceAll:
    def test_covers_all_four_artefacts(self, report):
        names = [artefact.artefact for artefact in report.artefacts]
        assert names == ["Table 1", "Figure 1", "Figure 2(a)",
                         "Figure 2(b)"]

    def test_every_claim_passes(self, report):
        failing = [artefact.artefact for artefact in report.artefacts
                   if not artefact.passed]
        assert failing == []
        assert report.all_passed

    def test_measured_strings_are_informative(self, report):
        by_name = {a.artefact: a for a in report.artefacts}
        assert "knee error" in by_name["Table 1"].measured
        assert "+2" in by_name["Figure 1"].measured
        assert "%" in by_name["Figure 2(a)"].measured

    def test_render_contains_tables_and_verdict(self, report):
        text = report.render()
        assert "[PASS] Table 1" in text
        assert "all paper claims reproduced" in text
        assert "vNF" in text  # the capacity table itself

    def test_failed_report_renders_verdict(self):
        failed = ReproductionReport(artefacts=(
            ArtefactResult(artefact="X", claim="c", measured="m",
                           passed=False, rendered="r"),))
        assert not failed.all_passed
        assert "SOME CLAIMS FAILED" in failed.render()
        assert "[FAIL] X" in failed.render()


class TestReproduceCli:
    def test_exit_zero_on_success(self, capsys):
        assert main(["reproduce", "--duration", "0.004"]) == 0
        out = capsys.readouterr().out
        assert "all paper claims reproduced" in out
