"""Scale-out fallback planning (OpenNF-style replication)."""

import pytest

from repro.baselines.naive import NaivePolicy
from repro.baselines.scaleout import (ScaleOutFallbackPolicy, plan_scaleout)
from repro.devices.cpu import CPU
from repro.errors import ScaleOutRequired
from repro.traffic.flows import FlowTable
from repro.units import gbps


class TestPlanScaleout:
    def test_replicates_the_nic_bottleneck(self, fig1_placement):
        plan = plan_scaleout(fig1_placement, gbps(2.2))
        assert plan.nf_name == "monitor"
        assert plan.instances >= 2

    def test_predicted_loads_under_one(self, fig1_placement):
        plan = plan_scaleout(fig1_placement, gbps(2.2))
        assert plan.alleviates
        assert plan.predicted_nic_utilisation < 1.0
        assert plan.predicted_cpu_utilisation < 1.0

    def test_even_share_is_reciprocal(self, fig1_placement):
        plan = plan_scaleout(fig1_placement, gbps(2.2))
        assert plan.even_share == pytest.approx(1.0 / plan.instances)

    def test_hash_split_worst_share_at_least_even(self, fig1_placement):
        plan = plan_scaleout(fig1_placement, gbps(2.2),
                             flow_table=FlowTable(num_flows=64, seed=1))
        assert plan.worst_share >= plan.even_share

    def test_raises_when_instance_cap_too_low(self, fig1_placement):
        with pytest.raises(ScaleOutRequired):
            plan_scaleout(fig1_placement, gbps(9.0), max_instances=2)

    def test_cpu_core_budget_respected(self, fig1_placement):
        cramped = CPU("cpu", num_sockets=1, cores_per_socket=1)
        with pytest.raises(ScaleOutRequired):
            plan_scaleout(fig1_placement, gbps(2.6), cpu=cramped)


class TestFallbackPolicy:
    def test_passes_through_when_inner_succeeds(self, fig1_placement,
                                                 fig1_throughput):
        policy = ScaleOutFallbackPolicy(NaivePolicy())
        plan = policy.select(fig1_placement, fig1_throughput)
        assert plan.migrated_names == ["monitor"]
        assert policy.scaleout_plans == []

    def test_plans_scaleout_when_inner_gives_up(self):
        # A scenario where whole-NF migration is hopeless (the monitor
        # is too slow on the CPU to move in one piece) but *splitting*
        # it across replicas fits: exactly the case OpenNF handles and
        # the paper defers to.
        from repro.chain.builder import ChainBuilder
        from repro.chain.nf import DeviceKind, NFProfile
        monitor = NFProfile(name="monitor", nic_capacity_bps=gbps(1.0),
                            cpu_capacity_bps=gbps(1.2), stateful=True)
        firewall = NFProfile(name="firewall", nic_capacity_bps=gbps(2.0),
                             cpu_capacity_bps=gbps(4.0), stateful=True)
        lb = NFProfile(name="lb", nic_capacity_bps=gbps(20.0),
                       cpu_capacity_bps=gbps(4.0), stateful=True)
        placement = (ChainBuilder("s")
                     .add(lb, DeviceKind.CPU)
                     .add(monitor, DeviceKind.SMARTNIC)
                     .add(firewall, DeviceKind.SMARTNIC)
                     .build(egress=DeviceKind.CPU))[1]
        policy = ScaleOutFallbackPolicy(NaivePolicy())
        plan = policy.select(placement, gbps(1.0))
        assert plan.is_noop  # migration-wise
        assert len(policy.scaleout_plans) == 1
        scale = policy.scaleout_plans[0]
        assert scale.nf_name == "monitor"
        assert scale.alleviates
