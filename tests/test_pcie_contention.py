"""Detailed PCIe transmission model (contention mode)."""

import pytest

from dataclasses import replace

from repro.devices.pcie import PCIeLink
from repro.devices.server import ServerProfile
from repro.harness.experiment import steady_state
from repro.harness.scenarios import figure1
from repro.units import gbps, usec


class TestLinkOccupancy:
    def test_back_to_back_crossings_queue(self):
        link = PCIeLink(model_contention=True)
        first = link.record_crossing(1500, now_s=0.0)
        second = link.record_crossing(1500, now_s=0.0)
        serialise = 1500 * 8 / link.bandwidth_bps
        assert second == pytest.approx(first + serialise)
        assert link.stats.queue_wait_s == pytest.approx(serialise)

    def test_spaced_crossings_do_not_queue(self):
        link = PCIeLink(model_contention=True)
        first = link.record_crossing(1500, now_s=0.0)
        second = link.record_crossing(1500, now_s=1.0)
        assert second == pytest.approx(first)
        assert link.stats.queue_wait_s == 0.0

    def test_contention_off_ignores_clock(self):
        link = PCIeLink(model_contention=False)
        a = link.record_crossing(1500, now_s=0.0)
        b = link.record_crossing(1500, now_s=0.0)
        assert a == b
        assert link.stats.queue_wait_s == 0.0

    def test_no_clock_means_no_contention(self):
        link = PCIeLink(model_contention=True)
        a = link.record_crossing(1500)
        b = link.record_crossing(1500)
        assert a == b

    def test_reset_clears_occupancy(self):
        link = PCIeLink(model_contention=True)
        link.record_crossing(1500, now_s=0.0)
        link.reset()
        assert link.record_crossing(1500, now_s=0.0) == \
            link.crossing_time(1500)


class TestEndToEnd:
    def test_contention_raises_latency_at_high_crossing_load(self):
        # The naive-after placement makes every packet cross 5 times;
        # at high rate with large packets the serialisation stream
        # contends, so the contention model must report higher latency.
        scenario = figure1()
        naive_after = scenario.placement.moved("monitor",
                                               scenario.placement
                                               .device_of("monitor").other())
        plain = scenario.with_placement(naive_after, "plain")
        contended = scenario.with_placement(naive_after, "contended")
        contended = type(contended)(
            name=contended.name, chain=contended.chain,
            placement=contended.placement,
            server_profile=replace(ServerProfile(),
                                   pcie_model_contention=True),
            throughput_bps=contended.throughput_bps)
        base = steady_state(plain, gbps(2.4), 1500, duration_s=0.006)
        rich = steady_state(contended, gbps(2.4), 1500, duration_s=0.006)
        assert rich.latency.mean_s > base.latency.mean_s
        assert rich.pcie.queue_wait_s > 0

    def test_contention_negligible_at_light_load(self):
        scenario = figure1()
        contended = type(scenario)(
            name="light", chain=scenario.chain,
            placement=scenario.placement,
            server_profile=replace(ServerProfile(),
                                   pcie_model_contention=True),
            throughput_bps=scenario.throughput_bps)
        base = steady_state(scenario, gbps(0.5), 256, duration_s=0.004)
        rich = steady_state(contended, gbps(0.5), 256, duration_s=0.004)
        assert rich.latency.mean_s == pytest.approx(base.latency.mean_s,
                                                    rel=0.01)
