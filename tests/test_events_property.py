"""Property tests: the calendar-queue scheduler against a reference heap.

The slab/calendar :class:`~repro.sim.events.EventQueue` must drain in
exactly the order a plain min-heap of ``(time_s, priority, seq)`` keys
would — under random schedules, cancellations, simultaneous events,
and pops interleaved with pushes (including pushes that land *earlier*
than events already consumed, which exercises the bucket-preemption
path).  Hypothesis drives the schedules; the reference model is a
``heapq`` with lazy cancellation.
"""

from __future__ import annotations

import heapq

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.errors import SchedulingError  # noqa: E402
from repro.sim.events import (DEFAULT_BUCKET_WIDTH_S, EventQueue,  # noqa: E402
                              PRIORITY_CONTROL, PRIORITY_DATA)

# Times spanning many calendar buckets plus a grid that forces exact
# collisions (same bucket, same timestamp).
_GRID = [0.0, 1e-6, DEFAULT_BUCKET_WIDTH_S, DEFAULT_BUCKET_WIDTH_S * 2,
         1e-4, 9.7e-4]
_TIME = st.one_of(
    st.floats(min_value=0.0, max_value=1e-3,
              allow_nan=False, allow_infinity=False),
    st.sampled_from(_GRID))
_PRIORITY = st.sampled_from([PRIORITY_CONTROL, PRIORITY_DATA])

#: One scheduler interaction: handle push, handle-free schedule_id,
#: cancel of a random earlier handle, or an immediate pop.
_OP = st.one_of(
    st.tuples(st.just("push"), _TIME, _PRIORITY),
    st.tuples(st.just("sched"), _TIME, _PRIORITY),
    st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=10 ** 6)),
    st.tuples(st.just("pop")),
)


def _drain(queue: EventQueue):
    """Every remaining live event as raw ``(time, priority, seq)`` keys."""
    keys = []
    while True:
        taken = queue.take()
        if taken is None:
            return keys
        keys.append(taken[:3])


class _ReferenceHeap:
    """The specification: a min-heap of full keys, lazily cancelled."""

    def __init__(self) -> None:
        self._heap = []
        self._cancelled = set()
        self.seq = 0

    def add(self, time_s: float, priority: int) -> int:
        seq = self.seq
        self.seq += 1
        heapq.heappush(self._heap, (time_s, priority, seq))
        return seq

    def cancel(self, seq: int) -> None:
        self._cancelled.add(seq)

    def pop(self):
        while self._heap:
            key = heapq.heappop(self._heap)
            if key[2] not in self._cancelled:
                return key
        return None

    def drain(self):
        keys = []
        while True:
            key = self.pop()
            if key is None:
                return keys
            keys.append(key)


@settings(max_examples=60, deadline=None)
@given(st.lists(_OP, max_size=120))
def test_drain_order_matches_reference_heap(ops):
    """Any op interleaving drains in exact ``(time, priority, seq)`` order."""
    queue = EventQueue()
    reference = _ReferenceHeap()
    action_id = queue.register_action(lambda: None)
    handles = []
    for op in ops:
        if op[0] == "push":
            _, time_s, priority = op
            event = reference.add(time_s, priority)
            handle = queue.push(time_s, lambda: None, priority)
            assert handle.seq == event
            handles.append(handle)
        elif op[0] == "sched":
            _, time_s, priority = op
            reference.add(time_s, priority)
            queue.schedule_id(time_s, action_id, priority)
        elif op[0] == "cancel" and handles:
            handle = handles[op[1] % len(handles)]
            reference.cancel(handle.seq)
            # Double-cancel must be idempotent on both sides.
            handle.cancel()
            handle.cancel()
        elif op[0] == "pop":
            taken = queue.take()
            expected = reference.pop()
            assert (taken[:3] if taken else None) == expected
    assert _drain(queue) == reference.drain()
    assert len(queue) == 0


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=64), _TIME)
def test_simultaneous_events_order_by_priority_then_seq(count, time_s):
    """Identical timestamps break ties by priority, then insertion seq."""
    queue = EventQueue()
    reference = _ReferenceHeap()
    for index in range(count):
        priority = PRIORITY_CONTROL if index % 3 == 0 else PRIORITY_DATA
        reference.add(time_s, priority)
        queue.push(time_s, lambda: None, priority)
    drained = _drain(queue)
    assert drained == reference.drain()
    # Control always precedes data at the shared timestamp.
    priorities = [key[1] for key in drained]
    assert priorities == sorted(priorities)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(_TIME, _PRIORITY), min_size=1, max_size=40),
       st.lists(st.tuples(_TIME, _PRIORITY), max_size=40),
       st.integers(min_value=0, max_value=39))
def test_late_pushes_interleave_in_key_order(first, second, consume):
    """Pushes after partial drains (even at earlier times) stay ordered.

    A push whose timestamp precedes the current bucket forces the
    calendar's preemption/demotion path; the remaining drain must still
    be the reference heap's order exactly.
    """
    queue = EventQueue()
    reference = _ReferenceHeap()
    for time_s, priority in first:
        reference.add(time_s, priority)
        queue.push(time_s, lambda: None, priority)
    for _ in range(consume % (len(first) + 1)):
        assert (lambda t: t[:3] if t else None)(queue.take()) \
            == reference.pop()
    for time_s, priority in second:
        reference.add(time_s, priority)
        queue.push(time_s, lambda: None, priority)
    assert _drain(queue) == reference.drain()


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=2 ** 40),
       st.integers(min_value=0, max_value=2 ** 20),
       st.integers(min_value=1, max_value=2 ** 20))
def test_seq_counter_snapshot_restore_roundtrip(start, scheduled, rewind):
    """The counter restores exactly and refuses to run backwards."""
    queue = EventQueue()
    queue.set_seq_counter(start)
    assert queue.seq_counter == start
    for _ in range(scheduled % 5):
        queue.push(1e-6, lambda: None)
    state = queue.snapshot_state()
    assert state["seq_counter"] == queue.seq_counter
    assert state["pending"] == len(queue)

    fresh = EventQueue()
    fresh.restore_state(state)
    assert fresh.seq_counter == queue.seq_counter
    # New events continue the restored numbering.
    handle = fresh.push(1e-6, lambda: None)
    assert handle.seq == state["seq_counter"]

    with pytest.raises(SchedulingError):
        queue.set_seq_counter(queue.seq_counter - rewind)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(_TIME, _PRIORITY), min_size=1, max_size=30))
def test_cancelled_events_never_surface(entries):
    """Cancelling every handle leaves nothing observable to drain."""
    queue = EventQueue()
    handles = [queue.push(time_s, lambda: None, priority)
               for time_s, priority in entries]
    for handle in handles:
        handle.cancel()
        assert handle.cancelled
    assert _drain(queue) == []
