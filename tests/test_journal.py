"""Tests for the write-ahead run journal (repro.checkpoint.journal)."""

import json

import pytest

from repro.checkpoint import (JournalWriter, canonical_json, frame_record,
                              read_journal, record_checksum)
from repro.errors import CheckpointError


def _write(path, payloads):
    with JournalWriter(str(path), mode="truncate") as writer:
        for payload in payloads:
            writer.append(payload)
    return writer


class TestFraming:
    def test_canonical_json_is_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [1.5, None]}) == \
            '{"a":[1.5,null],"b":1}'

    def test_checksum_is_stable_under_key_order(self):
        assert record_checksum({"a": 1, "b": 2}) == \
            record_checksum({"b": 2, "a": 1})

    def test_frame_embeds_matching_crc(self):
        frame = json.loads(frame_record({"kind": "x"}))
        assert frame["crc"] == record_checksum({"kind": "x"})
        assert frame["record"] == {"kind": "x"}

    def test_floats_round_trip_bit_exact(self, tmp_path):
        value = 0.1 + 0.2  # not representable as a short decimal
        path = tmp_path / "j.jsonl"
        _write(path, [{"kind": "m", "v": value}])
        record = read_journal(str(path)).records[0]
        assert record["v"] == value  # exact IEEE-754 equality


class TestWriterAndReader:
    def test_round_trip_preserves_records_in_order(self, tmp_path):
        path = tmp_path / "j.jsonl"
        payloads = [{"kind": "a", "i": i} for i in range(5)]
        writer = _write(path, payloads)
        assert writer.records_written == 5
        outcome = read_journal(str(path))
        assert outcome.records == payloads
        assert not outcome.dropped_tail

    def test_of_kind_filters_in_order(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write(path, [{"kind": "a", "i": 0}, {"kind": "b"},
                      {"kind": "a", "i": 1}])
        outcome = read_journal(str(path))
        assert [r["i"] for r in outcome.of_kind("a")] == [0, 1]

    def test_append_mode_extends_existing_journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write(path, [{"kind": "a"}])
        with JournalWriter(str(path), mode="append") as writer:
            writer.append({"kind": "b"})
        kinds = [r["kind"] for r in read_journal(str(path)).records]
        assert kinds == ["a", "b"]

    def test_truncate_mode_starts_fresh(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write(path, [{"kind": "old"}])
        _write(path, [{"kind": "new"}])
        assert [r["kind"] for r in read_journal(str(path)).records] == ["new"]

    def test_unknown_mode_rejected(self, tmp_path):
        with pytest.raises(CheckpointError):
            JournalWriter(str(tmp_path / "j.jsonl"), mode="overwrite")

    def test_append_after_close_raises(self, tmp_path):
        writer = _write(tmp_path / "j.jsonl", [])
        writer.close()  # idempotent
        with pytest.raises(CheckpointError):
            writer.append({"kind": "late"})

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            read_journal(str(tmp_path / "absent.jsonl"))

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "j.jsonl"
        _write(path, [{"kind": "a"}])
        assert read_journal(str(path)).records == [{"kind": "a"}]


class TestTornWrites:
    def test_partial_final_line_dropped_with_detail(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write(path, [{"kind": "a"}, {"kind": "b"}])
        with open(path, "a") as handle:
            handle.write('{"crc": 1, "record": {"kind": "to')
        outcome = read_journal(str(path))
        assert [r["kind"] for r in outcome.records] == ["a", "b"]
        assert outcome.dropped_tail
        assert "line 3" in outcome.dropped_detail

    def test_partial_final_line_raises_when_not_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write(path, [{"kind": "a"}])
        with open(path, "a") as handle:
            handle.write("{garbage")
        with pytest.raises(CheckpointError):
            read_journal(str(path), tolerate_torn_tail=False)

    def test_crc_mismatch_on_final_line_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write(path, [{"kind": "a"}])
        with open(path, "a") as handle:
            handle.write('{"crc": 12345, "record": {"kind": "bad"}}\n')
        outcome = read_journal(str(path))
        assert [r["kind"] for r in outcome.records] == ["a"]
        assert outcome.dropped_tail

    def test_corrupt_record_mid_file_always_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write(path, [{"kind": "a"}, {"kind": "b"}])
        lines = path.read_text().splitlines()
        lines[0] = '{"crc": 99, "record": {"kind": "a"}}'
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError):
            read_journal(str(path))
        with pytest.raises(CheckpointError):
            read_journal(str(path), tolerate_torn_tail=False)

    def test_trailing_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write(path, [{"kind": "a"}])
        with open(path, "a") as handle:
            handle.write("\n\n")
        outcome = read_journal(str(path))
        assert [r["kind"] for r in outcome.records] == ["a"]
        assert not outcome.dropped_tail


class TestTailRepairOnAppend:
    def test_append_truncates_torn_tail_first(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write(path, [{"kind": "a"}])
        with open(path, "a") as handle:
            handle.write('{"crc": 1, "record": {"kin')  # no newline
        with JournalWriter(str(path), mode="append") as writer:
            assert writer.repaired_detail is not None
            writer.append({"kind": "b"})
        outcome = read_journal(str(path))
        assert [r["kind"] for r in outcome.records] == ["a", "b"]
        assert not outcome.dropped_tail

    def test_append_truncates_complete_but_corrupt_final_line(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write(path, [{"kind": "a"}])
        with open(path, "a") as handle:
            handle.write('{"crc": 777, "record": {"kind": "bad"}}\n')
        with JournalWriter(str(path), mode="append") as writer:
            writer.append({"kind": "b"})
        assert [r["kind"] for r in read_journal(str(path)).records] == \
            ["a", "b"]

    def test_clean_tail_left_untouched(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write(path, [{"kind": "a"}])
        with JournalWriter(str(path), mode="append") as writer:
            assert writer.repaired_detail is None

    def test_refuses_to_repair_mid_file_damage(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write(path, [{"kind": "a"}, {"kind": "b"}])
        lines = path.read_text().splitlines()
        lines[0] = "{damaged"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError):
            JournalWriter(str(path), mode="append")
