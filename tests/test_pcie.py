"""PCIe link: crossing latency, serialisation, accounting."""

import pytest

from repro.devices.pcie import (DEFAULT_CROSSING_LATENCY_S,
                                DEFAULT_PCIE_BANDWIDTH_BPS, PCIeLink)
from repro.errors import ConfigurationError
from repro.units import usec


@pytest.fixture
def link():
    return PCIeLink()


class TestCrossingTime:
    def test_fixed_plus_serialisation(self, link):
        expected = DEFAULT_CROSSING_LATENCY_S + 256 * 8 / DEFAULT_PCIE_BANDWIDTH_BPS
        assert link.crossing_time(256) == pytest.approx(expected)

    def test_zero_bytes_is_fixed_cost_only(self, link):
        assert link.crossing_time(0) == DEFAULT_CROSSING_LATENCY_S

    def test_monotone_in_size(self, link):
        assert link.crossing_time(1500) > link.crossing_time(64)

    def test_default_in_tens_of_microseconds_regime(self, link):
        # The paper: two extra crossings add "tens of microseconds".
        two = 2 * link.crossing_time(256)
        assert usec(10) < two < usec(100)

    def test_negative_size_rejected(self, link):
        with pytest.raises(ConfigurationError):
            link.crossing_time(-1)


class TestAccounting:
    def test_record_crossing_counts(self, link):
        t = link.record_crossing(256)
        assert link.stats.crossings == 1
        assert link.stats.bytes_transferred == 256
        assert link.stats.busy_time_s == pytest.approx(t)

    def test_record_accumulates(self, link):
        link.record_crossing(64)
        link.record_crossing(128)
        assert link.stats.crossings == 2
        assert link.stats.bytes_transferred == 192

    def test_reset(self, link):
        link.record_crossing(64)
        link.stats.reset()
        assert link.stats.crossings == 0
        assert link.stats.bytes_transferred == 0
        assert link.stats.busy_time_s == 0.0


class TestBulkTransfer:
    def test_pays_fixed_cost_once(self, link):
        one_mb = 1024 * 1024
        expected = DEFAULT_CROSSING_LATENCY_S + one_mb * 8 / DEFAULT_PCIE_BANDWIDTH_BPS
        assert link.bulk_transfer_time(one_mb) == pytest.approx(expected)

    def test_bulk_cheaper_than_per_packet(self, link):
        # Moving 1 MB as one DMA beats moving it as 4096 packet crossings.
        bulk = link.bulk_transfer_time(1024 * 1024)
        per_packet = 4096 * link.crossing_time(256)
        assert bulk < per_packet

    def test_negative_rejected(self, link):
        with pytest.raises(ConfigurationError):
            link.bulk_transfer_time(-1)


class TestValidation:
    def test_bandwidth_positive(self):
        with pytest.raises(ConfigurationError):
            PCIeLink(bandwidth_bps=0.0)

    def test_latency_non_negative(self):
        with pytest.raises(ConfigurationError):
            PCIeLink(crossing_latency_s=-1e-6)

    def test_zero_latency_allowed(self):
        # The A1 ablation sweeps down toward zero-cost crossings.
        assert PCIeLink(crossing_latency_s=0.0).crossing_time(0) == 0.0
