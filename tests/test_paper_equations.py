"""The paper's equations, verified symbol by symbol.

A reproduction should make the paper's maths executable.  These tests
take each numbered equation from S2 and check our implementation
evaluates it exactly as written, using hand-computed values on the
canonical scenario — independent of the algorithm code paths the other
tests exercise.
"""

import pytest

from repro.chain.nf import DeviceKind
from repro.core.border import border_sets
from repro.core.pam import select
from repro.resources.model import LoadModel
from repro.units import gbps

C = DeviceKind.CPU
S = DeviceKind.SMARTNIC

#: Figure-1 scenario capacities (Gbps) — see catalog.FIGURE1_SCENARIO.
THETA_S = {"logger": 4.0, "monitor": 3.2, "firewall": 10.0,
           "load_balancer": 20.0}
THETA_C = {"logger": 4.0, "monitor": 10.0, "firewall": 4.0,
           "load_balancer": 4.0}


class TestResourceConsumptionModel:
    """S2: 'the ratio of consumed resource on SmartNIC is
    theta_cur / theta_i^S' (after CoCo [5])."""

    @pytest.mark.parametrize("nf,theta", THETA_S.items())
    def test_nic_share(self, fig1_placement, nf, theta):
        theta_cur = 1.8
        load = LoadModel(fig1_placement, gbps(theta_cur))
        profile = fig1_placement.chain.get(nf)
        assert profile.utilisation_share(S, gbps(theta_cur)) == \
            pytest.approx(theta_cur / theta)

    def test_device_sum_is_linear(self, fig1_placement):
        half = LoadModel(fig1_placement, gbps(0.9)).nic_load().utilisation
        full = LoadModel(fig1_placement, gbps(1.8)).nic_load().utilisation
        assert full == pytest.approx(2 * half)


class TestEquation1:
    """Eq. 1: b0 = argmin_{b in B_L ∪ B_R} theta_b^S."""

    def test_argmin_over_the_border_union(self, fig1_placement):
        sets = border_sets(fig1_placement)
        assert sets.all == {"logger", "firewall"}
        by_theta = min(sets.all, key=lambda name: THETA_S[name])
        plan = select(fig1_placement, gbps(1.8))
        assert plan.migrated_names[0] == by_theta == "logger"


class TestEquation2:
    """Eq. 2: sum_{i on C} theta_cur/theta_i^C + theta_cur/theta_b0^C < 1."""

    def test_lhs_hand_computed(self, fig1_placement):
        theta_cur = 1.8
        load = LoadModel(fig1_placement, gbps(theta_cur))
        b0 = fig1_placement.chain.get("logger")
        lhs = load.cpu_load_with(b0)
        hand = theta_cur / THETA_C["load_balancer"] + \
            theta_cur / THETA_C["logger"]
        assert lhs == pytest.approx(hand) == pytest.approx(0.9)
        assert lhs < 1  # the constraint holds, so PAM may migrate

    def test_violated_at_two_gbps(self, fig1_placement):
        # 2.0/4 + 2.0/4 = 1.0, and the paper's inequality is strict.
        load = LoadModel(fig1_placement, gbps(2.0))
        b0 = fig1_placement.chain.get("logger")
        assert not load.cpu_load_with(b0) < 1


class TestEquation3:
    """Eq. 3: sum_{i on S, i != b0} theta_cur/theta_i^S < 1."""

    def test_lhs_hand_computed(self, fig1_placement):
        theta_cur = 1.8
        load = LoadModel(fig1_placement, gbps(theta_cur))
        b0 = fig1_placement.chain.get("logger")
        lhs = load.nic_load_without(b0)
        hand = theta_cur / THETA_S["monitor"] + \
            theta_cur / THETA_S["firewall"]
        assert lhs == pytest.approx(hand) == pytest.approx(0.7425)
        assert lhs < 1  # alleviated: the algorithm terminates

    def test_algorithm_terminates_exactly_here(self, fig1_placement):
        plan = select(fig1_placement, gbps(1.8))
        assert len(plan.actions) == 1  # Eq. 3 held after one migration
        assert plan.alleviates


class TestStepThreeBookkeeping:
    """'If b0 in B_L, we remove it from B_L and add its downstream
    element into the set if [it] is also placed on SmartNIC.'"""

    def test_downstream_promotion(self, fig1_placement):
        from repro.core.border import refreshed_border_sets
        sets = border_sets(fig1_placement)
        assert "logger" in sets.left
        after = fig1_placement.moved("logger", C)
        refreshed = refreshed_border_sets(after, sets, "logger",
                                          was_left=True)
        # logger's downstream (monitor) is on the SmartNIC -> joins B_L.
        assert "monitor" in refreshed.left
        assert "logger" not in refreshed.left


class TestJointOverloadRemark:
    """'If both CPU and SmartNIC are overloaded ... the network operator
    must start another instance' — surfaced as ScaleOutRequired."""

    def test_joint_overload_escalates(self, fig1_placement):
        from repro.errors import ScaleOutRequired
        with pytest.raises(ScaleOutRequired) as excinfo:
            select(fig1_placement, gbps(8.0))
        assert excinfo.value.nic_utilisation > 1
        assert excinfo.value.cpu_utilisation > 1
