"""Migration mechanism: state sizes, cost timeline, live executor."""

import pytest

from repro.chain import catalog
from repro.core.pam import select as pam_select
from repro.devices.pcie import PCIeLink
from repro.errors import ConfigurationError, MigrationError
from repro.migration.cost import MigrationCost, MigrationCostModel
from repro.migration.executor import MigrationExecutor
from repro.migration.state import (STATELESS_BLOB_BYTES, StateModel)
from repro.sim.engine import Engine
from repro.sim.network import ChainNetwork
from repro.traffic.packet import Packet
from repro.units import gbps, usec


class TestStateModel:
    def test_stateless_nf_moves_config_blob_only(self):
        model = StateModel()
        logger = catalog.FIGURE1_SCENARIO["logger"]  # stateless
        assert model.transfer_bytes(logger, active_flows=10_000) == \
            STATELESS_BLOB_BYTES

    def test_stateful_nf_scales_with_flows(self):
        model = StateModel()
        firewall = catalog.get("firewall")
        no_flows = model.transfer_bytes(firewall, 0)
        many = model.transfer_bytes(firewall, 1000)
        assert many == no_flows + 1000 * model.flow_entry_bytes

    def test_negative_flows_rejected(self):
        with pytest.raises(ConfigurationError):
            StateModel().transfer_bytes(catalog.get("firewall"), -1)

    def test_entry_size_validated(self):
        with pytest.raises(ConfigurationError):
            StateModel(flow_entry_bytes=0)


class TestCostModel:
    def test_total_is_sum_of_phases(self):
        cost = MigrationCost(pause_s=1e-5, transfer_s=2e-5, resume_s=3e-5)
        assert cost.total_s == pytest.approx(6e-5)

    def test_estimate_decomposition(self):
        model = MigrationCostModel()
        link = PCIeLink()
        firewall = catalog.get("firewall")
        cost = model.estimate(firewall, link, active_flows=100,
                              buffered_packets=10)
        assert cost.pause_s == model.pause_overhead_s
        expected_bytes = model.state_model.transfer_bytes(firewall, 100)
        assert cost.transfer_s == pytest.approx(
            link.bulk_transfer_time(expected_bytes))
        assert cost.resume_s == pytest.approx(
            model.resume_overhead_s + 10 * model.per_buffered_packet_s)

    def test_more_state_costs_more(self):
        model = MigrationCostModel()
        link = PCIeLink()
        small = model.estimate(catalog.get("firewall"), link, 10)
        large = model.estimate(catalog.get("firewall"), link, 100_000)
        assert large.total_s > small.total_s

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MigrationCostModel(pause_overhead_s=-1.0)
        with pytest.raises(ConfigurationError):
            MigrationCostModel(per_buffered_packet_s=-1.0)


class LiveHarness:
    """A live figure-1 simulation ready to migrate mid-run."""

    def __init__(self, fig1_scenario):
        self.server = fig1_scenario.build_server()
        self.server.refresh_demand(gbps(1.8))
        self.engine = Engine()
        self.network = ChainNetwork(self.server, self.engine)
        self.executor = MigrationExecutor(self.server, self.network,
                                          self.engine)

    def inject_cbr(self, count, gap_s=2e-6, size=256):
        for i in range(count):
            self.network.inject(Packet(seq=i, size_bytes=size,
                                       arrival_s=i * gap_s))


class TestExecutor:
    def test_applies_pam_plan_live(self, fig1_scenario):
        h = LiveHarness(fig1_scenario)
        plan = pam_select(fig1_scenario.placement, gbps(1.8))
        h.inject_cbr(500)
        done = []
        h.engine.at(1e-4, lambda: h.executor.apply(plan, gbps(1.8),
                                                   on_done=lambda: done.append(1)),
                    control=True)
        h.engine.run()
        assert done == [1]
        assert h.server.placement.device_of("logger").value == "cpu"
        assert len(h.executor.records) == 1

    def test_no_packet_loss_during_migration(self, fig1_scenario):
        h = LiveHarness(fig1_scenario)
        plan = pam_select(fig1_scenario.placement, gbps(1.8))
        h.inject_cbr(500)
        h.engine.at(1e-4, lambda: h.executor.apply(plan, gbps(1.8)),
                    control=True)
        h.engine.run()
        assert len(h.network.delivered) == 500
        assert len(h.network.dropped) == 0

    def test_migration_record_fields(self, fig1_scenario):
        h = LiveHarness(fig1_scenario)
        plan = pam_select(fig1_scenario.placement, gbps(1.8))
        h.inject_cbr(200)
        h.engine.at(1e-4, lambda: h.executor.apply(plan, gbps(1.8)),
                    control=True)
        h.engine.run()
        record = h.executor.records[0]
        assert record.nf_name == "logger"
        assert record.completed_s >= record.started_s + record.cost.total_s

    def test_packets_buffered_during_migration_are_delayed(self,
                                                           fig1_scenario):
        h = LiveHarness(fig1_scenario)
        plan = pam_select(fig1_scenario.placement, gbps(1.8))
        h.inject_cbr(500)
        h.engine.at(1e-4, lambda: h.executor.apply(plan, gbps(1.8)),
                    control=True)
        h.engine.run()
        latencies = [p.latency_s for p in h.network.delivered]
        # The transient spike from buffering must be visible: the worst
        # packet waited at least the state-transfer time longer than the
        # best one.
        assert max(latencies) > min(latencies) + \
            h.executor.records[0].cost.transfer_s * 0.5

    def test_noop_plan_completes_immediately(self, fig1_scenario):
        from repro.core.plan import MigrationPlan
        h = LiveHarness(fig1_scenario)
        done = []
        plan = MigrationPlan.empty(fig1_scenario.placement, "noop")
        h.executor.apply(plan, gbps(1.0), on_done=lambda: done.append(1))
        assert done == [1]
        assert not h.executor.busy

    def test_concurrent_apply_rejected(self, fig1_scenario):
        h = LiveHarness(fig1_scenario)
        plan = pam_select(fig1_scenario.placement, gbps(1.8))
        h.inject_cbr(100)
        h.engine.at(1e-4, lambda: h.executor.apply(plan, gbps(1.8)),
                    control=True)

        failures = []

        def second_apply():
            try:
                h.executor.apply(plan, gbps(1.8))
            except MigrationError:
                failures.append(True)

        h.engine.at(1e-4 + 1e-6, second_apply, control=True)
        h.engine.run()
        assert failures == [True]

    def test_demand_refreshed_after_migration(self, fig1_scenario):
        h = LiveHarness(fig1_scenario)
        plan = pam_select(fig1_scenario.placement, gbps(1.8))
        h.inject_cbr(300)
        h.engine.at(1e-4, lambda: h.executor.apply(plan, gbps(1.8)),
                    control=True)
        h.engine.run()
        # Post-migration the NIC hosts monitor+firewall only:
        # 1.8 * (1/3.2 + 1/10) = 0.7425.
        assert h.server.nic.demand == pytest.approx(0.7425)
        assert h.server.cpu.demand == pytest.approx(0.9)
