"""Experiment driver and the policy comparison harness."""

import pytest

from repro.errors import ConfigurationError
from repro.harness.compare import (compare_policies, default_policies,
                                   latency_gap)
from repro.harness.experiment import (ExperimentConfig, run_experiment,
                                      steady_state)
from repro.harness.scenarios import figure1
from repro.units import gbps


class TestExperiment:
    def test_steady_state_result(self, fig1_scenario):
        result = steady_state(fig1_scenario, gbps(1.0), duration_s=0.005)
        assert result.delivered > 0
        assert result.dropped == 0

    def test_offered_defaults_to_scenario_throughput(self, fig1_scenario):
        config = ExperimentConfig(scenario=fig1_scenario, duration_s=0.005)
        generator = config.build_generator()
        assert generator.mean_rate_bps() == fig1_scenario.throughput_bps

    def test_custom_generator_overrides(self, fig1_scenario):
        from repro.traffic.generators import PoissonArrivals
        from repro.traffic.packet import FixedSize
        generator = PoissonArrivals(gbps(1.0), FixedSize(64), 0.004)
        config = ExperimentConfig(scenario=fig1_scenario,
                                  generator=generator)
        assert config.build_generator() is generator

    def test_invalid_offered_rejected(self, fig1_scenario):
        config = ExperimentConfig(scenario=fig1_scenario, offered_bps=0.0)
        with pytest.raises(ConfigurationError):
            config.build_generator()


class TestComparePolicies:
    @pytest.fixture(scope="class")
    def outcomes(self):
        return compare_policies(figure1(), duration_s=0.008)

    def test_three_default_arms(self, outcomes):
        assert set(outcomes) == {"noop", "naive", "pam"}

    def test_pam_latency_below_naive(self, outcomes):
        assert outcomes["pam"].mean_latency_s < \
            outcomes["naive"].mean_latency_s

    def test_pam_latency_equals_before(self, outcomes):
        # "almost unchanged compared to the latency before migration"
        assert outcomes["pam"].mean_latency_s == pytest.approx(
            outcomes["noop"].mean_latency_s, rel=0.02)

    def test_gap_in_paper_band(self, outcomes):
        gap = latency_gap(outcomes)  # pam vs naive
        assert -0.25 < gap < -0.12   # paper: -18%

    def test_crossing_counts(self, outcomes):
        assert outcomes["noop"].pcie_crossings == 3
        assert outcomes["pam"].pcie_crossings == 3
        assert outcomes["naive"].pcie_crossings == 5

    def test_migration_restores_throughput(self, outcomes):
        assert outcomes["pam"].goodput_bps > outcomes["noop"].goodput_bps
        assert outcomes["naive"].goodput_bps > outcomes["noop"].goodput_bps

    def test_default_policies_names(self):
        assert [p.name for p in default_policies()] == \
            ["noop", "naive", "pam"]
