#!/usr/bin/env python3
"""Ablation: how much of PAM's win depends on the PCIe crossing cost?

The paper's S4 lists "analyze PCIe transmissions in detail" as future
work.  This example sweeps the per-crossing latency from 2 us (an
optimistic integrated interconnect) to 50 us (a congested gen2 link)
and reports the naive-vs-PAM latency gap at each point: the gap is the
two extra crossings the naive policy pays, so PAM's advantage grows
linearly with the crossing cost and vanishes as it approaches zero.

Run:  python examples/pcie_sensitivity.py
"""

from repro.harness.scenarios import figure1
from repro.harness.sweep import pcie_latency_sweep
from repro.harness.tables import render_pcie_sweep
from repro.units import usec


def main() -> None:
    crossings = [usec(v) for v in (2, 5, 10, 14, 20, 30, 50)]
    points = pcie_latency_sweep(
        lambda profile: figure1(server_profile=profile),
        crossing_latencies_s=crossings)
    print(render_pcie_sweep(points))
    print("\nReading: 'pam saves' is (naive - pam) / naive.  The default")
    print("hardware model uses 14 us per crossing, where PAM saves ~18%")
    print("(the paper's headline); at 2 us the two policies nearly tie.")


if __name__ == "__main__":
    main()
