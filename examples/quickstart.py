#!/usr/bin/env python3
"""Quickstart: reproduce the paper's headline result in ~30 lines.

Builds the Figure 1 service chain (Load Balancer on the CPU; Logger,
Monitor, Firewall offloaded to the SmartNIC), overloads the SmartNIC at
1.8 Gbps, and compares three reactions:

* do nothing (the "before migration" latency),
* the naive/UNO policy: migrate the bottleneck Monitor (adds 2 PCIe
  crossings),
* PAM: push the border Logger aside (adds none).

Run:  python examples/quickstart.py
"""

from repro import core, harness
from repro.baselines.naive import select as naive_select
from repro.units import as_usec

def main() -> None:
    scenario = harness.figure1()
    print(f"Chain: {' -> '.join(scenario.chain.names())}")
    print(f"Placement: {scenario.placement!r}")
    print(f"PCIe crossings before migration: "
          f"{scenario.placement.pcie_crossings()}\n")

    # What would each policy migrate at the canonical overload load?
    pam_plan = core.select(scenario.placement, scenario.throughput_bps)
    naive_plan = naive_select(scenario.placement, scenario.throughput_bps)
    print(f"PAM migrates:   {pam_plan.migrated_names} "
          f"(crossing delta {pam_plan.total_crossing_delta:+d})")
    print(f"naive migrates: {naive_plan.migrated_names} "
          f"(crossing delta {naive_plan.total_crossing_delta:+d})\n")

    # Simulate the resulting chains under identical workloads.
    outcomes = harness.compare_policies(scenario)
    print(harness.render_figure1(outcomes))

    gap = harness.latency_gap(outcomes)
    print(f"\nPAM mean latency: "
          f"{as_usec(outcomes['pam'].mean_latency_s):.1f} us")
    print(f"naive mean latency: "
          f"{as_usec(outcomes['naive'].mean_latency_s):.1f} us")
    print(f"PAM is {-gap:.1%} lower than the naive migration "
          f"(paper reports 18%).")


if __name__ == "__main__":
    main()
