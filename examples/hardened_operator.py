#!/usr/bin/env python3
"""A day in the life of the hardened operator loop.

Traffic on the canonical chain cycles: quiet, spike, quiet again.  The
plain PAM controller would push the Logger aside at the spike and leave
it on the CPU forever; the hardened loop also *pulls it back* when the
NIC has headroom again, while cooldown and flap damping keep the churn
bounded.  The example prints the NIC utilisation timeline with each
migration marked.

Run:  python examples/hardened_operator.py
"""

from repro.core.operator import HardenedController, HardeningConfig
from repro.core.reverse import PullbackConfig
from repro.harness.scenarios import figure1
from repro.sim.runner import SimulationRunner
from repro.telemetry.ascii_plots import utilisation_timeline
from repro.telemetry.monitor import SERIES_NIC, LoadMonitor
from repro.traffic.packet import FixedSize
from repro.traffic.patterns import ProfiledArrivals, spike
from repro.units import as_msec, as_usec, gbps


def main() -> None:
    profile = spike(base_bps=gbps(0.9), peak_bps=gbps(1.8),
                    start_s=0.01, duration_s=0.02)
    generator = ProfiledArrivals(profile, FixedSize(256),
                                 duration_s=0.06, seed=11, jitter=False)

    controller = HardenedController(config=HardeningConfig(
        cooldown_s=0.004, flap_damp_s=0.0, migration_budget=8,
        pullback=PullbackConfig(trigger_below=0.6, nic_target=0.9)))
    monitor = LoadMonitor(inner=controller)

    server = figure1().build_server()
    result = SimulationRunner(server, generator, monitor,
                              monitor_period_s=0.002).run()

    samples = monitor.recorder.series(SERIES_NIC)
    print(utilisation_timeline([s.time_s for s in samples],
                               [s.value for s in samples],
                               threshold=1.0, label="NIC"))
    print()
    for record in controller.migrations:
        direction = "pushed to CPU" if record.nf_name in \
            result.migrated_nfs else "moved"
        print(f"t={as_msec(record.completed_s):5.1f} ms  {record.nf_name} "
              f"migrated ({as_usec(record.cost.total_s):.0f} us move)")
    print(f"\nsuppressed plans (damping/budget): "
          f"{controller.suppressed_plans}")
    print(f"final placement: {result.final_placement!r}")
    print(f"delivered {result.delivered}/{result.injected}, "
          f"dropped {result.dropped}")
    final_logger = result.final_placement.device_of("logger").value
    print(f"\nThe logger was pushed aside during the spike and is back "
          f"on the {final_logger} now that traffic is quiet.")


if __name__ == "__main__":
    main()
