#!/usr/bin/env python3
"""Closed-loop scenario: a traffic spike overloads the SmartNIC and the
PAM controller reacts live.

This is the operational story of the paper's S1: traffic fluctuates, the
operator periodically queries SmartNIC/CPU load, and when the NIC tips
past capacity PAM pushes a border vNF aside.  The example prints the
utilisation time series around the migration and the transient latency
cost of the (loss-free, OpenNF-style) move itself.

Run:  python examples/traffic_spike.py
"""

from repro.core.planner import MigrationController, PAMPolicy
from repro.harness.scenarios import figure1
from repro.harness.tables import render_table
from repro.sim.runner import SimulationRunner
from repro.telemetry.monitor import SERIES_CPU, SERIES_NIC, LoadMonitor
from repro.traffic.packet import FixedSize
from repro.traffic.patterns import ProfiledArrivals, spike
from repro.units import as_msec, as_usec, gbps


def main() -> None:
    # 1.3 Gbps of steady traffic, spiking to 1.8 Gbps at t = 10 ms.
    profile = spike(base_bps=gbps(1.3), peak_bps=gbps(1.8),
                    start_s=0.010, duration_s=0.1)
    generator = ProfiledArrivals(profile, FixedSize(256),
                                 duration_s=0.04, seed=11, jitter=False)

    server = figure1().build_server()
    controller = MigrationController(PAMPolicy())
    monitor = LoadMonitor(inner=controller)
    runner = SimulationRunner(server, generator, monitor,
                              monitor_period_s=0.002)
    result = runner.run()

    print("Utilisation as the operator's monitor saw it:")
    rows = []
    nic = monitor.recorder.series(SERIES_NIC)
    cpu = monitor.recorder.series(SERIES_CPU)
    for nic_sample, cpu_sample in zip(nic, cpu):
        marker = ""
        for when in result.migration_times_s:
            if abs(nic_sample.time_s - when) < 0.002:
                marker = "<- migration completes"
        rows.append([f"{as_msec(nic_sample.time_s):.0f}",
                     f"{nic_sample.value:.2f}",
                     f"{cpu_sample.value:.2f}", marker])
    print(render_table(["t (ms)", "NIC util", "CPU util", ""], rows))

    print(f"\nMigrated: {result.migrated_nfs} at "
          f"{[f'{as_msec(t):.1f} ms' for t in result.migration_times_s]}")
    print(f"Final placement: {result.final_placement!r}")
    print(f"Packets: {result.injected} injected, {result.delivered} "
          f"delivered, {result.dropped} dropped (loss-free migration)")
    print(f"Mean latency across the episode: "
          f"{as_usec(result.latency.mean_s):.1f} us "
          f"(p99 {as_usec(result.latency.p99_s):.1f} us — the tail shows "
          "the buffering transient during the move)")


if __name__ == "__main__":
    main()
