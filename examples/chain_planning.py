#!/usr/bin/env python3
"""Capacity planning for a longer service chain.

Uses the extended NF catalog (gateway, VPN, IDS, NAT, ...) to build a
six-NF chain, then answers the questions an operator would ask before
deploying it:

* What throughput can each placement sustain (the capacity knee)?
* Where are the border vNFs — i.e. which NFs can PAM push aside
  without latency cost when the NIC overloads?
* At what load does PAM run out of CPU headroom and scale-out become
  necessary?

Run:  python examples/chain_planning.py
"""

from repro.baselines.scaleout import plan_scaleout
from repro.chain.nf import DeviceKind
from repro.core.border import border_sets
from repro.core.pam import PAMConfig, select
from repro.errors import ScaleOutRequired
from repro.harness.scenarios import long_chain
from repro.harness.tables import render_table
from repro.resources.model import LoadModel
from repro.units import as_gbps, gbps


def main() -> None:
    scenario = long_chain(6)
    placement = scenario.placement
    print(f"Chain: {' -> '.join(scenario.chain.names())}")
    print(f"Placement: {placement!r}")
    print(f"PCIe crossings: {placement.pcie_crossings()}\n")

    load = LoadModel(placement, gbps(1.0))
    print("Capacity knees (uniform chain throughput):")
    print(f"  SmartNIC segment: "
          f"{as_gbps(load.max_sustainable_throughput(DeviceKind.SMARTNIC)):.2f} Gbps")
    print(f"  CPU segment:      "
          f"{as_gbps(load.max_sustainable_throughput(DeviceKind.CPU)):.2f} Gbps")
    print(f"  whole chain:      {as_gbps(load.chain_capacity()):.2f} Gbps\n")

    sets = border_sets(placement)
    print(f"Border vNFs: left={sorted(sets.left)} right={sorted(sets.right)}\n")

    print("PAM's plan as offered load grows:")
    rows = []
    for load_gbps in (0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.5):
        throughput = gbps(load_gbps)
        nic_util = LoadModel(placement, throughput).nic_load().utilisation
        try:
            plan = select(placement, throughput, PAMConfig(strict=True))
            action = ", ".join(plan.migrated_names) if plan.actions \
                else "(no overload)" if plan.alleviates else "-"
            rows.append([f"{load_gbps:.1f}", f"{nic_util:.2f}", action,
                         f"{plan.total_crossing_delta:+d}"])
        except ScaleOutRequired:
            try:
                scale = plan_scaleout(placement, throughput)
                action = (f"scale out {scale.nf_name} "
                          f"x{scale.instances}")
            except ScaleOutRequired:
                action = "needs another server"
            rows.append([f"{load_gbps:.1f}", f"{nic_util:.2f}", action, ""])
    print(render_table(
        ["offered (Gbps)", "NIC util", "PAM action", "crossing delta"],
        rows))


if __name__ == "__main__":
    main()
