#!/usr/bin/env python3
"""Failure drill: crash an NF mid-run and watch the data plane recover.

Resilience is the part of a control plane no figure shows.  This drill
runs the canonical chain at a healthy load, crashes the Monitor for
half a millisecond (process respawn), injects 5% random ingress loss
(a flaky optic), and reports what the chain delivered, lost, and how
the latency distribution looks around the fault.

Run:  python examples/failure_drill.py
"""

from repro.harness.scenarios import figure1
from repro.harness.tables import render_table
from repro.sim.engine import Engine
from repro.sim.faults import FaultInjector
from repro.sim.network import ChainNetwork
from repro.telemetry.histogram import LatencyHistogram
from repro.traffic.generators import ConstantBitRate
from repro.traffic.packet import FixedSize
from repro.units import as_usec, gbps


def main() -> None:
    scenario = figure1()
    server = scenario.build_server()
    server.refresh_demand(gbps(1.2))
    engine = Engine()
    network = ChainNetwork(server, engine)

    generator = ConstantBitRate(gbps(1.2), FixedSize(256),
                                duration_s=0.01)
    for packet in generator.packets():
        network.inject(packet)

    injector = FaultInjector(network, engine, seed=13)
    crash = injector.crash_nf("monitor", at_s=0.004, downtime_s=0.0005)
    loss = injector.random_loss(0.05)

    engine.run()
    network.check_conservation()

    print("Fault drill on the Figure-1 chain at 1.2 Gbps:")
    print(render_table(
        ["event", "detail", "packets lost"],
        [["nf crash", "monitor down 4.0-4.5 ms",
          str(crash.packets_lost)],
         ["ingress loss", "5% Bernoulli", str(loss.packets_lost)]]))
    print(f"\ninjected {network.injected}, delivered "
          f"{len(network.delivered)}, dropped {len(network.dropped)} "
          f"(= crash {crash.packets_lost} + wire {loss.packets_lost})")

    histogram = LatencyHistogram(buckets_per_decade=6)
    histogram.extend(p.latency_s for p in network.delivered)
    print("\nLatency distribution of the survivors:")
    print(histogram.render(width=40))
    print(f"\np99 via histogram: "
          f"{as_usec(histogram.quantile(0.99)):.0f} us "
          f"(steady chain sits near 122 us — the survivors were "
          "unaffected; faults dropped packets, they did not delay them)")


if __name__ == "__main__":
    main()
