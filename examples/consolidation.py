#!/usr/bin/env python3
"""Two service chains sharing one SmartNIC — PAM across chains.

Real NFV servers consolidate several chains onto the same hardware
(CoCo, which the paper's resource model builds on).  When chain A's
traffic overloads the shared SmartNIC, chain B suffers too — its NFs
slow down on the saturated device even though its own load never
changed.  Multi-chain PAM widens the border pool to every co-located
chain and picks the globally cheapest push-aside.

Run:  python examples/consolidation.py
"""

from repro.chain import catalog
from repro.chain.builder import ChainBuilder
from repro.chain.nf import DeviceKind
from repro.harness.tables import render_table
from repro.multichain import (ChainLoad, MultiChainLoadModel,
                              MultiChainRunner, select_multichain)
from repro.traffic.generators import ConstantBitRate
from repro.traffic.packet import FixedSize
from repro.units import as_usec, gbps


def build_chains():
    chain_a = (ChainBuilder("tenant-a", profiles=catalog.FIGURE1_SCENARIO)
               .cpu("load_balancer", rename="a/lb")
               .nic("logger", rename="a/logger")
               .nic("monitor", rename="a/monitor")
               .build(egress=DeviceKind.CPU))[1]
    chain_b = (ChainBuilder("tenant-b", profiles=catalog.FIGURE1_SCENARIO)
               .nic("firewall", rename="b/firewall")
               .nic("monitor", rename="b/monitor")
               .cpu("load_balancer", rename="b/lb")
               .build())[1]
    return chain_a, chain_b


def measure(chain_a, chain_b, rate_a, rate_b):
    runner = MultiChainRunner([
        (chain_a, ConstantBitRate(rate_a, FixedSize(256), 0.006)),
        (chain_b, ConstantBitRate(rate_b, FixedSize(256), 0.006, seed=2)),
    ])
    return {r.chain_name: r for r in runner.run()}


def main() -> None:
    chain_a, chain_b = build_chains()
    rate_a, rate_b = gbps(1.1), gbps(1.0)

    model = MultiChainLoadModel([ChainLoad(chain_a, rate_a),
                                 ChainLoad(chain_b, rate_b)])
    print(f"Shared SmartNIC utilisation: {model.nic_utilisation():.2f} "
          f"(chain A pushed it past 1.0)")
    print(f"Shared CPU utilisation:      {model.cpu_utilisation():.2f}\n")

    plan = select_multichain([ChainLoad(chain_a, rate_a),
                              ChainLoad(chain_b, rate_b)])
    moves = ", ".join(
        f"{a.nf_name} (chain {a.chain_index}, dPCIe {a.crossing_delta:+d})"
        for a in plan.actions)
    print(f"Multi-chain PAM plan: {moves}\n")

    before = measure(chain_a, chain_b, rate_a, rate_b)
    after = measure(plan.after[0].placement, plan.after[1].placement,
                    rate_a, rate_b)

    rows = []
    for phase, results in (("before", before), ("after", after)):
        for name in sorted(results):
            r = results[name]
            rows.append([phase, name,
                         f"{as_usec(r.latency.mean_s):.1f}",
                         f"{as_usec(r.latency.p99_s):.1f}"])
    print(render_table(["phase", "chain", "mean (us)", "p99 (us)"], rows))
    print("\nNote how tenant B's tail recovers although only tenant A's")
    print("chain was touched: the shared-device interference is gone.")


if __name__ == "__main__":
    main()
