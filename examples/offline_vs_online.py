#!/usr/bin/env python3
"""Offline optimal placement vs online PAM — the disruption trade-off.

An exhaustive search over all 2^n placements of the Figure-1 chain
gives the true latency optimum at the overload load.  Reaching it from
the operator's placement would take three migrations — including
relocating the load balancer the operator deliberately put on the CPU.
PAM instead spends one border move and accepts a bounded optimality
gap.  This example draws all three placements and quantifies the trade.

Run:  python examples/offline_vs_online.py
"""

from repro.analysis.latency_model import predict_latency
from repro.analysis.placement_opt import optimality_gap, optimise_placement
from repro.chain.diagram import render_placement
from repro.chain.nf import DeviceKind
from repro.core.pam import select as pam_select
from repro.harness.scenarios import figure1
from repro.units import as_usec, gbps


def moves_between(a, b):
    """NFs on different devices between two placements."""
    da, db = a.as_dict(), b.as_dict()
    return [name for name in da if da[name] != db[name]]


def main() -> None:
    scenario = figure1()
    load = gbps(1.8)

    print("Operator's placement (overloaded at 1.8 Gbps):")
    print(render_placement(scenario.placement))

    plan = pam_select(scenario.placement, load)
    print("\nAfter PAM's single border move:")
    print(render_placement(plan.after))

    optimum = optimise_placement(scenario.chain, load,
                                 egress=DeviceKind.CPU)
    print("\nThe offline optimum (exhaustive over all "
          f"{optimum.total_count} placements, "
          f"{optimum.feasible_count} feasible):")
    print(render_placement(optimum.placement))

    pam_latency = predict_latency(plan.after, 256).total_s
    opt_latency = optimum.predicted_latency_s
    print(f"\nlatency: PAM {as_usec(pam_latency):.1f} us vs optimum "
          f"{as_usec(opt_latency):.1f} us "
          f"(gap {optimality_gap(plan.after, load):+.1%})")
    print(f"moves:   PAM {len(plan.migrated_names)} "
          f"({', '.join(plan.migrated_names)}) vs optimum "
          f"{len(moves_between(scenario.placement, optimum.placement))} "
          f"({', '.join(moves_between(scenario.placement, optimum.placement))})")
    print("\nThe optimum relocates the operator-placed load balancer and")
    print("moves three NFs mid-episode; PAM trades ~29% latency headroom")
    print("for one non-disruptive move that never second-guesses the")
    print("operator's own placements.")


if __name__ == "__main__":
    main()
