"""Queueing-theoretic cross-validation of the simulator.

The NF stations are deterministic-service single-server queues, so
under Poisson arrivals each lightly-shared station is an **M/D/1**
system with a closed-form mean wait (Pollaczek–Khinchine):

``W_q = rho * S / (2 * (1 - rho))``

where ``S`` is the (deterministic) service time and ``rho = lambda*S``
the utilisation.  Comparing the simulator's measured queueing delay
against this formula is an *independent* correctness check on the whole
queueing path — arrival scheduling, FIFO discipline, busy/idle
bookkeeping — that does not share any code with the simulator itself.

These formulas apply per station at its own utilisation; the chain-level
helpers combine them for a placement under a uniform Poisson load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..chain.nf import DeviceKind
from ..chain.placement import Placement
from ..errors import ConfigurationError
from ..units import bits


@dataclass(frozen=True)
class StationPrediction:
    """M/D/1 quantities for one NF at one load."""

    nf_name: str
    service_time_s: float
    utilisation: float
    mean_wait_s: float

    @property
    def mean_sojourn_s(self) -> float:
        """Wait plus service (excludes the NF's pipeline latency)."""
        return self.mean_wait_s + self.service_time_s


def md1_mean_wait(service_time_s: float, utilisation: float) -> float:
    """Pollaczek–Khinchine mean queueing delay for M/D/1."""
    if service_time_s <= 0:
        raise ConfigurationError("service time must be positive")
    if not (0.0 <= utilisation < 1.0):
        raise ConfigurationError(
            f"M/D/1 needs utilisation in [0, 1), got {utilisation}")
    return utilisation * service_time_s / (2.0 * (1.0 - utilisation))


def predict_station(placement: Placement, nf_name: str,
                    rate_bps: float, packet_bytes: int
                    ) -> StationPrediction:
    """M/D/1 prediction for one NF under uniform Poisson load."""
    nf = placement.chain.get(nf_name)
    device = placement.device_of(nf_name)
    service = bits(packet_bytes) / nf.capacity_on(device)
    packet_rate = rate_bps / bits(packet_bytes)
    rho = packet_rate * service
    return StationPrediction(
        nf_name=nf_name,
        service_time_s=service,
        utilisation=rho,
        mean_wait_s=md1_mean_wait(service, rho))


def predict_chain_queueing(placement: Placement, rate_bps: float,
                           packet_bytes: int) -> float:
    """Summed M/D/1 mean waits over every NF of the chain.

    An approximation: downstream arrival processes are departures of
    upstream deterministic servers, not Poisson (they are *smoother*,
    so the true queueing is at or below this sum — the simulator must
    land between the bottleneck-only wait and this upper bound).
    """
    return sum(predict_station(placement, nf.name, rate_bps,
                               packet_bytes).mean_wait_s
               for nf in placement.chain)


def bottleneck_wait(placement: Placement, rate_bps: float,
                    packet_bytes: int) -> float:
    """M/D/1 wait at the chain's most utilised NF only (lower bound).

    The first queue sees the raw Poisson process, so at least the
    bottleneck's P-K wait must appear in the measured latency.
    """
    predictions = [predict_station(placement, nf.name, rate_bps,
                                   packet_bytes)
                   for nf in placement.chain]
    return max(p.mean_wait_s for p in predictions)
