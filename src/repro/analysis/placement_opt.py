"""Exhaustive placement optimisation — the offline reference point.

PAM is an *online* heuristic: it adjusts the current placement with the
fewest border moves.  For chains of practical length (the paper's is 4;
real chains rarely exceed ~10 NFs) the full placement space is only
``2^n``, so we can compute the true optimum by enumeration and use it
two ways:

* as an initial-placement planner (which NFs to offload at deploy
  time), and
* as the yardstick for ablation A9: how close does PAM's incremental
  push-aside land to the offline optimum it never recomputes?

The objective is the closed-form light-load latency
(:func:`repro.analysis.latency_model.predict_latency`) subject to both
devices staying under capacity at the target throughput; ties break
toward fewer PCIe crossings, then fewer CPU-resident NFs (prefer the
fast path).
"""

from __future__ import annotations

import itertools
import warnings
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..chain.chain import ServiceChain
from ..chain.nf import DeviceKind
from ..chain.placement import Placement
from ..devices.server import ServerProfile
from ..errors import ConfigurationError, ScaleOutRequired
from ..resources.model import LoadModel
from ..units import as_gbps
from .latency_model import predict_latency

#: Chain length whose full 2^n space the cap still covers exhaustively.
MAX_CHAIN_LENGTH = 16

#: Enumeration guard: 2^16 placements is instant; beyond that the walk
#: is truncated with a :class:`PlacementSearchTruncated` warning rather
#: than hanging a supervised campaign worker into its run deadline.
MAX_PLACEMENT_CANDIDATES = 1 << MAX_CHAIN_LENGTH


class PlacementSearchTruncated(RuntimeWarning):
    """The exhaustive placement walk hit the candidate cap.

    Carries the structured facts (chain, cap, full space size) so a
    caller — or a campaign journal — can report exactly how much of the
    space went unexplored instead of silently claiming optimality.
    """

    def __init__(self, chain_name: str, cap: int, space: int) -> None:
        self.chain_name = chain_name
        self.cap = cap
        self.space = space
        super().__init__(
            f"placement search for chain {chain_name!r} truncated at "
            f"{cap} of {space} candidates; the result is the best of "
            f"the enumerated prefix, not a proven optimum")


@dataclass(frozen=True)
class OptimisationResult:
    """The optimum and how the search space looked."""

    placement: Placement
    predicted_latency_s: float
    feasible_count: int
    total_count: int
    #: True when the candidate cap cut the walk short — the placement
    #: is the best of the enumerated prefix, not a proven optimum.
    truncated: bool = False

    @property
    def feasible_fraction(self) -> float:
        """Share of enumerated placements that respected both limits."""
        return self.feasible_count / self.total_count


def candidate_space(chain: ServiceChain) -> int:
    """Size of the full capability-respecting placement space."""
    space = 1
    for nf in chain:
        space *= sum(1 for device in (DeviceKind.SMARTNIC, DeviceKind.CPU)
                     if nf.can_run_on(device))
    return space


def enumerate_placements(chain: ServiceChain,
                         ingress: DeviceKind = DeviceKind.SMARTNIC,
                         egress: DeviceKind = DeviceKind.SMARTNIC,
                         max_candidates: int = MAX_PLACEMENT_CANDIDATES):
    """Yield device assignments the NFs' capabilities allow.

    At most ``max_candidates`` placements are yielded (deterministic
    prefix of the lexicographic walk); exceeding the cap emits a
    :class:`PlacementSearchTruncated` warning instead of walking an
    unbounded space.
    """
    if max_candidates < 1:
        raise ConfigurationError("candidate cap must be >= 1")
    space = candidate_space(chain)
    if space > max_candidates:
        warnings.warn(PlacementSearchTruncated(chain.name,
                                               max_candidates, space),
                      stacklevel=2)
    options: List[Tuple[DeviceKind, ...]] = []
    for nf in chain:
        devices = tuple(device for device in
                        (DeviceKind.SMARTNIC, DeviceKind.CPU)
                        if nf.can_run_on(device))
        options.append(devices)
    for yielded, combo in enumerate(itertools.product(*options)):
        if yielded >= max_candidates:
            return
        assignment = {nf.name: device
                      for nf, device in zip(chain, combo)}
        yield Placement(chain, assignment, ingress=ingress, egress=egress)


def optimise_placement(chain: ServiceChain, throughput_bps: float,
                       packet_bytes: int = 256,
                       server_profile: Optional[ServerProfile] = None,
                       ingress: DeviceKind = DeviceKind.SMARTNIC,
                       egress: DeviceKind = DeviceKind.SMARTNIC,
                       max_candidates: int = MAX_PLACEMENT_CANDIDATES
                       ) -> OptimisationResult:
    """The latency-optimal feasible placement at ``throughput_bps``.

    Raises :class:`ScaleOutRequired` when no placement keeps both
    devices under capacity — the chain simply does not fit the server
    at that load.  A search past ``max_candidates`` is truncated (with
    a :class:`PlacementSearchTruncated` warning and
    ``OptimisationResult.truncated`` set) rather than walked unbounded.
    """
    best: Optional[Placement] = None
    best_key: Optional[Tuple[float, int, int]] = None
    best_latency = 0.0
    feasible = 0
    total = 0
    truncated = candidate_space(chain) > max_candidates
    for placement in enumerate_placements(chain, ingress, egress,
                                          max_candidates=max_candidates):
        total += 1
        load = LoadModel(placement, throughput_bps)
        if load.nic_load().utilisation >= 1.0:
            continue
        if load.cpu_load().utilisation >= 1.0:
            continue
        feasible += 1
        latency = predict_latency(placement, packet_bytes,
                                  server_profile).total_s
        key = (latency, placement.pcie_crossings(),
               len(placement.cpu_nfs()))
        if best_key is None or key < best_key:
            best, best_key, best_latency = placement, key, latency
    if best is None:
        raise ScaleOutRequired(
            f"no feasible placement for chain {chain.name!r} at "
            f"{as_gbps(throughput_bps):.2f} Gbps")
    return OptimisationResult(placement=best,
                              predicted_latency_s=best_latency,
                              feasible_count=feasible,
                              total_count=total,
                              truncated=truncated)


def optimality_gap(candidate: Placement, throughput_bps: float,
                   packet_bytes: int = 256,
                   server_profile: Optional[ServerProfile] = None
                   ) -> float:
    """Relative latency excess of ``candidate`` over the true optimum.

    0.0 means the candidate *is* latency-optimal.  Used by ablation A9
    to score PAM's incremental placements.
    """
    optimum = optimise_placement(
        candidate.chain, throughput_bps, packet_bytes, server_profile,
        ingress=candidate.ingress, egress=candidate.egress)
    candidate_latency = predict_latency(candidate, packet_bytes,
                                        server_profile).total_s
    return (candidate_latency - optimum.predicted_latency_s) / \
        optimum.predicted_latency_s
