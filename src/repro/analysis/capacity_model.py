"""Closed-form capacity and operating-regime analysis.

Answers "what will this placement do at offered load X?" without a
simulation: the sustainable knee of each device, the chain knee, and
the classification the planner benches use (fine / NIC hot / CPU hot /
both hot).  All of it is the paper's linear model evaluated directly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..chain.nf import DeviceKind
from ..chain.placement import Placement
from ..errors import ConfigurationError
from ..resources.model import LoadModel


class Regime(enum.Enum):
    """Operating regime of a placement at a given offered load."""

    NOMINAL = "nominal"
    NIC_OVERLOADED = "nic_overloaded"
    CPU_OVERLOADED = "cpu_overloaded"
    BOTH_OVERLOADED = "both_overloaded"


@dataclass(frozen=True)
class CapacityReport:
    """Knees and regime boundaries of one placement."""

    nic_knee_bps: float
    cpu_knee_bps: float

    @property
    def chain_knee_bps(self) -> float:
        """The load at which the first device saturates."""
        return min(self.nic_knee_bps, self.cpu_knee_bps)

    @property
    def binding_device(self) -> Optional[DeviceKind]:
        """Which device saturates first (None if neither ever does)."""
        if self.chain_knee_bps == float("inf"):
            return None
        if self.nic_knee_bps <= self.cpu_knee_bps:
            return DeviceKind.SMARTNIC
        return DeviceKind.CPU

    def regime_at(self, offered_bps: float) -> Regime:
        """Classify the operating regime at ``offered_bps``."""
        if offered_bps < 0:
            raise ConfigurationError("offered load must be >= 0")
        nic_hot = offered_bps > self.nic_knee_bps
        cpu_hot = offered_bps > self.cpu_knee_bps
        if nic_hot and cpu_hot:
            return Regime.BOTH_OVERLOADED
        if nic_hot:
            return Regime.NIC_OVERLOADED
        if cpu_hot:
            return Regime.CPU_OVERLOADED
        return Regime.NOMINAL


def capacity_report(placement: Placement) -> CapacityReport:
    """Compute both device knees for ``placement``."""
    load = LoadModel(placement, 0.0)
    return CapacityReport(
        nic_knee_bps=load.max_sustainable_throughput(DeviceKind.SMARTNIC),
        cpu_knee_bps=load.max_sustainable_throughput(DeviceKind.CPU))


def headroom_gained(placement: Placement, nf_name: str) -> float:
    """How much the NIC knee rises if ``nf_name`` leaves the SmartNIC.

    PAM's Step 2 in capacity terms: migrating the border NF with the
    smallest theta^S maximises this gain per migration.  Returns the
    knee delta in bits/second (0 if the NF is not on the NIC).
    """
    if placement.device_of(nf_name) is not DeviceKind.SMARTNIC:
        return 0.0
    before = capacity_report(placement).nic_knee_bps
    after = capacity_report(
        placement.moved(nf_name, DeviceKind.CPU)).nic_knee_bps
    return after - before


def rank_migration_candidates(placement: Placement
                              ) -> List[Tuple[str, float]]:
    """SmartNIC NFs ranked by NIC-knee gain from migrating them.

    Confirms analytically that min-theta^S (the paper's rule) and
    max-knee-gain produce the same ranking under the linear model.
    """
    candidates = [nf for nf in placement.nic_nfs() if nf.cpu_capable]
    ranked = [(nf.name, headroom_gained(placement, nf.name))
              for nf in candidates]
    ranked.sort(key=lambda pair: -pair[1])
    return ranked
