"""One-call placement explanation: the operator's "why" report.

Pulls together the analyses scattered across the library into a single
human-readable document for a (placement, offered-load) pair:

* the two-lane diagram with crossings,
* per-device utilisation and headroom,
* the capacity knees and current operating regime,
* the border sets and what PAM would do right now,
* the closed-form latency breakdown.

Used by the CLI (``python -m repro explain``) and handy in notebooks.
"""

from __future__ import annotations

from typing import List, Optional

from ..chain.diagram import render_placement
from ..chain.nf import DeviceKind
from ..chain.placement import Placement
from ..core.border import border_sets
from ..core.pam import PAMConfig
from ..core.pam import select as pam_select
from ..devices.server import ServerProfile
from ..errors import ScaleOutRequired
from ..resources.model import LoadModel
from ..units import as_gbps, as_usec
from .capacity_model import capacity_report
from .latency_model import predict_latency


def explain_placement(placement: Placement, offered_bps: float,
                      packet_bytes: int = 256,
                      server_profile: Optional[ServerProfile] = None
                      ) -> str:
    """A multi-section text report for one placement at one load."""
    lines: List[str] = []
    lines.append(render_placement(placement))
    lines.append("")

    load = LoadModel(placement, offered_bps)
    nic = load.nic_load()
    cpu = load.cpu_load()
    report = capacity_report(placement)
    regime = report.regime_at(offered_bps)
    lines.append(f"offered load: {as_gbps(offered_bps):.2f} Gbps "
                 f"({regime.value})")
    lines.append(f"  SmartNIC: {nic.utilisation:.2f} utilised "
                 f"(knee {as_gbps(report.nic_knee_bps):.2f} Gbps)")
    lines.append(f"  CPU:      {cpu.utilisation:.2f} utilised "
                 f"(knee {as_gbps(report.cpu_knee_bps):.2f} Gbps)")
    lines.append("")

    sets = border_sets(placement)
    lines.append(f"border vNFs: left={sorted(sets.left) or '-'} "
                 f"right={sorted(sets.right) or '-'}")
    if nic.overloaded:
        try:
            plan = pam_select(placement, offered_bps,
                              PAMConfig(strict=True))
            moves = ", ".join(plan.migrated_names)
            lines.append(f"PAM now: push {moves} aside "
                         f"(crossing delta {plan.total_crossing_delta:+d})")
        except ScaleOutRequired:
            lines.append("PAM now: no border fits the CPU — scale out "
                         "per OpenNF")
    else:
        lines.append("PAM now: nothing to do (SmartNIC has headroom)")
    lines.append("")

    prediction = predict_latency(placement, packet_bytes, server_profile)
    lines.append(f"closed-form latency at {packet_bytes} B "
                 f"(light load): {as_usec(prediction.total_s):.1f} us")
    lines.append(f"  wire {as_usec(prediction.wire_s):.1f} us | "
                 f"processing {as_usec(prediction.processing_s):.1f} us | "
                 f"pcie {as_usec(prediction.pcie_s):.1f} us "
                 f"({prediction.crossings} crossings)")
    return "\n".join(lines)
