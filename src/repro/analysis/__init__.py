"""Closed-form analysis: latency prediction and capacity regimes.

The :mod:`repro.analysis.lint` subpackage adds source-level analysis —
the simulation-safety linter behind ``python -m repro lint``.  It is
not imported eagerly here so that ``import repro`` stays free of any
AST-tooling cost; use ``from repro.analysis import lint``.
"""

from .explain import explain_placement
from .capacity_model import (CapacityReport, Regime, capacity_report,
                             headroom_gained, rank_migration_candidates)
from .placement_opt import (MAX_CHAIN_LENGTH, MAX_PLACEMENT_CANDIDATES,
                            OptimisationResult,
                            PlacementSearchTruncated,
                            enumerate_placements, optimality_gap,
                            optimise_placement)
from .latency_model import (LatencyPrediction, predict_crossing_penalty,
                            predict_latency, predict_policy_gap)

__all__ = [
    "CapacityReport",
    "LatencyPrediction",
    "MAX_CHAIN_LENGTH",
    "MAX_PLACEMENT_CANDIDATES",
    "OptimisationResult",
    "PlacementSearchTruncated",
    "Regime",
    "capacity_report",
    "enumerate_placements",
    "explain_placement",
    "optimality_gap",
    "optimise_placement",
    "headroom_gained",
    "predict_crossing_penalty",
    "predict_latency",
    "predict_policy_gap",
    "rank_migration_candidates",
]
