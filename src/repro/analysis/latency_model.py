"""Closed-form latency prediction for a placed chain.

Under CBR load below every device's knee there is no queueing, so the
chain's end-to-end latency is a deterministic sum the simulator must
match exactly:

``latency = wire terms + sum_i (bits/theta_i + base_i) + crossings * pcie(size)``

:func:`predict_latency` evaluates that sum from a placement and packet
size.  It serves three purposes:

* a fast what-if oracle for planners (evaluating a candidate migration
  without running a simulation),
* the analytical form of the paper's Figure 1 arithmetic (the naive
  penalty is literally ``2 * pcie(size)``),
* a cross-validation target: ``tests/test_analysis.py`` asserts the
  discrete-event simulator reproduces the closed form to float
  precision in the uncongested regime, which pins down the data path's
  correctness far more tightly than statistical checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..chain.nf import DeviceKind
from ..chain.placement import Placement
from ..devices.pcie import PCIeLink
from ..devices.server import Server, ServerProfile
from ..errors import ConfigurationError
from ..units import bits, wire_time


@dataclass(frozen=True)
class LatencyPrediction:
    """Component breakdown of the closed-form latency."""

    wire_s: float
    processing_s: float
    pcie_s: float
    crossings: int

    @property
    def total_s(self) -> float:
        """End-to-end latency (no queueing assumed)."""
        return self.wire_s + self.processing_s + self.pcie_s


def predict_latency(placement: Placement, packet_bytes: int,
                    server_profile: Optional[ServerProfile] = None
                    ) -> LatencyPrediction:
    """Closed-form per-packet latency of ``placement`` at light load."""
    if packet_bytes <= 0:
        raise ConfigurationError("packet size must be positive")
    profile = server_profile or ServerProfile()
    pcie = PCIeLink(profile.pcie_bandwidth_bps,
                    profile.pcie_crossing_latency_s)

    wire = 0.0
    if placement.ingress is DeviceKind.SMARTNIC:
        wire += wire_time(packet_bytes, profile.nic_port_rate_bps)
    if placement.egress is DeviceKind.SMARTNIC:
        wire += wire_time(packet_bytes, profile.nic_port_rate_bps)

    processing = sum(
        bits(packet_bytes) / nf.capacity_on(placement.device_of(nf.name))
        + nf.base_latency_s
        for nf in placement.chain)

    crossings = placement.pcie_crossings()
    return LatencyPrediction(
        wire_s=wire,
        processing_s=processing,
        pcie_s=crossings * pcie.crossing_time(packet_bytes),
        crossings=crossings)


def predict_policy_gap(before: Placement, after_a: Placement,
                       after_b: Placement, packet_bytes: int,
                       server_profile: Optional[ServerProfile] = None
                       ) -> float:
    """Relative latency gap between two post-migration placements.

    ``(latency(after_a) - latency(after_b)) / latency(after_b)`` —
    e.g. naive vs PAM, the paper's 18%.  ``before`` is accepted for
    API symmetry and future differential models but the closed form
    needs only the two afters.
    """
    a = predict_latency(after_a, packet_bytes, server_profile).total_s
    b = predict_latency(after_b, packet_bytes, server_profile).total_s
    return (a - b) / b


def predict_crossing_penalty(packet_bytes: int,
                             server_profile: Optional[ServerProfile] = None
                             ) -> float:
    """The latency cost of the naive policy's two extra crossings."""
    profile = server_profile or ServerProfile()
    pcie = PCIeLink(profile.pcie_bandwidth_bps,
                    profile.pcie_crossing_latency_s)
    return 2 * pcie.crossing_time(packet_bytes)
