"""Committed-baseline support: pre-existing findings that do not fail CI.

The baseline file is JSON::

    {
      "version": 1,
      "entries": [
        {"rule": "UNIT203", "path": "src/repro/traffic/trace.py",
         "line": 76, "context": "if self.duration_s == 0:",
         "reason": "0.0 is exactly representable; empty-trace sentinel"}
      ]
    }

Every entry carries a human ``reason`` — the review contract is that
only provably benign findings are baselined, each with its
justification.  Matching is by ``(rule, path, context)`` so entries
survive unrelated edits that shift line numbers; ``line`` is advisory,
for humans reading the file.  Each entry absorbs at most one finding,
so a second identical violation on a new line still fails CI.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple, Union

from ...errors import AnalysisError
from .findings import Finding

BASELINE_VERSION = 1
#: Conventional baseline location, relative to the repository root.
DEFAULT_BASELINE_NAME = "lint-baseline.json"

_Key = Tuple[str, str, str]


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted pre-existing finding."""

    rule: str
    path: str
    context: str
    reason: str
    line: int = 0

    @property
    def key(self) -> "_Key":
        """The (rule, path, context) identity used for matching."""
        return (self.rule, self.path, self.context)


@dataclass
class BaselineResult:
    """Outcome of filtering findings through a baseline."""

    kept: List[Finding]
    absorbed: List[Finding]
    #: Entries that matched nothing — stale, worth pruning.
    unmatched: List[BaselineEntry]


class Baseline:
    """A loaded baseline file, ready to filter findings."""

    def __init__(self, entries: List[BaselineEntry],
                 path: Union[str, Path, None] = None) -> None:
        self.entries = list(entries)
        self.path = Path(path) if path is not None else None

    def __len__(self) -> int:
        return len(self.entries)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        """Read and validate a baseline file; raises :class:`AnalysisError`."""
        location = Path(path)
        if not location.is_file():
            raise AnalysisError(f"baseline file not found: {location}")
        try:
            payload = json.loads(location.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise AnalysisError(
                f"cannot read baseline {location}: {exc}") from exc
        if not isinstance(payload, dict):
            raise AnalysisError(
                f"baseline {location} must hold a JSON object")
        version = payload.get("version")
        if version != BASELINE_VERSION:
            raise AnalysisError(
                f"baseline {location} has version {version!r}; "
                f"this tool reads version {BASELINE_VERSION}")
        raw_entries = payload.get("entries", [])
        if not isinstance(raw_entries, list):
            raise AnalysisError(f"baseline {location}: 'entries' "
                                "must be a list")
        entries: List[BaselineEntry] = []
        for index, raw in enumerate(raw_entries):
            if not isinstance(raw, dict):
                raise AnalysisError(
                    f"baseline {location}: entry {index} is not an object")
            missing = [field for field in ("rule", "path", "context",
                                           "reason") if field not in raw]
            if missing:
                raise AnalysisError(
                    f"baseline {location}: entry {index} is missing "
                    f"{', '.join(missing)}")
            if not str(raw["reason"]).strip():
                raise AnalysisError(
                    f"baseline {location}: entry {index} has an empty "
                    "reason; every baselined finding must be justified")
            entries.append(BaselineEntry(
                rule=str(raw["rule"]), path=str(raw["path"]),
                context=str(raw["context"]),
                reason=str(raw["reason"]),
                line=int(raw.get("line", 0))))
        return cls(entries, path=location)

    def apply(self, findings: List[Finding],
              checked_paths: Optional[Set[str]] = None,
              active_rules: Optional[Set[str]] = None) -> BaselineResult:
        """Split findings into kept (still reported) and absorbed.

        An entry that matches nothing is *stale* only if its file was
        actually checked (``checked_paths``, when given) AND its rule
        actually ran (``active_rules``, when given).  An entry for a
        file outside the current path set, or for a project-only rule
        during a per-file run, is simply out of scope.
        """
        budget: Counter[_Key] = Counter(
            entry.key for entry in self.entries)
        kept: List[Finding] = []
        absorbed: List[Finding] = []
        for finding in findings:
            key = (finding.rule, finding.path, finding.context)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                absorbed.append(finding)
            else:
                kept.append(finding)
        unmatched = [entry for entry in self.entries
                     if budget.get(entry.key, 0) > 0
                     and (checked_paths is None
                          or entry.path in checked_paths)
                     and (active_rules is None
                          or entry.rule in active_rules)
                     and _take(budget, entry.key)]
        return BaselineResult(kept=kept, absorbed=absorbed,
                              unmatched=unmatched)

    @staticmethod
    def render(findings: List[Finding],
               reason: str = "TODO: justify or fix") -> str:
        """Serialise ``findings`` as a fresh baseline document."""
        entries: List[Dict[str, object]] = [
            {"rule": f.rule, "path": f.path, "line": f.line,
             "context": f.context, "reason": reason}
            for f in sorted(findings)]
        return json.dumps({"version": BASELINE_VERSION,
                           "entries": entries}, indent=2) + "\n"


def _take(budget: "Counter[_Key]", key: _Key) -> bool:
    """Consume one unit of ``key`` so duplicates report once each."""
    budget[key] -= 1
    return True
