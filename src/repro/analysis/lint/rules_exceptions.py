"""Exception-hygiene rules (EXC4xx).

The library's error taxonomy (:mod:`repro.errors`) is load-bearing:
:class:`~repro.errors.ScaleOutRequired` is a *signal* the operator layer
must see, and :class:`~repro.errors.InfeasiblePlanError` marks library
bugs that must surface loudly.  A bare or over-broad ``except`` in the
executor/runner hot path can absorb both, turning a failed migration
into a silently wrong experiment.
"""

from __future__ import annotations

import ast

from .findings import Severity
from .visitor import LintRule, ModuleContext, register


def _handler_reraises(node: ast.ExceptHandler) -> bool:
    """Whether the handler body re-raises (bare raise or raise ... from)."""
    for inner in ast.walk(node):
        if isinstance(inner, ast.Raise):
            return True
    return False


@register
class BareExceptRule(LintRule):
    """EXC401: ``except:`` with no exception type."""

    code = "EXC401"
    name = "bare-except"
    severity = Severity.ERROR
    rationale = ("except: catches everything including KeyboardInterrupt "
                 "and the library's own ScaleOutRequired signal; a chaos "
                 "campaign that should report a failed invariant instead "
                 "records a clean run.")

    def visit_ExceptHandler(self, node: ast.ExceptHandler,
                            ctx: ModuleContext) -> None:
        """Flag ``except:`` with no exception type."""
        if node.type is None:
            ctx.report(self, node,
                       "bare except: catches ReproError signals "
                       "(ScaleOutRequired, InfeasiblePlanError) meant for "
                       "callers; name the exceptions you can handle")


@register
class SwallowedRecoveryExceptionRule(LintRule):
    """EXC403: handler in recovery/migration code that only passes/returns."""

    code = "EXC403"
    name = "swallowed-exception-in-recovery"
    severity = Severity.ERROR
    rationale = ("an except whose whole body is pass/return inside "
                 "repro.resilience or repro.migration silently eats the "
                 "very failures those layers exist to surface — a "
                 "recovery that 'succeeds' by swallowing its own error "
                 "leaves NFs stranded with no violation recorded.")

    _SCOPES = ("repro.resilience", "repro.migration")

    def _in_scope(self, module: "str | None") -> bool:
        if not module:  # pathless source (stdin, tests) has no module
            return False
        return any(module == scope or module.startswith(scope + ".")
                   for scope in self._SCOPES)

    @staticmethod
    def _swallows(node: ast.ExceptHandler) -> bool:
        """Whether the body does nothing but pass / bare return."""
        return all(
            isinstance(stmt, ast.Pass)
            or (isinstance(stmt, ast.Return) and stmt.value is None)
            for stmt in node.body)

    def visit_ExceptHandler(self, node: ast.ExceptHandler,
                            ctx: ModuleContext) -> None:
        """Flag pass/return-only handlers in resilience/migration code."""
        if not self._in_scope(ctx.module):
            return
        if not self._swallows(node):
            return
        ctx.report(self, node,
                   "exception swallowed in recovery-critical code: the "
                   "handler body is only pass/return; record the failure "
                   "(counter, abandon, violation) or re-raise")


@register
class BroadExceptRule(LintRule):
    """EXC402: ``except Exception`` that swallows without re-raising."""

    code = "EXC402"
    name = "broad-except"
    severity = Severity.WARNING
    rationale = ("except Exception in executor/runner paths absorbs every "
                 "repro.errors type. Acceptable only at a top-level "
                 "boundary that re-raises or faithfully reports; anywhere "
                 "else, catch the specific ReproError subtype.")

    _BROAD = frozenset({"Exception", "BaseException"})

    def _is_broad(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name) and node.id in self._BROAD:
            return True
        if isinstance(node, ast.Tuple):
            return any(self._is_broad(element) for element in node.elts)
        return False

    def visit_ExceptHandler(self, node: ast.ExceptHandler,
                            ctx: ModuleContext) -> None:
        """Flag ``except Exception:`` handlers that never re-raise."""
        if node.type is None or not self._is_broad(node.type):
            return
        if _handler_reraises(node):
            return
        ctx.report(self, node,
                   "broad except swallows repro.errors types "
                   "(MigrationError, ScaleOutRequired) without re-raising; "
                   "catch the specific type or re-raise")
