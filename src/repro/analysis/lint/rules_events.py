"""Event-safety rules (EVT3xx).

The engine's whole determinism story is the ``(time, priority, seq)``
ordering enforced by :class:`repro.sim.events.EventQueue`.  A raw
``heapq.heappush`` elsewhere bypasses the sequence-number tie-break
(simultaneous events then compare by whatever the payload compares by),
and poking ``engine._queue`` / writing ``engine.now_s`` from a handler
desynchronises the clock from the queue.  Handlers must stay inside the
``Engine.at/after`` and ``Event.cancel`` surface.
"""

from __future__ import annotations

import ast

from .findings import Severity
from .visitor import LintRule, ModuleContext, dotted_name, register

#: The one module allowed to touch heapq: the deterministic EventQueue.
_HEAP_HOME = "repro.sim.events"
#: Modules that own the scheduler internals they touch.
_ENGINE_HOME = ("repro.sim.engine", "repro.sim.events")

_HEAP_FNS = frozenset({"heappush", "heappop", "heapify", "heapreplace",
                       "heappushpop", "merge", "nsmallest", "nlargest"})

#: Private scheduler attributes nothing outside the engine may touch.
_SCHEDULER_PRIVATES = frozenset({"_queue", "_heap", "_counter"})


@register
class RawHeapRule(LintRule):
    """EVT301: heapq used outside the deterministic EventQueue."""

    code = "EVT301"
    name = "raw-heap"
    severity = Severity.ERROR
    rationale = ("heapq on bare (time, payload) tuples falls back to "
                 "comparing payloads when times tie — either a TypeError "
                 "or an ordering that depends on payload internals. "
                 "EventQueue adds the monotonically increasing seq "
                 "tie-break; all event scheduling must go through it.")

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> None:
        """Flag ``heapq.*`` calls outside the event-queue module."""
        if ctx.module == _HEAP_HOME:
            return
        chain = dotted_name(node.func)
        if chain is None:
            return
        parts = chain.split(".")
        if parts[0] == "heapq" and len(parts) == 2 and \
                parts[1] in _HEAP_FNS:
            ctx.report(self, node,
                       f"direct {chain}() bypasses EventQueue's "
                       "(time, priority, seq) tie-break; schedule through "
                       "repro.sim.events.EventQueue / Engine.at")


@register
class SchedulerInternalsRule(LintRule):
    """EVT302: handler code reaching into engine/queue internals."""

    code = "EVT302"
    name = "scheduler-internals"
    severity = Severity.ERROR
    rationale = ("Mutating engine internals (its heap, its counter) or "
                 "writing now_s from an event handler breaks the engine's "
                 "invariant that the clock only advances by popping the "
                 "queue. Use Engine.at/after, Event.cancel, and let the "
                 "engine own its clock.")

    def visit_Attribute(self, node: ast.Attribute, ctx: ModuleContext) -> None:
        """Flag access to scheduler-private attributes."""
        if ctx.module in _ENGINE_HOME:
            return
        if node.attr in _SCHEDULER_PRIVATES:
            receiver = dotted_name(node.value) or ""
            tail = receiver.rsplit(".", 1)[-1].lower()
            if "engine" in tail or "queue" in tail:
                ctx.report(self, node,
                           f"access to scheduler internal "
                           f"{receiver}.{node.attr}; use the public "
                           "Engine/EventQueue API")
        elif node.attr == "now_s" and isinstance(node.ctx, ast.Store):
            receiver = dotted_name(node.value) or ""
            tail = receiver.rsplit(".", 1)[-1].lower()
            if "engine" in tail:
                ctx.report(self, node,
                           f"writing {receiver}.now_s rewinds/forges the "
                           "simulation clock; only the engine's event "
                           "loop may advance it")
