"""Drive the linter over files and format the results.

:func:`lint_paths` is the programmatic entry point the CLI wraps: it
collects ``.py`` files, parses each, runs every registered rule in one
AST pass, then applies inline suppressions and the committed baseline.
With ``project=True`` it additionally feeds the whole file set through
the :mod:`~repro.analysis.lint.project` fixpoint analysis and merges
the FLOW/UNIT21x/JRN findings in before suppression, so one noqa /
baseline mechanism covers both rule kinds.  ``report_on`` restricts
*reporting* (not analysis) to a path subset — the ``--changed``
incremental mode.  Unparseable files become ``E000`` findings
(reporting the offending file and position) rather than tracebacks;
nonexistent paths raise :class:`~repro.errors.AnalysisError`, which
the CLI turns into a clean non-zero exit.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

from ...errors import AnalysisError
from .baseline import Baseline, BaselineEntry
from .findings import PARSE_ERROR_RULE, Finding, Severity
from .suppress import apply_suppressions
from .visitor import (LintRule, LintVisitor, ModuleContext, all_rules,
                      module_name_for)

PathLike = Union[str, Path]


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: List[Finding]
    files_checked: int
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    stale_baseline: List[BaselineEntry] = field(default_factory=list)

    def worst(self) -> Optional[Severity]:
        """The highest severity among reported findings."""
        return max((f.severity for f in self.findings), default=None)

    def exit_code(self, fail_on: Severity) -> int:
        """0 when no finding reaches ``fail_on``, 1 otherwise."""
        worst = self.worst()
        return 1 if worst is not None and worst >= fail_on else 0

    def counts(self) -> str:
        """``N errors, M warnings`` summary text."""
        errors = sum(1 for f in self.findings
                     if f.severity is Severity.ERROR)
        warnings = sum(1 for f in self.findings
                       if f.severity is Severity.WARNING)
        return f"{errors} error(s), {warnings} warning(s)"


def collect_files(paths: Sequence[PathLike]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated file list.

    Raises :class:`AnalysisError` naming the first nonexistent path.
    """
    if not paths:
        raise AnalysisError("no paths given to lint")
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            files.append(path)
        elif path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            raise AnalysisError(f"lint target does not exist: {path}")
    unique: List[Path] = []
    seen = set()
    for path in files:
        key = str(path)
        if key not in seen:
            seen.add(key)
            unique.append(path)
    return unique


def visit_source(source: str, path: str = "<string>",
                 rules: Optional[List[LintRule]] = None) -> List[Finding]:
    """Parse + run per-file rules, *without* applying suppressions."""
    active_rules = rules if rules is not None else all_rules()
    try:
        tree = ast.parse(source, filename=path)
    except (SyntaxError, ValueError) as exc:
        line = getattr(exc, "lineno", None) or 1
        col = (getattr(exc, "offset", None) or 1)
        detail = getattr(exc, "msg", None) or str(exc)
        return [Finding(path=path, line=line, col=col,
                        rule=PARSE_ERROR_RULE, severity=Severity.ERROR,
                        message=f"cannot parse file: {detail}",
                        context="")]
    ctx = ModuleContext(path=path, source=source, tree=tree,
                        module=module_name_for(Path(path)))
    return LintVisitor(active_rules).run(ctx)


def lint_source(source: str, path: str = "<string>",
                rules: Optional[List[LintRule]] = None) -> List[Finding]:
    """Lint one source string: parse, run rules, apply inline noqa.

    Unused-noqa meta-findings (SUP001) are included in the result.
    """
    active_rules = rules if rules is not None else all_rules()
    raw = visit_source(source, path=path, rules=active_rules)
    kept, _, unused = apply_suppressions(
        source, path, raw, {rule.code for rule in active_rules})
    return sorted(kept + unused)


def lint_paths(paths: Sequence[PathLike],
               baseline: Optional[Baseline] = None,
               rules: Optional[List[LintRule]] = None,
               project: bool = False,
               report_on: Optional[Set[str]] = None) -> LintReport:
    """Lint every file under ``paths`` and apply the baseline, if any.

    ``project=True`` adds the whole-program FLOW/UNIT21x/JRN rules,
    analysed over the *entire* file set.  ``report_on`` (resolved POSIX
    paths) restricts which files' findings are reported; analysis still
    covers everything so cross-file findings stay accurate.
    """
    active_rules = rules if rules is not None else all_rules()
    files = collect_files(paths)
    sources: Dict[str, str] = {}
    raw_by_file: Dict[str, List[Finding]] = {}
    for file_path in files:
        try:
            source = file_path.read_text()
        except (OSError, UnicodeDecodeError) as exc:
            raise AnalysisError(
                f"cannot read {file_path}: {exc}") from exc
        key = file_path.as_posix()
        sources[key] = source
        raw_by_file[key] = visit_source(source, path=key,
                                        rules=active_rules)
    active_codes = {rule.code for rule in active_rules}
    if project:
        from .project import lint_project_files, project_rule_codes
        active_codes.update(project_rule_codes())
        for finding in lint_project_files(files):
            raw_by_file.setdefault(finding.path, []).append(finding)
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    for key in sorted(raw_by_file):
        kept, absorbed, unused = apply_suppressions(
            sources.get(key, ""), key, raw_by_file[key], active_codes)
        findings.extend(kept)
        findings.extend(unused)
        suppressed.extend(absorbed)
    reported_paths = {f.as_posix() for f in files}
    if report_on is not None:
        resolved = {key: Path(key).resolve().as_posix()
                    for key in sources}
        findings = [f for f in findings
                    if resolved.get(f.path, f.path) in report_on]
        reported_paths = {key for key in reported_paths
                          if resolved.get(key, key) in report_on}
    report = LintReport(findings=sorted(findings),
                        files_checked=len(reported_paths),
                        suppressed=sorted(suppressed))
    if baseline is not None:
        result = baseline.apply(
            report.findings, checked_paths=reported_paths,
            active_rules=active_codes)
        report.findings = result.kept
        report.baselined = result.absorbed
        report.stale_baseline = result.unmatched
    return report


def format_text(report: LintReport) -> str:
    """Human-readable output: one line per finding plus a summary."""
    lines = [finding.render() for finding in report.findings]
    lines.append(f"checked {report.files_checked} file(s): "
                 f"{report.counts()}")
    if report.baselined:
        lines.append(f"({len(report.baselined)} finding(s) absorbed by "
                     "the baseline)")
    for entry in report.stale_baseline:
        lines.append(f"stale baseline entry: {entry.rule} at "
                     f"{entry.path} ({entry.context!r}) matches nothing "
                     "- prune it")
    return "\n".join(lines)


def format_json(report: LintReport) -> str:
    """Machine-readable output with a stable schema."""
    payload = {
        "version": 1,
        "files_checked": report.files_checked,
        "findings": [f.to_json() for f in report.findings],
        "baselined": len(report.baselined),
        "stale_baseline": [
            {"rule": entry.rule, "path": entry.path,
             "context": entry.context, "reason": entry.reason}
            for entry in report.stale_baseline],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def rule_catalogue(rules: Optional[Iterable[LintRule]] = None) -> str:
    """One line per registered rule: code, name, severity, rationale.

    The default catalogue covers both rule kinds — per-file visitors
    and whole-program project rules — sorted by code.
    """
    if rules is not None:
        active: List[LintRule] = list(rules)
    else:
        from .project import all_project_rules
        active = sorted(all_rules() + list(all_project_rules()),
                        key=lambda rule: rule.code)
    lines = []
    for rule in active:
        lines.append(f"{rule.code}  {rule.name:<20} "
                     f"[{rule.severity}] {rule.rationale}")
    return "\n".join(lines)
