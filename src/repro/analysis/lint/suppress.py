"""Inline suppression: ``# repro: noqa[RULE]`` comments.

A finding is suppressed when the physical line it is reported on carries
a marker naming its rule code::

    delay = rng.random()  # repro: noqa[DET102]
    value = a_s + b_us    # repro: noqa[UNIT202,UNIT201]
    anything_goes()       # repro: noqa

A bare ``# repro: noqa`` (no bracket) suppresses every rule on that
line.  Markers are extracted with :mod:`tokenize` so string literals
that merely *contain* the text do not suppress anything.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet, List, Optional

#: Maps line number -> suppressed rule codes; ``None`` means "all rules".
SuppressionMap = Dict[int, Optional[FrozenSet[str]]]

_MARKER = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Za-z0-9_,\s]+)\])?")


def suppressions(source: str) -> SuppressionMap:
    """Extract the per-line suppression map from ``source``.

    Lines without a marker are absent from the map.  Unreadable token
    streams (the caller already parsed the file, so this is rare) yield
    an empty map rather than an error.
    """
    found: SuppressionMap = {}
    try:
        tokens = list(tokenize.generate_tokens(
            io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return found
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _MARKER.search(token.string)
        if match is None:
            continue
        line = token.start[0]
        codes = match.group("codes")
        if codes is None:
            found[line] = None
        else:
            parsed = frozenset(
                code.strip().upper()
                for code in codes.split(",") if code.strip())
            previous = found.get(line, frozenset())
            if previous is None:
                continue  # an unconditional marker already covers the line
            found[line] = parsed | previous
    return found


def is_suppressed(found: SuppressionMap, line: int, rule: str) -> bool:
    """Whether ``rule`` is suppressed on ``line``."""
    if line not in found:
        return False
    codes = found[line]
    return codes is None or rule in codes


def unused_markers(found: SuppressionMap,
                   used_lines: List[int]) -> List[int]:
    """Marker lines that suppressed nothing (for future hygiene checks)."""
    used = set(used_lines)
    return sorted(line for line in found if line not in used)
