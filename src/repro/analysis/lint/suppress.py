"""Inline suppression: ``# repro: noqa[RULE]`` comments.

A finding is suppressed when the physical line it is reported on carries
a marker naming its rule code::

    delay = rng.random()  # repro: noqa[DET102]
    value = a_s + b_us    # repro: noqa[UNIT202,UNIT201]
    anything_goes()       # repro: noqa

A bare ``# repro: noqa`` (no bracket) suppresses every rule on that
line.  Markers are extracted with :mod:`tokenize` so string literals
that merely *contain* the text do not suppress anything.

Suppression hygiene is itself checked: :func:`apply_suppressions`
emits a **SUP001** meta-finding for every marker (or individual code in
a comma-separated marker) that suppressed nothing — dead markers hide
the next real finding on the line.  Codes outside the active rule set
are left alone, so a per-file run never flags a marker aimed at a
project-mode rule.  SUP001 findings cannot be noqa'd away (a marker
cannot vouch for itself) but are baselinable like any other finding.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .findings import Finding, Severity
from .visitor import LintRule, register

#: Maps line number -> suppressed rule codes; ``None`` means "all rules".
SuppressionMap = Dict[int, Optional[FrozenSet[str]]]

_MARKER = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Za-z0-9_,\s]+)\])?")


def suppressions(source: str) -> SuppressionMap:
    """Extract the per-line suppression map from ``source``.

    Lines without a marker are absent from the map.  Unreadable token
    streams (the caller already parsed the file, so this is rare) yield
    an empty map rather than an error.
    """
    found: SuppressionMap = {}
    try:
        tokens = list(tokenize.generate_tokens(
            io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return found
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _MARKER.search(token.string)
        if match is None:
            continue
        line = token.start[0]
        codes = match.group("codes")
        if codes is None:
            found[line] = None
        else:
            parsed = frozenset(
                code.strip().upper()
                for code in codes.split(",") if code.strip())
            previous = found.get(line, frozenset())
            if previous is None:
                continue  # an unconditional marker already covers the line
            found[line] = parsed | previous
    return found


def is_suppressed(found: SuppressionMap, line: int, rule: str) -> bool:
    """Whether ``rule`` is suppressed on ``line``."""
    if line not in found:
        return False
    codes = found[line]
    return codes is None or rule in codes


def unused_markers(found: SuppressionMap,
                   used_lines: List[int]) -> List[int]:
    """Marker lines that suppressed nothing (coarse, line-level view)."""
    used = set(used_lines)
    return sorted(line for line in found if line not in used)


@register
class UnusedNoqaRule(LintRule):
    """SUP001: a noqa marker (or one code in it) suppresses nothing.

    This rule has no ``visit_`` hooks — its findings are produced by
    :func:`apply_suppressions`, which is the only place that knows
    which markers matched.  Registering it keeps SUP001 visible in
    ``--list-rules``, the docs rule table, and the baseline schema.
    """

    code = "SUP001"
    name = "unused-noqa"
    severity = Severity.WARNING
    rationale = ("A noqa that suppresses nothing is a time bomb: the "
                 "next real finding on that line is silently absorbed "
                 "by a marker someone added for a bug fixed long ago. "
                 "Dead markers are pruned the moment they die.")


def apply_suppressions(
        source: str, path: str, findings: Iterable[Finding],
        active_codes: Optional[Set[str]] = None,
) -> Tuple[List[Finding], List[Finding], List[Finding]]:
    """Apply inline markers to ``findings`` and audit the markers.

    Returns ``(kept, suppressed, unused)``: findings that survive,
    findings a marker absorbed, and SUP001 meta-findings for markers
    (or individual codes) that absorbed nothing.  A code is only
    reported unused when it names a rule in ``active_codes`` — markers
    for rules that did not run this invocation (project-only codes
    during a per-file run, or vice versa) are skipped, not flagged.
    ``active_codes=None`` disables that filter.
    """
    found = suppressions(source)
    kept: List[Finding] = []
    suppressed: List[Finding] = []
    used: Dict[int, Set[str]] = {}
    for finding in findings:
        if finding.rule != UnusedNoqaRule.code and \
                is_suppressed(found, finding.line, finding.rule):
            suppressed.append(finding)
            used.setdefault(finding.line, set()).add(finding.rule)
        else:
            kept.append(finding)
    unused: List[Finding] = []
    lines = source.splitlines()
    for line in sorted(found):
        codes = found[line]
        used_here = used.get(line, set())
        context = lines[line - 1].strip() if line <= len(lines) else ""
        if codes is None:
            if not used_here:
                unused.append(Finding(
                    path=path, line=line, col=1,
                    rule=UnusedNoqaRule.code,
                    severity=UnusedNoqaRule.severity,
                    message="blanket 'repro: noqa' suppresses nothing "
                            "on this line; remove it",
                    context=context))
            continue
        for code in sorted(codes - used_here):
            if active_codes is not None and code not in active_codes:
                continue
            unused.append(Finding(
                path=path, line=line, col=1, rule=UnusedNoqaRule.code,
                severity=UnusedNoqaRule.severity,
                message=f"noqa[{code}] suppresses nothing on this "
                        f"line; drop {code} from the marker",
                context=context))
    return kept, suppressed, unused
