"""Finding and severity primitives for the simulation-safety linter.

A :class:`Finding` is one rule violation at one source location.  The
``context`` field carries the stripped source line so baselines can match
findings across line-number drift (see :mod:`repro.analysis.lint.baseline`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict

from ...errors import AnalysisError


class Severity(enum.IntEnum):
    """Severity classes, ordered so ``--fail-on`` can threshold them."""

    WARNING = 1
    ERROR = 2

    @classmethod
    def parse(cls, text: str) -> "Severity":
        """Parse a severity name (case-insensitive)."""
        try:
            return cls[text.upper()]
        except KeyError:
            raise AnalysisError(
                f"unknown severity {text!r}; choose from "
                f"{[s.name.lower() for s in cls]}") from None

    def __str__(self) -> str:
        return self.name.lower()


#: Pseudo-rule code reported for files the parser rejects.
PARSE_ERROR_RULE = "E000"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at ``path:line:col``."""

    path: str
    line: int
    col: int
    rule: str
    severity: Severity
    message: str
    #: The stripped source line, used for line-drift-tolerant baseline
    #: matching; empty when the source line is unavailable.
    context: str = ""

    @property
    def location(self) -> str:
        """``file:line:col`` in the clickable convention."""
        return f"{self.path}:{self.line}:{self.col}"

    def render(self) -> str:
        """One text-format output line."""
        return (f"{self.location}: {self.rule} "
                f"[{self.severity}] {self.message}")

    def to_json(self) -> Dict[str, Any]:
        """The JSON-output object for this finding (stable keys)."""
        return {
            "rule": self.rule,
            "severity": str(self.severity),
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "context": self.context,
        }
