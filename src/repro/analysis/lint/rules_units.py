"""Unit-hygiene rules (UNIT2xx).

The library standardises on bits/second, bytes, and seconds
(:mod:`repro.units`); the paper speaks Gbps, bytes, and microseconds.
Every conversion between the two worlds is supposed to go through a
named helper (``gbps``, ``usec``, ``as_msec`` ...), because a stray
``* 1e6`` is unreviewable — is it Mbps→bps or s→µs?  These rules catch
raw magnitude arithmetic, expressions that mix unit-suffixed names, and
``==`` on simulated-time floats.
"""

from __future__ import annotations

import ast
from typing import Optional

from .findings import Severity
from .visitor import LintRule, ModuleContext, register

#: Power-of-ten magnitudes that repro.units helpers already name.
_MAGIC_MAGNITUDES = {
    1e3: "BITS_PER_KBIT / as_msec", 1e6: "mbps / as_usec",
    1e9: "gbps / BITS_PER_GBIT", 1e12: "a named constant",
    1e-3: "msec", 1e-6: "usec", 1e-9: "a named constant",
}

#: Modules allowed to spell magnitudes out — the helpers themselves.
_UNIT_DEFINITION_MODULES = ("repro.units",)

#: Identifier suffix -> (dimension, scale tag).
_UNIT_SUFFIXES = {
    "_s": ("time", "s"), "_sec": ("time", "s"), "_secs": ("time", "s"),
    "_seconds": ("time", "s"),
    "_ms": ("time", "ms"), "_msec": ("time", "ms"),
    "_us": ("time", "us"), "_usec": ("time", "us"),
    "_ns": ("time", "ns"),
    "_bps": ("rate", "bps"), "_mbps": ("rate", "mbps"),
    "_gbps": ("rate", "gbps"),
    "_bytes": ("size", "bytes"), "_bits": ("size", "bits"),
    "_kib": ("size", "kib"), "_mib": ("size", "mib"),
}

#: Name fragments marking numerical-tolerance constants, which are
#: magnitudes by coincidence, not unit conversions.
_TOLERANCE_MARKERS = ("TOL", "EPS", "EPSILON", "ATOL", "RTOL")


def _identifier_of(node: ast.AST) -> Optional[str]:
    """The trailing identifier of a Name/Attribute, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def unit_for_identifier(name: str) -> Optional[tuple]:
    """(dimension, scale) an identifier's suffix declares, if any.

    The suffix convention (``latency_us``, ``rate_bps``) is shared by
    the per-file UNIT2xx rules and the project-mode unit-flow analysis
    (:mod:`repro.analysis.lint.project`).
    """
    for suffix, unit in _UNIT_SUFFIXES.items():
        if name.endswith(suffix) and name != suffix:
            return unit
    return None


def _unit_of(node: ast.AST) -> Optional[tuple]:
    """(dimension, scale) carried by an expression's naming, if any.

    Add/Sub propagate a consistent unit upward; Mult/Div change
    dimension so they propagate nothing.
    """
    identifier = _identifier_of(node)
    if identifier is not None:
        return unit_for_identifier(identifier)
    if isinstance(node, ast.BinOp) and \
            isinstance(node.op, (ast.Add, ast.Sub)):
        left = _unit_of(node.left)
        right = _unit_of(node.right)
        if left is not None and (right is None or right == left):
            return left
        if right is not None and left is None:
            return right
    return None


@register
class MagicMagnitudeRule(LintRule):
    """UNIT201: raw power-of-ten factors where a units helper exists."""

    code = "UNIT201"
    name = "magic-magnitude"
    severity = Severity.WARNING
    rationale = ("`x * 1e6` could be Mbps->bps or s->us; the reader cannot "
                 "tell and unit bugs (the Gbps-vs-bits/s class) hide in "
                 "exactly that ambiguity. repro.units names every "
                 "conversion this library needs.")

    def visit_BinOp(self, node: ast.BinOp, ctx: ModuleContext) -> None:
        """Flag power-of-ten constants in multiply/divide."""
        if ctx.module in _UNIT_DEFINITION_MODULES:
            return
        if not isinstance(node.op, (ast.Mult, ast.Div)):
            return
        for operand in (node.left, node.right):
            if not isinstance(operand, ast.Constant):
                continue
            value = operand.value
            if isinstance(value, bool) or \
                    not isinstance(value, (int, float)):
                continue
            magnitude = float(value)
            if magnitude not in _MAGIC_MAGNITUDES:
                continue
            if self._is_tolerance_context(node, ctx):
                continue
            hint = _MAGIC_MAGNITUDES[magnitude]
            ctx.report(self, operand,
                       f"magnitude literal {value!r} in arithmetic; use a "
                       f"repro.units helper (e.g. {hint}) so the "
                       "conversion is named")

    @staticmethod
    def _is_tolerance_context(node: ast.BinOp, ctx: ModuleContext) -> bool:
        """Whether the enclosing statement assigns a tolerance constant."""
        for ancestor in ctx.ancestors(node):
            targets = []
            if isinstance(ancestor, ast.Assign):
                targets = ancestor.targets
            elif isinstance(ancestor, ast.AnnAssign) and \
                    ancestor.target is not None:
                targets = [ancestor.target]
            for target in targets:
                identifier = _identifier_of(target) or ""
                if any(marker in identifier.upper()
                       for marker in _TOLERANCE_MARKERS):
                    return True
        return False


@register
class MixedUnitSuffixRule(LintRule):
    """UNIT202: one expression adds/compares names of different units."""

    code = "UNIT202"
    name = "mixed-unit-suffix"
    severity = Severity.ERROR
    rationale = ("Adding `timeout_us` to `now_s`, or comparing `rate_bps` "
                 "with `cap_gbps`, is a unit error the type system cannot "
                 "see because both sides are float. The suffix convention "
                 "makes it statically visible.")

    def _check_pair(self, left: ast.AST, right: ast.AST, node: ast.AST,
                    verb: str, ctx: ModuleContext) -> None:
        left_unit = _unit_of(left)
        right_unit = _unit_of(right)
        if left_unit is None or right_unit is None:
            return
        if left_unit == right_unit:
            return
        ctx.report(self, node,
                   f"{verb} mixes units: "
                   f"{left_unit[1]} ({_identifier_of(left) or '...'}) vs "
                   f"{right_unit[1]} ({_identifier_of(right) or '...'}); "
                   "convert through repro.units first")

    def visit_BinOp(self, node: ast.BinOp, ctx: ModuleContext) -> None:
        """Flag add/subtract across conflicting unit suffixes."""
        if isinstance(node.op, (ast.Add, ast.Sub)):
            self._check_pair(node.left, node.right, node,
                             "addition/subtraction", ctx)

    def visit_Compare(self, node: ast.Compare, ctx: ModuleContext) -> None:
        """Flag comparisons across conflicting unit suffixes."""
        operands = [node.left] + list(node.comparators)
        for left, right in zip(operands, operands[1:]):
            self._check_pair(left, right, node, "comparison", ctx)


@register
class FloatTimeEqualityRule(LintRule):
    """UNIT203: ``==`` / ``!=`` on simulated-time floats."""

    code = "UNIT203"
    name = "float-time-eq"
    severity = Severity.WARNING
    rationale = ("Simulated timestamps are accumulated floats; two paths "
                 "to the 'same' instant differ in the last ulp, so == "
                 "comparisons work until an unrelated refactor reorders "
                 "the arithmetic. Compare against a tolerance, or order "
                 "events through the engine.")

    @staticmethod
    def _is_time_name(node: ast.AST) -> bool:
        identifier = _identifier_of(node)
        if identifier is None:
            return False
        unit = _unit_of(node)
        return unit is not None and unit[0] == "time"

    @staticmethod
    def _is_exact_literal(node: ast.AST) -> bool:
        """Literals that are exactly representable sentinels (0, None)."""
        return isinstance(node, ast.Constant) and \
            (node.value is None or node.value == 0)

    @staticmethod
    def _is_tolerance_comparator(node: ast.AST) -> bool:
        """``pytest.approx(...)`` / ``isclose(...)`` — already tolerant."""
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        tail = func.attr if isinstance(func, ast.Attribute) else \
            (func.id if isinstance(func, ast.Name) else "")
        return tail in ("approx", "isclose")

    def visit_Compare(self, node: ast.Compare, ctx: ModuleContext) -> None:
        """Flag ``==``/``!=`` against ``_s``-suffixed time values."""
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            return
        operands = [node.left] + list(node.comparators)
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[index], operands[index + 1]
            for side, other in ((left, right), (right, left)):
                if self._is_time_name(side) and \
                        not self._is_exact_literal(other) and \
                        not self._is_tolerance_comparator(other):
                    ctx.report(self, node,
                               "float equality on simulated time "
                               f"({_identifier_of(side)}); compare with a "
                               "tolerance or an event-ordering check")
                    return
