"""Determinism rules (DET1xx).

The paper's headline comparison (PAM vs naive, −18% tail latency) is a
*paired* experiment: both policies replay the identical packet arrival
process.  That only holds if every random draw flows from an explicit
seed, no code path consults the wall clock, and nothing orders work by
memory address or hash-salted set iteration.  These rules make those
properties checkable at the source level, where the chaos harness's
seeded :class:`~repro.chaos.schedule.ChaosSchedule` merely assumes them.
"""

from __future__ import annotations

import ast
from typing import Optional, Set

from .findings import Severity
from .visitor import LintRule, ModuleContext, dotted_name, register

#: Functions on the module-level (shared, implicitly seeded) RNG.
_GLOBAL_RANDOM_FNS = frozenset({
    "random", "seed", "getstate", "setstate", "getrandbits", "randrange",
    "randint", "choice", "choices", "shuffle", "sample", "uniform",
    "triangular", "betavariate", "expovariate", "gammavariate", "gauss",
    "lognormvariate", "normalvariate", "vonmisesvariate", "paretovariate",
    "weibullvariate", "randbytes", "binomialvariate",
})

#: Attribute chains that read the wall clock.
_WALL_CLOCK_SUFFIXES = (
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.localtime", "time.gmtime",
    "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
)

_SET_ANNOTATION_MARKERS = ("Set[", "set[", "FrozenSet[", "frozenset[")


def _chain_matches(chain: Optional[str], suffixes: tuple) -> Optional[str]:
    """The first suffix that ``chain`` ends with, else None."""
    if chain is None:
        return None
    for suffix in suffixes:
        if chain == suffix or chain.endswith("." + suffix):
            return suffix
    return None


@register
class UnseededRngRule(LintRule):
    """DET101: ``random.Random()`` (or ``default_rng()``) without a seed."""

    code = "DET101"
    name = "unseeded-rng"
    severity = Severity.ERROR
    rationale = ("An RNG constructed without a seed draws entropy from the "
                 "OS, so two runs of the 'same' scenario diverge and the "
                 "paired PAM-vs-naive comparison stops being paired.")

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> None:
        """Flag RNG constructors called without a seed."""
        chain = dotted_name(node.func)
        constructor = _chain_matches(
            chain, ("random.Random", "Random", "default_rng",
                    "random.default_rng", "SystemRandom",
                    "random.SystemRandom"))
        if constructor is None:
            return
        if "SystemRandom" in constructor:
            ctx.report(self, node,
                       "SystemRandom is unseedable by design; use "
                       "random.Random(seed) so runs replay")
            return
        if not node.args and not node.keywords:
            ctx.report(self, node,
                       f"{constructor}() without a seed; thread a seed "
                       "from the scenario/config so runs replay")


@register
class ModuleRandomRule(LintRule):
    """DET102: calls on the shared module-level ``random`` RNG."""

    code = "DET102"
    name = "module-random"
    severity = Severity.ERROR
    rationale = ("random.random()/choice()/... share one process-global "
                 "generator, so draws interleave across components and any "
                 "new call site silently perturbs every existing stream. "
                 "Each component must own a random.Random(seed).")

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> None:
        """Flag calls on the module-level ``random`` generator."""
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if not isinstance(func.value, ast.Name):
            return
        if func.value.id == "random" and func.attr in _GLOBAL_RANDOM_FNS:
            ctx.report(self, node,
                       f"module-level random.{func.attr}() uses the shared "
                       "global RNG; use a per-component "
                       "random.Random(seed) instead")


@register
class WallClockRule(LintRule):
    """DET103: wall-clock reads inside simulation code."""

    code = "DET103"
    name = "wall-clock"
    severity = Severity.ERROR
    rationale = ("Simulated time comes from Engine.now_s; reading the host "
                 "clock couples results to machine speed and breaks "
                 "bit-for-bit replay of a seeded run.")

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> None:
        """Flag wall-clock reads such as ``time.time()``."""
        chain = dotted_name(node.func)
        matched = _chain_matches(chain, _WALL_CLOCK_SUFFIXES)
        if matched is not None:
            ctx.report(self, node,
                       f"wall-clock read {matched}(); simulation code must "
                       "take time from Engine.now_s (or accept a timestamp "
                       "parameter)")


@register
class ExecWallClockRule(LintRule):
    """DET107: wall-clock use in the exec core outside the supervisor."""

    code = "DET107"
    name = "exec-wall-clock"
    severity = Severity.ERROR
    rationale = ("The campaign exec core promises bit-exact merges across "
                 "executors, so retry backoff and scheduling must derive "
                 "from seeds, never the host clock. The one sanctioned "
                 "clock is the supervisor's DeadlineClock (whose readings "
                 "never enter a payload); a time.time()/monotonic()/"
                 "sleep() anywhere else in repro.exec can leak host timing "
                 "into journaled results.")

    _SANCTIONED_MODULE = "repro.exec.supervisor"
    _SUFFIXES = _WALL_CLOCK_SUFFIXES + ("time.sleep",)

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> None:
        """Flag wall-clock reads/sleeps under ``repro.exec``."""
        if ctx.module is None:
            return
        if ctx.module != "repro.exec" and \
                not ctx.module.startswith("repro.exec."):
            return
        if ctx.module == self._SANCTIONED_MODULE:
            return
        matched = _chain_matches(dotted_name(node.func), self._SUFFIXES)
        if matched is not None:
            ctx.report(self, node,
                       f"{matched}() inside the exec core; the only "
                       "sanctioned wall clock is the supervisor's "
                       "DeadlineClock, and backoff must be seed-derived")


@register
class AddressOrderRule(LintRule):
    """DET104: ``id()``/``hash()`` used as an ordering key."""

    code = "DET104"
    name = "address-order"
    severity = Severity.WARNING
    rationale = ("id() is a memory address and hash() of str/bytes is "
                 "salted per process (PYTHONHASHSEED), so any ordering "
                 "derived from them differs between runs. Tie-break on "
                 "stable fields (name, sequence number) instead.")

    _SORTERS = frozenset({"sorted", "sort", "min", "max", "nsmallest",
                          "nlargest"})

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> None:
        """Flag ``id()``/``hash()`` inside a sort key."""
        func_name = None
        if isinstance(node.func, ast.Name):
            func_name = node.func.id
        elif isinstance(node.func, ast.Attribute):
            func_name = node.func.attr
        if func_name not in self._SORTERS:
            return
        for keyword in node.keywords:
            if keyword.arg != "key":
                continue
            for inner in ast.walk(keyword.value):
                if isinstance(inner, ast.Call) and \
                        isinstance(inner.func, ast.Name) and \
                        inner.func.id in ("id", "hash"):
                    ctx.report(self, inner,
                               f"{inner.func.id}() inside a sort key orders "
                               "by memory address / salted hash; use a "
                               "stable field as the tie-break")
                elif isinstance(inner, ast.Name) and \
                        inner.id in ("id", "hash") and \
                        inner is keyword.value:
                    ctx.report(self, inner,
                               f"key={inner.id} orders by memory address / "
                               "salted hash; use a stable field as the "
                               "tie-break")


@register
class SimStatePickleRule(LintRule):
    """DET106: pickling/deepcopying live simulation state."""

    code = "DET106"
    name = "sim-state-pickle"
    severity = Severity.ERROR
    rationale = ("pickle and copy.deepcopy happily serialize an Engine, "
                 "an EventQueue, or an RNG — closures, bound methods, "
                 "heap entries and all — producing snapshots that are "
                 "huge, version-fragile, and wrong to restore (a copied "
                 "closure still points at the old object graph). "
                 "Checkpointing goes through repro.checkpoint's explicit "
                 "snapshot_state()/restore_state() hooks instead.")

    _PICKLE_FNS = ("pickle.dump", "pickle.dumps", "pickle.load",
                   "pickle.loads", "copy.deepcopy", "deepcopy")
    _STATE_MARKERS = ("engine", "queue", "rng", "random")

    def _names_sim_state(self, node: ast.AST) -> Optional[str]:
        """A name/attribute in ``node`` that smells like sim state."""
        for inner in ast.walk(node):
            text = None
            if isinstance(inner, ast.Name):
                text = inner.id
            elif isinstance(inner, ast.Attribute):
                text = inner.attr
            if text is None:
                continue
            lowered = text.lower()
            for marker in self._STATE_MARKERS:
                if marker in lowered:
                    return text
        return None

    def visit_Call(self, node: ast.Call, ctx: ModuleContext) -> None:
        """Flag pickle/deepcopy calls whose argument is sim state."""
        if ctx.module is not None and \
                ctx.module.startswith("repro.checkpoint"):
            # The one module allowed to serialize simulation state.
            return
        chain = dotted_name(node.func)
        matched = _chain_matches(chain, self._PICKLE_FNS)
        if matched is None:
            return
        for arg in node.args:
            named = self._names_sim_state(arg)
            if named is not None:
                ctx.report(self, node,
                           f"{matched}({named}, ...) serializes live "
                           "simulation state; checkpoint through "
                           "repro.checkpoint snapshot_state()/"
                           "restore_state() hooks instead")
                return


@register
class SetIterationRule(LintRule):
    """DET105: iterating a set where order can leak into behaviour."""

    code = "DET105"
    name = "set-iteration"
    severity = Severity.WARNING
    rationale = ("Set iteration order depends on insertion history and the "
                 "per-process hash seed. When the loop body schedules "
                 "events, builds candidate pools, or raises the first "
                 "violation found, that order becomes observable. Wrap the "
                 "iterable in sorted(...) to pin it.")

    def begin_module(self, ctx: ModuleContext) -> None:
        """Collect names/attributes annotated as set-typed."""
        self._set_names: Set[str] = set()
        self._set_attrs: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AnnAssign) and \
                    self._is_set_annotation(node.annotation):
                if isinstance(node.target, ast.Name):
                    self._set_names.add(node.target.id)
                elif isinstance(node.target, ast.Attribute):
                    self._set_attrs.add(node.target.attr)
            elif isinstance(node, ast.arg) and node.annotation is not None \
                    and self._is_set_annotation(node.annotation):
                self._set_names.add(node.arg)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node.returns is not None \
                    and self._is_set_annotation(node.returns):
                self._set_attrs.add(node.name)

    @staticmethod
    def _is_set_annotation(annotation: ast.AST) -> bool:
        text = ast.unparse(annotation)
        return text in ("set", "frozenset", "Set", "FrozenSet") or \
            any(marker in text for marker in _SET_ANNOTATION_MARKERS)

    def _flag_if_set(self, iterable: ast.AST, ctx: ModuleContext) -> None:
        if isinstance(iterable, ast.Set):
            what = "a set literal"
        elif isinstance(iterable, ast.Call) and \
                isinstance(iterable.func, ast.Name) and \
                iterable.func.id in ("set", "frozenset"):
            what = f"{iterable.func.id}(...)"
        elif isinstance(iterable, ast.Name) and \
                iterable.id in self._set_names:
            what = f"set-typed {iterable.id!r}"
        elif isinstance(iterable, ast.Attribute) and \
                iterable.attr in self._set_attrs:
            what = f"set-typed .{iterable.attr}"
        else:
            return
        ctx.report(self, iterable,
                   f"iteration over {what} has hash-seed-dependent order; "
                   "wrap in sorted(...) before it feeds behaviour")

    def visit_For(self, node: ast.For, ctx: ModuleContext) -> None:
        """Flag ``for`` loops whose iterable is a set."""
        self._flag_if_set(node.iter, ctx)

    def visit_comprehension(self, node: ast.comprehension,
                            ctx: ModuleContext) -> None:
        """Flag comprehensions whose iterable is a set."""
        self._flag_if_set(node.iter, ctx)
