"""The AST-walking core: module context, rule base class, registry.

A :class:`LintRule` declares a ``code`` (``DET101``), a default
:class:`~repro.analysis.lint.findings.Severity`, and any number of
``visit_<NodeName>`` hooks.  :class:`LintVisitor` walks a module's AST
once, dispatching every node to every rule that handles its type, so a
battery of rules costs a single traversal.

Rules see a :class:`ModuleContext` giving the file path, the dotted
module name (when the file lives under ``src/repro``), source lines,
and a parent map for upward navigation — enough to express "a literal
directly under a multiplication" or "a call inside a sort key".
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Type

from .findings import Finding, Severity


@dataclass
class ModuleContext:
    """Everything a rule may inspect about the module under analysis."""

    path: str
    source: str
    tree: ast.Module
    #: Dotted module name (``repro.sim.engine``) when the file is inside
    #: a ``repro`` package tree; ``None`` for loose scripts.
    module: Optional[str] = None
    lines: List[str] = field(default_factory=list)
    _parents: Dict[int, ast.AST] = field(default_factory=dict)
    _findings: List[Finding] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    # -- navigation ---------------------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The syntactic parent of ``node`` (None for the module root)."""
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk from ``node``'s parent up to the module root."""
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def line_text(self, line: int) -> str:
        """The stripped source text of 1-based ``line`` (empty if absent)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    # -- reporting ----------------------------------------------------------

    def report(self, rule: "LintRule", node: ast.AST, message: str,
               severity: Optional[Severity] = None) -> None:
        """Record one finding anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        self._findings.append(Finding(
            path=self.path, line=line, col=col + 1,
            rule=rule.code,
            severity=severity if severity is not None else rule.severity,
            message=message, context=self.line_text(line)))

    @property
    def findings(self) -> List[Finding]:
        """Findings reported so far, in source order."""
        return sorted(self._findings)


class LintRule:
    """Base class; subclasses register themselves via :func:`register`."""

    code: str = ""
    name: str = ""
    severity: Severity = Severity.WARNING
    #: One-paragraph simulator-facing rationale (surfaced in docs/CLI).
    rationale: str = ""

    def begin_module(self, ctx: ModuleContext) -> None:
        """Hook run before traversal; collect module-level facts here."""

    def handlers(self) -> Dict[str, Callable[[ast.AST, ModuleContext], None]]:
        """Map AST node-class names to this rule's visit hooks."""
        found: Dict[str, Callable[[ast.AST, ModuleContext], None]] = {}
        for attribute in dir(self):
            if attribute.startswith("visit_"):
                found[attribute[len("visit_"):]] = getattr(self, attribute)
        return found


#: Registry of every known rule, keyed by code.
RULE_REGISTRY: Dict[str, Type[LintRule]] = {}


def register(rule_class: Type[LintRule]) -> Type[LintRule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_class.code:
        raise ValueError(f"{rule_class.__name__} has no code")
    if rule_class.code in RULE_REGISTRY:
        raise ValueError(f"duplicate rule code {rule_class.code}")
    RULE_REGISTRY[rule_class.code] = rule_class
    return rule_class


def all_rules() -> List[LintRule]:
    """Fresh instances of every registered rule, ordered by code."""
    # Importing the rule modules populates the registry exactly once.
    from . import (rules_determinism, rules_events,  # noqa: F401
                   rules_exceptions, rules_units, suppress)
    return [RULE_REGISTRY[code]() for code in sorted(RULE_REGISTRY)]


class LintVisitor:
    """Single-pass dispatcher of one module's AST to many rules."""

    def __init__(self, rules: List[LintRule]) -> None:
        self.rules = rules
        self._dispatch: Dict[str, List[
            Callable[[ast.AST, ModuleContext], None]]] = {}
        for rule in rules:
            for node_name, handler in rule.handlers().items():
                self._dispatch.setdefault(node_name, []).append(handler)

    def run(self, ctx: ModuleContext) -> List[Finding]:
        """Walk the module once, returning the findings in source order."""
        for parent in ast.walk(ctx.tree):
            for child in ast.iter_child_nodes(parent):
                ctx._parents[id(child)] = parent
        for rule in self.rules:
            rule.begin_module(ctx)
        for node in ast.walk(ctx.tree):
            handlers = self._dispatch.get(type(node).__name__)
            if not handlers:
                continue
            for handler in handlers:
                handler(node, ctx)
        return ctx.findings


def module_name_for(path: Path) -> Optional[str]:
    """Guess the dotted module name from a filesystem path.

    Recognises any ``.../repro/...`` package layout (``src/repro/...``
    in this repository) and returns e.g. ``repro.sim.engine``.
    """
    parts = list(path.with_suffix("").parts)
    if "repro" not in parts:
        return None
    start = len(parts) - 1 - parts[::-1].index("repro")
    dotted = parts[start:]
    if dotted[-1] == "__init__":
        dotted = dotted[:-1]
    return ".".join(dotted)


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render an attribute chain (``datetime.datetime.now``) as text."""
    names: List[str] = []
    current: ast.AST = node
    while isinstance(current, ast.Attribute):
        names.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        names.append(current.id)
        return ".".join(reversed(names))
    return None
