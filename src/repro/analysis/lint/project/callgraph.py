"""Call resolution and the whole-program call graph.

Given a :class:`~.loader.Project`, :func:`resolve_call` maps one
``ast.Call`` inside a known function to the :class:`~.loader.FunctionInfo`
it invokes, when that can be decided statically:

* a bare name bound by an import or a module-level ``def``;
* a dotted chain rooted at an imported module (``schedule.generate``);
* ``self.method()`` / ``cls.method()`` inside a class body;
* constructor calls, which resolve to ``__init__`` (possibly inherited).

Dynamic dispatch (a method on an arbitrary object), ``getattr``, and
callables passed as values resolve to ``None`` — the dataflow layer
treats those results as unknown rather than guessing.  The same
resolution drives :func:`build_callgraph`, whose output anchors the
golden-file tests for the fixture project.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..visitor import dotted_name
from .loader import FunctionInfo, ModuleInfo, Project


@dataclass
class CallSite:
    """One resolved call: caller function, callee function, AST node."""

    caller: str
    callee: str
    node: ast.Call


@dataclass
class CallGraph:
    """Caller -> ordered callee qualnames, plus every resolved site."""

    edges: Dict[str, List[str]] = field(default_factory=dict)
    sites: List[CallSite] = field(default_factory=list)

    def add(self, caller: str, callee: str, node: ast.Call) -> None:
        """Record one resolved call site."""
        self.sites.append(CallSite(caller, callee, node))
        callees = self.edges.setdefault(caller, [])
        if callee not in callees:
            callees.append(callee)

    def callees(self, caller: str) -> List[str]:
        """Functions ``caller`` was seen to invoke, in first-call order."""
        return self.edges.get(caller, [])


def resolve_call(project: Project, module: ModuleInfo,
                 function: Optional[FunctionInfo],
                 node: ast.Call) -> Optional[FunctionInfo]:
    """The FunctionInfo a call invokes, or None when undecidable."""
    func = node.func
    if isinstance(func, ast.Name):
        target = project.resolve(module, func.id)
        if target is None:
            return None
        return project.function_at(target)
    if isinstance(func, ast.Attribute):
        root = func.value
        if isinstance(root, ast.Name) and root.id in ("self", "cls") and \
                function is not None and function.class_name is not None:
            cls = module.classes.get(function.class_name)
            if cls is not None and func.attr in cls.methods:
                return cls.methods[func.attr]
            return None
        chain = dotted_name(func)
        if chain is None:
            return None
        head, _, rest = chain.partition(".")
        target = project.resolve(module, head)
        if target is None:
            return None
        return project.function_at(f"{target}.{rest}" if rest else target)
    return None


def iter_function_calls(function: FunctionInfo) -> List[ast.Call]:
    """Every Call node lexically inside ``function`` (nested defs too)."""
    return [node for node in ast.walk(function.node)
            if isinstance(node, ast.Call)]


def build_callgraph(project: Project) -> CallGraph:
    """Resolve every call site in every loaded function."""
    graph = CallGraph()
    for module in project.modules.values():
        for function in _functions_of(module):
            for call in iter_function_calls(function):
                callee = resolve_call(project, module, function, call)
                if callee is not None:
                    graph.add(function.qualname, callee.qualname, call)
    return graph


def _functions_of(module: ModuleInfo) -> List[FunctionInfo]:
    functions = list(module.functions.values())
    for cls in module.classes.values():
        functions.extend(cls.methods.values())
    return functions


def dump_callgraph(graph: CallGraph,
                   within: Optional[str] = None) -> str:
    """Stable text rendering (one ``caller -> callee`` line, sorted).

    ``within`` restricts both ends to qualnames under that dotted
    prefix — the fixture goldens use it to keep stdlib noise out.
    """
    lines: Set[str] = set()
    for site in graph.sites:
        if within is not None and not (
                site.caller.startswith(within) and
                site.callee.startswith(within)):
            continue
        lines.add(f"{site.caller} -> {site.callee}")
    return "\n".join(sorted(lines))
