"""Whole-program loading: modules, symbols, and import resolution.

Per-file rules see one AST at a time; the project rules
(:mod:`.rules_flow`, :mod:`.rules_unitflow`, :mod:`.rules_journal`)
need to follow a value across files.  This module builds the substrate
they share: every ``.py`` file under the given roots is parsed once
into a :class:`ModuleInfo` carrying its import table (alias → dotted
target, with relative imports resolved against the package layout on
disk), its module-level constant bindings, and a symbol table of every
function, method, and class.  :class:`Project` indexes those symbols
globally so a dotted reference (``repro.exec.scenario.seed_for``) or a
locally-imported alias resolves to the same :class:`FunctionInfo`
everywhere.

The loader is layout-driven, not import-driven: nothing is executed,
and the dotted name of a file is derived by walking parent directories
while ``__init__.py`` markers continue — which is what lets the test
fixture package under ``tests/fixtures/lintproj`` load exactly like
``src/repro`` does.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..visitor import dotted_name


def module_name_from_layout(path: Path) -> str:
    """Dotted module name derived from ``__init__.py`` package markers.

    Climbs from ``path``'s directory upward while each directory is a
    package (holds ``__init__.py``); a loose script resolves to its
    bare stem.
    """
    resolved = path.resolve()
    parts: List[str] = []
    if resolved.stem != "__init__":
        parts.append(resolved.stem)
    current = resolved.parent
    while (current / "__init__.py").is_file():
        parts.append(current.name)
        if current.parent == current:
            break
        current = current.parent
    return ".".join(reversed(parts))


@dataclass
class FunctionInfo:
    """One function or method definition, with its parameter shape."""

    #: Fully qualified: ``repro.chaos.schedule.ChaosSchedule.generate``.
    qualname: str
    module: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    #: Positional-or-keyword parameter names, in order (``self``/``cls``
    #: excluded for methods).
    params: List[str]
    #: Keyword-only parameter names.
    kwonly: List[str]
    #: Parameter name -> default expression (for params with defaults).
    defaults: Dict[str, ast.AST] = field(default_factory=dict)
    #: Enclosing class name, or None for module-level functions.
    class_name: Optional[str] = None
    is_method: bool = False
    #: True for a ``__init__`` synthesized from ``@dataclass`` fields —
    #: it has no body; it stores each parameter into the same-named
    #: attribute.
    synthetic: bool = False

    @property
    def name(self) -> str:
        """The unqualified function name."""
        return self.qualname.rsplit(".", 1)[-1]

    @property
    def all_params(self) -> List[str]:
        """Positional and keyword-only parameter names, in order."""
        return self.params + self.kwonly


@dataclass
class ClassInfo:
    """One class definition and its method table."""

    qualname: str
    module: str
    node: ast.ClassDef
    #: Method name -> FunctionInfo.
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: Base-class expressions, rendered dotted where possible.
    bases: List[str] = field(default_factory=list)
    #: Instance attributes assigned a set value (``self.seen = set()``)
    #: anywhere in the class body — set-order taint sources.
    set_attrs: "set[str]" = field(default_factory=set)


@dataclass
class ModuleInfo:
    """One parsed source file plus its local symbol and import tables."""

    name: str
    path: str
    source: str
    tree: ast.Module
    #: Local alias -> fully dotted target.  ``import numpy as np`` maps
    #: ``np -> numpy``; ``from .scenario import seed_for`` maps
    #: ``seed_for -> repro.exec.scenario.seed_for``.
    imports: Dict[str, str] = field(default_factory=dict)
    #: Module-level names bound to constant literals.
    constants: Dict[str, ast.Constant] = field(default_factory=dict)
    #: Module-level function name -> FunctionInfo.
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: Class name -> ClassInfo.
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    is_package: bool = False

    def package(self) -> str:
        """The package this module's relative imports resolve against."""
        if self.is_package:
            return self.name
        return self.name.rsplit(".", 1)[0] if "." in self.name else ""


def _param_shape(node: ast.AST) -> Tuple[List[str], List[str],
                                         Dict[str, ast.AST]]:
    """(positional, kwonly, defaults) for a function definition."""
    args = node.args  # type: ignore[attr-defined]
    positional = [a.arg for a in args.posonlyargs + args.args]
    kwonly = [a.arg for a in args.kwonlyargs]
    defaults: Dict[str, ast.AST] = {}
    if args.defaults:
        for name, default in zip(positional[-len(args.defaults):],
                                 args.defaults):
            defaults[name] = default
    for name, kw_default in zip(kwonly, args.kw_defaults):
        if kw_default is not None:
            defaults[name] = kw_default
    return positional, kwonly, defaults


def load_module(path: Path, source: str, tree: ast.Module) -> ModuleInfo:
    """Build the :class:`ModuleInfo` for one pre-parsed source file."""
    name = module_name_from_layout(path)
    info = ModuleInfo(name=name, path=path.as_posix(), source=source,
                      tree=tree, is_package=path.stem == "__init__")
    _collect_imports(info)
    _collect_symbols(info)
    return info


def _collect_imports(info: ModuleInfo) -> None:
    """Fill ``info.imports`` from top-level and nested import statements."""
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                target = alias.name if alias.asname else \
                    alias.name.split(".", 1)[0]
                info.imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_from_base(info, node)
            if base is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                info.imports[local] = (f"{base}.{alias.name}"
                                       if base else alias.name)


def _resolve_from_base(info: ModuleInfo,
                       node: ast.ImportFrom) -> Optional[str]:
    """The absolute module a ``from X import ...`` pulls names out of."""
    if node.level == 0:
        return node.module or ""
    package_parts = info.package().split(".") if info.package() else []
    hops = node.level - 1
    if hops > len(package_parts):
        return None
    base_parts = package_parts[:len(package_parts) - hops]
    if node.module:
        base_parts = base_parts + node.module.split(".")
    return ".".join(base_parts)


def _collect_symbols(info: ModuleInfo) -> None:
    """Index module-level constants, functions, classes, and methods."""
    for node in info.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                isinstance(node.targets[0], ast.Name) and \
                isinstance(node.value, ast.Constant):
            info.constants[node.targets[0].id] = node.value
        elif isinstance(node, ast.AnnAssign) and \
                isinstance(node.target, ast.Name) and \
                isinstance(node.value, ast.Constant):
            info.constants[node.target.id] = node.value
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.functions[node.name] = _function_info(info, node, None)
        elif isinstance(node, ast.ClassDef):
            info.classes[node.name] = _class_info(info, node)


def _function_info(info: ModuleInfo, node: ast.AST,
                   class_name: Optional[str]) -> FunctionInfo:
    positional, kwonly, defaults = _param_shape(node)
    is_method = class_name is not None
    if is_method and positional and positional[0] in ("self", "cls"):
        positional = positional[1:]
    prefix = f"{info.name}.{class_name}." if class_name else f"{info.name}."
    return FunctionInfo(
        qualname=prefix + node.name,  # type: ignore[attr-defined]
        module=info.name, node=node, params=positional, kwonly=kwonly,
        defaults=defaults, class_name=class_name, is_method=is_method)


def _class_info(info: ModuleInfo, node: ast.ClassDef) -> ClassInfo:
    cls = ClassInfo(qualname=f"{info.name}.{node.name}", module=info.name,
                    node=node,
                    bases=[rendered for rendered in
                           (dotted_name(base) for base in node.bases)
                           if rendered is not None])
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            cls.methods[item.name] = _function_info(info, item, node.name)
    for inner in ast.walk(node):
        if isinstance(inner, ast.Assign) and _is_set_value(inner.value):
            for target in inner.targets:
                if isinstance(target, ast.Attribute) and \
                        isinstance(target.value, ast.Name) and \
                        target.value.id == "self":
                    cls.set_attrs.add(target.attr)
    if "__init__" not in cls.methods and _is_dataclass(node):
        fields = [item.target.id for item in node.body
                  if isinstance(item, ast.AnnAssign) and
                  isinstance(item.target, ast.Name) and
                  "ClassVar" not in ast.unparse(item.annotation)]
        if fields:
            cls.methods["__init__"] = FunctionInfo(
                qualname=f"{cls.qualname}.__init__", module=info.name,
                node=node, params=fields, kwonly=[],
                class_name=node.name, is_method=True, synthetic=True)
    return cls


def _is_dataclass(node: ast.ClassDef) -> bool:
    """Whether the class carries a ``@dataclass`` decorator."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        name = target.attr if isinstance(target, ast.Attribute) else \
            (target.id if isinstance(target, ast.Name) else "")
        if name == "dataclass":
            return True
    return False


def _is_set_value(node: ast.AST) -> bool:
    """Whether an expression evidently constructs a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return isinstance(node, ast.Call) and \
        isinstance(node.func, ast.Name) and \
        node.func.id in ("set", "frozenset")


class Project:
    """Every loaded module, with global symbol resolution."""

    def __init__(self, modules: Sequence[ModuleInfo]) -> None:
        self.modules: Dict[str, ModuleInfo] = {m.name: m for m in modules}
        #: Fully qualified function/method name -> FunctionInfo.
        self.functions: Dict[str, FunctionInfo] = {}
        #: Fully qualified class name -> ClassInfo.
        self.classes: Dict[str, ClassInfo] = {}
        for module in modules:
            for function in module.functions.values():
                self.functions[function.qualname] = function
            for cls in module.classes.values():
                self.classes[cls.qualname] = cls
                for method in cls.methods.values():
                    self.functions[method.qualname] = method

    def module_for(self, path: str) -> Optional[ModuleInfo]:
        """The loaded module at filesystem ``path``, if any."""
        for module in self.modules.values():
            if module.path == path:
                return module
        return None

    # -- name resolution -----------------------------------------------------

    def resolve(self, module: ModuleInfo, name: str) -> Optional[str]:
        """Resolve a local ``name`` in ``module`` to a dotted target.

        Checks, in order: local imports, module-level functions and
        classes, and re-exports through package ``__init__`` chains
        (``from .scenario import seed_for`` in ``repro.exec`` makes
        ``repro.exec.seed_for`` an alias of the real definition).
        """
        if name in module.imports:
            return self._canonical(module.imports[name])
        if name in module.functions:
            return module.functions[name].qualname
        if name in module.classes:
            return module.classes[name].qualname
        return None

    def _canonical(self, dotted: str, _depth: int = 0) -> str:
        """Follow re-export chains to the defining module's name."""
        if _depth > 8:
            return dotted
        if dotted in self.functions or dotted in self.classes or \
                dotted in self.modules:
            return dotted
        if "." in dotted:
            head, tail = dotted.rsplit(".", 1)
            owner = self.modules.get(head)
            if owner is not None and tail in owner.imports:
                return self._canonical(owner.imports[tail], _depth + 1)
        return dotted

    def function_at(self, dotted: str) -> Optional[FunctionInfo]:
        """The FunctionInfo a dotted reference names, if it is ours.

        A class reference resolves to its ``__init__`` (the call shape
        of a constructor).
        """
        target = self._canonical(dotted)
        if target in self.functions:
            return self.functions[target]
        cls = self.classes.get(target)
        if cls is not None:
            init = cls.methods.get("__init__")
            if init is not None:
                return init
            return self._inherited_init(cls)
        return None

    def _inherited_init(self, cls: ClassInfo,
                        _depth: int = 0) -> Optional[FunctionInfo]:
        """Walk dotted base names looking for an inherited ``__init__``."""
        if _depth > 4:
            return None
        owner = self.modules.get(cls.module)
        for base in cls.bases:
            head = base.split(".", 1)[0]
            dotted = base
            if owner is not None and head in owner.imports:
                dotted = owner.imports[head] + base[len(head):]
            elif owner is not None and head in owner.classes:
                dotted = f"{cls.module}.{base}"
            parent = self.classes.get(self._canonical(dotted))
            if parent is None:
                continue
            init = parent.methods.get("__init__")
            if init is not None:
                return init
            deeper = self._inherited_init(parent, _depth + 1)
            if deeper is not None:
                return deeper
        return None


def build_project(files: Sequence[Tuple[Path, str, ast.Module]]) -> Project:
    """Assemble a :class:`Project` from pre-parsed (path, source, tree)."""
    return Project([load_module(path, source, tree)
                    for path, source, tree in files])
