"""Journal-payload purity (JRN601).

Write-ahead journals are the determinism contract's persistence layer:
``run-result`` records are CRC-framed canonical JSON, replayed bit-exact
on resume and digested for the serial==parallel comparison.  Any value
reaching a journal therefore has to be canonical and deterministic —
a list built in set-iteration order differs between processes, an
``id()`` is a memory address, a wall-clock stamp never replays, a NaN
breaks JSON round-tripping, and non-string dict keys make key order
coercion-dependent.

Sinks are ``JournalWriter.append(...)`` calls (resolved by constructed
type where the dataflow can see it, by ``journal``/``writer`` naming
otherwise) and the return values of payload-shaped functions
(``error_payload``, ``end_record``, ``fingerprint``, ``*_payload``,
``*_record``).  Taints propagate inter-procedurally through function
summaries, so a helper that builds the impure value two calls away
from the ``append`` is still caught at the sink.
"""

from __future__ import annotations

from ..findings import Severity
from .dataflow import (ProjectAnalysis, TAINT_ID, TAINT_NONCANONICAL,
                       TAINT_NONSTR_KEY, TAINT_SET_ORDER, TAINT_WALLCLOCK)
from .engine import ProjectContext, ProjectRule, register_project

_TAINT_TEXT = {
    TAINT_SET_ORDER: "set-iteration order",
    TAINT_ID: "id()/hash() values",
    TAINT_WALLCLOCK: "wall-clock readings",
    TAINT_NONSTR_KEY: "non-string dict keys",
    TAINT_NONCANONICAL: "non-canonical floats (nan/inf)",
}

_SINK_TEXT = {
    "journal-append": "a journal append",
    "payload-return": "a journal/report payload",
}


@register_project
class JournalPurityRule(ProjectRule):
    """JRN601: impure values reaching journal/payload sinks."""

    code = "JRN601"
    name = "journal-purity"
    severity = Severity.ERROR
    rationale = ("Journal records are replayed bit-exact on resume and "
                 "digested for the serial==parallel campaign contract; "
                 "a payload carrying set order, id() addresses, wall "
                 "clock, NaN, or non-string keys corrupts that contract "
                 "silently — the journal still *reads* fine, it just "
                 "stops being deterministic.")

    def check(self, analysis: ProjectAnalysis,
              ctx: ProjectContext) -> None:
        """Flag tainted sink values, naming every taint present."""
        for sink in analysis.all_observations().sinks:
            relevant = sorted(sink.tag.taints & _TAINT_TEXT.keys())
            if not relevant:
                continue
            reasons = ", ".join(_TAINT_TEXT[t] for t in relevant)
            ctx.report(self, sink.module, sink.node,
                       f"value reaching {_SINK_TEXT[sink.kind]} derives "
                       f"from {reasons}; journal payloads must be "
                       "canonical, deterministic JSON (sort the "
                       "iteration, use stable identifiers, take time "
                       "from the engine)")
