"""Whole-program analysis layer for the simulation-safety linter.

Per-file rules (DET/UNIT/EVT/EXC) see one AST; this package sees the
program.  It loads every module under the lint roots
(:mod:`.loader`), resolves imports and calls (:mod:`.callgraph`),
computes per-function dataflow summaries to a fixpoint
(:mod:`.dataflow`), and runs three whole-program rule families on the
result:

* **FLOW5xx** seed provenance — every RNG seed must trace back to a
  parameter, a spec/config field, or ``seed_for(...)``;
* **UNIT21x** inter-procedural unit flow — ``_us``/``_s``/``_bps``
  suffix tags follow values across call boundaries;
* **JRN601** journal-payload purity — nothing derived from set order,
  ``id()``, wall clock, or non-canonical floats/keys may reach a
  write-ahead journal.

Run it as ``python -m repro lint --project`` (see
``docs/static-analysis.md`` for architecture and known limits).
"""

from .callgraph import (CallGraph, CallSite, build_callgraph,
                        dump_callgraph, resolve_call)
from .dataflow import (FunctionSummary, ProjectAnalysis, Tag,
                       analyze_project, dump_summaries)
from .engine import (PROJECT_RULE_REGISTRY, ProjectContext, ProjectRule,
                     all_project_rules, analyze_files, lint_project_files,
                     parse_files, project_rule_codes, register_project,
                     run_project_rules)
from .loader import (ClassInfo, FunctionInfo, ModuleInfo, Project,
                     build_project, load_module, module_name_from_layout)

__all__ = [
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "FunctionSummary",
    "ModuleInfo",
    "PROJECT_RULE_REGISTRY",
    "Project",
    "ProjectAnalysis",
    "ProjectContext",
    "ProjectRule",
    "Tag",
    "all_project_rules",
    "analyze_files",
    "analyze_project",
    "build_callgraph",
    "build_project",
    "dump_callgraph",
    "dump_summaries",
    "lint_project_files",
    "load_module",
    "module_name_from_layout",
    "parse_files",
    "project_rule_codes",
    "register_project",
    "resolve_call",
    "run_project_rules",
]
