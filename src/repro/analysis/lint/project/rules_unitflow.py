"""Inter-procedural unit-flow rules (UNIT21x).

The per-file UNIT202 sees ``start_s + delay_us`` inside one expression;
these rules follow the suffix convention across call boundaries, where
the same bug hides more easily: a ``latency_us`` local passed into a
``timeout_s`` parameter is silent at both ends.  Unit tags propagate
through assignments, arithmetic, converter calls, and function-return
summaries (:mod:`.dataflow`), so the check also fires when the
mismatched value arrives via ``x = some_latency_us(); f(timeout_s=x)``.

Passing through a :mod:`repro.units` converter re-tags the value: a
converter with a known conversion contributes its real output unit
(so ``f(timeout_s=usec(x))`` is clean and ``f(timeout_s=as_usec(x))``
still flags), and an unknown converter yields an untagged value, which
is never flagged — adding a converter call can only remove findings,
a monotonicity the hypothesis suite pins.
"""

from __future__ import annotations

from typing import Optional

from ..findings import Severity
from ..rules_units import unit_for_identifier
from .dataflow import (Unit, _CONVERTER_ARGS, ProjectAnalysis)
from .engine import ProjectContext, ProjectRule, register_project


def _fmt(unit: Unit) -> str:
    return f"{unit[1]} ({unit[0]})"


@register_project
class CrossCallUnitRule(ProjectRule):
    """UNIT210: a tagged value flows into a differently-tagged param."""

    code = "UNIT210"
    name = "cross-call-unit"
    severity = Severity.ERROR
    rationale = ("A latency_us local passed into a timeout_s parameter "
                 "is invisible to per-expression checks — both call "
                 "sites type as float. Tracking suffix tags through "
                 "assignments, returns, and calls makes the mismatch "
                 "visible at the argument that commits it; repro.units "
                 "converters are the sanctioned re-tagging points.")

    def check(self, analysis: ProjectAnalysis,
              ctx: ProjectContext) -> None:
        """Flag call arguments whose unit conflicts with the parameter."""
        for binding in analysis.all_observations().bindings:
            param_unit = self._param_unit(binding.callee.module,
                                          binding.callee.name,
                                          binding.param,
                                          binding.callee.params)
            arg_unit = binding.tag.unit
            if param_unit is None or arg_unit is None:
                continue
            if param_unit == arg_unit:
                continue
            short = binding.callee.qualname.split(".", 1)[-1]
            detail = "different dimensions" \
                if param_unit[0] != arg_unit[0] else "a scale mismatch"
            ctx.report(self, binding.module, binding.node,
                       f"argument carries {_fmt(arg_unit)} but parameter "
                       f"{binding.param!r} of {short}() expects "
                       f"{_fmt(param_unit)} — {detail}; convert through "
                       "repro.units first")

    @staticmethod
    def _param_unit(callee_module: str, callee_name: str, param: str,
                    params: "list[str]") -> Optional[Unit]:
        unit = unit_for_identifier(param)
        if unit is not None:
            return unit
        if (callee_module == "units" or
                callee_module.endswith(".units")) and \
                params and param == params[0]:
            return _CONVERTER_ARGS.get(callee_name)
        return None


@register_project
class ReturnUnitMismatchRule(ProjectRule):
    """UNIT211: a function's name-suffix unit conflicts with its body."""

    code = "UNIT211"
    name = "return-unit-mismatch"
    severity = Severity.WARNING
    rationale = ("def elapsed_us(...) returning a value every dataflow "
                 "path tags as seconds misleads every caller at once; "
                 "the name is the API contract the unit-flow analysis "
                 "(and every human) trusts.")

    def check(self, analysis: ProjectAnalysis,
              ctx: ProjectContext) -> None:
        """Flag declared-vs-inferred return unit conflicts."""
        for qualname in sorted(analysis.summaries):
            summary = analysis.summaries[qualname]
            if summary.declared_unit is None or \
                    summary.inferred_unit is None:
                continue
            if summary.declared_unit == summary.inferred_unit:
                continue
            info = analysis.project.functions.get(qualname)
            if info is None:
                continue
            module = analysis.project.modules.get(info.module)
            if module is None:
                continue
            ctx.report(self, module, info.node,
                       f"function {info.name!r} declares "
                       f"{_fmt(summary.declared_unit)} by suffix but "
                       f"every return is tagged "
                       f"{_fmt(summary.inferred_unit)}; rename it or fix "
                       "the conversion")
