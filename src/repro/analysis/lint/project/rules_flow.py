"""Seed-provenance rules (FLOW5xx): every RNG seed must be traceable.

The per-file DET101 catches ``random.Random()`` with *no* seed; these
rules close the remaining hole — a seed that exists but is wrong.  A
literal hidden two calls deep (``setup() -> make_rng(1234) ->
random.Random(seed)``) pins every "seeded" campaign to one stream; a
wall-clock seed un-pairs the PAM-vs-naive comparison while looking
seeded.  Acceptable provenance is an explicit parameter, a spec/config
field, a declared default, or :func:`repro.exec.scenario.seed_for`.

Each rule scans both direct RNG constructor sites and the argument
bindings whose callee parameter (transitively) reaches a seed position
— that transitive set is the ``seed_params`` fixpoint computed in
:mod:`.dataflow`.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from ..findings import Severity
from .dataflow import (LITERAL, ProjectAnalysis, Tag, UNKNOWN, WALLCLOCK,
                       seed_origin_ok)
from .engine import ProjectContext, ProjectRule, register_project
from .loader import ModuleInfo


def _seed_flows(analysis: ProjectAnalysis) -> Iterator[
        Tuple[ModuleInfo, ast.AST, Tag, str]]:
    """Every (module, node, tag, description) that reaches an RNG seed."""
    obs = analysis.all_observations()
    for site in obs.rng_sites:
        if site.seed_tag is None or site.seed_node is None:
            continue
        yield (site.module, site.seed_node, site.seed_tag,
               f"the seed of {site.constructor}(...)")
    for binding in obs.bindings:
        summary = analysis.summaries.get(binding.callee.qualname)
        if summary is None or binding.param not in summary.seed_params:
            continue
        short = binding.callee.qualname.split(".", 1)[-1]
        yield (binding.module, binding.node, binding.tag,
               f"parameter {binding.param!r} of {short}(), "
               f"which (transitively) seeds an RNG")


@register_project
class LiteralSeedRule(ProjectRule):
    """FLOW501: a literal constant reaches an RNG seed position."""

    code = "FLOW501"
    name = "literal-seed"
    severity = Severity.ERROR
    rationale = ("A hardcoded seed pins every 'seeded' run to one stream: "
                 "campaigns stop varying with --seed, the per-run "
                 "seed_for(campaign_seed, index) derivation is silently "
                 "bypassed, and replay instructions recorded in journals "
                 "lie. Library code must thread the seed from a "
                 "parameter, a spec field, or seed_for(...).")

    def check(self, analysis: ProjectAnalysis,
              ctx: ProjectContext) -> None:
        """Flag all-literal seed values at RNG sites and seed bindings."""
        for module, node, tag, into in _seed_flows(analysis):
            if tag.origins and tag.origins <= {LITERAL}:
                ctx.report(self, module, node,
                           f"literal value flows into {into}; derive the "
                           "seed from a parameter, a spec/config field, "
                           "or seed_for(campaign_seed, index)")


@register_project
class WallClockSeedRule(ProjectRule):
    """FLOW502: a wall-clock reading reaches an RNG seed position."""

    code = "FLOW502"
    name = "wall-clock-seed"
    severity = Severity.ERROR
    rationale = ("Seeding from time.time()/datetime.now() makes every run "
                 "unrepeatable while still *looking* seeded — the worst "
                 "of both worlds. Replay, paired comparisons, and "
                 "journal-resume all silently break.")

    def check(self, analysis: ProjectAnalysis,
              ctx: ProjectContext) -> None:
        """Flag wall-clock-derived seed values."""
        for module, node, tag, into in _seed_flows(analysis):
            if WALLCLOCK in tag.origins:
                ctx.report(self, module, node,
                           f"wall-clock-derived value flows into {into}; "
                           "seeds must come from the scenario spec so "
                           "runs replay")


@register_project
class UntracedSeedRule(ProjectRule):
    """FLOW503: an RNG seed whose provenance cannot be established."""

    code = "FLOW503"
    name = "untraced-seed"
    severity = Severity.WARNING
    rationale = ("A seed the dataflow analysis cannot trace to a "
                 "parameter, spec field, or seed_for(...) is a blind "
                 "spot: it may be fine, but nothing checks it. Route it "
                 "through an explicit parameter so provenance is "
                 "machine-checkable.")

    def check(self, analysis: ProjectAnalysis,
              ctx: ProjectContext) -> None:
        """Flag direct RNG sites whose seed origin is wholly unknown."""
        for site in analysis.all_observations().rng_sites:
            tag: Optional[Tag] = site.seed_tag
            if tag is None or site.seed_node is None:
                continue  # missing seeds are DET101's finding
            if not tag.origins or seed_origin_ok(tag.origins):
                continue
            if WALLCLOCK in tag.origins or tag.origins <= {LITERAL}:
                continue  # FLOW501/502 already fired
            if tag.origins <= {UNKNOWN, LITERAL}:
                ctx.report(self, site.module, site.seed_node,
                           f"cannot trace the seed of "
                           f"{site.constructor}(...) to a parameter, "
                           "spec field, or seed_for(...); thread it "
                           "explicitly")
