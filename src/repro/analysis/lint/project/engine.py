"""Project-rule base class, registry, and the project-lint driver.

Project rules consume a finished :class:`~.dataflow.ProjectAnalysis`
(summaries at fixpoint plus the final round's observations) instead of
visiting ASTs; they share the per-file framework's ``code`` / ``name``
/ ``severity`` / ``rationale`` contract so ``--list-rules``, inline
``noqa`` suppression, and the justified baseline treat both kinds
identically.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Type

from ....errors import AnalysisError
from ..findings import Finding, PARSE_ERROR_RULE, Severity
from ..visitor import LintRule
from .dataflow import ProjectAnalysis, analyze_project
from .loader import ModuleInfo, Project, build_project


class ProjectRule(LintRule):
    """Base for whole-program rules (FLOW5xx, UNIT21x, JRN601)."""

    def check(self, analysis: ProjectAnalysis,
              ctx: "ProjectContext") -> None:
        """Inspect the analysis; report findings through ``ctx``."""
        raise NotImplementedError


#: Registry of whole-program rules, keyed by code.
PROJECT_RULE_REGISTRY: Dict[str, Type[ProjectRule]] = {}


def register_project(rule_class: Type[ProjectRule]) -> Type[ProjectRule]:
    """Class decorator adding a project rule to the registry."""
    if not rule_class.code:
        raise ValueError(f"{rule_class.__name__} has no code")
    if rule_class.code in PROJECT_RULE_REGISTRY:
        raise ValueError(f"duplicate project rule {rule_class.code}")
    PROJECT_RULE_REGISTRY[rule_class.code] = rule_class
    return rule_class


def all_project_rules() -> List[ProjectRule]:
    """Fresh instances of every project rule, ordered by code."""
    from . import (rules_flow, rules_journal,  # noqa: F401
                   rules_unitflow)
    return [PROJECT_RULE_REGISTRY[code]()
            for code in sorted(PROJECT_RULE_REGISTRY)]


def project_rule_codes() -> List[str]:
    """Every registered project-rule code (importing the rule modules)."""
    return [rule.code for rule in all_project_rules()]


class ProjectContext:
    """Finding collector for project rules (location from any module)."""

    def __init__(self) -> None:
        self._findings: List[Finding] = []

    def report(self, rule: ProjectRule, module: ModuleInfo, node: ast.AST,
               message: str, severity: Optional[Severity] = None) -> None:
        """Record one finding anchored at ``node`` in ``module``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        lines = module.source.splitlines()
        context = lines[line - 1].strip() if 1 <= line <= len(lines) else ""
        self._findings.append(Finding(
            path=module.path, line=line, col=col + 1, rule=rule.code,
            severity=severity if severity is not None else rule.severity,
            message=message, context=context))

    @property
    def findings(self) -> List[Finding]:
        """Deduplicated findings in source order."""
        return sorted(set(self._findings))


def parse_files(files: Sequence[Path]) -> Tuple[
        List[Tuple[Path, str, ast.Module]], List[Finding]]:
    """Parse every file; syntax failures become E000 findings."""
    parsed: List[Tuple[Path, str, ast.Module]] = []
    errors: List[Finding] = []
    for path in files:
        try:
            source = path.read_text()
        except (OSError, UnicodeDecodeError) as exc:
            raise AnalysisError(f"cannot read {path}: {exc}") from exc
        try:
            tree = ast.parse(source, filename=str(path))
        except (SyntaxError, ValueError) as exc:
            line = getattr(exc, "lineno", None) or 1
            col = getattr(exc, "offset", None) or 1
            detail = getattr(exc, "msg", None) or str(exc)
            errors.append(Finding(
                path=path.as_posix(), line=line, col=col,
                rule=PARSE_ERROR_RULE, severity=Severity.ERROR,
                message=f"cannot parse file: {detail}", context=""))
            continue
        parsed.append((path, source, tree))
    return parsed, errors


def analyze_files(files: Sequence[Path]) -> ProjectAnalysis:
    """Load + summarize a file set (unparseable files are skipped)."""
    parsed, _ = parse_files(files)
    return analyze_project(build_project(parsed))


def run_project_rules(analysis: ProjectAnalysis) -> List[Finding]:
    """Run every registered project rule over one finished analysis."""
    ctx = ProjectContext()
    for rule in all_project_rules():
        rule.check(analysis, ctx)
    return ctx.findings


def lint_project_files(files: Sequence[Path]) -> List[Finding]:
    """End to end: parse, fixpoint-analyze, run project rules."""
    return run_project_rules(analyze_files(files))


def project_for(analysis: ProjectAnalysis) -> Project:
    """Convenience accessor used by rule tests."""
    return analysis.project
