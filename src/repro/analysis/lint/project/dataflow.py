"""Per-function abstract evaluation and inter-procedural summaries.

Every function body is walked once per fixpoint round by
:class:`FunctionEvaluator`, which computes a :class:`Tag` — an abstract
value — for each expression:

* ``unit``: the ``(dimension, scale)`` the value's naming declares
  (``latency_us`` → ``("time", "us")``), joined through assignments,
  arithmetic, and converter calls;
* ``origins``: where the value came from — ``literal``, ``param:<name>``,
  ``self`` (an attribute of the receiver: configuration), ``seed_for``,
  ``wallclock``, ``default``, or ``unknown``;
* ``taints``: journal-purity poisons — ``set-order``, ``id``,
  ``wallclock``, ``nonstr-key``, ``noncanonical``.

Each round produces a :class:`FunctionSummary` (parameter units, seed
parameters, return unit/origins/taints, with ``param:<name>`` atoms kept
symbolic so call sites can substitute actual arguments), and
:func:`analyze_project` iterates rounds until no summary changes.  The
evaluator also records the raw *observations* — RNG constructor sites,
argument bindings at resolved calls, journal sink values — that the
FLOW5xx / UNIT21x / JRN601 rules consume.

The analysis is deliberately flow-light: one forward pass per body,
last assignment wins, both branches of an ``if`` execute in order.
That is imprecise in ways that favour *reporting* (a tag survives a
branch that would have cleared it) but it keeps a full ``src/repro``
fixpoint under a second per round.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..rules_determinism import _WALL_CLOCK_SUFFIXES, _chain_matches
from ..rules_units import unit_for_identifier
from ..visitor import dotted_name
from .callgraph import resolve_call
from .loader import ClassInfo, FunctionInfo, ModuleInfo, Project

Unit = Tuple[str, str]

# -- origin atoms ---------------------------------------------------------

LITERAL = "literal"
SELF = "self"
SEED_FOR = "seed_for"
WALLCLOCK = "wallclock"
DEFAULT = "default"
UNKNOWN = "unknown"

#: Origins acceptable as RNG-seed provenance: an explicit parameter, a
#: spec/config field (an attribute of the receiver or of a parameter),
#: the canonical derivation helper, or a declared parameter default.
#: ``self`` covers both the bare receiver and ``self:<attr>`` atoms.
_SEED_OK_PREFIXES = ("param:", "self")
_SEED_OK_ATOMS = frozenset({SEED_FOR, DEFAULT})

# -- taint atoms ----------------------------------------------------------

TAINT_SET_ORDER = "set-order"
TAINT_ID = "id"
TAINT_WALLCLOCK = "wallclock"
TAINT_NONSTR_KEY = "nonstr-key"
TAINT_NONCANONICAL = "noncanonical"

#: Order-independent aggregations that launder set-iteration order.
_SET_ORDER_CLEANSERS = frozenset({"sorted", "sum", "min", "max", "len",
                                  "any", "all"})

#: Builtins that pass their argument through (possibly reshaped).
_PASSTHROUGH_BUILTINS = frozenset({"list", "tuple", "int", "float", "str",
                                   "bool", "abs", "round", "repr", "dict",
                                   "reversed", "enumerate", "zip", "iter",
                                   "next"})

#: ``repro.units`` converter -> unit of the value it returns.
_CONVERTER_RETURNS: Dict[str, Unit] = {
    "gbps": ("rate", "bps"), "mbps": ("rate", "bps"),
    "as_gbps": ("rate", "gbps"), "as_mbps": ("rate", "mbps"),
    "kib": ("size", "bytes"), "mib": ("size", "bytes"),
    "bits": ("size", "bits"),
    "usec": ("time", "s"), "msec": ("time", "s"),
    "as_usec": ("time", "us"), "as_msec": ("time", "ms"),
    "serialization_time": ("time", "s"), "wire_time": ("time", "s"),
}

#: ``repro.units`` converter -> unit its (first) argument must carry.
_CONVERTER_ARGS: Dict[str, Unit] = {
    "gbps": ("rate", "gbps"), "mbps": ("rate", "mbps"),
    "as_gbps": ("rate", "bps"), "as_mbps": ("rate", "bps"),
    "kib": ("size", "kib"), "mib": ("size", "mib"),
    "bits": ("size", "bytes"),
    "usec": ("time", "us"), "msec": ("time", "ms"),
    "as_usec": ("time", "s"), "as_msec": ("time", "s"),
}

#: RNG constructor call chains (matched by suffix, like DET101).
_RNG_CONSTRUCTORS = ("random.Random", "Random", "default_rng",
                     "random.default_rng")

#: Function/method names whose return value is a journal/report payload.
_PAYLOAD_RETURN_NAMES = frozenset({"error_payload", "end_record",
                                   "fingerprint"})
_PAYLOAD_RETURN_SUFFIXES = ("_payload", "_record")


@dataclass(frozen=True)
class Tag:
    """The abstract value of one expression."""

    unit: Optional[Unit] = None
    origins: FrozenSet[str] = frozenset()
    taints: FrozenSet[str] = frozenset()
    #: Constructed class qualname, or the builtin marker ``"set"``.
    klass: Optional[str] = None


_UNKNOWN_TAG = Tag(origins=frozenset({UNKNOWN}))
_LITERAL_TAG = Tag(origins=frozenset({LITERAL}))


def merge(*tags: Tag) -> Tag:
    """Join tags: units must agree to survive, origins/taints union."""
    unit: Optional[Unit] = None
    unit_set = False
    origins: Set[str] = set()
    taints: Set[str] = set()
    for tag in tags:
        origins |= tag.origins
        taints |= tag.taints
        if tag.unit is not None:
            if not unit_set:
                unit, unit_set = tag.unit, True
            elif unit != tag.unit:
                unit = None
    return Tag(unit=unit, origins=frozenset(origins),
               taints=frozenset(taints))


def seed_origin_ok(origins: FrozenSet[str]) -> bool:
    """Whether any origin is acceptable seed provenance."""
    return any(atom in _SEED_OK_ATOMS or
               atom.startswith(_SEED_OK_PREFIXES)
               for atom in sorted(origins))


def param_atoms(origins: FrozenSet[str]) -> List[str]:
    """The parameter names among ``origins``' ``param:`` atoms."""
    return [atom[len("param:"):] for atom in sorted(origins)
            if atom.startswith("param:")]


@dataclass(frozen=True)
class FunctionSummary:
    """What a caller needs to know about one function."""

    qualname: str
    param_units: Tuple[Tuple[str, Unit], ...]
    #: Parameters that (transitively) reach an RNG seed position.
    seed_params: FrozenSet[str]
    #: Unit declared by the function's own name suffix, if any.
    declared_unit: Optional[Unit]
    #: Unit joined over the function's return expressions.
    inferred_unit: Optional[Unit]
    return_origins: FrozenSet[str]
    return_taints: FrozenSet[str]
    #: ``self.<attr> = <value>`` effects: attribute name -> the
    #: parameters whose values reach it (drives cross-method seed
    #: tracking: a param stored into an attribute some other method
    #: seeds an RNG from is itself a seed parameter).
    stores: Tuple[Tuple[str, FrozenSet[str]], ...] = ()

    @property
    def return_unit(self) -> Optional[Unit]:
        """The unit a call to this function yields (declared wins)."""
        return self.declared_unit or self.inferred_unit


@dataclass
class RngSite:
    """One RNG constructor call and the tag of its seed argument."""

    function: str
    module: ModuleInfo
    node: ast.Call
    constructor: str
    #: None when the constructor was called with no seed at all.
    seed_tag: Optional[Tag]
    seed_node: Optional[ast.AST]


@dataclass
class ArgBinding:
    """One argument bound to a known parameter at a resolved call."""

    caller: str
    module: ModuleInfo
    callee: FunctionInfo
    param: str
    call: ast.Call
    node: ast.AST
    tag: Tag
    #: The argument expression is itself a call into a units module —
    #: the sanctioned way to change a value's unit.
    via_converter: bool


@dataclass
class SinkValue:
    """One value reaching a journal/payload sink."""

    kind: str  # "journal-append" | "payload-return"
    function: str
    module: ModuleInfo
    node: ast.AST
    tag: Tag


@dataclass
class Observations:
    """Everything one evaluation pass recorded for the rules."""

    rng_sites: List[RngSite] = field(default_factory=list)
    bindings: List[ArgBinding] = field(default_factory=list)
    sinks: List[SinkValue] = field(default_factory=list)


class FunctionEvaluator:
    """One forward pass over one function (or module) body."""

    def __init__(self, project: Project, module: ModuleInfo,
                 function: Optional[FunctionInfo],
                 summaries: Dict[str, FunctionSummary],
                 seed_attrs: Optional[Dict[str, FrozenSet[str]]] = None
                 ) -> None:
        self.project = project
        self.module = module
        self.function = function
        self.summaries = summaries
        #: Class qualname -> attributes observed seeding RNGs.
        self.seed_attrs = seed_attrs if seed_attrs is not None else {}
        self.env: Dict[str, Tag] = {}
        self.obs = Observations()
        self._return_tags: List[Tag] = []
        self._qualname = (function.qualname if function is not None
                          else f"{module.name}.<module>")

    # -- public ----------------------------------------------------------

    def run(self) -> FunctionSummary:
        """Evaluate the body; return this round's summary."""
        if self.function is not None and self.function.synthetic:
            # A dataclass-synthesized __init__: each field parameter is
            # stored into the same-named attribute, nothing else runs.
            for param in self.function.params:
                self.env[f"self.{param}"] = Tag(
                    unit=unit_for_identifier(param),
                    origins=frozenset({f"param:{param}"}))
            return self._summarize()
        if self.function is not None:
            body = self.function.node.body  # type: ignore[attr-defined]
        else:
            body = [stmt for stmt in self.module.tree.body
                    if not isinstance(stmt, (ast.FunctionDef,
                                             ast.AsyncFunctionDef,
                                             ast.ClassDef))]
        self.exec_block(body)
        return self._summarize()

    def _own_class_qualname(self) -> Optional[str]:
        if self.function is None or self.function.class_name is None:
            return None
        return f"{self.module.name}.{self.function.class_name}"

    # -- summary ---------------------------------------------------------

    def _summarize(self) -> FunctionSummary:
        name = self.function.name if self.function is not None else ""
        params = self.function.all_params if self.function is not None \
            else []
        param_units = tuple(
            (param, unit) for param, unit in
            ((p, unit_for_identifier(p)) for p in params)
            if unit is not None)
        seed_params: Set[str] = set()
        for site in self.obs.rng_sites:
            if site.seed_tag is not None:
                seed_params.update(param_atoms(site.seed_tag.origins))
        for binding in self.obs.bindings:
            callee = self.summaries.get(binding.callee.qualname)
            if callee is not None and binding.param in callee.seed_params:
                seed_params.update(param_atoms(binding.tag.origins))
        store_pairs = tuple(sorted(
            (key[len("self."):], frozenset(param_atoms(tag.origins)))
            for key, tag in self.env.items()
            if key.startswith("self.") and param_atoms(tag.origins)))
        own_class = self._own_class_qualname()
        if own_class is not None:
            for attr, stored in store_pairs:
                if attr in self.seed_attrs.get(own_class, frozenset()):
                    seed_params.update(stored)
        returned = merge(*self._return_tags) if self._return_tags else Tag()
        declared = unit_for_identifier(name) if name else None
        inferred: Optional[Unit] = None
        units_seen = {t.unit for t in self._return_tags if t.unit is not None}
        if len(units_seen) == 1 and all(
                t.unit is not None for t in self._return_tags):
            inferred = next(iter(units_seen))
        return FunctionSummary(
            qualname=self._qualname,
            param_units=param_units,
            seed_params=frozenset(seed_params),
            declared_unit=declared,
            inferred_unit=inferred,
            return_origins=returned.origins,
            return_taints=returned.taints,
            stores=store_pairs)

    # -- statements ------------------------------------------------------

    def exec_block(self, body: List[ast.stmt]) -> None:
        """Execute statements in order, threading the environment."""
        for stmt in body:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        """Dispatch one statement."""
        if isinstance(stmt, ast.Assign):
            tag = self.eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, tag)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self.eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            tag = merge(self._read_target(stmt.target),
                        self.eval(stmt.value))
            self._bind(stmt.target, tag)
        elif isinstance(stmt, ast.Return):
            tag = self.eval(stmt.value) if stmt.value is not None else Tag()
            self._return_tags.append(tag)
            self._record_payload_return(stmt, tag)
        elif isinstance(stmt, ast.For):
            self._bind(stmt.target, self._element_tag(self.eval(stmt.iter)))
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                tag = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, tag)
            self.exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.exec_block(stmt.body)
            for handler in stmt.handlers:
                self.exec_block(handler.body)
            self.exec_block(stmt.orelse)
            self.exec_block(stmt.finalbody)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(stmt.exc)
        elif isinstance(stmt, ast.Assert):
            self.eval(stmt.test)
            if stmt.msg is not None:
                self.eval(stmt.msg)
        # Nested defs/classes and the remaining statement kinds carry no
        # dataflow the project rules consume; skip them.

    def _bind(self, target: ast.AST, tag: Tag) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = tag
        elif isinstance(target, ast.Attribute) and \
                isinstance(target.value, ast.Name) and \
                target.value.id in ("self", "cls"):
            self.env[f"self.{target.attr}"] = tag
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, tag)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, tag)

    def _read_target(self, target: ast.AST) -> Tag:
        if isinstance(target, ast.Name):
            return self.env.get(target.id, Tag())
        return Tag()

    @staticmethod
    def _element_tag(iterable: Tag) -> Tag:
        """The tag of one element drawn from ``iterable``."""
        taints = set(iterable.taints)
        if iterable.klass == "set":
            taints.add(TAINT_SET_ORDER)
        return Tag(origins=iterable.origins, taints=frozenset(taints))

    # -- expressions -----------------------------------------------------

    def eval(self, node: ast.AST) -> Tag:
        """The tag of one expression."""
        if isinstance(node, ast.Constant):
            return _LITERAL_TAG
        if isinstance(node, ast.Name):
            return self._eval_name(node)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node)
        if isinstance(node, ast.BoolOp):
            return merge(*(self.eval(value) for value in node.values))
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand)
        if isinstance(node, ast.Compare):
            joined = merge(self.eval(node.left),
                           *(self.eval(c) for c in node.comparators))
            # A comparison result is order-independent even over sets.
            return Tag(origins=joined.origins,
                       taints=joined.taints - {TAINT_SET_ORDER})
        if isinstance(node, ast.IfExp):
            return merge(self.eval(node.body), self.eval(node.orelse))
        if isinstance(node, (ast.List, ast.Tuple)):
            if not node.elts:
                return _LITERAL_TAG
            return merge(*(self.eval(e) for e in node.elts))
        if isinstance(node, ast.Set):
            inner = merge(*(self.eval(e) for e in node.elts)) \
                if node.elts else Tag()
            return Tag(origins=inner.origins or frozenset({LITERAL}),
                       taints=inner.taints | {TAINT_SET_ORDER},
                       klass="set")
        if isinstance(node, ast.Dict):
            return self._eval_dict(node)
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
            return self._eval_comprehension(node)
        if isinstance(node, ast.DictComp):
            tag = self._comprehension_env(node.generators)
            return merge(tag, self.eval(node.key), self.eval(node.value))
        if isinstance(node, ast.JoinedStr):
            return merge(_LITERAL_TAG,
                         *(self.eval(v.value) for v in node.values
                           if isinstance(v, ast.FormattedValue)))
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, ast.Lambda):
            return _UNKNOWN_TAG
        if isinstance(node, ast.Await):
            return self.eval(node.value)
        if isinstance(node, ast.NamedExpr):
            tag = self.eval(node.value)
            self._bind(node.target, tag)
            return tag
        return _UNKNOWN_TAG

    def _eval_name(self, node: ast.Name) -> Tag:
        name = node.id
        suffix_unit = unit_for_identifier(name)
        if name in self.env:
            tag = self.env[name]
            if tag.unit is None and suffix_unit is not None:
                return Tag(unit=suffix_unit, origins=tag.origins,
                           taints=tag.taints, klass=tag.klass)
            return tag
        if self.function is not None and \
                name in self.function.all_params:
            return Tag(unit=suffix_unit,
                       origins=frozenset({f"param:{name}"}))
        if name in ("self", "cls"):
            return Tag(origins=frozenset({SELF}))
        if name in self.module.constants:
            return _LITERAL_TAG
        return Tag(unit=suffix_unit, origins=frozenset({UNKNOWN}))

    def _eval_attribute(self, node: ast.Attribute) -> Tag:
        chain = dotted_name(node)
        if chain in ("math.nan", "math.inf"):
            return Tag(origins=frozenset({LITERAL}),
                       taints=frozenset({TAINT_NONCANONICAL}))
        suffix_unit = unit_for_identifier(node.attr)
        root = node.value
        if isinstance(root, ast.Name) and root.id in ("self", "cls"):
            stored = self.env.get(f"self.{node.attr}")
            if stored is not None:
                if stored.unit is None and suffix_unit is not None:
                    return Tag(unit=suffix_unit, origins=stored.origins,
                               taints=stored.taints, klass=stored.klass)
                return stored
            cls = self._own_class()
            if cls is not None and node.attr in cls.set_attrs:
                return Tag(unit=suffix_unit,
                           origins=frozenset({f"self:{node.attr}"}),
                           taints=frozenset({TAINT_SET_ORDER}),
                           klass="set")
            return Tag(unit=suffix_unit,
                       origins=frozenset({f"self:{node.attr}"}))
        base = self.eval(root)
        if base.origins & {SELF} or param_atoms(base.origins):
            return Tag(unit=suffix_unit, origins=base.origins,
                       taints=base.taints)
        return Tag(unit=suffix_unit,
                   origins=base.origins or frozenset({UNKNOWN}),
                   taints=base.taints)

    def _eval_subscript(self, node: ast.Subscript) -> Tag:
        base = self.eval(node.value)
        key_unit: Optional[Unit] = None
        if isinstance(node.slice, ast.Constant) and \
                isinstance(node.slice.value, str):
            key_unit = unit_for_identifier(node.slice.value)
        return Tag(unit=key_unit if key_unit is not None else base.unit,
                   origins=base.origins, taints=base.taints)

    def _eval_binop(self, node: ast.BinOp) -> Tag:
        left = self.eval(node.left)
        right = self.eval(node.right)
        joined = merge(left, right)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            unit = left.unit if right.unit is None else (
                right.unit if left.unit is None else
                (left.unit if left.unit == right.unit else None))
            return Tag(unit=unit, origins=joined.origins,
                       taints=joined.taints)
        return Tag(origins=joined.origins, taints=joined.taints)

    def _eval_dict(self, node: ast.Dict) -> Tag:
        parts: List[Tag] = []
        taints: Set[str] = set()
        for key in node.keys:
            if key is None:  # **splat
                continue
            if isinstance(key, ast.Constant) and \
                    not isinstance(key.value, str):
                taints.add(TAINT_NONSTR_KEY)
            parts.append(self.eval(key))
        parts.extend(self.eval(value) for value in node.values)
        joined = merge(*parts) if parts else _LITERAL_TAG
        return Tag(origins=joined.origins,
                   taints=joined.taints | frozenset(taints))

    def _comprehension_env(self,
                           generators: List[ast.comprehension]) -> Tag:
        """Bind comprehension targets; the merged iterable taint/origin."""
        joined = Tag()
        for generator in generators:
            iter_tag = self.eval(generator.iter)
            element = self._element_tag(iter_tag)
            self._bind(generator.target, element)
            for condition in generator.ifs:
                self.eval(condition)
            joined = merge(joined, Tag(origins=element.origins,
                                       taints=element.taints))
        return joined

    def _eval_comprehension(self, node: ast.AST) -> Tag:
        generators = node.generators  # type: ignore[attr-defined]
        outer = self._comprehension_env(generators)
        element = self.eval(node.elt)  # type: ignore[attr-defined]
        joined = merge(outer, element)
        if isinstance(node, ast.SetComp):
            return Tag(origins=joined.origins,
                       taints=joined.taints | {TAINT_SET_ORDER},
                       klass="set")
        return joined

    # -- calls -----------------------------------------------------------

    def _eval_call(self, node: ast.Call) -> Tag:
        chain = dotted_name(node.func)
        arg_tags = [self.eval(arg) for arg in node.args]
        kw_tags = {kw.arg: self.eval(kw.value) for kw in node.keywords}
        joined_args = merge(*arg_tags, *kw_tags.values()) \
            if (arg_tags or kw_tags) else Tag()

        if _chain_matches(chain, _WALL_CLOCK_SUFFIXES) is not None:
            return Tag(origins=frozenset({WALLCLOCK}),
                       taints=frozenset({TAINT_WALLCLOCK}))
        constructor = _chain_matches(chain, _RNG_CONSTRUCTORS)
        if constructor is not None and \
                self._resolves_outside_project(node):
            self._record_rng(node, constructor, arg_tags, kw_tags)
            return Tag(origins=frozenset({UNKNOWN}), klass="rng")
        if isinstance(node.func, ast.Name):
            name = node.func.id
            if name == "seed_for" or (
                    chain is not None and chain.endswith("seed_for")):
                return Tag(origins=frozenset({SEED_FOR}))
            if name in ("id", "hash"):
                return Tag(origins=frozenset({UNKNOWN}),
                           taints=joined_args.taints | {TAINT_ID})
            if name in _SET_ORDER_CLEANSERS:
                return Tag(unit=joined_args.unit,
                           origins=joined_args.origins,
                           taints=joined_args.taints - {TAINT_SET_ORDER})
            if name in ("set", "frozenset"):
                return Tag(origins=joined_args.origins or
                           frozenset({LITERAL}),
                           taints=joined_args.taints | {TAINT_SET_ORDER},
                           klass="set")
            if name == "float" and node.args and \
                    isinstance(node.args[0], ast.Constant) and \
                    isinstance(node.args[0].value, str) and \
                    node.args[0].value.lower().strip("+-") in (
                        "nan", "inf", "infinity"):
                return Tag(origins=frozenset({LITERAL}),
                           taints=frozenset({TAINT_NONCANONICAL}))
            if name in _PASSTHROUGH_BUILTINS:
                return Tag(unit=joined_args.unit,
                           origins=joined_args.origins,
                           taints=joined_args.taints,
                           klass=joined_args.klass if name in (
                               "list", "tuple") else None)
        if chain is not None and chain.endswith("seed_for"):
            return Tag(origins=frozenset({SEED_FOR}))

        self._record_journal_append(node, arg_tags)

        callee = resolve_call(self.project, self.module, self.function,
                              node)
        if callee is None:
            # Unknown callable: propagate argument taints, nothing else.
            return Tag(origins=frozenset({UNKNOWN}),
                       taints=joined_args.taints)
        self._record_bindings(node, callee, arg_tags, kw_tags)
        if self._is_units_module(callee.module):
            return self._converter_tag(callee, joined_args)
        summary = self.summaries.get(callee.qualname)
        klass = None
        if callee.name == "__init__" and callee.class_name is not None:
            klass = f"{callee.module}.{callee.class_name}"
        if summary is None:
            return Tag(origins=frozenset({UNKNOWN}),
                       taints=joined_args.taints, klass=klass)
        bound = self._bind_args(callee, arg_tags, kw_tags)
        return Tag(
            unit=summary.return_unit,
            origins=self._substitute(summary.return_origins, bound,
                                     want_origins=True),
            taints=self._substitute(summary.return_taints, bound,
                                    want_origins=False),
            klass=klass)

    def _resolves_outside_project(self, node: ast.Call) -> bool:
        """True unless the call resolves to a project-local definition.

        Guards the RNG-constructor match: a project may define its own
        ``Random``-named helper, which must be summarized normally.
        """
        return resolve_call(self.project, self.module, self.function,
                            node) is None

    def _own_class(self) -> Optional[ClassInfo]:
        if self.function is None or self.function.class_name is None:
            return None
        return self.module.classes.get(self.function.class_name)

    @staticmethod
    def _is_units_module(module_name: str) -> bool:
        return module_name == "units" or module_name.endswith(".units")

    def _converter_tag(self, callee: FunctionInfo, joined: Tag) -> Tag:
        unit = _CONVERTER_RETURNS.get(callee.name)
        return Tag(unit=unit, origins=joined.origins, taints=joined.taints)

    def _bind_args(self, callee: FunctionInfo, arg_tags: List[Tag],
                   kw_tags: Dict[Optional[str], Tag]) -> Dict[str, Tag]:
        bound: Dict[str, Tag] = {}
        for param, tag in zip(callee.params, arg_tags):
            bound[param] = tag
        for keyword, tag in kw_tags.items():
            if keyword is not None and keyword in callee.all_params:
                bound[keyword] = tag
        return bound

    @staticmethod
    def _substitute(atoms: FrozenSet[str], bound: Dict[str, Tag],
                    want_origins: bool) -> FrozenSet[str]:
        """Replace symbolic ``param:`` atoms with actual argument facts."""
        out: Set[str] = set()
        for atom in sorted(atoms):
            if atom.startswith("param:"):
                name = atom[len("param:"):]
                if name in bound:
                    out |= (bound[name].origins if want_origins
                            else bound[name].taints)
                elif want_origins:
                    out.add(DEFAULT)
            else:
                out.add(atom)
        return frozenset(out)

    # -- observation recording -------------------------------------------

    def _record_rng(self, node: ast.Call, constructor: str,
                    arg_tags: List[Tag],
                    kw_tags: Dict[Optional[str], Tag]) -> None:
        seed_tag: Optional[Tag] = None
        seed_node: Optional[ast.AST] = None
        if node.args:
            seed_tag, seed_node = arg_tags[0], node.args[0]
        else:
            for keyword in node.keywords:
                if keyword.arg == "seed":
                    seed_tag = kw_tags[keyword.arg]
                    seed_node = keyword.value
        self.obs.rng_sites.append(RngSite(
            function=self._qualname, module=self.module, node=node,
            constructor=constructor, seed_tag=seed_tag,
            seed_node=seed_node))

    def _record_bindings(self, node: ast.Call, callee: FunctionInfo,
                         arg_tags: List[Tag],
                         kw_tags: Dict[Optional[str], Tag]) -> None:
        def via_converter(expr: ast.AST) -> bool:
            if not isinstance(expr, ast.Call):
                return False
            inner = resolve_call(self.project, self.module,
                                 self.function, expr)
            return inner is not None and \
                self._is_units_module(inner.module)

        for param, arg, tag in zip(callee.params, node.args, arg_tags):
            self.obs.bindings.append(ArgBinding(
                caller=self._qualname, module=self.module, callee=callee,
                param=param, call=node, node=arg, tag=tag,
                via_converter=via_converter(arg)))
        for keyword in node.keywords:
            if keyword.arg is None or \
                    keyword.arg not in callee.all_params:
                continue
            self.obs.bindings.append(ArgBinding(
                caller=self._qualname, module=self.module, callee=callee,
                param=keyword.arg, call=node, node=keyword.value,
                tag=kw_tags[keyword.arg],
                via_converter=via_converter(keyword.value)))

    def _record_journal_append(self, node: ast.Call,
                               arg_tags: List[Tag]) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr != "append" \
                or not node.args:
            return
        receiver = func.value
        receiver_tag = self.eval(receiver)
        is_writer = (receiver_tag.klass or "").endswith(".JournalWriter")
        if not is_writer:
            identifier = None
            if isinstance(receiver, ast.Name):
                identifier = receiver.id
            elif isinstance(receiver, ast.Attribute):
                identifier = receiver.attr
            if identifier is not None:
                lowered = identifier.lower()
                is_writer = "journal" in lowered or "writer" in lowered
        if is_writer:
            self.obs.sinks.append(SinkValue(
                kind="journal-append", function=self._qualname,
                module=self.module, node=node.args[0], tag=arg_tags[0]))

    def _record_payload_return(self, stmt: ast.Return, tag: Tag) -> None:
        if self.function is None or stmt.value is None:
            return
        name = self.function.name
        if name in _PAYLOAD_RETURN_NAMES or \
                name.endswith(_PAYLOAD_RETURN_SUFFIXES):
            self.obs.sinks.append(SinkValue(
                kind="payload-return", function=self._qualname,
                module=self.module, node=stmt.value, tag=tag))


@dataclass
class ProjectAnalysis:
    """Fixpoint summaries plus final-round observations, per function."""

    project: Project
    summaries: Dict[str, FunctionSummary] = field(default_factory=dict)
    observations: Dict[str, Observations] = field(default_factory=dict)
    #: Class qualname -> attributes whose value seeds an RNG somewhere.
    seed_attrs: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    rounds: int = 0

    def all_observations(self) -> Observations:
        """Every function's observations, flattened in stable order."""
        flat = Observations()
        for qualname in sorted(self.observations):
            obs = self.observations[qualname]
            flat.rng_sites.extend(obs.rng_sites)
            flat.bindings.extend(obs.bindings)
            flat.sinks.extend(obs.sinks)
        return flat


def _analysis_units(project: Project) -> List[
        Tuple[ModuleInfo, Optional[FunctionInfo]]]:
    units: List[Tuple[ModuleInfo, Optional[FunctionInfo]]] = []
    for module in project.modules.values():
        units.append((module, None))
        for function in module.functions.values():
            units.append((module, function))
        for cls in module.classes.values():
            for method in cls.methods.values():
                units.append((module, method))
    return units


def _self_attr_atoms(origins: FrozenSet[str]) -> List[str]:
    """The attribute names among ``origins``' ``self:`` atoms."""
    return [atom[len("self:"):] for atom in sorted(origins)
            if atom.startswith("self:")]


def _recompute_seed_attrs(analysis: ProjectAnalysis) -> bool:
    """Refresh class seed-attribute sets; True when anything grew."""
    grew = False
    for qualname, obs in analysis.observations.items():
        for site in obs.rng_sites:
            if site.seed_tag is None:
                continue
            grew |= _grow_seed_attrs(
                analysis, qualname, site.seed_tag.origins)
        for binding in obs.bindings:
            callee = analysis.summaries.get(binding.callee.qualname)
            if callee is not None and binding.param in callee.seed_params:
                grew |= _grow_seed_attrs(
                    analysis, qualname, binding.tag.origins)
    return grew


def _grow_seed_attrs(analysis: ProjectAnalysis, function: str,
                     origins: FrozenSet[str]) -> bool:
    attrs = _self_attr_atoms(origins)
    if not attrs:
        return False
    info = analysis.project.functions.get(function)
    if info is None or info.class_name is None:
        return False
    cls = f"{info.module}.{info.class_name}"
    current = analysis.seed_attrs.get(cls, frozenset())
    updated = current | frozenset(attrs)
    if updated != current:
        analysis.seed_attrs[cls] = updated
        return True
    return False


def analyze_project(project: Project,
                    max_rounds: int = 8) -> ProjectAnalysis:
    """Iterate per-function evaluation until summaries stabilise."""
    analysis = ProjectAnalysis(project=project)
    units = _analysis_units(project)
    for round_number in range(1, max_rounds + 1):
        changed = False
        for module, function in units:
            evaluator = FunctionEvaluator(project, module, function,
                                          analysis.summaries,
                                          analysis.seed_attrs)
            summary = evaluator.run()
            qualname = summary.qualname
            if analysis.summaries.get(qualname) != summary:
                analysis.summaries[qualname] = summary
                changed = True
            analysis.observations[qualname] = evaluator.obs
        changed |= _recompute_seed_attrs(analysis)
        analysis.rounds = round_number
        if not changed:
            break
    return analysis


def dump_summaries(analysis: ProjectAnalysis,
                   within: Optional[str] = None) -> str:
    """Stable text rendering of every summary (golden-file anchor)."""
    lines: List[str] = []
    for qualname in sorted(analysis.summaries):
        if within is not None and not qualname.startswith(within):
            continue
        summary = analysis.summaries[qualname]
        units = ", ".join(f"{p}={u[0]}:{u[1]}"
                          for p, u in summary.param_units)
        seeds = ", ".join(sorted(summary.seed_params))
        ret = summary.return_unit
        lines.append(
            f"{qualname} units[{units}] seeds[{seeds}] -> "
            f"unit={ret[0] + ':' + ret[1] if ret else '-'} "
            f"origins[{', '.join(sorted(summary.return_origins))}] "
            f"taints[{', '.join(sorted(summary.return_taints))}]")
    return "\n".join(lines)
