"""Simulation-safety static analysis for the PAM reproduction.

An AST-based lint framework plus a battery of simulator-specific rules:

* **DET1xx determinism** — unseeded RNGs, the shared module-level
  ``random`` generator, wall-clock reads, ``id()``/``hash()`` ordering,
  hash-order set iteration;
* **UNIT2xx unit hygiene** — raw power-of-ten conversion factors,
  expressions mixing ``_s``/``_us``/``_bps`` suffixes, float ``==`` on
  simulated time;
* **EVT3xx event safety** — ``heapq`` outside the deterministic
  :class:`~repro.sim.events.EventQueue`, handler code touching
  scheduler internals;
* **EXC4xx exception hygiene** — bare/broad ``except`` that can swallow
  :mod:`repro.errors` signals.

On top of the per-file battery sits a whole-program layer
(:mod:`repro.analysis.lint.project`): module loading + import
resolution, a call graph, and per-function dataflow summaries computed
to a fixpoint, powering **FLOW5xx** seed provenance, **UNIT21x**
inter-procedural unit flow, and **JRN601** journal-payload purity.

Run it as ``python -m repro lint`` (add ``--project`` for the
whole-program rules, ``--changed`` for git-scoped reporting,
``--format sarif`` for code-scanning upload) or programmatically via
:func:`lint_paths`.  Findings suppress inline with
``# repro: noqa[RULE]`` (dead markers earn a **SUP001**) and
pre-existing ones live in a committed, per-entry-justified baseline
(:mod:`repro.analysis.lint.baseline`).
"""

from .baseline import Baseline, BaselineEntry, DEFAULT_BASELINE_NAME
from .findings import PARSE_ERROR_RULE, Finding, Severity
from .runner import (LintReport, collect_files, format_json, format_text,
                     lint_paths, lint_source, rule_catalogue,
                     visit_source)
from .sarif import format_sarif
from .suppress import apply_suppressions
from .visitor import (LintRule, LintVisitor, ModuleContext, RULE_REGISTRY,
                      all_rules, register)

__all__ = [
    "Baseline",
    "BaselineEntry",
    "DEFAULT_BASELINE_NAME",
    "Finding",
    "LintReport",
    "LintRule",
    "LintVisitor",
    "ModuleContext",
    "PARSE_ERROR_RULE",
    "RULE_REGISTRY",
    "Severity",
    "all_rules",
    "apply_suppressions",
    "collect_files",
    "format_json",
    "format_sarif",
    "format_text",
    "lint_paths",
    "lint_source",
    "register",
    "rule_catalogue",
    "visit_source",
]
