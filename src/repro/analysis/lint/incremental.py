"""Incremental lint scope: report only on files git says changed.

``repro lint --changed`` asks git which tracked files differ from a
base revision (plus untracked files), and restricts *reporting* to that
set.  Analysis scope is a separate axis: per-file rules only ever see
one file, and project mode still loads the whole tree — a one-line edit
can introduce a cross-call unit mismatch whose best report site is the
edited line, and only whole-program summaries can see that.  Reporting
scope is what shrinks.
"""

from __future__ import annotations

import subprocess
from pathlib import Path
from typing import List, Optional, Set

from ...errors import AnalysisError

#: Default revision ``--changed`` diffs against.
DEFAULT_DIFF_BASE = "HEAD"


def _git_lines(args: List[str], cwd: Path) -> List[str]:
    """Run one git command, returning its non-empty output lines."""
    try:
        proc = subprocess.run(
            ["git", *args], cwd=cwd, capture_output=True, text=True,
            timeout=30, check=False)
    except (OSError, subprocess.TimeoutExpired) as exc:
        raise AnalysisError(
            f"cannot run git {' '.join(args)}: {exc}") from exc
    if proc.returncode != 0:
        detail = proc.stderr.strip() or f"exit {proc.returncode}"
        raise AnalysisError(
            f"git {' '.join(args[:2])} failed: {detail}")
    return [line for line in proc.stdout.splitlines() if line.strip()]


def repo_root(start: Optional[Path] = None) -> Path:
    """The enclosing git work-tree root (raises outside a repo)."""
    where = start if start is not None else Path.cwd()
    lines = _git_lines(["rev-parse", "--show-toplevel"], where)
    if not lines:
        raise AnalysisError("git rev-parse returned no work-tree root")
    return Path(lines[0])


def changed_python_files(base: str = DEFAULT_DIFF_BASE,
                         start: Optional[Path] = None) -> Set[str]:
    """Python files changed vs ``base``, as resolved POSIX paths.

    The set unions ``git diff --name-only <base>`` (tracked changes,
    staged or not) with ``git ls-files --others --exclude-standard``
    (untracked files).  Deleted files drop out naturally — they no
    longer exist, so nothing lints them.
    """
    root = repo_root(start)
    names = set(_git_lines(
        ["diff", "--name-only", base, "--"], root))
    names.update(_git_lines(
        ["ls-files", "--others", "--exclude-standard"], root))
    changed: Set[str] = set()
    for name in sorted(names):
        if not name.endswith(".py"):
            continue
        path = root / name
        if path.is_file():
            changed.add(path.resolve().as_posix())
    return changed
