"""SARIF 2.1.0 output for the simulation-safety linter.

SARIF (Static Analysis Results Interchange Format) is what code-scanning
UIs ingest — uploading the file produced here annotates findings inline
on pull requests.  One run object carries the full rule catalogue as
``tool.driver.rules`` (so the UI can show each rule's rationale) and one
``result`` per reported finding.  Baselined and suppressed findings are
not emitted: SARIF consumers treat every result as actionable, and the
baseline's whole point is that its entries are not.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List

from .findings import Finding, PARSE_ERROR_RULE, Severity
from .runner import LintReport
from .visitor import LintRule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

#: SARIF ``level`` values per severity (SARIF also has none/note).
_LEVELS: Dict[Severity, str] = {
    Severity.WARNING: "warning",
    Severity.ERROR: "error",
}


def _rule_object(rule: LintRule) -> dict:
    """The ``reportingDescriptor`` for one rule."""
    return {
        "id": rule.code,
        "name": rule.name,
        "shortDescription": {"text": rule.name.replace("-", " ")},
        "fullDescription": {"text": rule.rationale},
        "defaultConfiguration": {"level": _LEVELS[rule.severity]},
    }


def _parse_error_rule() -> dict:
    """The descriptor for the E000 pseudo-rule (not in any registry)."""
    return {
        "id": PARSE_ERROR_RULE,
        "name": "parse-error",
        "shortDescription": {"text": "file does not parse"},
        "fullDescription": {"text": "The linter cannot analyse a file "
                                    "the Python parser rejects."},
        "defaultConfiguration": {"level": "error"},
    }


def _result(finding: Finding, rule_index: Dict[str, int]) -> dict:
    """One SARIF ``result`` for one finding."""
    result = {
        "ruleId": finding.rule,
        "level": _LEVELS[finding.severity],
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": finding.path},
                "region": {
                    "startLine": finding.line,
                    "startColumn": finding.col,
                    "snippet": {"text": finding.context},
                },
            },
        }],
    }
    if finding.rule in rule_index:
        result["ruleIndex"] = rule_index[finding.rule]
    return result


def format_sarif(report: LintReport,
                 rules: Iterable[LintRule]) -> str:
    """Render one lint run as a SARIF 2.1.0 document."""
    descriptors: List[dict] = [_rule_object(r) for r in rules]
    descriptors.append(_parse_error_rule())
    rule_index = {d["id"]: i for i, d in enumerate(descriptors)}
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "rules": descriptors,
                },
            },
            "results": [_result(f, rule_index)
                        for f in report.findings],
        }],
    }
    return json.dumps(document, indent=2, sort_keys=True)
