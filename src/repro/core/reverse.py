"""Pull-back (reverse PAM): re-offload NFs to the SmartNIC after the
overload subsides.

PAM pushes border vNFs to the CPU during a hot spot; once traffic drops
back, the NIC's fast path is sitting idle while NFs burn CPU cores.
The reverse selection mirrors PAM exactly:

* candidates are CPU-resident NFs whose move back to the NIC adds no
  PCIe crossings (the mirror-image border condition),
* the candidate with the **largest** theta^S returns first (it consumes
  the least NIC utilisation per bit, so re-offloading it is cheapest),
* the NIC must stay under a configurable target utilisation with the
  NF added (a guard band so the pull-back does not immediately
  re-trigger PAM — anti-flap by construction).

The loop keeps pulling until no candidate fits under the target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from ..chain.nf import DeviceKind
from ..chain.placement import Placement
from ..errors import ConfigurationError
from ..resources.model import LoadModel, ThroughputSpec
from .plan import MigrationAction, MigrationPlan

POLICY_NAME = "pam-pullback"


@dataclass(frozen=True)
class PullbackConfig:
    """Tunables for the reverse migration."""

    #: Pull back only while NIC utilisation stays under this target
    #: *after* the move — the guard band against ping-ponging with PAM.
    nic_target: float = 0.8
    #: Do not bother pulling anything while the NIC is already above
    #: this (the chain is busy; leave it alone).
    trigger_below: float = 0.5
    max_migrations: int = 64

    def __post_init__(self) -> None:
        if not (0.0 < self.nic_target <= 1.0):
            raise ConfigurationError("nic_target must be in (0, 1]")
        if not (0.0 <= self.trigger_below <= self.nic_target):
            raise ConfigurationError(
                "trigger_below must be in [0, nic_target]")


def _pullback_candidates(placement: Placement,
                         eligible: Optional[frozenset] = None) -> List[str]:
    """CPU NFs whose return to the NIC adds no crossings, best first.

    ``eligible`` restricts candidates to an explicit set — the
    controller passes the NFs it previously pushed aside, so pull-back
    *restores* the operator's baseline placement rather than freely
    re-optimising it (an NF homed on the CPU by choice stays there).
    """
    names = []
    for nf in placement.cpu_nfs():
        if eligible is not None and nf.name not in eligible:
            continue
        if not nf.nic_capable:
            continue
        if placement.crossing_delta(nf.name, DeviceKind.SMARTNIC) <= 0:
            names.append(nf.name)
    # Largest theta^S first: cheapest NIC residents return first.
    names.sort(key=lambda name: (-placement.chain.get(name)
                                 .nic_capacity_bps,
                                 placement.chain.position(name)))
    return names


def select_pullback(placement: Placement, throughput: ThroughputSpec,
                    config: PullbackConfig = PullbackConfig(),
                    eligible: Optional[Iterable[str]] = None
                    ) -> MigrationPlan:
    """Choose which CPU-resident NFs to re-offload to the SmartNIC.

    ``eligible`` (optional) limits the pull to specific NFs — usually
    the ones a forward policy previously pushed aside.
    """
    eligible_set = frozenset(eligible) if eligible is not None else None
    load = LoadModel(placement, throughput)
    if load.nic_load().utilisation >= config.trigger_below:
        return MigrationPlan.empty(
            placement, POLICY_NAME,
            notes=("nic too busy for pull-back",))

    actions: List[MigrationAction] = []
    current = placement
    while len(actions) < config.max_migrations:
        moved_any = False
        for name in _pullback_candidates(current, eligible_set):
            nf = current.chain.get(name)
            nic_after = (load.nic_load().utilisation
                         + nf.utilisation_share(DeviceKind.SMARTNIC,
                                                load.throughput[name]))
            if nic_after >= config.nic_target:
                continue
            actions.append(MigrationAction(
                nf_name=name, source=DeviceKind.CPU,
                target=DeviceKind.SMARTNIC,
                crossing_delta=current.crossing_delta(
                    name, DeviceKind.SMARTNIC)))
            current = current.moved(name, DeviceKind.SMARTNIC)
            load = LoadModel(current, throughput)
            moved_any = True
            break
        if not moved_any:
            break

    plan = MigrationPlan(
        actions=tuple(actions), before=placement, after=current,
        alleviates=True, policy=POLICY_NAME,
        notes=(f"pulled {len(actions)} NFs back to the NIC",))
    plan.validate()
    return plan
