"""Production-hardened control loop around PAM.

The bare :class:`~repro.core.planner.MigrationController` reacts to
every overload sample.  Operating a real fleet needs more discipline,
and :class:`HardenedController` adds it:

* **cooldown** — a minimum quiet period between executed plans, so one
  traffic wobble cannot trigger a migration storm;
* **flap damping** — an NF that migrated recently may not migrate again
  until its damp window expires (suppresses A->B->A ping-pong between
  the forward policy and the pull-back);
* **migration budget** — a hard cap on migrations per run, because each
  move costs control-plane work and transient latency;
* **pull-back** — optionally runs
  :func:`~repro.core.reverse.select_pullback` when the NIC has been
  quiet, returning pushed-aside NFs to the fast path.

The loop is also fault-tolerant: the executor reports a
:class:`~repro.migration.executor.PlanOutcome` per plan, and a failed
plan must not poison the control loop.  On abort the controller releases
the cooldown window it charged at admission, clears flap-damp state for
rolled-back NFs (only completed moves count against the budget and the
damp window), and re-enters planning on the next tick.  Stale telemetry
(monitor samples older than ``telemetry_stale_s``) suppresses planning
entirely rather than driving migrations off a frozen load estimate.

The hardened loop composes with any
:class:`~repro.core.planner.SelectionPolicy`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..chain.nf import DeviceKind
from ..core.plan import MigrationPlan
from ..errors import ConfigurationError, ScaleOutRequired
from ..migration.cost import MigrationCostModel
from ..migration.executor import (OUTCOME_SUCCEEDED, FailureHook,
                                  MigrationExecutor, MigrationRecord,
                                  PlanOutcome, RetryPolicy)
from ..sim.runner import TickContext
from ..telemetry.overload import OverloadDetector
from .planner import PAMPolicy, SelectionPolicy
from .reverse import PullbackConfig, select_pullback


@dataclass(frozen=True)
class HardeningConfig:
    """Operational guard rails."""

    #: Minimum seconds between two executed plans.
    cooldown_s: float = 0.01
    #: An NF may not migrate twice within this window.
    flap_damp_s: float = 0.05
    #: Hard cap on migrations over the controller's lifetime.
    migration_budget: int = 16
    #: Enable the pull-back pass when the NIC is quiet.
    enable_pullback: bool = True
    pullback: PullbackConfig = field(default_factory=PullbackConfig)
    #: Suppress planning when the monitor sample driving this tick is
    #: older than this (``None`` disables the check).
    telemetry_stale_s: Optional[float] = None
    #: Per-action timeout forwarded to the executor (``None`` = no cap).
    action_timeout_s: Optional[float] = None
    #: Retry schedule forwarded to the executor.
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        if self.cooldown_s < 0 or self.flap_damp_s < 0:
            raise ConfigurationError("windows must be >= 0")
        if self.migration_budget < 1:
            raise ConfigurationError("budget must be >= 1")
        if self.telemetry_stale_s is not None and self.telemetry_stale_s <= 0:
            raise ConfigurationError("stale threshold must be positive")
        if self.action_timeout_s is not None and self.action_timeout_s <= 0:
            raise ConfigurationError("action timeout must be positive")


class HardenedController:
    """Cooldown + damping + budget + pull-back around a policy."""

    def __init__(self, policy: Optional[SelectionPolicy] = None,
                 config: HardeningConfig = HardeningConfig(),
                 detector: Optional[OverloadDetector] = None,
                 cost_model: MigrationCostModel = MigrationCostModel(),
                 failure_hook: Optional[FailureHook] = None) -> None:
        self.policy = policy or PAMPolicy()
        self.config = config
        self.detector = detector or OverloadDetector()
        self.cost_model = cost_model
        #: Forwarded to the executor; the chaos harness injects
        #: mid-transfer migration failures through this.
        self.failure_hook = failure_hook
        self._executor: Optional[MigrationExecutor] = None
        self._last_plan_s: Optional[float] = None
        self._last_moved: Dict[str, float] = {}
        #: NFs the forward policy pushed to the CPU — the only ones the
        #: pull-back pass may return (restores the baseline placement).
        self._pushed: set = set()
        self.scaleout_events: List[float] = []
        self.suppressed_plans: int = 0
        #: Plans the executor aborted after exhausting retries.
        self.failed_plans: int = 0
        #: Ticks skipped because the monitor sample was stale.
        self.stale_ticks: int = 0

    # -- runner integration ------------------------------------------------

    @property
    def executor(self) -> Optional[MigrationExecutor]:
        """The lazily-created executor (``None`` before the first plan)."""
        return self._executor

    @property
    def migrations(self) -> List[MigrationRecord]:
        """Records of migrations that actually completed."""
        return self._executor.successes if self._executor else []

    @property
    def attempts(self) -> List[MigrationRecord]:
        """All attempt records, including rolled-back and aborted ones."""
        return self._executor.records if self._executor else []

    @property
    def budget_left(self) -> int:
        """Migrations still allowed under the budget.

        Only completed moves are charged: a plan that rolled back does
        not leak budget.
        """
        return self.config.migration_budget - len(self.migrations)

    def _executor_for(self, context: TickContext) -> MigrationExecutor:
        if self._executor is None:
            self._executor = MigrationExecutor(
                context.server, context.network, context.engine,
                cost_model=self.cost_model,
                retry=self.config.retry,
                failure_hook=self.failure_hook,
                action_timeout_s=self.config.action_timeout_s)
        return self._executor

    def ensure_executor(self, context: TickContext) -> MigrationExecutor:
        """The executor, created on first use.

        Public so wrapping layers (the resilience controller) can run
        their plans through the *same* executor: one busy flag, one
        retry RNG, one combined migration record — exactly as a real
        control plane has one migration pipeline.
        """
        return self._executor_for(context)

    # -- guard rails --------------------------------------------------------

    def _cooling_down(self, now_s: float) -> bool:
        return (self._last_plan_s is not None
                and now_s - self._last_plan_s < self.config.cooldown_s)

    def _damped(self, plan: MigrationPlan, now_s: float) -> bool:
        """Whether any NF in the plan migrated too recently."""
        for name in plan.migrated_names:
            moved_at = self._last_moved.get(name)
            if moved_at is not None and \
                    now_s - moved_at < self.config.flap_damp_s:
                return True
        return False

    def _admit(self, plan: MigrationPlan, context: TickContext) -> bool:
        """Apply guard rails; execute the plan if it passes."""
        now = context.now_s
        if plan.is_noop:
            return False
        if self._damped(plan, now):
            self.suppressed_plans += 1
            return False
        if len(plan.actions) > self.budget_left:
            self.suppressed_plans += 1
            return False
        executor = self._executor_for(context)
        if executor.busy:
            return False
        # Charge the cooldown now; a failed plan hands it back in
        # _on_outcome so planning re-enters on the next tick.
        previous_plan_s = self._last_plan_s
        self._last_plan_s = now
        executor.apply(
            plan, context.offered_bps,
            on_outcome=lambda outcome: self._on_outcome(
                plan, outcome, previous_plan_s))
        return True

    def _on_outcome(self, plan: MigrationPlan, outcome: PlanOutcome,
                    previous_plan_s: Optional[float]) -> None:
        """Settle guard-rail state once the executor reports back."""
        targets = {action.nf_name: action.target for action in plan.actions}
        for record in outcome.records:
            if record.outcome != OUTCOME_SUCCEEDED:
                continue
            # Completed moves are real migrations: they damp and (via
            # the records list) consume budget.
            self._last_moved[record.nf_name] = record.completed_s
            if targets[record.nf_name] is DeviceKind.CPU:
                self._pushed.add(record.nf_name)
            else:
                self._pushed.discard(record.nf_name)
        if not outcome.succeeded:
            self.failed_plans += 1
            # Release the cooldown charged at admission and forget damp
            # state for NFs whose moves rolled back — they never moved,
            # so nothing should stop the next tick from replanning them.
            self._last_plan_s = previous_plan_s
            for name in outcome.rolled_back_nfs:
                if name not in {r.nf_name for r in outcome.records
                                if r.outcome == OUTCOME_SUCCEEDED}:
                    self._last_moved.pop(name, None)

    # -- checkpointing -----------------------------------------------------

    def snapshot_state(self) -> Dict[str, object]:
        """Guard-rail and nested-component state for checkpointing."""
        hook_state = None
        if self.failure_hook is not None and \
                callable(getattr(self.failure_hook, "snapshot_state", None)):
            hook_state = self.failure_hook.snapshot_state()
        return {
            "last_plan_s": self._last_plan_s,
            "last_moved": dict(sorted(self._last_moved.items())),
            "pushed": sorted(self._pushed),
            "scaleout_events": list(self.scaleout_events),
            "suppressed_plans": self.suppressed_plans,
            "failed_plans": self.failed_plans,
            "stale_ticks": self.stale_ticks,
            "detector": self.detector.snapshot_state(),
            "failure_hook": hook_state,
            "executor": (self._executor.snapshot_state()
                         if self._executor is not None else None),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Re-impose guard-rail state and nested RNG positions."""
        last_plan = state["last_plan_s"]
        self._last_plan_s = None if last_plan is None else float(last_plan)
        self._last_moved = dict(state["last_moved"])
        self._pushed = set(state["pushed"])
        self.scaleout_events = list(state["scaleout_events"])
        self.suppressed_plans = int(state["suppressed_plans"])
        self.failed_plans = int(state["failed_plans"])
        self.stale_ticks = int(state["stale_ticks"])
        self.detector.restore_state(state["detector"])
        hook_state = state["failure_hook"]
        if hook_state is not None and self.failure_hook is not None and \
                callable(getattr(self.failure_hook, "restore_state", None)):
            self.failure_hook.restore_state(hook_state)
        executor_state = state["executor"]
        if executor_state is not None and self._executor is not None:
            self._executor.restore_state(executor_state)

    # -- the loop --------------------------------------------------------------

    def on_tick(self, context: TickContext) -> None:
        """One hardened operator cycle."""
        stale = self.config.telemetry_stale_s
        if stale is not None and \
                getattr(context, "telemetry_age_s", 0.0) > stale:
            # The load estimate is a relic of a telemetry dropout;
            # migrating on it would be acting on fiction.
            self.stale_ticks += 1
            return
        nic_util = context.load.nic_load().utilisation
        overloaded = self.detector.update(nic_util)
        if self._cooling_down(context.now_s):
            return
        if overloaded:
            try:
                plan = self.policy.select(context.server.placement,
                                          context.offered_bps)
            except ScaleOutRequired:
                self.scaleout_events.append(context.now_s)
                return
            self._admit(plan, context)
        elif self.config.enable_pullback and self._pushed:
            plan = select_pullback(context.server.placement,
                                   context.offered_bps,
                                   self.config.pullback,
                                   eligible=self._pushed)
            self._admit(plan, context)
