"""The paper's contribution: border identification, PAM selection, planning."""

from .border import BorderSets, border_sets, refreshed_border_sets
from . import graph_pam
from .feasibility import (FeasibilityConfig, both_overloaded, cpu_can_host,
                          nic_alleviated, nic_alleviated_without)
from .operator import HardenedController, HardeningConfig
from .pam import PAMConfig, select
from .plan import MigrationAction, MigrationPlan
from .planner import MigrationController, PAMPolicy, SelectionPolicy
from .reverse import PullbackConfig, select_pullback

__all__ = [
    "BorderSets",
    "FeasibilityConfig",
    "HardenedController",
    "HardeningConfig",
    "MigrationAction",
    "MigrationController",
    "MigrationPlan",
    "PAMConfig",
    "PAMPolicy",
    "PullbackConfig",
    "SelectionPolicy",
    "border_sets",
    "graph_pam",
    "both_overloaded",
    "cpu_can_host",
    "nic_alleviated",
    "nic_alleviated_without",
    "refreshed_border_sets",
    "select",
    "select_pullback",
]
