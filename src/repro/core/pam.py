"""The PAM selection algorithm (paper S2, Steps 1-3).

Given the current placement and measured chain throughput, PAM picks
which SmartNIC vNFs to push aside onto the CPU so that the NIC's
overload is alleviated **without adding PCIe crossings**:

1. *Border identification* — compute ``B_L`` / ``B_R``
   (:func:`repro.core.border.border_sets`).
2. *Selection* — ``b0 = argmin_{b in B_L ∪ B_R} theta_b^S``: the border
   NF with the smallest NIC capacity frees the largest utilisation
   fraction per unit throughput.
3. *Checks* — Eq. 2: the CPU must stay under capacity with b0 added,
   else b0 is discarded from the border sets and selection repeats.
   Eq. 3: if the NIC is under capacity with b0 gone, migrate b0 and
   stop; otherwise migrate b0, refresh the border sets (the neighbour
   NF slides into the border), and loop.

When the border pool empties while the NIC is still overloaded, no
push-aside schedule exists: per the paper's closing remark the operator
must scale out, and :func:`select` raises
:class:`~repro.errors.ScaleOutRequired` (or returns the partial plan
when ``strict=False``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..chain.nf import DeviceKind
from ..chain.placement import Placement
from ..errors import ScaleOutRequired
from ..resources.model import LoadModel, ThroughputSpec
from .border import BorderSets, border_sets, refreshed_border_sets
from .feasibility import (FeasibilityConfig, cpu_can_host, nic_alleviated,
                          nic_alleviated_without)
from .plan import MigrationAction, MigrationPlan

POLICY_NAME = "pam"


@dataclass(frozen=True)
class PAMConfig:
    """Tunables of the selection loop."""

    feasibility: FeasibilityConfig = field(default_factory=FeasibilityConfig)
    #: Raise :class:`ScaleOutRequired` when migration cannot alleviate;
    #: with False, return the partial plan marked ``alleviates=False``.
    strict: bool = True
    #: Upper bound on moves per invocation (a runaway-loop guard far
    #: above any real chain length).
    max_migrations: int = 64


def _pick_b0(placement: Placement, borders: BorderSets) -> Optional[str]:
    """Step 2: min-theta^S border NF; position breaks ties deterministically."""
    candidates = sorted(
        borders.all,
        key=lambda name: (placement.chain.get(name).nic_capacity_bps,
                          placement.chain.position(name)))
    return candidates[0] if candidates else None


def select(placement: Placement, throughput: ThroughputSpec,
           config: PAMConfig = PAMConfig()) -> MigrationPlan:
    """Run PAM and return the migration plan for one overload episode."""
    load = LoadModel(placement, throughput)
    if nic_alleviated(load, config.feasibility):
        return MigrationPlan.empty(placement, POLICY_NAME,
                                   notes=("smartnic not overloaded",))

    borders = border_sets(placement)
    actions: List[MigrationAction] = []
    notes: List[str] = []
    current = placement
    alleviates = False

    while len(actions) < config.max_migrations:
        b0_name = _pick_b0(current, borders)
        if b0_name is None:
            notes.append("border pool exhausted before alleviation")
            break
        b0 = current.chain.get(b0_name)
        if not cpu_can_host(load, b0, config.feasibility):
            # Eq. 2 failed: migrating b0 would create a CPU hot spot.
            notes.append(f"eq2 rejects {b0_name} (cpu would overload)")
            borders = borders.without(b0_name)
            continue
        done = nic_alleviated_without(load, b0, config.feasibility)
        was_left = b0_name in borders.left
        actions.append(MigrationAction(
            nf_name=b0_name,
            source=DeviceKind.SMARTNIC,
            target=DeviceKind.CPU,
            crossing_delta=current.crossing_delta(b0_name, DeviceKind.CPU)))
        current = current.moved(b0_name, DeviceKind.CPU)
        load = LoadModel(current, throughput)
        borders = refreshed_border_sets(current, borders, b0_name, was_left)
        if done:
            alleviates = True
            notes.append(f"eq3 satisfied after migrating {b0_name}")
            break

    plan = MigrationPlan(
        actions=tuple(actions), before=placement, after=current,
        alleviates=alleviates, policy=POLICY_NAME, notes=tuple(notes))
    plan.validate()
    if not alleviates and config.strict:
        raise ScaleOutRequired(
            "PAM cannot alleviate the SmartNIC by border migration; "
            "scale out per OpenNF",
            nic_utilisation=load.nic_load().utilisation,
            cpu_utilisation=load.cpu_load().utilisation)
    return plan
