"""Step 1 of PAM: border vNF identification.

A *border* vNF (paper S2) is a SmartNIC-resident NF whose chain
neighbour lives on the CPU side: the **left border** set ``B_L`` holds
NFs whose *upstream* neighbour is on the CPU, the **right border** set
``B_R`` those whose *downstream* neighbour is.  Chain endpoints count as
neighbours too — the placement's ingress/egress devices stand in for the
wire or the host application — so an NF adjacent to a host-terminated
chain end is a border exactly when moving it adds no PCIe crossings.

Migrating a border vNF never introduces new packet transmissions over
PCIe: the segment boundary just shifts by one NF.  That invariant (the
heart of the paper) is asserted in :func:`border_sets` post-conditions
and property-tested in ``tests/test_property_border.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Set, Tuple

from ..chain.nf import DeviceKind, NFProfile
from ..chain.placement import Placement
from ..errors import SimulationError


@dataclass(frozen=True)
class BorderSets:
    """The left/right border sets of one placement."""

    left: FrozenSet[str]
    right: FrozenSet[str]

    @property
    def all(self) -> FrozenSet[str]:
        """``B_L ∪ B_R`` — the candidate pool of Step 2."""
        return self.left | self.right

    def __contains__(self, name: object) -> bool:
        return name in self.left or name in self.right

    def without(self, name: str) -> "BorderSets":
        """Remove an infeasible candidate (Step 3's retry path)."""
        return BorderSets(left=self.left - {name}, right=self.right - {name})


def _neighbour_device(placement: Placement, index: int) -> DeviceKind:
    """Device of the chain hop at ``index`` in the endpoint-padded walk.

    ``index`` ranges over ``-1`` (ingress endpoint) .. ``len(chain)``
    (egress endpoint).
    """
    chain = placement.chain
    if index < 0:
        return placement.ingress
    if index >= len(chain):
        return placement.egress
    return placement.device_of(chain[index].name)


def border_sets(placement: Placement) -> BorderSets:
    """Compute ``B_L`` and ``B_R`` for the placement (paper Step 1)."""
    chain = placement.chain
    left: Set[str] = set()
    right: Set[str] = set()
    for position, nf in enumerate(chain):
        if placement.device_of(nf.name) is not DeviceKind.SMARTNIC:
            continue
        if _neighbour_device(placement, position - 1) is DeviceKind.CPU:
            left.add(nf.name)
        if _neighbour_device(placement, position + 1) is DeviceKind.CPU:
            right.add(nf.name)
    sets = BorderSets(left=frozenset(left), right=frozenset(right))
    _check_invariant(placement, sets)
    return sets


def _check_invariant(placement: Placement, sets: BorderSets) -> None:
    """Every border NF must be movable to the CPU without adding crossings."""
    for name in sorted(sets.all):
        nf = placement.chain.get(name)
        if not nf.cpu_capable:
            continue  # not a migration candidate, but still a border
        if placement.crossing_delta(name, DeviceKind.CPU) > 0:
            raise SimulationError(
                f"border invariant violated: moving {name!r} to CPU would "
                "add PCIe crossings")


def refreshed_border_sets(placement: Placement, sets: BorderSets,
                          migrated: str, was_left: bool) -> BorderSets:
    """Maintain the border sets after migrating ``migrated`` (paper Step 3).

    "If b0 ∈ B_L, we remove it from B_L and add its downstream element
    into the set if the downstream element is also placed on SmartNIC";
    symmetrically for B_R with the upstream element.  ``placement`` must
    be the placement *after* the move.

    Recomputing :func:`border_sets` from scratch gives the same answer
    (property-tested); this incremental form mirrors the paper's loop
    and is what :mod:`repro.core.pam` uses.
    """
    chain = placement.chain
    left = set(sets.left)
    right = set(sets.right)
    if was_left:
        left.discard(migrated)
        successor = chain.downstream(migrated)
        if successor is not None and \
                placement.device_of(successor.name) is DeviceKind.SMARTNIC:
            left.add(successor.name)
    else:
        right.discard(migrated)
        predecessor = chain.upstream(migrated)
        if predecessor is not None and \
                placement.device_of(predecessor.name) is DeviceKind.SMARTNIC:
            right.add(predecessor.name)
    # The migrated NF may also have sat in the other set (a singleton
    # NIC segment is both a left and a right border); drop it there too.
    left.discard(migrated)
    right.discard(migrated)
    return BorderSets(left=frozenset(left), right=frozenset(right))
