"""Migration plans: the output of a selection algorithm.

A plan is an ordered list of single-NF moves plus the predicted
before/after placements, so callers can inspect what a policy *intends*
before the executor turns it into simulated pause/transfer/resume
events.  Plans also carry the predicted PCIe-crossing delta — the
quantity PAM minimises and the naive policy ignores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..chain.nf import DeviceKind
from ..chain.placement import Placement
from ..errors import InfeasiblePlanError


@dataclass(frozen=True)
class MigrationAction:
    """One NF move."""

    nf_name: str
    source: DeviceKind
    target: DeviceKind
    #: Change in end-to-end PCIe crossings this single move causes,
    #: evaluated against the placement it applies to.
    crossing_delta: int

    def __post_init__(self) -> None:
        if self.source is self.target:
            raise InfeasiblePlanError(
                f"action moves {self.nf_name!r} nowhere ({self.source.value})")


@dataclass(frozen=True)
class MigrationPlan:
    """An ordered sequence of moves with predicted outcomes."""

    actions: Tuple[MigrationAction, ...]
    before: Placement
    after: Placement
    #: Whether the policy predicts the SmartNIC overload is resolved.
    alleviates: bool
    #: Policy that produced the plan ("pam", "naive", ...), for reports.
    policy: str = "unspecified"
    #: Free-form diagnostic notes appended during selection.
    notes: Tuple[str, ...] = ()

    @classmethod
    def empty(cls, placement: Placement, policy: str,
              alleviates: bool = True, notes: Tuple[str, ...] = ()) -> "MigrationPlan":
        """The do-nothing plan (no overload, or policy declined to act)."""
        return cls(actions=(), before=placement, after=placement,
                   alleviates=alleviates, policy=policy, notes=notes)

    @property
    def is_noop(self) -> bool:
        """Whether the plan moves nothing."""
        return not self.actions

    @property
    def migrated_names(self) -> List[str]:
        """Names of NFs the plan moves, in execution order."""
        return [action.nf_name for action in self.actions]

    @property
    def total_crossing_delta(self) -> int:
        """Net change in PCIe crossings over the whole plan.

        Equivalent to ``after.pcie_crossings() - before.pcie_crossings()``;
        kept as a sum of per-action deltas so tests can cross-check both.
        """
        return sum(action.crossing_delta for action in self.actions)

    def validate(self) -> None:
        """Check internal consistency (before + actions == after).

        Raises :class:`InfeasiblePlanError` on any mismatch; the policy
        implementations call this before returning a plan.
        """
        placement = self.before
        for action in self.actions:
            if placement.device_of(action.nf_name) is not action.source:
                raise InfeasiblePlanError(
                    f"action on {action.nf_name!r} expects source "
                    f"{action.source.value}, placement disagrees")
            predicted = placement.crossing_delta(action.nf_name, action.target)
            if predicted != action.crossing_delta:
                raise InfeasiblePlanError(
                    f"action on {action.nf_name!r} claims crossing delta "
                    f"{action.crossing_delta}, recomputation gives {predicted}")
            placement = placement.moved(action.nf_name, action.target)
        if placement != self.after:
            raise InfeasiblePlanError(
                "plan's after-placement does not match applying its actions")
