"""Steps 2-3 constraint checks: Eq. 2 (CPU headroom) and Eq. 3 (NIC relief).

The checks operate on a :class:`~repro.resources.model.LoadModel`
(placement + current throughput), mirroring the sums in the paper:

* Eq. 2 — migrating b0 must not create a new hot spot on the CPU::

      sum_{i on C} theta_cur/theta_i^C + theta_cur/theta_b0^C < 1

* Eq. 3 — with b0 (and prior migrants) gone, the SmartNIC must be back
  under capacity::

      sum_{i on S, i != b0} theta_cur/theta_i^S < 1

Both are strict inequalities in the paper; ``epsilon`` adds an optional
safety margin (0 reproduces the paper exactly, a positive value keeps
operating headroom — used by the hysteresis ablation).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..chain.nf import DeviceKind, NFProfile
from ..errors import ConfigurationError
from ..resources.model import LoadModel


@dataclass(frozen=True)
class FeasibilityConfig:
    """Tunables for the constraint checks."""

    #: Safety margin subtracted from the RHS of both constraints:
    #: utilisation must stay below ``1 - epsilon``.  The paper uses 0.
    epsilon: float = 0.0

    def __post_init__(self) -> None:
        if not (0.0 <= self.epsilon < 1.0):
            raise ConfigurationError(
                f"epsilon must be in [0, 1), got {self.epsilon}")

    @property
    def threshold(self) -> float:
        """The utilisation bound both checks compare against."""
        return 1.0 - self.epsilon


def cpu_can_host(load: LoadModel, nf: NFProfile,
                 config: FeasibilityConfig = FeasibilityConfig()) -> bool:
    """Eq. 2: would the CPU stay under capacity with ``nf`` added?"""
    if not nf.cpu_capable:
        return False
    return load.cpu_load_with(nf) < config.threshold


def nic_alleviated_without(load: LoadModel, nf: NFProfile,
                           config: FeasibilityConfig = FeasibilityConfig()) -> bool:
    """Eq. 3: does removing ``nf`` bring the SmartNIC under capacity?"""
    return load.nic_load_without(nf) < config.threshold


def nic_alleviated(load: LoadModel,
                   config: FeasibilityConfig = FeasibilityConfig()) -> bool:
    """Whether the SmartNIC is already under capacity (loop exit test)."""
    return load.nic_load().utilisation < config.threshold


def both_overloaded(load: LoadModel,
                    config: FeasibilityConfig = FeasibilityConfig()) -> bool:
    """The rare joint-overload case that forces scale-out (paper S2 end)."""
    return (load.nic_load().utilisation >= config.threshold
            and load.cpu_load().utilisation >= config.threshold)
