"""The control plane: periodic load query -> policy -> executor.

:class:`MigrationController` is the paper's operator loop as a
:class:`~repro.sim.runner.Controller`: on each monitor tick it feeds the
SmartNIC utilisation to a debounced overload detector and, on overload,
asks its :class:`SelectionPolicy` for a plan and hands it to the
migration executor.  The same controller drives PAM and every baseline —
only the policy differs — so policy comparisons hold everything else
fixed.
"""

from __future__ import annotations

from typing import List, Optional, Protocol

from ..chain.placement import Placement
from ..errors import ScaleOutRequired
from ..migration.cost import MigrationCostModel
from ..migration.executor import MigrationExecutor, MigrationRecord
from ..resources.model import ThroughputSpec
from ..sim.runner import TickContext
from ..telemetry.overload import OverloadDetector
from .pam import PAMConfig
from .pam import select as pam_select
from .plan import MigrationPlan


class SelectionPolicy(Protocol):
    """A migration-selection algorithm (PAM or a baseline)."""

    #: Short identifier used in reports ("pam", "naive", ...).
    name: str

    def select(self, placement: Placement,
               throughput: ThroughputSpec) -> MigrationPlan:
        """Choose which NFs to migrate for the given load."""


class PAMPolicy:
    """The paper's algorithm as a :class:`SelectionPolicy`."""

    name = "pam"

    def __init__(self, config: PAMConfig = PAMConfig()) -> None:
        self.config = config

    def select(self, placement: Placement,
               throughput: ThroughputSpec) -> MigrationPlan:
        """Run the paper's selection loop with this policy's config."""
        return pam_select(placement, throughput, self.config)


class MigrationController:
    """Detect overload, plan with a policy, execute migrations."""

    def __init__(self, policy: SelectionPolicy,
                 detector: Optional[OverloadDetector] = None,
                 cost_model: MigrationCostModel = MigrationCostModel(),
                 react_once: bool = False,
                 active_flows: int = 0) -> None:
        self.policy = policy
        self.detector = detector or OverloadDetector()
        self.cost_model = cost_model
        #: Live flow count handed to the state-size model at migration time.
        self.active_flows = active_flows
        #: With True the controller fires at most one plan per run —
        #: the paper's evaluation migrates once and then measures.
        self.react_once = react_once
        self._executor: Optional[MigrationExecutor] = None
        self._reacted = False
        #: Times the policy raised ScaleOutRequired, for reporting.
        self.scaleout_events: List[float] = []

    # -- runner integration --------------------------------------------------

    @property
    def migrations(self) -> List[MigrationRecord]:
        """Completed migration records (what the runner reports)."""
        return self._executor.records if self._executor else []

    def _executor_for(self, context: TickContext) -> MigrationExecutor:
        if self._executor is None:
            self._executor = MigrationExecutor(
                context.server, context.network, context.engine,
                cost_model=self.cost_model,
                active_flows=self.active_flows)
        return self._executor

    def on_tick(self, context: TickContext) -> None:
        """One operator query: detect, plan, execute."""
        nic_util = context.load.nic_load().utilisation
        overloaded = self.detector.update(nic_util)
        if not overloaded:
            return
        if self.react_once and self._reacted:
            return
        executor = self._executor_for(context)
        if executor.busy:
            return
        try:
            plan = self.policy.select(context.server.placement,
                                      context.offered_bps)
        except ScaleOutRequired:
            self.scaleout_events.append(context.now_s)
            return
        if plan.is_noop:
            return
        self._reacted = True
        executor.apply(plan, context.offered_bps)
