"""PAM over service graphs (the NFP-style generalisation).

On a chain, border vNFs are exactly the NFs whose migration adds no
PCIe crossings.  On a graph, that geometric definition is the one that
survives: a candidate is any SmartNIC NF whose move to the CPU does not
increase the *expected* crossings per packet
(:meth:`~repro.chain.graph.GraphPlacement.crossing_delta` <= 0 within
float tolerance).  Selection then proceeds exactly like chain PAM —
minimum theta^S first, CPU headroom check (Eq. 2 with share-weighted
throughput), stop when the NIC is alleviated (Eq. 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..chain.graph import GraphPlacement
from ..chain.nf import DeviceKind
from ..errors import ScaleOutRequired
from ..units import gbps

POLICY_NAME = "pam-graph"

#: Numerical slack on the "adds no crossings" test.
_DELTA_TOL = 1e-9


@dataclass(frozen=True)
class GraphAction:
    """One NF move on the graph."""

    nf_name: str
    target: DeviceKind
    crossing_delta: float


@dataclass(frozen=True)
class GraphPlan:
    """Moves plus before/after placements and predicted outcome."""

    actions: Tuple[GraphAction, ...]
    before: GraphPlacement
    after: GraphPlacement
    alleviates: bool
    notes: Tuple[str, ...] = ()

    @property
    def is_noop(self) -> bool:
        """Whether the plan moves nothing."""
        return not self.actions

    @property
    def migrated_names(self) -> List[str]:
        """Names moved, in order."""
        return [action.nf_name for action in self.actions]

    @property
    def total_crossing_delta(self) -> float:
        """Net expected-crossings change."""
        return (self.after.expected_crossings()
                - self.before.expected_crossings())


def device_utilisation(placement: GraphPlacement, device: DeviceKind,
                       throughput_bps: float) -> float:
    """Share-weighted utilisation of ``device`` (the graph Eq. sums)."""
    graph = placement.graph
    return sum(
        graph.node_share(nf.name) * throughput_bps / nf.capacity_on(device)
        for nf in placement.on_device(device))


def select(placement: GraphPlacement, throughput_bps: float,
           strict: bool = True, max_migrations: int = 64) -> GraphPlan:
    """Run graph PAM for one overload episode."""
    nic_util = device_utilisation(placement, DeviceKind.SMARTNIC,
                                  throughput_bps)
    if nic_util <= 1.0:
        return GraphPlan(actions=(), before=placement, after=placement,
                         alleviates=True,
                         notes=("smartnic not overloaded",))

    actions: List[GraphAction] = []
    notes: List[str] = []
    current = placement
    rejected: set = set()
    alleviates = False

    while len(actions) < max_migrations:
        candidates = []
        for nf in current.nic_nfs():
            if nf.name in rejected or not nf.cpu_capable:
                continue
            delta = current.crossing_delta(nf.name, DeviceKind.CPU)
            if delta <= _DELTA_TOL:
                candidates.append((nf.nic_capacity_bps, nf.name, delta))
        if not candidates:
            notes.append("border pool exhausted before alleviation")
            break
        candidates.sort()
        __, b0_name, delta = candidates[0]
        b0 = current.graph.get(b0_name)
        share = current.graph.node_share(b0_name)
        cpu_after = (device_utilisation(current, DeviceKind.CPU,
                                        throughput_bps)
                     + share * throughput_bps / b0.cpu_capacity_bps)
        if cpu_after >= 1.0:
            notes.append(f"eq2 rejects {b0_name}")
            rejected.add(b0_name)
            continue
        moved = current.moved(b0_name, DeviceKind.CPU)
        actions.append(GraphAction(nf_name=b0_name,
                                   target=DeviceKind.CPU,
                                   crossing_delta=delta))
        current = moved
        if device_utilisation(current, DeviceKind.SMARTNIC,
                              throughput_bps) < 1.0:
            alleviates = True
            notes.append(f"alleviated after migrating {b0_name}")
            break

    plan = GraphPlan(actions=tuple(actions), before=placement,
                     after=current, alleviates=alleviates,
                     notes=tuple(notes))
    if not alleviates and strict:
        raise ScaleOutRequired(
            "graph PAM cannot alleviate the SmartNIC",
            nic_utilisation=device_utilisation(
                current, DeviceKind.SMARTNIC, throughput_bps),
            cpu_utilisation=device_utilisation(
                current, DeviceKind.CPU, throughput_bps))
    return plan
