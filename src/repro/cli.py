"""Command-line interface: ``python -m repro <command>``.

Gives operators the paper's experiments without writing Python:

* ``reproduce``  — regenerate and check every paper artefact,
* ``table1`` / ``figure1`` / ``figure2`` — the individual artefacts,
* ``plan``       — run a selection policy at a chosen offered load,
* ``explain``    — placement diagram + capacity/border/latency analysis,
* ``optimise``   — exhaustive optimal-placement search,
* ``spike``      — the closed-loop traffic-spike episode,
* ``run-config`` — execute a JSON experiment description,
* ``suite``      — run or regression-check a directory of experiments,
* ``chaos``      — randomized fault campaign with invariant checking,
* ``soak``       — generative chaos fuzzing with an online invariant
  engine and automatic minimal-reproducer shrinking,
* ``campaigns``  — list the registered campaign kinds,
* ``resilience`` — canned device-failure / overload-degradation
  scenarios with recovery and shedding verdicts,
* ``reliability`` — joint migrate/replicate/shed planning campaigns
  (policy grids measured under device-kill / overload),
* ``lint``       — simulation-safety static analysis (determinism,
  units, event-ordering, exception hygiene).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .baselines.naive import NaivePolicy
from .baselines.noop import NoopPolicy
from .chain import catalog
from .core.planner import MigrationController, PAMPolicy
from .errors import ReproError, ScaleOutRequired
from .analysis.explain import explain_placement
from .analysis.placement_opt import optimise_placement
from .harness import config as config_mod
from .harness.compare import compare_policies, latency_gap
from .harness.results import ResultRecord
from .harness.paper import reproduce_all
from .harness.suite import check_suite, render_checks, run_suite
from .harness.scenarios import figure1
from .harness.sweep import packet_size_sweep
from .harness.tables import (render_figure1, render_figure2_latency,
                             render_figure2_throughput, render_table)
from .resources.capacity import CapacityTable
from .sim.runner import SimulationRunner
from .telemetry.monitor import LoadMonitor
from .traffic.packet import PAPER_SIZE_SWEEP, FixedSize
from .traffic.patterns import ProfiledArrivals, spike
from .units import as_gbps, as_msec, as_usec, gbps


def _policy_by_name(name: str):
    policies = {"pam": PAMPolicy, "naive": NaivePolicy, "noop": NoopPolicy}
    try:
        return policies[name]()
    except KeyError:
        raise ReproError(
            f"unknown policy {name!r}; choose from {sorted(policies)}")


def _add_supervision_args(parser: argparse.ArgumentParser) -> None:
    """The run-supervision flags shared by the campaign commands."""
    parser.add_argument("--run-timeout", type=float, default=None,
                        metavar="SEC",
                        help="wall-clock deadline per run; a run past it "
                             "has its worker killed and is retried "
                             "(enforced with --workers >= 2)")
    parser.add_argument("--max-attempts", type=int, default=1,
                        metavar="N",
                        help="tries per run before it is quarantined as "
                             "a scenario-error (default 1 = no retry)")
    parser.add_argument("--max-failures", type=float, default=None,
                        metavar="N",
                        help="abort the campaign once more than N runs "
                             "(a fraction of the grid when N < 1) are "
                             "quarantined")


def _supervision_from_args(args: argparse.Namespace):
    """The SupervisionPolicy the flags describe, or None for plain."""
    from .exec import SupervisionPolicy
    policy = SupervisionPolicy(run_timeout_s=args.run_timeout,
                               max_attempts=args.max_attempts,
                               max_failures=args.max_failures)
    return policy if policy.active else None


def cmd_table1(args: argparse.Namespace) -> int:
    """Print the Table 1 capacity table."""
    table = CapacityTable.from_mapping(catalog.TABLE1)
    print(table.render())
    return 0


def cmd_figure1(args: argparse.Namespace) -> int:
    """Run and print the Figure 1 policy comparison."""
    outcomes = compare_policies(figure1(), duration_s=args.duration)
    print(render_figure1(outcomes))
    gap = latency_gap(outcomes)
    print(f"\nPAM vs naive latency: {gap:+.1%} (paper: -18%)")
    return 0


def cmd_figure2(args: argparse.Namespace) -> int:
    """Run and print the Figure 2 packet-size sweep."""
    points = packet_size_sweep(figure1(), sizes=tuple(args.sizes),
                               duration_s=args.duration,
                               journal_path=args.journal,
                               resume_from=args.resume_from,
                               workers=args.workers,
                               supervision=_supervision_from_args(args))
    print(render_figure2_latency(points))
    print()
    print(render_figure2_throughput(points))
    if args.chart:
        from .telemetry.ascii_plots import bar_chart
        print()
        rows = []
        for point in points:
            size = point.packet_size_bytes
            for policy in ("noop", "naive", "pam"):
                rows.append((f"{size}B {policy}",
                             round(point.mean_latency_usec(policy), 1)))
        print(bar_chart(rows, width=36, unit="us"))
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    """Run one selection policy and print its plan."""
    scenario = figure1()
    policy = _policy_by_name(args.policy)
    try:
        plan = policy.select(scenario.placement, gbps(args.load))
    except ScaleOutRequired as exc:
        print(f"{args.policy}: cannot alleviate by migration "
              f"(NIC {exc.nic_utilisation:.2f}, CPU "
              f"{exc.cpu_utilisation:.2f}); scale out per OpenNF")
        return 1
    if plan.is_noop:
        print(f"{args.policy}: no migration needed at {args.load} Gbps")
        return 0
    rows = [[action.nf_name, action.source.value, action.target.value,
             f"{action.crossing_delta:+d}"] for action in plan.actions]
    print(render_table(["vNF", "from", "to", "dPCIe"], rows,
                       title=f"{args.policy} plan at {args.load} Gbps"))
    print(f"alleviates: {plan.alleviates}  "
          f"total crossing delta: {plan.total_crossing_delta:+d}")
    return 0


def cmd_spike(args: argparse.Namespace) -> int:
    """Run the closed-loop traffic-spike episode."""
    profile = spike(base_bps=gbps(args.base), peak_bps=gbps(args.peak),
                    start_s=0.01, duration_s=1.0)
    generator = ProfiledArrivals(profile, FixedSize(args.size),
                                 duration_s=args.duration, seed=11,
                                 jitter=False)
    server = figure1().build_server()
    controller = MigrationController(_policy_by_name(args.policy))
    monitor = LoadMonitor(inner=controller)
    result = SimulationRunner(server, generator, monitor,
                              monitor_period_s=0.002).run()
    print(f"policy={args.policy} migrated={result.migrated_nfs} "
          f"at={[f'{as_msec(t):.1f}ms' for t in result.migration_times_s]}")
    print(f"delivered {result.delivered}/{result.injected} "
          f"(dropped {result.dropped}); mean latency "
          f"{as_usec(result.latency.mean_s):.1f} us, "
          f"p99 {as_usec(result.latency.p99_s):.1f} us")
    return 0


def cmd_run_config(args: argparse.Namespace) -> int:
    """Run a JSON-described experiment."""
    spec = config_mod.load(args.config)
    result = spec.run()
    record = ResultRecord.from_result(result, label=spec.name)
    if args.output:
        record.save(args.output)
        print(f"result written to {args.output}")
    print(f"experiment {spec.name!r} (policy={spec.policy_name}):")
    print(f"  delivered {result.delivered}/{result.injected} "
          f"(dropped {result.dropped})")
    if result.latency is not None:
        print(f"  latency {result.latency.describe()}")
    print(f"  goodput {as_gbps(result.goodput_bps):.2f} Gbps")
    if result.migrated_nfs:
        print(f"  migrated: {', '.join(result.migrated_nfs)}")
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """Print the placement diagram and analysis report."""
    scenario = figure1()
    print(explain_placement(scenario.placement, gbps(args.load),
                            packet_bytes=args.size))
    return 0


def cmd_optimise(args: argparse.Namespace) -> int:
    """Exhaustively search for the optimal placement."""
    scenario = figure1()
    try:
        result = optimise_placement(
            scenario.chain, gbps(args.load),
            packet_bytes=args.size,
            ingress=scenario.placement.ingress,
            egress=scenario.placement.egress)
    except ScaleOutRequired:
        print(f"no feasible placement at {args.load} Gbps; scale out")
        return 1
    rows = [[nf.name, result.placement.device_of(nf.name).value]
            for nf in scenario.chain]
    print(render_table(["vNF", "device"], rows,
                       title=f"optimal placement at {args.load} Gbps"))
    print(f"predicted latency: "
          f"{as_usec(result.predicted_latency_s):.1f} us; "
          f"{result.feasible_count}/{result.total_count} placements "
          "feasible")
    return 0


def cmd_reproduce(args: argparse.Namespace) -> int:
    """Regenerate and check every paper artefact in one call."""
    report_obj = reproduce_all(duration_s=args.duration)
    print(report_obj.render())
    return 0 if report_obj.all_passed else 1


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run randomized chaos scenarios and check every invariant."""
    from .chaos import ChaosConfig, ChaosRunner
    from .exec import FaultPlan
    config = ChaosConfig(duration_s=args.duration,
                         migration_failure_rate=args.failure_rate,
                         max_device_kills=args.device_kills,
                         max_overload_windows=args.overloads,
                         resilient=args.resilient)
    worker_faults = (FaultPlan.parse_all(args.inject_worker_fault)
                     if args.inject_worker_fault else None)
    runner = ChaosRunner(runs=args.runs, seed=args.seed, config=config,
                         journal_path=args.journal,
                         resume_from=args.resume_from,
                         checkpoint_every=args.checkpoint_every,
                         workers=args.workers,
                         supervision=_supervision_from_args(args),
                         worker_faults=worker_faults)
    report = runner.run()
    if runner.replayed_runs:
        print(f"replayed {runner.replayed_runs} run(s) from journal "
              f"{args.resume_from}")
    print(report.render())
    return 0 if report.ok else 1


def cmd_soak(args: argparse.Namespace) -> int:
    """Soak-fuzz chaos schedules under the online invariant engine."""
    from .soak import (SoakCase, SoakRunner, default_space,
                       invariant_catalogue, parse_plant, render_payloads,
                       replay_reproducer, shrink_case, write_reproducer)
    if args.list_invariants:
        for name, description in invariant_catalogue():
            print(f"{name}: {description}")
        return 0
    if args.replay is not None:
        outcome = replay_reproducer(args.replay)
        print(outcome.render())
        return 0 if outcome.match else 1
    planted_index, planted = (None, None)
    if args.plant_bug is not None:
        planted_index, planted = parse_plant(args.plant_bug)
    runner = SoakRunner(runs=args.runs, seed=args.seed,
                        space=default_space(args.duration),
                        planted=planted, planted_index=planted_index,
                        journal_path=args.journal,
                        resume_from=args.resume_from,
                        checkpoint_every=args.checkpoint_every,
                        workers=args.workers,
                        supervision=_supervision_from_args(args),
                        stop_on_failure=args.stop_on_failure,
                        max_wall_s=args.max_seconds)
    outcome = runner.run()
    if runner.replayed_runs:
        print(f"replayed {runner.replayed_runs} run(s) from journal "
              f"{args.resume_from}")
    print(render_payloads(outcome.payloads))
    if outcome.stopped:
        print(f"stopped early: {outcome.stopped}")
    failures = outcome.failures
    if failures and args.shrink:
        case = SoakCase.from_dict(failures[0]["case"])
        print(f"shrinking failing case seed {case.seed} "
              f"({len(case.faults)} fault event(s))...")
        result = shrink_case(case)
        print(f"shrunk to {len(result.case.faults)} fault event(s) "
              f"in {result.executions} executions")
        write_reproducer(args.reproducer, result)
        print(f"reproducer written: {args.reproducer}")
        print(f"replay with: python -m repro soak "
              f"--replay {args.reproducer}")
    return 0 if outcome.ok else 1


def cmd_campaigns(args: argparse.Namespace) -> int:
    """List the registered campaign kinds."""
    from .exec import campaign_kinds
    for kind, description in campaign_kinds().items():
        print(f"{kind}: {description}")
    return 0


def cmd_crash_resume(args: argparse.Namespace) -> int:
    """SIGKILL a campaign mid-flight; verify bit-exact resume."""
    import os
    import tempfile
    from .chaos.crashresume import (SUPPORTED_CAMPAIGNS,
                                    run_crash_resume_check)
    if args.campaign not in SUPPORTED_CAMPAIGNS:
        known = ", ".join(SUPPORTED_CAMPAIGNS)
        raise ReproError(
            f"crash-resume cannot exercise campaign kind "
            f"{args.campaign!r} (available: {known})")
    journal = args.journal
    if journal is None:
        journal = os.path.join(
            tempfile.mkdtemp(prefix="repro-crash-resume-"),
            "journal.jsonl")
    outcome = run_crash_resume_check(
        runs=args.runs, seed=args.seed, duration_s=args.duration,
        journal_path=journal, kill_after_runs=args.kill_after,
        workers=args.workers, campaign=args.campaign)
    print(outcome.render())
    return 0 if outcome.match else 1


def cmd_reliability(args: argparse.Namespace) -> int:
    """Run a reliability-planning campaign and report its verdicts."""
    from .exec import make_executor, run_campaign
    from .reliability import ReliabilityCampaign, render_payloads
    campaign = ReliabilityCampaign(
        scenario=args.scenario, policies=tuple(args.policies),
        runs=args.runs, seed=args.seed, duration_s=args.duration,
        budget_bytes=args.budget)
    outcome = run_campaign(
        campaign,
        executor=make_executor(args.workers,
                               _supervision_from_args(args)),
        journal_path=args.journal,
        resume_from=args.resume_journal,
        checkpoint_every=args.checkpoint_every)
    if outcome.replayed:
        print(f"replayed {outcome.replayed} run(s) from journal "
              f"{args.resume_journal}")
    print(render_payloads(outcome.payloads))
    total = sum(len(payload["violations"])
                for payload in outcome.payloads)
    return 0 if total == 0 else 1


def cmd_resilience(args: argparse.Namespace) -> int:
    """Run canned resilience scenario(s) and report their verdicts."""
    from .exec import make_executor, run_campaign
    from .resilience.campaign import (ResilienceCampaign, render_payload,
                                      scenario_payload)
    from .resilience.scenarios import resume_scenario, run_scenario
    snapshotting = (args.resume_from is not None
                    or args.checkpoint_every > 0)
    if snapshotting:
        # Quiescent-point snapshots cover one simulation, not a grid:
        # the campaign options make no sense alongside them.
        if (args.runs != 1 or args.workers != 1
                or args.journal is not None
                or args.resume_journal is not None):
            raise ReproError(
                "snapshot checkpoint/resume applies to a single run; "
                "drop --runs/--workers/--journal/--resume-journal")
        if args.resume_from is not None:
            run = resume_scenario(args.resume_from)
            print(f"resumed from snapshot {args.resume_from}")
        else:
            run = run_scenario(args.scenario, seed=args.seed,
                               duration_s=args.duration,
                               checkpoint_every=args.checkpoint_every,
                               checkpoint_dir=args.checkpoint_dir)
            for path in run.checkpoints:
                print(f"checkpoint written: {path}")
        payloads = [scenario_payload(run)]
    else:
        campaign = ResilienceCampaign(args.scenario, runs=args.runs,
                                      seed=args.seed,
                                      duration_s=args.duration)
        outcome = run_campaign(
            campaign,
            executor=make_executor(args.workers,
                                   _supervision_from_args(args)),
            journal_path=args.journal,
            resume_from=args.resume_journal)
        if outcome.replayed:
            print(f"replayed {outcome.replayed} run(s) from journal "
                  f"{args.resume_journal}")
        payloads = outcome.payloads
    for payload in payloads:
        print(render_payload(payload))
    total = sum(len(payload["violations"]) for payload in payloads)
    return 0 if total == 0 else 1


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the simulation-safety linter over source paths."""
    from .analysis.lint import (Baseline, DEFAULT_BASELINE_NAME, Severity,
                                format_json, format_sarif, format_text,
                                lint_paths, rule_catalogue)
    if args.list_rules:
        print(rule_catalogue())
        return 0
    baseline = None
    if args.baseline is not None:
        baseline = Baseline.load(args.baseline)
    elif not args.no_baseline:
        from pathlib import Path
        default = Path(DEFAULT_BASELINE_NAME)
        if default.is_file():
            baseline = Baseline.load(default)
    report_on = None
    if args.changed:
        from .analysis.lint.incremental import changed_python_files
        report_on = changed_python_files(base=args.diff_base)
        if not report_on:
            print("no changed python files; nothing to lint")
            return 0
    report = lint_paths(args.paths, baseline=baseline,
                        project=args.project, report_on=report_on)
    if args.write_baseline is not None:
        from pathlib import Path
        document = Baseline.render(report.findings)
        Path(args.write_baseline).write_text(document)
        print(f"baseline with {len(report.findings)} entrie(s) written "
              f"to {args.write_baseline}; fill in each 'reason'")
        return 0
    if args.format == "json":
        rendered = format_json(report)
    elif args.format == "sarif":
        from .analysis.lint import all_rules
        from .analysis.lint.project import all_project_rules
        rendered = format_sarif(
            report, sorted(all_rules() + list(all_project_rules()),
                           key=lambda rule: rule.code))
    else:
        rendered = format_text(report)
    print(rendered)
    code = report.exit_code(Severity.parse(args.fail_on))
    if args.fail_stale and report.stale_baseline:
        return 1
    return code


def cmd_suite(args: argparse.Namespace) -> int:
    """Run or regression-check a directory of experiments."""
    if args.check:
        checks = check_suite(args.directory)
        print(render_checks(checks))
        return 0 if all(check.ok for check in checks) else 1
    entries = run_suite(args.directory)
    for entry in entries:
        print(f"{entry.config_path.name:<40} -> "
              f"{entry.result_path.name}")
    print(f"{len(entries)} experiments run, baselines written")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PAM (SIGCOMM'18) reproduction experiments")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print the Table 1 capacity table") \
       .set_defaults(func=cmd_table1)

    p_fig1 = sub.add_parser("figure1", help="the three migration choices")
    p_fig1.add_argument("--duration", type=float, default=0.01,
                        help="seconds of simulated traffic per run")
    p_fig1.set_defaults(func=cmd_figure1)

    p_fig2 = sub.add_parser("figure2", aliases=["sweep"],
                            help="packet-size sweep")
    p_fig2.add_argument("--sizes", type=int, nargs="+",
                        default=list(PAPER_SIZE_SWEEP))
    p_fig2.add_argument("--duration", type=float, default=0.008)
    p_fig2.add_argument("--chart", action="store_true",
                        help="append an ASCII bar chart")
    p_fig2.add_argument("--journal", metavar="PATH",
                        help="write-ahead journal logging each completed "
                             "sweep point")
    p_fig2.add_argument("--resume-from", metavar="PATH",
                        help="journal to replay completed sweep points "
                             "from")
    p_fig2.add_argument("--workers", type=int, default=1,
                        help="process-pool size; results are "
                             "bit-identical to --workers 1")
    _add_supervision_args(p_fig2)
    p_fig2.set_defaults(func=cmd_figure2)

    p_plan = sub.add_parser("plan", help="run a selection policy")
    p_plan.add_argument("--policy", default="pam",
                        choices=["pam", "naive", "noop"])
    p_plan.add_argument("--load", type=float, default=1.8,
                        help="offered load in Gbps")
    p_plan.set_defaults(func=cmd_plan)

    p_spike = sub.add_parser("spike", help="closed-loop overload episode")
    p_spike.add_argument("--policy", default="pam",
                         choices=["pam", "naive", "noop"])
    p_spike.add_argument("--base", type=float, default=1.3)
    p_spike.add_argument("--peak", type=float, default=1.8)
    p_spike.add_argument("--size", type=int, default=256)
    p_spike.add_argument("--duration", type=float, default=0.04)
    p_spike.set_defaults(func=cmd_spike)

    p_explain = sub.add_parser("explain",
                               help="diagram + analysis of a placement")
    p_explain.add_argument("--load", type=float, default=1.8)
    p_explain.add_argument("--size", type=int, default=256)
    p_explain.set_defaults(func=cmd_explain)

    p_opt = sub.add_parser("optimise",
                           help="exhaustive optimal placement search")
    p_opt.add_argument("--load", type=float, default=1.8)
    p_opt.add_argument("--size", type=int, default=256)
    p_opt.set_defaults(func=cmd_optimise)

    p_repro = sub.add_parser("reproduce",
                             help="regenerate and check every paper artefact")
    p_repro.add_argument("--duration", type=float, default=0.008)
    p_repro.set_defaults(func=cmd_reproduce)

    p_suite = sub.add_parser("suite",
                             help="run/check a directory of experiments")
    p_suite.add_argument("directory")
    p_suite.add_argument("--check", action="store_true",
                         help="diff against committed baselines")
    p_suite.set_defaults(func=cmd_suite)

    p_chaos = sub.add_parser("chaos",
                             help="randomized fault campaign with "
                                  "invariant checking")
    p_chaos.add_argument("--runs", type=int, default=20,
                         help="number of randomized scenarios")
    p_chaos.add_argument("--seed", type=int, default=7,
                         help="base seed; scenario i uses seed+i")
    p_chaos.add_argument("--duration", type=float, default=0.04,
                         help="simulated seconds per scenario")
    p_chaos.add_argument("--failure-rate", type=float, default=0.3,
                         help="per-attempt migration failure probability")
    p_chaos.add_argument("--device-kills", type=int, default=0,
                         help="max permanent SmartNIC deaths per scenario")
    p_chaos.add_argument("--overloads", type=int, default=0,
                         help="max sustained overload windows per scenario")
    p_chaos.add_argument("--resilient", action="store_true",
                         help="put the ResilientController in charge and "
                              "check the resilience invariants too")
    p_chaos.add_argument("--journal", metavar="PATH",
                         help="write-ahead run journal (JSONL) logging "
                              "campaign progress")
    p_chaos.add_argument("--resume-from", metavar="PATH",
                         help="journal to replay completed runs from "
                              "(continues appending to it)")
    p_chaos.add_argument("--checkpoint-every", type=int, default=5,
                         help="journal a campaign-progress digest every "
                              "N runs")
    p_chaos.add_argument("--workers", type=int, default=1,
                         help="process-pool size; the merged report is "
                              "bit-identical to --workers 1")
    _add_supervision_args(p_chaos)
    p_chaos.add_argument("--inject-worker-fault", action="append",
                         metavar="IDX:FAULT[:ATTEMPTS]",
                         help="(testing) sabotage run IDX worker-side "
                              "with hang|die|garbage|error, optionally "
                              "only on the listed attempt numbers "
                              "(repeatable; exercises the supervisor)")
    p_chaos.set_defaults(func=cmd_chaos)

    p_soak = sub.add_parser("soak",
                            help="soak-fuzz random chaos schedules "
                                 "under the online invariant engine, "
                                 "shrinking any failure to a minimal "
                                 "reproducer")
    p_soak.add_argument("--runs", type=int, default=32,
                        help="fuzzed cases to draw (case i uses seed+i)")
    p_soak.add_argument("--seed", type=int, default=7,
                        help="base seed for the fuzzer")
    p_soak.add_argument("--duration", type=float, default=None,
                        metavar="SEC",
                        help="cap the fuzzed per-case simulated "
                             "duration (default: the space's own range)")
    p_soak.add_argument("--journal", metavar="PATH",
                        help="write-ahead run journal (JSONL) logging "
                             "campaign progress")
    p_soak.add_argument("--resume-from", metavar="PATH",
                        help="journal to replay completed runs from "
                             "(continues appending to it)")
    p_soak.add_argument("--checkpoint-every", type=int, default=5,
                        help="journal a campaign-progress digest every "
                             "N runs")
    p_soak.add_argument("--workers", type=int, default=1,
                        help="process-pool size; the merged report is "
                             "bit-identical to --workers 1")
    _add_supervision_args(p_soak)
    p_soak.add_argument("--stop-on-failure", action="store_true",
                        help="stop the campaign at the first case with "
                             "a violation (writes a campaign-stop "
                             "record; the journal stays resumable)")
    p_soak.add_argument("--max-seconds", type=float, default=None,
                        metavar="SEC",
                        help="wall-clock budget; the campaign stops "
                             "cleanly once it is exhausted")
    p_soak.add_argument("--plant-bug", metavar="INDEX:BUG[:TRIGGER]",
                        help="(testing) plant a known bug into case "
                             "INDEX: conservation | protected-shed, "
                             "fired by TRIGGER faults (default crash)")
    p_soak.add_argument("--no-shrink", dest="shrink",
                        action="store_false",
                        help="report violations without shrinking the "
                             "first failing case")
    p_soak.add_argument("--reproducer", metavar="PATH",
                        default="soak-reproducer.json",
                        help="where the shrunk reproducer is written "
                             "(default: soak-reproducer.json)")
    p_soak.add_argument("--replay", metavar="PATH",
                        help="re-execute a reproducer file and compare "
                             "its violations bit-exact (no fuzzing)")
    p_soak.add_argument("--list-invariants", action="store_true",
                        help="print the runtime invariant catalogue "
                             "and exit")
    p_soak.set_defaults(func=cmd_soak, shrink=True)

    p_kinds = sub.add_parser("campaigns",
                             help="inspect the registered campaign "
                                  "kinds")
    p_kinds.add_argument("--list-kinds", action="store_true",
                         help="list every campaign kind with its "
                              "description (the default action)")
    p_kinds.set_defaults(func=cmd_campaigns)

    p_crash = sub.add_parser("crash-resume",
                             help="SIGKILL a journaled campaign "
                                  "mid-flight and verify the journal "
                                  "resume is bit-exact")
    p_crash.add_argument("--campaign", default="chaos",
                         metavar="KIND",
                         help="campaign kind to kill and resume "
                              "(chaos, reliability, or soak; see "
                              "`repro campaigns --list-kinds` for every "
                              "registered kind)")
    p_crash.add_argument("--runs", type=int, default=6)
    p_crash.add_argument("--seed", type=int, default=7)
    p_crash.add_argument("--duration", type=float, default=0.02,
                         help="simulated seconds per scenario")
    p_crash.add_argument("--kill-after", type=int, default=2,
                         help="SIGKILL once this many runs are journaled")
    p_crash.add_argument("--journal", metavar="PATH",
                         help="journal path (default: a temp directory)")
    p_crash.add_argument("--workers", type=int, default=1,
                         help="process-pool size for the killed and "
                              "resumed campaigns (the reference stays "
                              "serial, so this also proves parallel == "
                              "serial)")
    p_crash.set_defaults(func=cmd_crash_resume)

    p_res = sub.add_parser("resilience",
                           help="run a canned failure/degradation "
                                "scenario end to end")
    p_res.add_argument("--scenario", default="device-kill",
                       choices=["device-kill", "overload"])
    p_res.add_argument("--seed", type=int, default=7)
    p_res.add_argument("--duration", type=float, default=None,
                       help="simulated seconds (scenario default if unset)")
    p_res.add_argument("--runs", type=int, default=1,
                       help="repetitions; run i uses seed+i")
    p_res.add_argument("--workers", type=int, default=1,
                       help="process-pool size; reports are "
                            "bit-identical to --workers 1")
    p_res.add_argument("--journal", metavar="PATH",
                       help="write-ahead run journal (JSONL) logging "
                            "campaign progress")
    p_res.add_argument("--resume-journal", metavar="PATH",
                       help="run journal to replay completed runs from "
                            "(distinct from --resume-from, which takes "
                            "a simulation snapshot)")
    p_res.add_argument("--checkpoint-every", type=int, default=0,
                       help="write a deterministic snapshot every N "
                            "monitor ticks (needs --checkpoint-dir)")
    p_res.add_argument("--checkpoint-dir", metavar="DIR",
                       help="directory for snapshot files")
    p_res.add_argument("--resume-from", metavar="PATH",
                       help="resume from a snapshot file (scenario/seed/"
                            "duration come from its meta block)")
    _add_supervision_args(p_res)
    p_res.set_defaults(func=cmd_resilience)

    p_rel = sub.add_parser("reliability",
                           help="joint migrate/replicate/shed planning "
                                "campaign: policy grid measured under a "
                                "failure scenario")
    p_rel.add_argument("--scenario", default="device-kill",
                       choices=["device-kill", "overload"])
    p_rel.add_argument("--policies", nargs="+",
                       default=["joint", "pam", "naive"],
                       choices=["joint", "pam", "naive", "scaleout"],
                       help="reliability policies to compare on paired "
                            "seeds")
    p_rel.add_argument("--runs", type=int, default=1,
                       help="repetitions per policy; rep i of every "
                            "policy uses seed+i")
    p_rel.add_argument("--seed", type=int, default=7)
    p_rel.add_argument("--duration", type=float, default=None,
                       help="simulated seconds (scenario default if "
                            "unset)")
    p_rel.add_argument("--budget", type=int, default=1 << 20,
                       metavar="BYTES",
                       help="warm-replica byte budget each policy may "
                            "spend (default 1 MiB)")
    p_rel.add_argument("--workers", type=int, default=1,
                       help="process-pool size; reports are "
                            "bit-identical to --workers 1")
    p_rel.add_argument("--journal", metavar="PATH",
                       help="write-ahead run journal (JSONL) logging "
                            "campaign progress")
    p_rel.add_argument("--resume-journal", metavar="PATH",
                       help="run journal to replay completed runs from")
    p_rel.add_argument("--checkpoint-every", type=int, default=5,
                       help="journal a campaign-progress digest every "
                            "N runs")
    _add_supervision_args(p_rel)
    p_rel.set_defaults(func=cmd_reliability)

    p_lint = sub.add_parser("lint",
                            help="simulation-safety static analysis")
    p_lint.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories (default: src/repro)")
    p_lint.add_argument("--format", choices=["text", "json", "sarif"],
                        default="text")
    p_lint.add_argument("--fail-on", choices=["warning", "error"],
                        default="error",
                        help="lowest severity that fails the run")
    p_lint.add_argument("--project", action="store_true",
                        help="also run whole-program rules (FLOW5xx "
                             "seed provenance, UNIT21x unit flow, "
                             "JRN601 journal purity)")
    p_lint.add_argument("--changed", action="store_true",
                        help="report only on files git says changed "
                             "(analysis still covers every path)")
    p_lint.add_argument("--diff-base", default="HEAD", metavar="REV",
                        help="revision --changed diffs against "
                             "(default: HEAD)")
    p_lint.add_argument("--fail-stale", action="store_true",
                        help="exit nonzero when baseline entries match "
                             "nothing (CI hygiene gate)")
    p_lint.add_argument("--baseline",
                        help="baseline JSON of accepted findings "
                             "(default: ./lint-baseline.json if present)")
    p_lint.add_argument("--no-baseline", action="store_true",
                        help="ignore any default baseline file")
    p_lint.add_argument("--write-baseline", metavar="PATH",
                        help="write current findings as a fresh baseline "
                             "and exit 0")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    p_lint.set_defaults(func=cmd_lint)

    p_config = sub.add_parser("run-config",
                              help="run a JSON-described experiment")
    p_config.add_argument("config", help="path to the experiment JSON")
    p_config.add_argument("--output", help="write a result record here")
    p_config.set_defaults(func=cmd_run_config)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
