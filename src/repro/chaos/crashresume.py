"""SIGKILL-and-resume check: the chaos journal survives a dead process.

This automates the scenario the write-ahead journal exists for: a
campaign process dies without warning (SIGKILL — no ``atexit``, no
``finally``), leaving the journal with a possibly torn trailing record,
and a fresh process resumes from it.  The check passes only if the
merged report renders **bit-exact** against an uninterrupted campaign —
the property ``python -m repro crash-resume`` asserts in CI.

The torn tail is additionally forced deterministically (a half-written
record is appended after the kill) so the tolerance path is exercised
on every check, not just when the kill happens to land mid-write.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
import warnings
from dataclasses import dataclass
from pathlib import Path

from ..checkpoint import read_journal
from ..errors import CheckpointError
from .runner import ChaosConfig, ChaosRunner

#: Seconds between journal polls while the campaign subprocess runs.
#: The bounded retry count caps total waiting — no wall-clock deadline
#: arithmetic, so the check stays deterministic in what it *does* even
#: though the kill's landing point depends on scheduling.
_POLL_INTERVAL_S = 0.05
_MAX_POLLS = 1200

#: Campaign kinds this harness can kill and resume (the CLI validates
#: its ``--campaign`` flag against this, not the full kind registry).
SUPPORTED_CAMPAIGNS = ("chaos", "reliability", "soak")


@dataclass
class CrashResumeOutcome:
    """What the crash-resume check observed."""

    runs: int
    seed: int
    #: Campaign kind the check exercised (one of
    #: :data:`SUPPORTED_CAMPAIGNS`).
    campaign: str
    #: run-result records intact in the journal when the kill landed.
    journaled_before_kill: int
    #: Whether the subprocess was actually SIGKILLed mid-flight (False
    #: when it finished before the poll caught it — the resume then
    #: replays every run, which still must match).
    killed: bool
    #: Runs the resumed campaign replayed from the journal.
    replayed_runs: int
    #: Rendered report of the resumed campaign.
    resumed: str
    #: Rendered report of the uninterrupted reference campaign.
    reference: str

    @property
    def match(self) -> bool:
        """Whether the merged report is bit-exact vs the reference."""
        return self.resumed == self.reference

    def render(self) -> str:
        """One-line verdict for the CLI."""
        verdict = "bit-exact" if self.match else "MISMATCH"
        how = "SIGKILLed" if self.killed else "finished before the kill"
        return (f"crash-resume[{self.campaign}]: {self.runs} runs "
                f"(seed {self.seed}); "
                f"campaign {how} with {self.journaled_before_kill} "
                f"journaled run(s); resume replayed {self.replayed_runs} "
                f"and re-ran {self.runs - self.replayed_runs}; "
                f"merged report {verdict} vs uninterrupted reference")


def _count_run_results(journal_path: str) -> int:
    """Intact run-result records currently in the journal."""
    if not os.path.exists(journal_path):
        return 0
    return len(read_journal(journal_path,
                            tolerate_torn_tail=True).of_kind("run-result"))


def _campaign_command(campaign: str, runs: int, seed: int,
                      duration_s: float, journal_path: str,
                      workers: int) -> list:
    """The subprocess argv that journals one campaign of ``campaign``."""
    if campaign == "chaos":
        subcommand = ["chaos"]
    elif campaign == "reliability":
        # Single-policy grid: `runs` keeps its meaning of total runs.
        subcommand = ["reliability", "--scenario", "device-kill",
                      "--policies", "joint"]
    elif campaign == "soak":
        # No shrinking in the subprocess: the kill must land mid-grid,
        # not mid-shrink, and the resume compares grid reports only.
        subcommand = ["soak", "--no-shrink"]
    else:
        known = ", ".join(SUPPORTED_CAMPAIGNS)
        raise CheckpointError(
            f"crash-resume does not support campaign {campaign!r} "
            f"(known: {known})")
    return [sys.executable, "-m", "repro", *subcommand,
            "--runs", str(runs), "--seed", str(seed),
            "--duration", str(duration_s),
            "--workers", str(workers),
            "--journal", journal_path, "--checkpoint-every", "1"]


def _resume_and_reference(campaign: str, runs: int, seed: int,
                          duration_s: float, journal_path: str,
                          workers: int):
    """Resume the journal in-process; also run the serial reference.

    Returns ``(replayed_runs, resumed_report, reference_report)`` —
    both reports rendered, ready for the bit-exact comparison.
    """
    if campaign == "chaos":
        config = ChaosConfig(duration_s=duration_s)
        resumer = ChaosRunner(runs=runs, seed=seed, config=config,
                              resume_from=journal_path,
                              checkpoint_every=1, workers=workers)
        resumed = resumer.run().render()
        reference = ChaosRunner(runs=runs, seed=seed,
                                config=config).run().render()
        return resumer.replayed_runs, resumed, reference
    if campaign == "soak":
        # The space must match the subprocess's exactly or the journal
        # fingerprint check refuses the resume — both sides build it
        # through default_space(duration).
        from ..soak import SoakRunner, default_space, render_payloads
        space = default_space(duration_s)
        resumer = SoakRunner(runs=runs, seed=seed, space=space,
                             resume_from=journal_path,
                             checkpoint_every=1, workers=workers)
        resumed = render_payloads(resumer.run().payloads)
        reference = render_payloads(SoakRunner(
            runs=runs, seed=seed, space=space).run().payloads)
        return resumer.replayed_runs, resumed, reference
    from ..exec import make_executor, run_campaign
    from ..reliability import ReliabilityCampaign, render_payloads

    def build() -> ReliabilityCampaign:
        return ReliabilityCampaign(scenario="device-kill",
                                   policies=("joint",), runs=runs,
                                   seed=seed, duration_s=duration_s)

    outcome = run_campaign(build(),
                           executor=make_executor(workers, None),
                           resume_from=journal_path,
                           checkpoint_every=1)
    reference = run_campaign(build())
    return (outcome.replayed, render_payloads(outcome.payloads),
            render_payloads(reference.payloads))


def run_crash_resume_check(runs: int = 6, seed: int = 7,
                           duration_s: float = 0.02,
                           journal_path: str = "crash-resume-journal.jsonl",
                           kill_after_runs: int = 2,
                           workers: int = 1,
                           campaign: str = "chaos") -> CrashResumeOutcome:
    """SIGKILL a campaign subprocess mid-flight and resume its journal.

    Launches ``python -m repro <campaign> --journal ...`` as a
    subprocess, polls the journal until ``kill_after_runs`` run-results
    are intact, SIGKILLs it, deterministically appends a torn record,
    resumes the campaign in-process from the journal, and compares the
    merged report against an uninterrupted reference campaign.

    ``campaign`` selects the campaign kind under test (``chaos``, a
    single-policy ``reliability`` grid, or a shrink-free ``soak``
    fuzz) — the kill/resume machinery is identical because every
    campaign shares the journal protocol.

    ``workers`` applies to the killed campaign and the resume; the
    reference always runs serially, so with ``workers > 1`` the check
    additionally proves the parallel merged report is bit-exact against
    the serial one.  A parallel journal's run-results may land out of
    index order — the merge is by index, so resume handles the gaps.
    """
    src_root = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src_root)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    command = _campaign_command(campaign, runs, seed, duration_s,
                                journal_path, workers)
    process = subprocess.Popen(command, env=env,
                               stdout=subprocess.DEVNULL,
                               stderr=subprocess.DEVNULL)
    killed = False
    try:
        for _ in range(_MAX_POLLS):
            if _count_run_results(journal_path) >= kill_after_runs:
                break
            if process.poll() is not None:
                break
            time.sleep(_POLL_INTERVAL_S)
        if process.poll() is None:
            process.send_signal(signal.SIGKILL)
            killed = True
    finally:
        process.wait()
    if not os.path.exists(journal_path):
        raise CheckpointError(
            f"campaign subprocess exited (code {process.returncode}) "
            f"without writing {journal_path}")
    journaled = _count_run_results(journal_path)
    # Force the torn-write path: whatever state the kill left the file
    # in, the resume must shrug off a half-written final record.
    with open(journal_path, "a", encoding="utf-8") as handle:
        handle.write('{"crc": 0, "record": {"kind": "run-res')
    with warnings.catch_warnings():
        # The torn tail we just planted warns by design.
        warnings.simplefilter("ignore", RuntimeWarning)
        replayed, resumed, reference = _resume_and_reference(
            campaign, runs, seed, duration_s, journal_path, workers)
    return CrashResumeOutcome(
        runs=runs, seed=seed, campaign=campaign,
        journaled_before_kill=journaled,
        killed=killed, replayed_runs=replayed,
        resumed=resumed, reference=reference)
