"""Seeded chaos schedules: randomized fault compositions over a run.

A :class:`ChaosSchedule` is a deterministic function of (config, NF
names, seed): the same inputs always generate the same fault sequence,
so a chaos run that surfaces an invariant violation can be replayed
bit-identically from its seed alone — the property that makes chaos
testing a debugging tool rather than a flakiness generator.

Fault kinds composed (see :class:`repro.sim.faults.FaultInjector`):
NF crashes (including repeated crashes of the same NF), device
brownouts, PCIe link flaps, and telemetry dropouts.  Two resilience
kinds are off by default: permanent SmartNIC death (``device-kill``)
and sustained offered-load overload windows (``overload``, realised by
the chaos runner's traffic profile rather than the injector).
Migration failures are injected separately through the executor's
failure hook (:class:`repro.migration.executor.ProbabilisticFailure`)
because they strike migration *attempts*, not wall-clock times.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence

from ..chain.nf import DeviceKind
from ..errors import ConfigurationError
from ..sim.faults import FaultEvent, FaultInjector
from ..units import as_msec, usec


@dataclass(frozen=True)
class ChaosConfig:
    """Knobs bounding what one randomized scenario may contain."""

    #: Simulated seconds per scenario.
    duration_s: float = 0.04
    #: Maximum faults drawn per kind (actual counts are seeded draws
    #: in ``[0, max]``; crashes may repeatedly hit the same NF).
    max_crashes: int = 3
    max_brownouts: int = 2
    max_pcie_flaps: int = 2
    max_telemetry_dropouts: int = 1
    #: Fault windows are drawn uniformly from this range.
    min_fault_duration_s: float = 0.002
    max_fault_duration_s: float = 0.008
    #: Brownout capacity scale is drawn from this range.
    brownout_scale_lo: float = 0.4
    brownout_scale_hi: float = 0.85
    #: PCIe flap extra latency is drawn from this range.
    flap_extra_lo_s: float = usec(20.0)
    flap_extra_hi_s: float = usec(200.0)
    #: Probability that any one migration attempt fails mid-transfer
    #: (fed to the executor's failure hook, not the schedule).
    migration_failure_rate: float = 0.3
    #: Resilience fault kinds, off by default.  They only consume RNG
    #: draws when enabled, so enabling them does not reshuffle the
    #: faults an existing seed produces with them off.
    max_device_kills: int = 0
    max_overload_windows: int = 0
    #: Peak rate an overload window forces (must exceed what any
    #: planner-reachable placement of the chain can carry).
    overload_peak_bps: float = 2.4e9
    #: Put a ResilientController (health FSM, evacuation, degradation
    #: ladder) in charge instead of the bare HardenedController, and
    #: check the resilience invariants too.
    resilient: bool = False

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        for count in (self.max_crashes, self.max_brownouts,
                      self.max_pcie_flaps, self.max_telemetry_dropouts,
                      self.max_device_kills, self.max_overload_windows):
            if count < 0:
                raise ConfigurationError("fault counts must be >= 0")
        if self.overload_peak_bps <= 0:
            raise ConfigurationError("overload peak must be positive")
        if not (0 < self.min_fault_duration_s <= self.max_fault_duration_s):
            raise ConfigurationError("invalid fault-duration range")
        if not (0.0 < self.brownout_scale_lo <=
                self.brownout_scale_hi < 1.0):
            raise ConfigurationError("brownout scales must be in (0, 1)")
        if not (0.0 < self.flap_extra_lo_s <= self.flap_extra_hi_s):
            raise ConfigurationError("invalid flap-latency range")
        if not (0.0 <= self.migration_failure_rate <= 1.0):
            raise ConfigurationError("failure rate must be in [0, 1]")

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form (journal fingerprinting and round-trip)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ChaosConfig":
        """Inverse of :meth:`to_dict` (validates on construction)."""
        return cls(**data)


@dataclass(frozen=True)
class ChaosFault:
    """One scheduled fault."""

    kind: str  # crash | brownout | pcie-flap | telemetry-dropout
    #        | device-kill | overload
    at_s: float
    duration_s: float
    nf_name: Optional[str] = None
    device: Optional[DeviceKind] = None
    #: Brownout capacity scale or flap extra latency (seconds).
    magnitude: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly form for reports."""
        out: Dict[str, object] = {
            "kind": self.kind, "at_s": self.at_s,
            "duration_s": self.duration_s}
        if self.nf_name is not None:
            out["nf"] = self.nf_name
        if self.device is not None:
            out["device"] = self.device.value
        if self.magnitude:
            out["magnitude"] = self.magnitude
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ChaosFault":
        """Inverse of :meth:`as_dict` (journal round-trip)."""
        device = data.get("device")
        return cls(
            kind=str(data["kind"]),
            at_s=float(data["at_s"]),
            duration_s=float(data["duration_s"]),
            nf_name=data.get("nf"),
            device=DeviceKind(device) if device is not None else None,
            magnitude=float(data.get("magnitude", 0.0)))


@dataclass
class ChaosSchedule:
    """A seeded, time-ordered fault composition for one scenario."""

    seed: int
    config: ChaosConfig
    faults: List[ChaosFault] = field(default_factory=list)

    @classmethod
    def generate(cls, nf_names: Sequence[str],
                 config: ChaosConfig = ChaosConfig(),
                 seed: int = 0) -> "ChaosSchedule":
        """Draw a randomized fault composition, deterministic in ``seed``."""
        if not nf_names:
            raise ConfigurationError("need at least one NF to schedule faults")
        rng = random.Random(seed)
        duration = config.duration_s
        faults: List[ChaosFault] = []

        def window() -> tuple:
            # Start faults inside the run's middle so restores land
            # before the drain grace and startup isn't perturbed.
            length = rng.uniform(config.min_fault_duration_s,
                                 config.max_fault_duration_s)
            start = rng.uniform(0.1 * duration,
                                max(0.1 * duration, 0.85 * duration - length))
            return start, length

        for __ in range(rng.randint(0, config.max_crashes)):
            start, length = window()
            faults.append(ChaosFault(kind="crash", at_s=start,
                                     duration_s=length,
                                     nf_name=rng.choice(list(nf_names))))
        for __ in range(rng.randint(0, config.max_brownouts)):
            start, length = window()
            faults.append(ChaosFault(
                kind="brownout", at_s=start, duration_s=length,
                device=rng.choice([DeviceKind.SMARTNIC, DeviceKind.CPU]),
                magnitude=rng.uniform(config.brownout_scale_lo,
                                      config.brownout_scale_hi)))
        for __ in range(rng.randint(0, config.max_pcie_flaps)):
            start, length = window()
            faults.append(ChaosFault(
                kind="pcie-flap", at_s=start, duration_s=length,
                magnitude=rng.uniform(config.flap_extra_lo_s,
                                      config.flap_extra_hi_s)))
        for __ in range(rng.randint(0, config.max_telemetry_dropouts)):
            start, length = window()
            faults.append(ChaosFault(kind="telemetry-dropout", at_s=start,
                                     duration_s=length))
        # Resilience kinds draw only when enabled: a seed generates the
        # same composition as before this knob existed when max == 0.
        if config.max_device_kills:
            for __ in range(rng.randint(0, config.max_device_kills)):
                start, __length = window()
                # Permanent, and SmartNIC-only: the chain must survive
                # losing its accelerator (the CPU side also hosts the
                # egress endpoint, which is outside the failure model).
                faults.append(ChaosFault(
                    kind="device-kill", at_s=start, duration_s=0.0,
                    device=DeviceKind.SMARTNIC))
        if config.max_overload_windows:
            for __ in range(rng.randint(0, config.max_overload_windows)):
                start, length = window()
                faults.append(ChaosFault(
                    kind="overload", at_s=start, duration_s=length,
                    magnitude=config.overload_peak_bps))
        faults.sort(key=lambda f: f.at_s)
        return cls(seed=seed, config=config, faults=faults)

    def apply(self, injector: FaultInjector) -> List[FaultEvent]:
        """Install every scheduled fault on ``injector``."""
        events = []
        for fault in self.faults:
            if fault.kind == "crash":
                events.append(injector.crash_nf(
                    fault.nf_name, fault.at_s, fault.duration_s))
            elif fault.kind == "brownout":
                events.append(injector.brownout(
                    fault.device, fault.at_s, fault.duration_s,
                    fault.magnitude))
            elif fault.kind == "pcie-flap":
                events.append(injector.pcie_flap(
                    fault.at_s, fault.duration_s, fault.magnitude))
            elif fault.kind == "telemetry-dropout":
                events.append(injector.telemetry_dropout(
                    fault.at_s, fault.duration_s))
            elif fault.kind == "device-kill":
                events.append(injector.kill_device(fault.device, fault.at_s))
            elif fault.kind == "overload":
                # Realised by the runner's traffic profile, not the
                # injector: an overload is offered load, not a fault in
                # the data plane.
                continue
            else:  # pragma: no cover - generate() only emits the above
                raise ConfigurationError(f"unknown fault kind {fault.kind!r}")
        return events

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form for journal records."""
        return {
            "seed": self.seed,
            "config": self.config.to_dict(),
            "faults": [fault.as_dict() for fault in self.faults],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ChaosSchedule":
        """Inverse of :meth:`to_dict` (journal round-trip)."""
        return cls(
            seed=int(data["seed"]),
            config=ChaosConfig.from_dict(data["config"]),
            faults=[ChaosFault.from_dict(fault)
                    for fault in data["faults"]])

    def describe(self) -> str:
        """One line per fault, for reports."""
        if not self.faults:
            return "(no faults drawn)"
        lines = []
        for fault in self.faults:
            target = fault.nf_name or \
                (fault.device.value if fault.device else "-")
            lines.append(f"{as_msec(fault.at_s):7.2f}ms  {fault.kind:<18} "
                         f"{target:<10} {as_msec(fault.duration_s):.2f}ms")
        return "\n".join(lines)
