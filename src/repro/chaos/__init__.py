"""Chaos testing: randomized fault campaigns with invariant checking.

The subsystem every scale-out PR leans on to stay correct:

* :mod:`repro.chaos.schedule` — seeded, replayable fault compositions;
* :mod:`repro.chaos.invariants` — what must hold after any run;
* :mod:`repro.chaos.runner` — N randomized scenarios, zero tolerated
  violations, write-ahead run journal (``python -m repro chaos``);
* :mod:`repro.chaos.crashresume` — SIGKILL a campaign mid-flight and
  verify the journal resume is bit-exact
  (``python -m repro crash-resume``).
"""

from .crashresume import CrashResumeOutcome, run_crash_resume_check
from .invariants import (Violation, check_invariants,
                         check_resilience_invariants)
from .runner import ChaosReport, ChaosRunner, ChaosRunResult, ChaosScenario
from .schedule import ChaosConfig, ChaosFault, ChaosSchedule

__all__ = [
    "ChaosConfig", "ChaosFault", "ChaosSchedule",
    "ChaosReport", "ChaosRunner", "ChaosRunResult", "ChaosScenario",
    "CrashResumeOutcome", "run_crash_resume_check",
    "Violation", "check_invariants", "check_resilience_invariants",
]
