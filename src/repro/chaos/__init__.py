"""Chaos testing: randomized fault campaigns with invariant checking.

The subsystem every scale-out PR leans on to stay correct:

* :mod:`repro.chaos.schedule` — seeded, replayable fault compositions;
* :mod:`repro.chaos.invariants` — what must hold after any run;
* :mod:`repro.chaos.runner` — N randomized scenarios, zero tolerated
  violations (``python -m repro chaos``).
"""

from .invariants import (Violation, check_invariants,
                         check_resilience_invariants)
from .runner import ChaosReport, ChaosRunner, ChaosRunResult
from .schedule import ChaosConfig, ChaosFault, ChaosSchedule

__all__ = [
    "ChaosConfig", "ChaosFault", "ChaosSchedule",
    "ChaosReport", "ChaosRunner", "ChaosRunResult",
    "Violation", "check_invariants", "check_resilience_invariants",
]
