"""Invariants a fault-tolerant run must uphold, however hostile the run.

Each check inspects the end state of a fully drained simulation (run
the engine to exhaustion first — the chaos runner does) and returns
human-readable violations.  The list is the contract every later
scale-out PR must keep:

* **packet conservation** — every injected packet has exactly one fate:
  delivered, dropped, or filtered.  After a full drain nothing may
  remain in flight, queued, or buffered.
* **no station left paused** — migrations and rollbacks always resume
  the stations they paused, even when an attempt aborts mid-transfer.
* **executor quiescent** — the ``busy`` flag is cleared after every
  terminal plan outcome (succeeded or aborted).
* **demand refreshed** — device utilisation matches a recomputation
  from the final placement at the last refreshed load, i.e. every
  migration *and every rollback* refreshed demand.
* **faults restored** — brownout derates and PCIe flap latency are back
  to nominal once their windows expire.
* **causality** — no delivered packet departs before it arrives.

Resilient runs (a :class:`~repro.resilience.ResilientController` in
charge) add three more via :func:`check_resilience_invariants`:

* **recovery terminal** — every device-failure recovery completes,
  degrades, or is abandoned; none may hang forever.
* **shed classes** — protected priority classes are never shed.
* **shed fraction** — total shed stays within the configured cap (plus
  a small tolerance for the ladder's reaction time).

These end-state checks are also registered with the online invariant
engine (:mod:`repro.soak.invariants`), which additionally evaluates
*mid-run* invariants (monotonic virtual time, queue bounds, budget
ledger, health-FSM legality, zero protected sheds) at every monitor
tick — the soak engine is the superset; this module stays the home of
the primitive checks so existing campaign payloads keep their pinned
formats.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Optional

from ..devices.server import Server
from ..migration.executor import MigrationExecutor
from ..resources.model import LoadModel
from ..sim.network import ChainNetwork

#: Relative tolerance for demand recomputation.
_DEMAND_TOL = 1e-6


@dataclass(frozen=True)
class Violation:
    """One broken invariant.

    ``data`` carries optional structured diagnostics (e.g. the
    exception payload of a ``scenario-error`` — see
    :func:`repro.exec.errinfo.exception_payload`).  It is omitted from
    the serialised form when ``None`` so records written before the
    field existed round-trip unchanged, and it never participates in
    ``__str__`` — reports stay one line per violation.
    """

    invariant: str
    detail: str
    data: Optional[Mapping[str, object]] = field(default=None, compare=False)

    def __str__(self) -> str:
        return f"{self.invariant}: {self.detail}"

    def to_dict(self) -> dict:
        """JSON-friendly form for journal records."""
        out: dict = {"invariant": self.invariant, "detail": self.detail}
        if self.data is not None:
            out["data"] = dict(self.data)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Violation":
        """Inverse of :meth:`to_dict` (journal round-trip)."""
        return cls(invariant=data["invariant"], detail=data["detail"],
                   data=data.get("data"))


def check_invariants(network: ChainNetwork, server: Server,
                     executor: Optional[MigrationExecutor] = None
                     ) -> List[Violation]:
    """All invariant violations in the (fully drained) end state."""
    violations: List[Violation] = []
    violations.extend(_check_conservation(network))
    violations.extend(_check_stations(network))
    violations.extend(_check_executor(executor))
    violations.extend(_check_demand(server))
    violations.extend(_check_faults_restored(server))
    violations.extend(_check_causality(network))
    return violations


def check_resilience_invariants(controller, max_shed_fraction: float,
                                tol: float = 0.05) -> List[Violation]:
    """Resilience-layer invariants (duck-typed on the controller).

    ``controller`` needs ``recoveries`` (objects with ``terminal``,
    ``device``, ``detected_s``) and a ``shedder`` — the shape of
    :class:`~repro.resilience.ResilientController`.  ``tol`` absorbs
    the packets admitted between overload onset and the ladder's first
    escalation.
    """
    out: List[Violation] = []
    for recovery in controller.recoveries:
        if not recovery.terminal:
            out.append(Violation(
                "recovery-terminal",
                f"recovery of {recovery.device.value} (detected at "
                f"{recovery.detected_s:.4f}s) never reached a terminal "
                "status — it must complete, degrade, or be abandoned"))
    protected = controller.shedder.protected_shed_packets()
    if protected:
        out.append(Violation(
            "shed-classes",
            f"{protected} packets shed from protected priority classes"))
    fraction = controller.shedder.shed_fraction()
    if fraction > max_shed_fraction + tol:
        out.append(Violation(
            "shed-fraction",
            f"shed fraction {fraction:.3f} exceeds the configured cap "
            f"{max_shed_fraction} (tolerance {tol})"))
    return out


def _check_conservation(network: ChainNetwork) -> List[Violation]:
    out: List[Violation] = []
    in_flight = network.in_flight()
    if in_flight < 0:
        out.append(Violation(
            "packet-conservation",
            f"negative in-flight count {in_flight}: a packet was "
            f"accounted twice (injected={network.injected}, "
            f"delivered={len(network.delivered)}, "
            f"dropped={len(network.dropped)}, "
            f"filtered={len(network.filtered)}, "
            f"shed={len(network.shed)})"))
    residual = sum(len(station.queue) + station.buffered
                   for station in network.stations.values())
    if in_flight != residual:
        out.append(Violation(
            "packet-conservation",
            f"{in_flight} packets unaccounted for after drain but only "
            f"{residual} resident in station queues/buffers"))
    elif in_flight > 0:
        out.append(Violation(
            "packet-conservation",
            f"{in_flight} packets still queued/buffered after a full "
            "drain — some station never resumed service"))
    return out


def _check_stations(network: ChainNetwork) -> List[Violation]:
    out: List[Violation] = []
    for name, station in network.stations.items():
        if station.paused:
            out.append(Violation(
                "station-resumed",
                f"station {name!r} left paused at end of run"))
        if station.busy:
            out.append(Violation(
                "station-idle",
                f"station {name!r} still mid-service after full drain"))
    return out


def _check_executor(executor: Optional[MigrationExecutor]) -> List[Violation]:
    if executor is not None and executor.busy:
        return [Violation(
            "executor-quiescent",
            "executor busy flag still set after all plans terminated")]
    return []


def _check_demand(server: Server) -> List[Violation]:
    if server.last_refresh_bps is None:
        return []
    model = LoadModel(server.placement, server.last_refresh_bps)
    out: List[Violation] = []
    for device, load in ((server.nic, model.nic_load()),
                         (server.cpu, model.cpu_load())):
        expected = load.utilisation
        tolerance = _DEMAND_TOL * max(1.0, abs(expected))
        if abs(device.demand - expected) > tolerance:
            out.append(Violation(
                "demand-refreshed",
                f"{device.name} demand {device.demand:.6f} != "
                f"{expected:.6f} recomputed from the final placement — "
                "a migration or rollback skipped refresh_demand"))
    return out


def _check_faults_restored(server: Server) -> List[Violation]:
    out: List[Violation] = []
    for device in (server.nic, server.cpu):
        if device.is_failed:
            # A permanently killed device is *supposed* to stay broken:
            # an overlapping brownout must not have restored it, and a
            # lingering derate on a corpse is irrelevant.
            continue
        if device.derate != 1.0:
            out.append(Violation(
                "faults-restored",
                f"{device.name} still derated to {device.derate} after "
                "every brownout window expired"))
    if server.pcie.fault_extra_latency_s != 0.0:
        out.append(Violation(
            "faults-restored",
            f"PCIe flap latency {server.pcie.fault_extra_latency_s} "
            "not cleared after the flap window"))
    return out


def _check_causality(network: ChainNetwork) -> List[Violation]:
    for packet in network.delivered:
        if packet.departure_s is not None and \
                packet.departure_s < packet.arrival_s:
            return [Violation(
                "causality",
                f"packet {packet.seq} departed at {packet.departure_s} "
                f"before arriving at {packet.arrival_s}")]
    return []
