"""Chaos runner: N randomized scenarios, zero tolerated violations.

Each scenario wires the Figure 1 chain to a seeded random traffic
spike, puts the fault-tolerant :class:`HardenedController` in charge
(stale-telemetry suppression, per-action timeouts, retry/rollback, and
a probabilistic mid-transfer migration-failure hook), applies a seeded
:class:`~repro.chaos.schedule.ChaosSchedule` of crashes, brownouts,
PCIe flaps, and telemetry dropouts, runs to full drain, and checks the
:mod:`~repro.chaos.invariants`.  ``python -m repro chaos`` drives it
from the command line.

With ``ChaosConfig(resilient=True)`` the scenario puts a
:class:`~repro.resilience.ResilientController` in charge instead and
additionally checks the resilience invariants; the schedule may then
also draw permanent SmartNIC deaths (``max_device_kills``) and
sustained overload windows (``max_overload_windows``, realised by
overriding the traffic profile).

Determinism: scenario ``i`` depends only on ``seed + i``, so any
violating run replays exactly from its reported seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from ..core.operator import HardenedController, HardeningConfig
from ..core.reverse import PullbackConfig
from ..errors import ConfigurationError
from ..harness.scenarios import figure1
from ..migration.executor import (OUTCOME_SUCCEEDED, ProbabilisticFailure,
                                  RetryPolicy)
from ..resilience.controller import ResilienceConfig, ResilientController
from ..sim.faults import FaultInjector
from ..sim.runner import SimulationRunner
from ..traffic.packet import FixedSize
from ..traffic.patterns import ProfiledArrivals, RateProfile, spike
from ..units import gbps, usec
from .invariants import (Violation, check_invariants,
                         check_resilience_invariants)
from .schedule import ChaosConfig, ChaosFault, ChaosSchedule

#: Packet size used by chaos scenarios (larger than the paper's 256 B
#: sweep point to keep the event count per scenario moderate).
_PACKET_BYTES = 512
_MONITOR_PERIOD_S = 0.002


@dataclass
class ChaosRunResult:
    """Everything one randomized scenario produced."""

    seed: int
    schedule: ChaosSchedule
    violations: List[Violation]
    injected: int
    delivered: int
    dropped: int
    fault_losses: int
    migrations: int
    attempts: int
    plans_aborted: int
    stale_ticks: int
    #: Resilience accounting (zero when the run is not resilient).
    shed: int = 0
    protected_shed: int = 0
    recoveries: int = 0
    abandoned: int = 0

    @property
    def ok(self) -> bool:
        """Whether the scenario upheld every invariant."""
        return not self.violations


@dataclass
class ChaosReport:
    """Aggregated outcome of a chaos campaign."""

    results: List[ChaosRunResult] = field(default_factory=list)

    @property
    def runs(self) -> int:
        """Number of scenarios in the campaign."""
        return len(self.results)

    @property
    def total_violations(self) -> int:
        """Invariant violations summed over every scenario."""
        return sum(len(r.violations) for r in self.results)

    @property
    def ok(self) -> bool:
        """Whether every scenario upheld every invariant."""
        return self.total_violations == 0

    def render(self) -> str:
        """A per-run summary plus any violations, for the CLI."""
        lines = [f"{'seed':>6} {'faults':>6} {'inj':>7} {'dlv':>7} "
                 f"{'drop':>6} {'shed':>6} {'migr':>5} {'att':>4} "
                 f"{'abrt':>4} {'stale':>5} {'recov':>5}  status"]
        for r in self.results:
            status = "ok" if r.ok else f"{len(r.violations)} VIOLATIONS"
            lines.append(
                f"{r.seed:>6} {len(r.schedule.faults):>6} {r.injected:>7} "
                f"{r.delivered:>7} {r.dropped:>6} {r.shed:>6} "
                f"{r.migrations:>5} {r.attempts:>4} {r.plans_aborted:>4} "
                f"{r.stale_ticks:>5} {r.recoveries:>5}  {status}")
        for r in self.results:
            for violation in r.violations:
                lines.append(f"seed {r.seed}: {violation}")
        verdict = ("all invariants held" if self.ok
                   else f"{self.total_violations} invariant violations")
        lines.append(f"{self.runs} chaos scenarios: {verdict}")
        return "\n".join(lines)


class ChaosRunner:
    """Drives ``runs`` randomized scenarios and collects violations."""

    def __init__(self, runs: int = 20, seed: int = 7,
                 config: Optional[ChaosConfig] = None) -> None:
        if runs < 1:
            raise ConfigurationError("need at least one chaos run")
        self.runs = runs
        self.seed = seed
        self.config = config or ChaosConfig()

    def run(self) -> ChaosReport:
        """Run every scenario; never raises on violations (report them)."""
        report = ChaosReport()
        for index in range(self.runs):
            report.results.append(self.run_one(self.seed + index))
        return report

    def run_one(self, run_seed: int) -> ChaosRunResult:
        """One fully seeded scenario: traffic, faults, control, checks.

        A scenario that *raises* is itself recorded as a violation
        (``scenario-error``) instead of aborting the campaign — a chaos
        harness that crashes on the bug it was built to surface would
        be reporting exit code luck, not invariants.
        """
        schedule = ChaosSchedule.generate(
            [nf.name for nf in figure1().chain], self.config,
            seed=run_seed)
        try:
            return self._execute(run_seed, schedule)
        # A faithfully-reporting top-level boundary: the crash becomes a
        # recorded violation, never a swallowed one.
        except Exception as exc:  # repro: noqa[EXC402]
            return ChaosRunResult(
                seed=run_seed, schedule=schedule,
                violations=[Violation(
                    "scenario-error",
                    f"scenario raised {type(exc).__name__}: {exc}")],
                injected=0, delivered=0, dropped=0, fault_losses=0,
                migrations=0, attempts=0, plans_aborted=0, stale_ticks=0)

    def _profile(self, rng: random.Random,
                 overloads: List[ChaosFault]) -> RateProfile:
        """The seeded spike, overridden inside any overload windows."""
        duration = self.config.duration_s
        base = spike(
            base_bps=gbps(rng.uniform(1.0, 1.4)),
            peak_bps=gbps(rng.uniform(1.6, 2.1)),
            start_s=0.2 * duration,
            duration_s=0.4 * duration)
        if not overloads:
            return base

        def profile(t_s: float) -> float:
            rate = base(t_s)
            for window in overloads:
                if window.at_s <= t_s < window.at_s + window.duration_s:
                    rate = max(rate, window.magnitude)
            return rate

        return profile

    def _execute(self, run_seed: int,
                 schedule: ChaosSchedule) -> ChaosRunResult:
        rng = random.Random(run_seed)
        scenario = figure1()
        server = scenario.build_server()
        duration = self.config.duration_s
        profile = self._profile(rng, [f for f in schedule.faults
                                      if f.kind == "overload"])
        generator = ProfiledArrivals(profile, FixedSize(_PACKET_BYTES),
                                     duration_s=duration, seed=run_seed,
                                     jitter=False)
        hardened = HardenedController(
            config=HardeningConfig(
                cooldown_s=2 * _MONITOR_PERIOD_S,
                flap_damp_s=0.01,
                migration_budget=8,
                pullback=PullbackConfig(trigger_below=0.6, nic_target=0.9),
                telemetry_stale_s=1.5 * _MONITOR_PERIOD_S,
                action_timeout_s=0.01,
                retry=RetryPolicy(max_attempts=3,
                                  backoff_base_s=usec(200.0))),
            failure_hook=ProbabilisticFailure(
                self.config.migration_failure_rate, seed=run_seed))
        resilient: Optional[ResilientController] = None
        controller = hardened
        if self.config.resilient:
            resilient = ResilientController(hardened, ResilienceConfig())
            controller = resilient
        sim = SimulationRunner(server, generator, controller,
                               monitor_period_s=_MONITOR_PERIOD_S)
        injector = FaultInjector(sim.network, sim.engine, seed=run_seed)
        schedule.apply(injector)
        result = sim.run()
        # Run the engine to exhaustion: fault restores, retry backoffs,
        # and packet events past the horizon all land before checking.
        sim.engine.run()
        executor = hardened.executor
        violations = check_invariants(sim.network, server, executor)
        if resilient is not None:
            violations.extend(check_resilience_invariants(
                resilient,
                resilient.config.degradation.max_shed_fraction))
        records = executor.records if executor else []
        outcomes = executor.outcomes if executor else []
        return ChaosRunResult(
            seed=run_seed,
            schedule=schedule,
            violations=violations,
            injected=result.injected,
            delivered=len(sim.network.delivered),
            dropped=len(sim.network.dropped),
            fault_losses=injector.total_lost,
            migrations=len([r for r in records
                            if r.outcome == OUTCOME_SUCCEEDED]),
            attempts=len(records),
            plans_aborted=len([o for o in outcomes if not o.succeeded]),
            stale_ticks=hardened.stale_ticks,
            shed=resilient.shedder.shed_packets if resilient else 0,
            protected_shed=resilient.shedder.protected_shed_packets()
            if resilient else 0,
            recoveries=len(resilient.recoveries) if resilient else 0,
            abandoned=resilient.abandoned_packets if resilient else 0)
