"""Chaos runner: N randomized scenarios, zero tolerated violations.

Each scenario wires the Figure 1 chain to a seeded random traffic
spike, puts the fault-tolerant :class:`HardenedController` in charge
(stale-telemetry suppression, per-action timeouts, retry/rollback, and
a probabilistic mid-transfer migration-failure hook), applies a seeded
:class:`~repro.chaos.schedule.ChaosSchedule` of crashes, brownouts,
PCIe flaps, and telemetry dropouts, runs to full drain, and checks the
:mod:`~repro.chaos.invariants`.  ``python -m repro chaos`` drives it
from the command line.

Determinism: scenario ``i`` depends only on ``seed + i``, so any
violating run replays exactly from its reported seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from ..core.operator import HardenedController, HardeningConfig
from ..core.reverse import PullbackConfig
from ..errors import ConfigurationError
from ..harness.scenarios import figure1
from ..migration.executor import (OUTCOME_SUCCEEDED, ProbabilisticFailure,
                                  RetryPolicy)
from ..sim.faults import FaultInjector
from ..sim.runner import SimulationRunner
from ..traffic.packet import FixedSize
from ..traffic.patterns import ProfiledArrivals, spike
from ..units import gbps, usec
from .invariants import Violation, check_invariants
from .schedule import ChaosConfig, ChaosSchedule

#: Packet size used by chaos scenarios (larger than the paper's 256 B
#: sweep point to keep the event count per scenario moderate).
_PACKET_BYTES = 512
_MONITOR_PERIOD_S = 0.002


@dataclass
class ChaosRunResult:
    """Everything one randomized scenario produced."""

    seed: int
    schedule: ChaosSchedule
    violations: List[Violation]
    injected: int
    delivered: int
    dropped: int
    fault_losses: int
    migrations: int
    attempts: int
    plans_aborted: int
    stale_ticks: int

    @property
    def ok(self) -> bool:
        """Whether the scenario upheld every invariant."""
        return not self.violations


@dataclass
class ChaosReport:
    """Aggregated outcome of a chaos campaign."""

    results: List[ChaosRunResult] = field(default_factory=list)

    @property
    def runs(self) -> int:
        """Number of scenarios in the campaign."""
        return len(self.results)

    @property
    def total_violations(self) -> int:
        """Invariant violations summed over every scenario."""
        return sum(len(r.violations) for r in self.results)

    @property
    def ok(self) -> bool:
        """Whether every scenario upheld every invariant."""
        return self.total_violations == 0

    def render(self) -> str:
        """A per-run summary plus any violations, for the CLI."""
        lines = [f"{'seed':>6} {'faults':>6} {'inj':>7} {'dlv':>7} "
                 f"{'drop':>6} {'migr':>5} {'att':>4} {'abrt':>4} "
                 f"{'stale':>5}  status"]
        for r in self.results:
            status = "ok" if r.ok else f"{len(r.violations)} VIOLATIONS"
            lines.append(
                f"{r.seed:>6} {len(r.schedule.faults):>6} {r.injected:>7} "
                f"{r.delivered:>7} {r.dropped:>6} {r.migrations:>5} "
                f"{r.attempts:>4} {r.plans_aborted:>4} "
                f"{r.stale_ticks:>5}  {status}")
        for r in self.results:
            for violation in r.violations:
                lines.append(f"seed {r.seed}: {violation}")
        verdict = ("all invariants held" if self.ok
                   else f"{self.total_violations} invariant violations")
        lines.append(f"{self.runs} chaos scenarios: {verdict}")
        return "\n".join(lines)


class ChaosRunner:
    """Drives ``runs`` randomized scenarios and collects violations."""

    def __init__(self, runs: int = 20, seed: int = 7,
                 config: Optional[ChaosConfig] = None) -> None:
        if runs < 1:
            raise ConfigurationError("need at least one chaos run")
        self.runs = runs
        self.seed = seed
        self.config = config or ChaosConfig()

    def run(self) -> ChaosReport:
        """Run every scenario; never raises on violations (report them)."""
        report = ChaosReport()
        for index in range(self.runs):
            report.results.append(self.run_one(self.seed + index))
        return report

    def run_one(self, run_seed: int) -> ChaosRunResult:
        """One fully seeded scenario: traffic, faults, control, checks."""
        rng = random.Random(run_seed)
        scenario = figure1()
        server = scenario.build_server()
        duration = self.config.duration_s
        profile = spike(
            base_bps=gbps(rng.uniform(1.0, 1.4)),
            peak_bps=gbps(rng.uniform(1.6, 2.1)),
            start_s=0.2 * duration,
            duration_s=0.4 * duration)
        generator = ProfiledArrivals(profile, FixedSize(_PACKET_BYTES),
                                     duration_s=duration, seed=run_seed,
                                     jitter=False)
        controller = HardenedController(
            config=HardeningConfig(
                cooldown_s=2 * _MONITOR_PERIOD_S,
                flap_damp_s=0.01,
                migration_budget=8,
                pullback=PullbackConfig(trigger_below=0.6, nic_target=0.9),
                telemetry_stale_s=1.5 * _MONITOR_PERIOD_S,
                action_timeout_s=0.01,
                retry=RetryPolicy(max_attempts=3,
                                  backoff_base_s=usec(200.0))),
            failure_hook=ProbabilisticFailure(
                self.config.migration_failure_rate, seed=run_seed))
        sim = SimulationRunner(server, generator, controller,
                               monitor_period_s=_MONITOR_PERIOD_S)
        injector = FaultInjector(sim.network, sim.engine, seed=run_seed)
        schedule = ChaosSchedule.generate(
            [nf.name for nf in scenario.chain], self.config, seed=run_seed)
        schedule.apply(injector)
        result = sim.run()
        # Run the engine to exhaustion: fault restores, retry backoffs,
        # and packet events past the horizon all land before checking.
        sim.engine.run()
        executor = controller.executor
        violations = check_invariants(sim.network, server, executor)
        records = executor.records if executor else []
        outcomes = executor.outcomes if executor else []
        return ChaosRunResult(
            seed=run_seed,
            schedule=schedule,
            violations=violations,
            injected=result.injected,
            delivered=len(sim.network.delivered),
            dropped=len(sim.network.dropped),
            fault_losses=injector.total_lost,
            migrations=len([r for r in records
                            if r.outcome == OUTCOME_SUCCEEDED]),
            attempts=len(records),
            plans_aborted=len([o for o in outcomes if not o.succeeded]),
            stale_ticks=controller.stale_ticks)
