"""Chaos runner: N randomized scenarios, zero tolerated violations.

Each scenario wires the Figure 1 chain to a seeded random traffic
spike, puts the fault-tolerant :class:`HardenedController` in charge
(stale-telemetry suppression, per-action timeouts, retry/rollback, and
a probabilistic mid-transfer migration-failure hook), applies a seeded
:class:`~repro.chaos.schedule.ChaosSchedule` of crashes, brownouts,
PCIe flaps, and telemetry dropouts, runs to full drain, and checks the
:mod:`~repro.chaos.invariants`.  ``python -m repro chaos`` drives it
from the command line.

With ``ChaosConfig(resilient=True)`` the scenario puts a
:class:`~repro.resilience.ResilientController` in charge instead and
additionally checks the resilience invariants; the schedule may then
also draw permanent SmartNIC deaths (``max_device_kills``) and
sustained overload windows (``max_overload_windows``, realised by
overriding the traffic profile).

Determinism: scenario ``i`` depends only on ``seed + i``, so any
violating run replays exactly from its reported seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.operator import HardenedController, HardeningConfig
from ..core.reverse import PullbackConfig
from ..errors import ConfigurationError
from ..exec import (Campaign, FaultInjectedCampaign, FaultPlan, RunRequest,
                    SupervisionPolicy, make_executor, register_campaign,
                    run_campaign, seed_for)
from ..exec.errinfo import exception_payload
from ..harness.scenarios import figure1
from ..migration.executor import (OUTCOME_SUCCEEDED, ProbabilisticFailure,
                                  RetryPolicy)
from ..resilience.controller import ResilienceConfig, ResilientController
from ..sim.faults import FaultInjector
from ..sim.runner import SimulationResult, SimulationRunner
from ..traffic.packet import FixedSize
from ..traffic.patterns import ProfiledArrivals, RateProfile, spike
from ..units import gbps, usec
from .invariants import (Violation, check_invariants,
                         check_resilience_invariants)
from .schedule import ChaosConfig, ChaosFault, ChaosSchedule

#: Packet size used by chaos scenarios (larger than the paper's 256 B
#: sweep point to keep the event count per scenario moderate).
_PACKET_BYTES = 512
_MONITOR_PERIOD_S = 0.002


@dataclass
class ChaosRunResult:
    """Everything one randomized scenario produced."""

    seed: int
    schedule: ChaosSchedule
    violations: List[Violation]
    injected: int
    delivered: int
    dropped: int
    fault_losses: int
    migrations: int
    attempts: int
    plans_aborted: int
    stale_ticks: int
    #: Resilience accounting (zero when the run is not resilient).
    shed: int = 0
    protected_shed: int = 0
    recoveries: int = 0
    abandoned: int = 0

    @property
    def ok(self) -> bool:
        """Whether the scenario upheld every invariant."""
        return not self.violations

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form for journal records.

        Every field round-trips bit-exact (ints, and floats via JSON's
        repr-based serialization), so a report merged from replayed
        records renders identically to the uninterrupted one.
        """
        return {
            "seed": self.seed,
            "schedule": self.schedule.to_dict(),
            "violations": [v.to_dict() for v in self.violations],
            "injected": self.injected,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "fault_losses": self.fault_losses,
            "migrations": self.migrations,
            "attempts": self.attempts,
            "plans_aborted": self.plans_aborted,
            "stale_ticks": self.stale_ticks,
            "shed": self.shed,
            "protected_shed": self.protected_shed,
            "recoveries": self.recoveries,
            "abandoned": self.abandoned,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ChaosRunResult":
        """Inverse of :meth:`to_dict` (journal replay)."""
        return cls(
            seed=int(data["seed"]),
            schedule=ChaosSchedule.from_dict(data["schedule"]),
            violations=[Violation.from_dict(v)
                        for v in data["violations"]],
            injected=int(data["injected"]),
            delivered=int(data["delivered"]),
            dropped=int(data["dropped"]),
            fault_losses=int(data["fault_losses"]),
            migrations=int(data["migrations"]),
            attempts=int(data["attempts"]),
            plans_aborted=int(data["plans_aborted"]),
            stale_ticks=int(data["stale_ticks"]),
            shed=int(data["shed"]),
            protected_shed=int(data["protected_shed"]),
            recoveries=int(data["recoveries"]),
            abandoned=int(data["abandoned"]))


@dataclass
class ChaosReport:
    """Aggregated outcome of a chaos campaign."""

    results: List[ChaosRunResult] = field(default_factory=list)

    @property
    def runs(self) -> int:
        """Number of scenarios in the campaign."""
        return len(self.results)

    @property
    def total_violations(self) -> int:
        """Invariant violations summed over every scenario."""
        return sum(len(r.violations) for r in self.results)

    @property
    def ok(self) -> bool:
        """Whether every scenario upheld every invariant."""
        return self.total_violations == 0

    def render(self) -> str:
        """A per-run summary plus any violations, for the CLI."""
        lines = [f"{'seed':>6} {'faults':>6} {'inj':>7} {'dlv':>7} "
                 f"{'drop':>6} {'shed':>6} {'migr':>5} {'att':>4} "
                 f"{'abrt':>4} {'stale':>5} {'recov':>5}  status"]
        for r in self.results:
            status = "ok" if r.ok else f"{len(r.violations)} VIOLATIONS"
            lines.append(
                f"{r.seed:>6} {len(r.schedule.faults):>6} {r.injected:>7} "
                f"{r.delivered:>7} {r.dropped:>6} {r.shed:>6} "
                f"{r.migrations:>5} {r.attempts:>4} {r.plans_aborted:>4} "
                f"{r.stale_ticks:>5} {r.recoveries:>5}  {status}")
        for r in self.results:
            for violation in r.violations:
                lines.append(f"seed {r.seed}: {violation}")
        verdict = ("all invariants held" if self.ok
                   else f"{self.total_violations} invariant violations")
        lines.append(f"{self.runs} chaos scenarios: {verdict}")
        return "\n".join(lines)


@dataclass
class ChaosScenario:
    """One fully wired scenario: faults applied, not yet run.

    Implements the :class:`repro.exec.Scenario` protocol
    (``prepare``/``run``/``collect``).  Exposed so checkpoint tests and
    the crash-resume check can build the *identical* seeded scenario
    the campaign would run, snapshot it mid-flight, and resume it in a
    fresh process.
    """

    seed: int
    schedule: ChaosSchedule
    sim: SimulationRunner
    hardened: HardenedController
    resilient: Optional[ResilientController]
    injector: FaultInjector
    #: Set by :meth:`run`; consumed by :meth:`collect`.
    result: Optional[SimulationResult] = None

    def prepare(self) -> None:
        """Inject the seeded workload and arm the monitor (idempotent)."""
        self.sim.prepare()

    def run(self) -> SimulationResult:
        """Run the workload, then drain the engine to exhaustion.

        The drain matters: fault restores, retry backoffs, and packet
        events past the horizon must all land before the invariant
        checks inspect the end state.
        """
        self.result = self.sim.run()
        self.sim.engine.run()
        return self.result

    def collect(self) -> ChaosRunResult:
        """Aggregate the drained end state and check every invariant."""
        if self.result is None:
            raise ConfigurationError("collect() before run()")
        sim = self.sim
        server = sim.server
        hardened = self.hardened
        resilient = self.resilient
        violations = check_invariants(sim.network, server,
                                      hardened.executor)
        if resilient is not None:
            violations.extend(check_resilience_invariants(
                resilient,
                resilient.config.degradation.max_shed_fraction))
        records = hardened.executor.records if hardened.executor else []
        outcomes = hardened.executor.outcomes if hardened.executor else []
        return ChaosRunResult(
            seed=self.seed,
            schedule=self.schedule,
            violations=violations,
            injected=self.result.injected,
            delivered=len(sim.network.delivered),
            dropped=len(sim.network.dropped),
            fault_losses=self.injector.total_lost,
            migrations=len([r for r in records
                            if r.outcome == OUTCOME_SUCCEEDED]),
            attempts=len(records),
            plans_aborted=len([o for o in outcomes if not o.succeeded]),
            stale_ticks=hardened.stale_ticks,
            shed=resilient.shedder.shed_packets if resilient else 0,
            protected_shed=resilient.shedder.protected_shed_packets()
            if resilient else 0,
            recoveries=len(resilient.recoveries) if resilient else 0,
            abandoned=resilient.abandoned_packets if resilient else 0)


class ChaosRunner:
    """Drives ``runs`` randomized scenarios and collects violations.

    With ``journal_path`` set, campaign progress is logged to a
    write-ahead journal (append-only JSONL, fsync'd per record): a
    ``campaign-start`` fingerprint, one ``run-result`` per completed
    scenario, a ``campaign-progress`` digest every ``checkpoint_every``
    executed runs, and a ``campaign-end`` marker.  ``resume_from``
    replays the completed runs out of such a journal — each is restored
    bit-exact from its record instead of re-simulated — and the campaign
    continues from the first run the journal does not cover.
    """

    def __init__(self, runs: int = 20, seed: int = 7,
                 config: Optional[ChaosConfig] = None,
                 journal_path: Optional[str] = None,
                 resume_from: Optional[str] = None,
                 checkpoint_every: int = 5,
                 workers: int = 1,
                 supervision: Optional[SupervisionPolicy] = None,
                 worker_faults: Optional[FaultPlan] = None) -> None:
        if runs < 1:
            raise ConfigurationError("need at least one chaos run")
        if checkpoint_every < 1:
            raise ConfigurationError("checkpoint interval must be >= 1")
        if workers < 1:
            raise ConfigurationError("worker count must be >= 1")
        self.runs = runs
        self.seed = seed
        self.config = config or ChaosConfig()
        #: Journal to append to; defaults to the resume source so an
        #: interrupted campaign keeps extending the same history.
        self.journal_path = journal_path or resume_from
        self.resume_from = resume_from
        self.checkpoint_every = checkpoint_every
        self.workers = workers
        #: Supervision (deadlines/retry/abort budget); None = plain.
        self.supervision = supervision
        #: Scheduled worker-level faults (hang/die/garbage/error), for
        #: exercising the supervisor; None = no sabotage.
        self.worker_faults = worker_faults
        #: Runs restored from the journal by the last :meth:`run` call.
        self.replayed_runs = 0

    def run(self) -> ChaosReport:
        """Run every scenario; never raises on violations (report them).

        Delegates the loop, journal middleware, and merge to
        :func:`repro.exec.run_campaign`; this runner only knows how to
        execute one scenario and how to shape the report.
        """
        campaign: Campaign = ChaosCampaign(self)
        if self.worker_faults is not None and self.worker_faults.faults:
            campaign = FaultInjectedCampaign(campaign, self.worker_faults)
        outcome = run_campaign(
            campaign,
            executor=make_executor(self.workers, self.supervision),
            journal_path=self.journal_path, resume_from=self.resume_from,
            checkpoint_every=self.checkpoint_every)
        self.replayed_runs = outcome.replayed
        return ChaosReport(results=[ChaosRunResult.from_dict(payload)
                                    for payload in outcome.payloads])

    def run_one(self, run_seed: int) -> ChaosRunResult:
        """One fully seeded scenario: traffic, faults, control, checks.

        A scenario that *raises* is itself recorded as a violation
        (``scenario-error``) instead of aborting the campaign — a chaos
        harness that crashes on the bug it was built to surface would
        be reporting exit code luck, not invariants.
        """
        schedule = ChaosSchedule.generate(
            [nf.name for nf in figure1().chain], self.config,
            seed=run_seed)
        try:
            return self._execute(run_seed, schedule)
        # A faithfully-reporting top-level boundary: the crash becomes a
        # recorded violation, never a swallowed one.
        except Exception as exc:  # repro: noqa[EXC402]
            return ChaosRunResult(
                seed=run_seed, schedule=schedule,
                violations=[Violation(
                    "scenario-error",
                    f"scenario raised {type(exc).__name__}: {exc}",
                    data=exception_payload(exc))],
                injected=0, delivered=0, dropped=0, fault_losses=0,
                migrations=0, attempts=0, plans_aborted=0, stale_ticks=0)

    def _profile(self, rng: random.Random,
                 overloads: List[ChaosFault]) -> RateProfile:
        """The seeded spike, overridden inside any overload windows."""
        duration = self.config.duration_s
        base = spike(
            base_bps=gbps(rng.uniform(1.0, 1.4)),
            peak_bps=gbps(rng.uniform(1.6, 2.1)),
            start_s=0.2 * duration,
            duration_s=0.4 * duration)
        if not overloads:
            return base

        def profile(t_s: float) -> float:
            rate = base(t_s)
            for window in overloads:
                if window.at_s <= t_s < window.at_s + window.duration_s:
                    rate = max(rate, window.magnitude)
            return rate

        return profile

    def build_scenario(self, run_seed: int,
                       schedule: Optional[ChaosSchedule] = None
                       ) -> ChaosScenario:
        """Wire one seeded scenario, faults applied but not yet run."""
        if schedule is None:
            schedule = ChaosSchedule.generate(
                [nf.name for nf in figure1().chain], self.config,
                seed=run_seed)
        rng = random.Random(run_seed)
        server = figure1().build_server()
        duration = self.config.duration_s
        profile = self._profile(rng, [f for f in schedule.faults
                                      if f.kind == "overload"])
        generator = ProfiledArrivals(profile, FixedSize(_PACKET_BYTES),
                                     duration_s=duration, seed=run_seed,
                                     jitter=False)
        hardened = HardenedController(
            config=HardeningConfig(
                cooldown_s=2 * _MONITOR_PERIOD_S,
                flap_damp_s=0.01,
                migration_budget=8,
                pullback=PullbackConfig(trigger_below=0.6, nic_target=0.9),
                telemetry_stale_s=1.5 * _MONITOR_PERIOD_S,
                action_timeout_s=0.01,
                retry=RetryPolicy(max_attempts=3,
                                  backoff_base_s=usec(200.0))),
            failure_hook=ProbabilisticFailure(
                self.config.migration_failure_rate, seed=run_seed))
        resilient: Optional[ResilientController] = None
        controller: object = hardened
        if self.config.resilient:
            resilient = ResilientController(hardened, ResilienceConfig())
            controller = resilient
        sim = SimulationRunner(server, generator, controller,
                               monitor_period_s=_MONITOR_PERIOD_S)
        injector = FaultInjector(sim.network, sim.engine, seed=run_seed)
        schedule.apply(injector)
        return ChaosScenario(seed=run_seed, schedule=schedule, sim=sim,
                             hardened=hardened, resilient=resilient,
                             injector=injector)

    def _execute(self, run_seed: int,
                 schedule: ChaosSchedule) -> ChaosRunResult:
        """Build → prepare → run → collect, the Scenario protocol."""
        scenario = self.build_scenario(run_seed, schedule)
        scenario.prepare()
        scenario.run()
        return scenario.collect()


@register_campaign
class ChaosCampaign(Campaign):
    """The chaos campaign grid: ``runs`` seeded scenarios, one config.

    Payloads are :meth:`ChaosRunResult.to_dict` records — exactly what
    the journal has always stored, so pre-existing chaos journals keep
    resuming.  Workers rebuild the campaign (and its runner) from the
    ``runs``/``seed``/``config`` spec alone.
    """

    kind = "chaos"
    description = ("seeded fault schedules against the hardened (or "
                   "resilient) controller with invariant checks")

    def __init__(self, runner: ChaosRunner) -> None:
        self.runner = runner

    def fingerprint(self) -> Dict[str, object]:
        """Campaign identity: runs, base seed, and the full config."""
        return {"runs": self.runner.runs, "seed": self.runner.seed,
                "config": self.runner.config.to_dict()}

    def spec(self) -> Dict[str, object]:
        """Everything a worker needs to rebuild this campaign."""
        return self.fingerprint()

    @classmethod
    def from_spec(cls, spec: Dict[str, object]) -> "ChaosCampaign":
        """Rebuild from :meth:`spec` (worker-side construction)."""
        return cls(ChaosRunner(
            runs=int(spec["runs"]), seed=int(spec["seed"]),
            config=ChaosConfig.from_dict(spec["config"])))

    def requests(self) -> List[RunRequest]:
        """Scenario ``i`` runs at ``seed_for(seed, i)`` — ``seed + i``."""
        return [RunRequest(index=index,
                           seed=seed_for(self.runner.seed, index))
                for index in range(self.runner.runs)]

    def run_request(self, request: RunRequest) -> Dict[str, object]:
        """One scenario; crashes inside become scenario-error results."""
        return self.runner.run_one(request.seed).to_dict()

    def error_payload(self, request: RunRequest, error: str,
                      details: Optional[Dict[str, object]] = None
                      ) -> Dict[str, object]:
        """Crash isolation: a dead worker's run is itself a violation."""
        schedule = ChaosSchedule.generate(
            [nf.name for nf in figure1().chain], self.runner.config,
            seed=request.seed)
        return ChaosRunResult(
            seed=request.seed, schedule=schedule,
            violations=[Violation(
                "scenario-error", f"worker failed: {error}",
                data=details)],
            injected=0, delivered=0, dropped=0, fault_losses=0,
            migrations=0, attempts=0, plans_aborted=0,
            stale_ticks=0).to_dict()

    def end_record(self, payloads: List[Dict[str, object]]
                   ) -> Dict[str, object]:
        """Campaign totals, matching the established journal schema."""
        return {"runs": self.runner.runs,
                "violations": sum(len(payload["violations"])
                                  for payload in payloads)}
