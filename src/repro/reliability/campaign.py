"""Reliability planning runs as a :mod:`repro.exec` campaign.

The grid is ``policies x runs``: every registered reliability policy
plans against the same figure-1 chain, then its plan is executed for
real — the planner's replica set becomes the ResilientController's
StandbyPool via ``ResilienceConfig.standby_prewarmed``, and the chaos
device-kill / overload scenario measures what the plan actually bought
(downtime, shed fraction, surviving capacity, latency).  Repetition
``rep`` of every policy runs at ``seed_for(seed, rep)``, so policies
are compared on *paired* seeds.

Payloads are JSON-clean and merge by index, which is what keeps
``--workers N`` reports bit-exact against serial and journals
resumable — the same contract every other campaign kind honours.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..chain.nf import DeviceKind
from ..chaos.invariants import (Violation, check_invariants,
                                check_resilience_invariants)
from ..errors import ConfigurationError
from ..exec import Campaign, RunRequest, register_campaign, seed_for
from ..harness.scenarios import figure1
from ..resilience.controller import ResilienceConfig
from ..resilience.recovery import RecoveryConfig
from ..resilience.scenarios import (INFEASIBLE_LOAD_BPS, SCENARIOS,
                                    ResilienceScenarioResult, run_scenario)
from ..units import as_gbps, as_mbps, as_msec, as_usec, gbps
from .planner import ReliabilityPlan
from .policy import RELIABILITY_POLICIES, plan_reliability

#: Offered load each scenario is planned against (its worst case: the
#: spike peak for device-kill, the sustained infeasible load for
#: overload) — planning for the average would undersize the shed story.
PLANNING_LOAD_BPS: Dict[str, float] = {
    "device-kill": gbps(1.8),
    "overload": INFEASIBLE_LOAD_BPS,
}

#: Default replica byte budget (fits the figure-1 monitor + firewall
#: with room to spare — enough for the policies to disagree).
DEFAULT_BUDGET_BYTES = 1 << 20


def plan_for(policy: str, scenario: str,
             budget_bytes: int) -> ReliabilityPlan:
    """The policy's plan for one scenario's protected-device failure."""
    server = figure1().build_server()
    return plan_reliability(policy, server.placement,
                            PLANNING_LOAD_BPS[scenario],
                            protected=DeviceKind.SMARTNIC,
                            budget_bytes=budget_bytes,
                            pcie=server.pcie)


def config_for(plan: ReliabilityPlan) -> ResilienceConfig:
    """The ResilienceConfig that executes ``plan``.

    The scaleout policy delegates replica choice to the StandbyPool's
    greedy default (``standby_prewarmed=None``); every other policy
    pins its explicit replica set so the runtime pool admits exactly
    what the planner scored.
    """
    prewarmed: Optional[Tuple[str, ...]] = plan.prewarmed
    if plan.policy == "scaleout":
        prewarmed = None
    return ResilienceConfig(
        recovery=RecoveryConfig(
            standby_budget_bytes=plan.budget_bytes),
        standby_prewarmed=prewarmed)


def run_payload(scenario: str, policy: str, rep: int, seed: int,
                budget_bytes: int, plan: ReliabilityPlan,
                run: ResilienceScenarioResult) -> Dict[str, object]:
    """Flatten one planned-and-measured run into its JSON payload."""
    controller = run.controller
    violations = check_invariants(
        controller.network, controller.server, controller.executor)
    violations.extend(check_resilience_invariants(
        controller, controller.config.degradation.max_shed_fraction))
    stats = run.stats
    latency = run.result.latency
    return {
        "scenario": scenario,
        "policy": policy,
        "rep": rep,
        "seed": seed,
        "budget_bytes": budget_bytes,
        "plan": plan.to_dict(),
        "injected": run.result.injected,
        "delivered": run.result.delivered,
        "dropped": run.result.dropped,
        "shed": run.result.shed,
        "latency_mean_s": None if latency is None else latency.mean_s,
        "latency_p99_s": None if latency is None else latency.p99_s,
        "downtime_s": run.time_to_recover_s,
        "degraded_time_s": stats.degraded_time_s,
        "shed_fraction": stats.shed_fraction,
        "protected_shed_packets": stats.protected_shed_packets,
        "recoveries": [
            {"device": r.device, "status": r.status,
             "attempts": r.attempts,
             "time_to_recover_s": r.time_to_recover_s,
             "evacuated": list(r.evacuated)}
            for r in stats.recoveries],
        "violations": [v.to_dict() for v in violations],
    }


def _names(payload_actions: List[Dict[str, object]],
           action: str) -> str:
    names = [str(entry["nf"]) for entry in payload_actions
             if entry["action"] == action]
    return ", ".join(names) if names else "-"


def render_payload(payload: Dict[str, object]) -> str:
    """One run's report, rendered from its payload alone."""
    plan = payload["plan"]
    actions = plan["actions"]
    downtime = payload["downtime_s"]
    measured = ("-" if downtime is None
                else f"{as_msec(downtime):.3f}ms")
    mean = payload["latency_mean_s"]
    p99 = payload["latency_p99_s"]
    latency = ("-" if mean is None
               else f"mean {as_usec(mean):.1f}us p99 {as_usec(p99):.1f}us")
    lines = [
        f"reliability {payload['scenario']} policy={payload['policy']} "
        f"(rep {payload['rep']}, seed {payload['seed']}, "
        f"budget {payload['budget_bytes']}B):",
        f"  plan: replicate [{_names(actions, 'replicate')}] "
        f"(spent {plan['spent_bytes']}B, "
        f"sync {as_mbps(plan['sync_bps']):.1f} Mbps); "
        f"migrate [{_names(actions, 'migrate')}]; "
        f"shed [{_names(actions, 'shed')}]",
        f"  predicted: downtime {as_msec(plan['predicted_downtime_s']):.3f}ms, "
        f"headroom {as_gbps(plan['headroom_bps']):.3f} Gbps, "
        f"shed damage {plan['shed_damage']:.3f}",
        f"  measured: downtime {measured}, "
        f"shed {payload['shed_fraction']:.1%} "
        f"(protected {payload['protected_shed_packets']}), "
        f"delivered {payload['delivered']}/{payload['injected']} "
        f"(dropped {payload['dropped']}, shed {payload['shed']})",
        f"  latency: {latency}",
    ]
    for recovery in payload["recoveries"]:
        ttr = (f"{as_msec(recovery['time_to_recover_s']):.3f}ms"
               if recovery["time_to_recover_s"] is not None else "-")
        lines.append(
            f"  recovery of {recovery['device']}: {recovery['status']} "
            f"in {recovery['attempts']} attempt(s), time-to-recover "
            f"{ttr}, evacuated "
            f"[{', '.join(recovery['evacuated']) or '-'}]")
    for violation in payload["violations"]:
        lines.append(f"  VIOLATION {Violation.from_dict(violation)}")
    verdict = "ok" if not payload["violations"] else "INVARIANTS BROKEN"
    lines.append(f"  verdict: {verdict}")
    return "\n".join(lines)


def render_payloads(payloads: List[Dict[str, object]]) -> str:
    """The full campaign report (what the CLI prints and CI diffs)."""
    sections = [render_payload(payload) for payload in payloads]
    total = sum(len(payload["violations"]) for payload in payloads)
    verdict = "all invariants held" if total == 0 \
        else f"{total} violation(s)"
    sections.append(f"reliability campaign: {len(payloads)} run(s), "
                    f"{verdict}")
    return "\n".join(sections)


@register_campaign
class ReliabilityCampaign(Campaign):
    """``policies x runs`` planned-and-measured reliability grid."""

    kind = "reliability"
    description = ("planned-and-measured reliability grid over "
                   "migrate/replicate/shed policies")

    def __init__(self, scenario: str = "device-kill",
                 policies: Tuple[str, ...] = ("joint", "pam", "naive"),
                 runs: int = 1, seed: int = 7,
                 duration_s: Optional[float] = None,
                 budget_bytes: int = DEFAULT_BUDGET_BYTES) -> None:
        if scenario not in SCENARIOS:
            known = ", ".join(sorted(SCENARIOS))
            raise ConfigurationError(
                f"unknown resilience scenario {scenario!r} "
                f"(known: {known})")
        if not policies:
            raise ConfigurationError("need at least one policy")
        for policy in policies:
            if policy not in RELIABILITY_POLICIES:
                known = ", ".join(sorted(RELIABILITY_POLICIES))
                raise ConfigurationError(
                    f"unknown reliability policy {policy!r} "
                    f"(known: {known})")
        if runs < 1:
            raise ConfigurationError("need at least one run per policy")
        if budget_bytes < 0:
            raise ConfigurationError("replica budget must be >= 0")
        self.scenario = scenario
        self.policies = tuple(policies)
        self.runs = runs
        self.seed = seed
        self.duration_s = duration_s
        self.budget_bytes = budget_bytes

    def fingerprint(self) -> Dict[str, object]:
        """Campaign identity for journal-resume validation."""
        return {"scenario": self.scenario,
                "policies": list(self.policies),
                "runs": self.runs, "seed": self.seed,
                "duration_s": self.duration_s,
                "budget_bytes": self.budget_bytes}

    def spec(self) -> Dict[str, object]:
        """Worker-rebuildable description (same as the fingerprint)."""
        return self.fingerprint()

    @classmethod
    def from_spec(cls, spec: Dict[str, object]) -> "ReliabilityCampaign":
        """Rebuild from :meth:`spec` (worker-side construction)."""
        duration = spec["duration_s"]
        return cls(scenario=str(spec["scenario"]),
                   policies=tuple(str(policy)
                                  for policy in spec["policies"]),
                   runs=int(spec["runs"]), seed=int(spec["seed"]),
                   duration_s=None if duration is None
                   else float(duration),
                   budget_bytes=int(spec["budget_bytes"]))

    def requests(self) -> List[RunRequest]:
        """Policy-major grid; repetition ``rep`` of every policy shares
        ``seed_for(seed, rep)`` (paired comparison)."""
        requests: List[RunRequest] = []
        index = 0
        for policy in self.policies:
            for rep in range(self.runs):
                requests.append(RunRequest(
                    index=index, seed=seed_for(self.seed, rep),
                    params={"policy": policy, "rep": rep}))
                index += 1
        return requests

    def run_request(self, request: RunRequest) -> Dict[str, object]:
        """Plan with the request's policy, then measure the plan."""
        policy = str(request.params["policy"])
        rep = int(request.params["rep"])
        plan = plan_for(policy, self.scenario, self.budget_bytes)
        run = run_scenario(self.scenario, seed=request.seed,
                           duration_s=self.duration_s,
                           config=config_for(plan))
        return run_payload(self.scenario, policy, rep, request.seed,
                           self.budget_bytes, plan, run)

    def error_payload(self, request: RunRequest, error: str,
                      details: Optional[Dict[str, object]] = None
                      ) -> Dict[str, object]:
        """Crash isolation: a dead worker's run is itself a violation."""
        policy = str(request.params["policy"])
        return {
            "scenario": self.scenario, "policy": policy,
            "rep": int(request.params["rep"]), "seed": request.seed,
            "budget_bytes": self.budget_bytes,
            "plan": {"policy": policy, "protected": "-",
                     "budget_bytes": self.budget_bytes, "actions": [],
                     "prewarmed": [], "spent_bytes": 0,
                     "predicted_downtime_s": 0.0, "sync_bps": 0.0,
                     "headroom_bps": 0.0, "survivor_capacity_bps": 0.0,
                     "shed_damage": 0.0, "offered_bps": 0.0,
                     "notes": []},
            "injected": 0, "delivered": 0, "dropped": 0, "shed": 0,
            "latency_mean_s": None, "latency_p99_s": None,
            "downtime_s": None, "degraded_time_s": 0.0,
            "shed_fraction": 0.0, "protected_shed_packets": 0,
            "recoveries": [],
            "violations": [Violation(
                "scenario-error", f"worker failed: {error}",
                data=details).to_dict()],
        }

    def end_record(self, payloads: List[Dict[str, object]]
                   ) -> Dict[str, object]:
        """Campaign totals for the journal's ``campaign-end`` record."""
        return {"runs": len(payloads),
                "violations": sum(len(payload["violations"])
                                  for payload in payloads)}
