"""The pluggable reliability-policy interface and its registry.

A policy answers exactly one question: given the scored candidates on
the protected device and a replica byte budget, **in what order should
the StandbyPool try to admit warm replicas?** (``None`` delegates to
the pool's own greedy-by-state-size choice.)  Everything else — budget
accounting, migrate/shed degradation, downtime/sync/headroom scoring —
is shared machinery in :mod:`repro.reliability.planner`, so policies
stay tiny and comparable as peers:

* ``joint``    — the planner this PR adds: replicate where a replica
  buys the most downtime per byte, net of its sync-bandwidth tax;
* ``naive``    — first-fit in chain order, blind to benefit (replicates
  large stateless state images that buy nothing);
* ``pam``      — pure reactive PAM: never replicate, always migrate
  cold at failure time;
* ``scaleout`` — the PR-3 StandbyPool default: greedy by state size
  among stateful NFs (replicate whatever is slowest to move).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple, Type

from ..chain.nf import DeviceKind
from ..chain.placement import Placement
from ..devices.pcie import PCIeLink
from ..errors import ConfigurationError
from ..migration.cost import MigrationCostModel
from ..resilience.degradation import DEFAULT_PRIORITY_CLASSES, PriorityClass
from .planner import (DEFAULT_SYNC_REFRESH_HZ, ReliabilityPlan,
                      ReplicaCandidate, assess_candidates, finalise_plan)


class ReliabilityPolicy:
    """Base class: name + replica preference order."""

    #: Registry name (also the campaign grid coordinate).
    name: str = ""

    def choose_replicas(self, candidates: Sequence[ReplicaCandidate],
                        budget_bytes: int
                        ) -> Optional[Tuple[str, ...]]:
        """Replica admission order, or ``None`` for the pool default."""
        raise NotImplementedError


RELIABILITY_POLICIES: Dict[str, Type[ReliabilityPolicy]] = {}


def register_policy(policy_type: Type[ReliabilityPolicy]
                    ) -> Type[ReliabilityPolicy]:
    """Class decorator: make the policy buildable by name."""
    if not policy_type.name:
        raise ConfigurationError(
            f"{policy_type.__name__} must set a policy name")
    if policy_type.name in RELIABILITY_POLICIES:
        raise ConfigurationError(
            f"duplicate reliability policy {policy_type.name!r}")
    RELIABILITY_POLICIES[policy_type.name] = policy_type
    return policy_type


def build_policy(name: str) -> ReliabilityPolicy:
    """Instantiate a registered policy by name."""
    try:
        policy_type = RELIABILITY_POLICIES[name]
    except KeyError:
        known = ", ".join(sorted(RELIABILITY_POLICIES))
        raise ConfigurationError(
            f"unknown reliability policy {name!r} "
            f"(known: {known})") from None
    return policy_type()


@register_policy
class JointPolicy(ReliabilityPolicy):
    """Replicate where a byte of budget buys the most downtime.

    Candidates with zero benefit (stateless NFs re-steer as fast cold
    as warm, survivor-incapable NFs never move) are excluded outright —
    a replica there is pure sync tax.  The rest are ordered by downtime
    saved per byte, ties broken by chain order, and the StandbyPool
    first-fits that order under the budget.
    """

    name = "joint"

    def choose_replicas(self, candidates: Sequence[ReplicaCandidate],
                        budget_bytes: int
                        ) -> Optional[Tuple[str, ...]]:
        """Benefit-per-byte order over strictly-beneficial candidates."""
        useful = [candidate for candidate in candidates
                  if candidate.survivor_capable
                  and candidate.benefit_s > 0
                  and candidate.state_bytes > 0]
        useful.sort(key=lambda candidate: (-candidate.benefit_per_byte,
                                           candidate.chain_index))
        return tuple(candidate.name for candidate in useful)


@register_policy
class NaivePolicy(ReliabilityPolicy):
    """First-fit replication in chain order, blind to benefit."""

    name = "naive"

    def choose_replicas(self, candidates: Sequence[ReplicaCandidate],
                        budget_bytes: int
                        ) -> Optional[Tuple[str, ...]]:
        """Every survivor-capable NF with state, in chain order."""
        return tuple(candidate.name for candidate in candidates
                     if candidate.survivor_capable
                     and candidate.state_bytes > 0)


@register_policy
class PAMReactivePolicy(ReliabilityPolicy):
    """Never replicate: pure reactive push-aside + evacuation."""

    name = "pam"

    def choose_replicas(self, candidates: Sequence[ReplicaCandidate],
                        budget_bytes: int
                        ) -> Optional[Tuple[str, ...]]:
        """An empty preference: the pool admits nothing."""
        return ()


@register_policy
class ScaleOutPolicy(ReliabilityPolicy):
    """Delegate to the StandbyPool's greedy-by-state-size default."""

    name = "scaleout"

    def choose_replicas(self, candidates: Sequence[ReplicaCandidate],
                        budget_bytes: int
                        ) -> Optional[Tuple[str, ...]]:
        """``None`` keeps the PR-3 greedy pool behaviour."""
        return None


def plan_reliability(policy: str, placement: Placement,
                     offered_bps: float,
                     protected: DeviceKind = DeviceKind.SMARTNIC,
                     budget_bytes: int = 0,
                     classes: Sequence[PriorityClass]
                     = DEFAULT_PRIORITY_CLASSES,
                     cost_model: Optional[MigrationCostModel] = None,
                     pcie: Optional[PCIeLink] = None,
                     sync_refresh_hz: float = DEFAULT_SYNC_REFRESH_HZ
                     ) -> ReliabilityPlan:
    """Run one named policy end to end: assess, choose, finalise."""
    if budget_bytes < 0:
        raise ConfigurationError("replica budget must be >= 0")
    link = pcie or PCIeLink()
    candidates = assess_candidates(placement, protected, link,
                                   cost_model=cost_model,
                                   sync_refresh_hz=sync_refresh_hz)
    chooser = build_policy(policy)
    preference = chooser.choose_replicas(candidates, budget_bytes)
    effective_budget = budget_bytes
    if policy == "pam":
        # Reactive PAM holds no replicas whatever the grid's budget —
        # the budget axis is a no-op for it by definition.
        effective_budget = 0
    return finalise_plan(policy, placement, protected, effective_budget,
                         preference, candidates, offered_bps,
                         classes=classes)
