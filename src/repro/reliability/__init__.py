"""Joint migrate/replicate/shed reliability planning (Carpio & Jukan).

Public surface:

* :func:`plan_reliability` / the policy registry — score one policy's
  per-NF migrate/replicate/shed decision for a protected device;
* :class:`ReliabilityCampaign` — the ``reliability`` campaign kind
  (policies x runs grid, journaled/resumable/parallel like every
  other :mod:`repro.exec` campaign);
* the planner dataclasses for tooling and tests.
"""

from .campaign import (DEFAULT_BUDGET_BYTES, PLANNING_LOAD_BPS,
                       ReliabilityCampaign, config_for, plan_for,
                       render_payload, render_payloads, run_payload)
from .planner import (DEFAULT_SYNC_REFRESH_HZ, ReliabilityAction,
                      ReliabilityPlan, ReplicaCandidate,
                      assess_candidates, finalise_plan, shed_damage_at)
from .policy import (RELIABILITY_POLICIES, ReliabilityPolicy,
                     build_policy, plan_reliability, register_policy)

__all__ = [
    "DEFAULT_BUDGET_BYTES",
    "DEFAULT_SYNC_REFRESH_HZ",
    "PLANNING_LOAD_BPS",
    "RELIABILITY_POLICIES",
    "ReliabilityAction",
    "ReliabilityCampaign",
    "ReliabilityPlan",
    "ReliabilityPolicy",
    "ReplicaCandidate",
    "assess_candidates",
    "build_policy",
    "config_for",
    "finalise_plan",
    "plan_for",
    "plan_reliability",
    "register_policy",
    "render_payload",
    "render_payloads",
    "run_payload",
    "shed_damage_at",
]
