"""Joint migrate/replicate/shed planning for one protected device.

PAM answers "which NF do I push aside *now*"; the reliability planner
answers the question Carpio & Jukan pose (PAPERS.md): before the
failure, which NFs on the protected device should hold a **warm
replica** on the survivor (paying sync bandwidth forever), which should
plan to **migrate cold** (paying downtime at failure time), and which
traffic must be **shed** (paying SLA damage) because the survivor can
never host its NF?

Scoring reuses the layers PRs 1-3 built rather than inventing new
physics:

* downtime of a cold move comes from
  :class:`~repro.migration.cost.MigrationCostModel` (pause + PCIe DMA +
  resume), of a warm move from
  :class:`~repro.resilience.recovery.StandbyAwareCostModel` (stateless
  re-steer);
* replica admission and byte accounting go through
  :class:`~repro.resilience.recovery.StandbyPool` — the planner can
  only spend budget the pool would actually grant, and exhaustion
  degrades to a migrate/shed decision via :meth:`StandbyPool.acquire`;
* survivor capacity comes from
  :func:`~repro.resilience.recovery.plan_evacuation`, and shed damage
  from the degradation ladder's :class:`PriorityClass` shares and
  damage weights.

Everything is deterministic: candidates are scored with pure floats,
ties break by chain order, and the emitted plan serialises to a
JSON-clean dict so reliability campaigns stay bit-exact replayable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..chain.nf import DeviceKind, NFProfile
from ..chain.placement import Placement
from ..devices.pcie import PCIeLink
from ..errors import ConfigurationError
from ..migration.cost import MigrationCostModel
from ..resilience.degradation import DEFAULT_PRIORITY_CLASSES, PriorityClass
from ..resilience.recovery import (ACQUIRE_MIGRATE, ACQUIRE_REPLICA,
                                   StandbyAwareCostModel, StandbyPool,
                                   plan_evacuation)

#: How often a warm replica's state image is refreshed on the survivor.
#: Sync bandwidth is charged on the NF's declared ``state_bytes`` —
#: the replica mirrors the state image whether or not migration would
#: pause/replay it — so replicating a large-state NF taxes the
#: survivor's capacity even when the replica buys no downtime.
DEFAULT_SYNC_REFRESH_HZ = 10.0


@dataclass(frozen=True)
class ReplicaCandidate:
    """One NF on the protected device, scored for replication."""

    name: str
    chain_index: int
    state_bytes: int
    stateful: bool
    survivor_capable: bool
    #: Downtime of a cold migration at failure time.
    cold_downtime_s: float
    #: Downtime with a warm replica resident (stateless re-steer).
    warm_downtime_s: float
    #: Steady-state sync bandwidth a replica would cost.
    sync_bps: float

    @property
    def benefit_s(self) -> float:
        """Downtime a warm replica saves at failure time."""
        return self.cold_downtime_s - self.warm_downtime_s

    @property
    def benefit_per_byte(self) -> float:
        """Downtime saved per replica byte spent (0 for free NFs)."""
        if self.state_bytes <= 0:
            return 0.0
        return self.benefit_s / self.state_bytes


@dataclass(frozen=True)
class ReliabilityAction:
    """The planner's verdict for one NF on the protected device."""

    nf_name: str
    #: ``replicate`` | ``migrate`` | ``shed`` (StandbyPool.acquire
    #: resolutions — the pool is the single source of truth).
    action: str
    #: Downtime this NF contributes at failure time under the plan.
    downtime_s: float
    #: Downtime it would contribute migrating cold (the counterfactual).
    cold_downtime_s: float
    #: Replica bytes reserved on the survivor (replicate only).
    budget_bytes: int
    #: Steady-state sync bandwidth (replicate only).
    sync_bps: float

    def to_dict(self) -> Dict[str, object]:
        """JSON-clean form (journal payloads embed this verbatim)."""
        return {"nf": self.nf_name, "action": self.action,
                "downtime_s": self.downtime_s,
                "cold_downtime_s": self.cold_downtime_s,
                "budget_bytes": self.budget_bytes,
                "sync_bps": self.sync_bps}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ReliabilityAction":
        """Inverse of :meth:`to_dict`."""
        return cls(nf_name=str(data["nf"]), action=str(data["action"]),
                   downtime_s=float(data["downtime_s"]),
                   cold_downtime_s=float(data["cold_downtime_s"]),
                   budget_bytes=int(data["budget_bytes"]),
                   sync_bps=float(data["sync_bps"]))


@dataclass(frozen=True)
class ReliabilityPlan:
    """One policy's joint migrate/replicate/shed decision, frozen."""

    policy: str
    protected: str
    budget_bytes: int
    actions: Tuple[ReliabilityAction, ...]
    #: NFs the StandbyPool actually admitted (chain order).
    prewarmed: Tuple[str, ...]
    #: Replica bytes the pool actually spent (<= budget_bytes).
    spent_bytes: int
    #: Sum of per-NF downtime at failure time (serial evacuation).
    predicted_downtime_s: float
    #: Total steady-state sync bandwidth of the replica set.
    sync_bps: float
    #: Survivor capacity net of replica sync — what remains for
    #: traffic after the protected device dies (the Pareto x-axis).
    headroom_bps: float
    #: Survivor capacity before the sync tax (plan_evacuation's view).
    survivor_capacity_bps: float
    #: Weighted SLA damage of the shed the plan cannot avoid at
    #: ``offered_bps`` (0 when the survivor carries everything).
    shed_damage: float
    #: Offered load the plan was scored against.
    offered_bps: float
    notes: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        """JSON-clean form for campaign payloads and the bench."""
        return {"policy": self.policy, "protected": self.protected,
                "budget_bytes": self.budget_bytes,
                "actions": [action.to_dict() for action in self.actions],
                "prewarmed": list(self.prewarmed),
                "spent_bytes": self.spent_bytes,
                "predicted_downtime_s": self.predicted_downtime_s,
                "sync_bps": self.sync_bps,
                "headroom_bps": self.headroom_bps,
                "survivor_capacity_bps": self.survivor_capacity_bps,
                "shed_damage": self.shed_damage,
                "offered_bps": self.offered_bps,
                "notes": list(self.notes)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ReliabilityPlan":
        """Inverse of :meth:`to_dict`."""
        return cls(
            policy=str(data["policy"]), protected=str(data["protected"]),
            budget_bytes=int(data["budget_bytes"]),
            actions=tuple(ReliabilityAction.from_dict(action)
                          for action in data["actions"]),
            prewarmed=tuple(str(name) for name in data["prewarmed"]),
            spent_bytes=int(data["spent_bytes"]),
            predicted_downtime_s=float(data["predicted_downtime_s"]),
            sync_bps=float(data["sync_bps"]),
            headroom_bps=float(data["headroom_bps"]),
            survivor_capacity_bps=float(data["survivor_capacity_bps"]),
            shed_damage=float(data["shed_damage"]),
            offered_bps=float(data["offered_bps"]),
            notes=tuple(str(note) for note in data["notes"]))


def assess_candidates(placement: Placement, protected: DeviceKind,
                      pcie: PCIeLink,
                      cost_model: Optional[MigrationCostModel] = None,
                      sync_refresh_hz: float = DEFAULT_SYNC_REFRESH_HZ
                      ) -> Tuple[ReplicaCandidate, ...]:
    """Score every NF on ``protected`` for the replicate-vs-migrate call.

    Emitted in chain order — the deterministic base order every policy
    starts from.
    """
    if sync_refresh_hz <= 0:
        raise ConfigurationError("sync refresh rate must be positive")
    model = cost_model or MigrationCostModel()
    survivor = protected.other()
    hosted = {nf.name for nf in placement.on_device(protected)}
    candidates: List[ReplicaCandidate] = []
    for index, nf in enumerate(placement.chain):
        if nf.name not in hosted:
            continue
        capable = nf.can_run_on(survivor)
        cold = model.estimate(nf, pcie).total_s if capable else 0.0
        warm = StandbyAwareCostModel(
            pause_overhead_s=model.pause_overhead_s,
            resume_overhead_s=model.resume_overhead_s,
            per_buffered_packet_s=model.per_buffered_packet_s,
            state_model=model.state_model,
            prewarmed=frozenset((nf.name,))
        ).estimate(nf, pcie).total_s if capable else 0.0
        candidates.append(ReplicaCandidate(
            name=nf.name, chain_index=index,
            state_bytes=nf.state_bytes, stateful=nf.stateful,
            survivor_capable=capable,
            cold_downtime_s=cold, warm_downtime_s=warm,
            sync_bps=8.0 * nf.state_bytes * sync_refresh_hz))
    return tuple(candidates)


def shed_damage_at(offered_bps: float, capacity_bps: float,
                   classes: Sequence[PriorityClass]) -> float:
    """Weighted SLA damage of the shed needed to fit ``capacity_bps``.

    The ladder sheds classes from the end of the tuple (lowest priority
    first); damage accumulates ``share * damage_weight`` per engaged
    class, scaled by how much of the class's share the deficit actually
    consumes.  0 when the capacity carries the full offered load.
    """
    if offered_bps <= 0 or capacity_bps >= offered_bps:
        return 0.0
    deficit_fraction = (offered_bps - max(capacity_bps, 0.0)) / offered_bps
    damage = 0.0
    for cls in reversed(tuple(classes)):
        if deficit_fraction <= 0:
            break
        if not cls.sheddable:
            continue
        engaged = min(cls.share, deficit_fraction)
        damage += engaged * cls.damage_weight
        deficit_fraction -= engaged
    return damage


def finalise_plan(policy: str, placement: Placement,
                  protected: DeviceKind, budget_bytes: int,
                  preference: Optional[Sequence[str]],
                  candidates: Sequence[ReplicaCandidate],
                  offered_bps: float,
                  classes: Sequence[PriorityClass] = DEFAULT_PRIORITY_CLASSES,
                  notes: Sequence[str] = ()) -> ReliabilityPlan:
    """Turn a policy's replica preference into the executable plan.

    Admission goes through :class:`StandbyPool` — the same budget
    accounting the controller installs at runtime — and every NF's
    final action comes from :meth:`StandbyPool.acquire`, so the plan
    can never promise a replica the pool would refuse.
    """
    pool = StandbyPool(placement, protected, budget_bytes,
                       prewarmed=preference)
    by_name = {candidate.name: candidate for candidate in candidates}
    actions: List[ReliabilityAction] = []
    downtime = 0.0
    sync = 0.0
    for candidate in candidates:
        resolution = pool.acquire(candidate.name)
        if resolution == ACQUIRE_REPLICA:
            nf_downtime = candidate.warm_downtime_s
            nf_sync = candidate.sync_bps
            nf_budget = candidate.state_bytes
        elif resolution == ACQUIRE_MIGRATE:
            nf_downtime = candidate.cold_downtime_s
            nf_sync = 0.0
            nf_budget = 0
        else:
            nf_downtime = 0.0
            nf_sync = 0.0
            nf_budget = 0
        downtime += nf_downtime
        sync += nf_sync
        actions.append(ReliabilityAction(
            nf_name=candidate.name, action=resolution,
            downtime_s=nf_downtime,
            cold_downtime_s=candidate.cold_downtime_s,
            budget_bytes=nf_budget, sync_bps=nf_sync))
    planning = plan_evacuation(placement, offered_bps, protected)
    capacity = planning.survivor_capacity_bps
    headroom = capacity - sync
    damage = shed_damage_at(offered_bps, headroom, classes)
    prewarmed = tuple(by_name[name].name
                      for name in sorted(pool.prewarmed,
                                         key=lambda n: by_name[n].chain_index))
    all_notes = list(notes)
    if pool.spent_bytes < budget_bytes and preference is not None:
        unspent = budget_bytes - pool.spent_bytes
        all_notes.append(f"{unspent} budget byte(s) left unspent")
    return ReliabilityPlan(
        policy=policy, protected=protected.value,
        budget_bytes=budget_bytes, actions=tuple(actions),
        prewarmed=prewarmed, spent_bytes=pool.spent_bytes,
        predicted_downtime_s=downtime, sync_bps=sync,
        headroom_bps=headroom, survivor_capacity_bps=capacity,
        shed_damage=damage, offered_bps=offered_bps,
        notes=tuple(all_notes))
