"""Exception hierarchy for the PAM reproduction library.

All exceptions raised by :mod:`repro` derive from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration mistakes from runtime conditions such
as the scale-out fallback the paper describes for joint overload.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A chain, placement, device, or workload was configured inconsistently.

    Raised eagerly at construction/validation time, never mid-simulation,
    so a simulation that starts running has a self-consistent setup.
    """


class UnknownNFError(ConfigurationError):
    """An NF name was referenced that the catalog or chain does not contain."""


class CapacityError(ConfigurationError):
    """A capacity table is missing an entry or holds a non-positive value."""


class PlacementError(ConfigurationError):
    """A placement maps an NF to a device that cannot host it, or omits an NF."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an internal inconsistency."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or after the engine horizon."""


class MigrationError(ReproError):
    """A migration plan could not be applied to the running system."""


class InfeasiblePlanError(MigrationError):
    """The selection algorithm produced a plan that violates its constraints.

    This indicates a library bug (the feasibility checks in
    :mod:`repro.core.feasibility` should prevent it) and is surfaced
    loudly rather than silently ignored.
    """


class ExecutionError(ReproError):
    """A campaign run failed in an executor worker and the campaign has
    no way to record the failure as a result (no violation vocabulary),
    so the crash propagates — the same thing the serial loop would do.
    """


class CampaignAborted(ExecutionError):
    """A campaign's supervision abort budget was blown.

    Raised by :func:`repro.exec.run_campaign` when more runs have been
    quarantined than the :class:`~repro.exec.SupervisionPolicy`'s
    ``max_failures`` allows: the grid is considered poisoned (broken
    build, bad config, sick host) and finishing it would only journal
    more garbage.  The journal gets a ``campaign-abort`` record first,
    so the campaign remains resumable once the cause is fixed.
    """

    def __init__(self, message: str, completed: int = 0,
                 quarantined: int = 0) -> None:
        super().__init__(message)
        self.completed = completed
        self.quarantined = quarantined


class CheckpointError(ReproError):
    """A checkpoint artifact failed an integrity or fidelity check.

    Raised by :mod:`repro.checkpoint` when a journal record fails its
    checksum mid-file, a snapshot file's digest does not match its
    payload, or a restored component's state disagrees with the
    snapshot it claims to resume — anything where continuing would
    silently produce a run that is *not* the one that was interrupted.
    """


class AnalysisError(ReproError):
    """A static-analysis run could not proceed (bad path, baseline, or flag).

    Raised by :mod:`repro.analysis.lint` for usage-level problems — a
    nonexistent lint target, an unreadable baseline file — as opposed to
    findings *in* the analysed code, which are reported, not raised.
    """


class ScaleOutRequired(ReproError):
    """Both SmartNIC and CPU are overloaded; no migration can help.

    The paper (S2, last paragraph) notes that when both devices are
    overloaded "the network operator must start another instance" per
    OpenNF.  PAM signals that condition with this exception so the
    operator layer (or :mod:`repro.baselines.scaleout`) can react.
    """

    def __init__(self, message: str, nic_utilisation: float = 0.0,
                 cpu_utilisation: float = 0.0) -> None:
        super().__init__(message)
        self.nic_utilisation = nic_utilisation
        self.cpu_utilisation = cpu_utilisation
