"""Service-chain ordering constraints (SFC validity rules).

Service-function chaining imposes semantic order: an IDS cannot inspect
traffic a VPN has not decrypted yet; NAT rewrites addresses, so NFs that
match on original addresses must run before it.  This module expresses
such rules declaratively and validates chains against them, so a
mis-ordered chain fails at build time instead of producing quietly
meaningless experiments.

Rules speak in :class:`~repro.chain.nf.NFKind` terms and therefore apply
to renamed instances too.  :data:`DEFAULT_SFC_RULES` encodes the common
conventions; callers compose their own rule lists freely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..errors import ConfigurationError
from .chain import ServiceChain
from .nf import NFKind


@dataclass(frozen=True)
class Violation:
    """One broken rule, with a human-readable explanation."""

    rule: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.rule}: {self.detail}"


class Rule:
    """Base class: checks one property of a chain."""

    name = "rule"

    def check(self, chain: ServiceChain) -> List[Violation]:
        """Violations of this rule in ``chain`` (empty = compliant)."""
        raise NotImplementedError


@dataclass(frozen=True)
class MustPrecede(Rule):
    """Every ``before``-kind NF must come before every ``after``-kind NF."""

    before: NFKind
    after: NFKind
    reason: str = ""

    @property
    def name(self) -> str:
        """Rule identifier used in violation reports."""
        return f"{self.before.value}-before-{self.after.value}"

    def check(self, chain: ServiceChain) -> List[Violation]:
        """Flag every before-kind NF placed after an after-kind NF."""
        violations = []
        last_after = None
        for position, nf in enumerate(chain):
            if nf.kind is self.after:
                last_after = (position, nf.name)
            elif nf.kind is self.before and last_after is not None:
                after_pos, after_name = last_after
                detail = (f"{nf.name!r} (pos {position}) must precede "
                          f"{after_name!r} (pos {after_pos})")
                if self.reason:
                    detail += f" — {self.reason}"
                violations.append(Violation(self.name, detail))
        return violations


@dataclass(frozen=True)
class AtMostOne(Rule):
    """At most one NF of ``kind`` per chain."""

    kind: NFKind

    @property
    def name(self) -> str:
        """Rule identifier used in violation reports."""
        return f"at-most-one-{self.kind.value}"

    def check(self, chain: ServiceChain) -> List[Violation]:
        """Flag chains with more than one NF of the kind."""
        matches = [nf.name for nf in chain if nf.kind is self.kind]
        if len(matches) <= 1:
            return []
        return [Violation(self.name,
                          f"found {len(matches)}: {', '.join(matches)}")]


@dataclass(frozen=True)
class MustBeEdge(Rule):
    """An NF of ``kind`` may only sit at the head or tail of the chain."""

    kind: NFKind

    @property
    def name(self) -> str:
        """Rule identifier used in violation reports."""
        return f"{self.kind.value}-at-edge"

    def check(self, chain: ServiceChain) -> List[Violation]:
        """Flag kind-instances sitting strictly mid-chain."""
        violations = []
        for position, nf in enumerate(chain):
            if nf.kind is self.kind and \
                    not (position == 0 or position == len(chain) - 1):
                violations.append(Violation(
                    self.name,
                    f"{nf.name!r} sits mid-chain at position {position}"))
        return violations


#: Conventional SFC ordering rules.
DEFAULT_SFC_RULES: Sequence[Rule] = (
    MustPrecede(NFKind.VPN, NFKind.IDS,
                reason="the IDS cannot inspect ciphertext"),
    MustPrecede(NFKind.VPN, NFKind.DPI,
                reason="the DPI cannot parse ciphertext"),
    MustPrecede(NFKind.FIREWALL, NFKind.CACHE,
                reason="never cache traffic the firewall would block"),
    MustPrecede(NFKind.NAT, NFKind.LOAD_BALANCER,
                reason="balance on post-NAT addresses"),
    AtMostOne(NFKind.NAT),
    MustBeEdge(NFKind.LOAD_BALANCER),
)


def check_chain(chain: ServiceChain,
                rules: Sequence[Rule] = DEFAULT_SFC_RULES
                ) -> List[Violation]:
    """All violations of ``rules`` in ``chain`` (empty = compliant)."""
    violations: List[Violation] = []
    for rule in rules:
        violations.extend(rule.check(chain))
    return violations


def validate_chain(chain: ServiceChain,
                   rules: Sequence[Rule] = DEFAULT_SFC_RULES) -> None:
    """Raise :class:`ConfigurationError` listing every violation."""
    violations = check_chain(chain, rules)
    if violations:
        summary = "; ".join(str(violation) for violation in violations)
        raise ConfigurationError(
            f"chain {chain.name!r} violates SFC rules: {summary}")
