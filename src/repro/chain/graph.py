"""Service graphs: branched NF topologies (NFP-style), beyond chains.

The paper's motivation cites NFP [7], where traffic fans out to
parallel NF branches and merges again.  A :class:`ServiceGraph` is a
single-source, single-sink DAG of NFs whose edges carry *traffic
fractions*: a classifier sending 30% of flows to an IDS branch and 70%
to a fast path is two out-edges with fractions 0.3 / 0.7.

The chain-world quantities generalise:

* a node's **share** is the fraction of total traffic reaching it
  (propagated from the source along edge fractions);
* :class:`GraphPlacement` scores a placement by **expected PCIe
  crossings per packet** — the share-weighted count of edges whose
  endpoints sit on different devices;
* a *border* NF is then simply one whose move to the CPU does not
  increase the expected crossings, which
  :func:`repro.core.graph_pam.select` exploits exactly like chain PAM.

A linear chain embeds as the degenerate graph, and the graph
quantities collapse to the chain ones (property-tested).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import ConfigurationError, UnknownNFError
from .nf import DeviceKind, NFProfile

#: Virtual endpoint node names (never NF names).
INGRESS = "__ingress__"
EGRESS = "__egress__"

#: Tolerance for fraction sums (floats).
_FRACTION_TOL = 1e-9


@dataclass(frozen=True)
class Edge:
    """A directed edge carrying ``fraction`` of its source's traffic."""

    src: str
    dst: str
    fraction: float = 1.0

    def __post_init__(self) -> None:
        if not (0.0 < self.fraction <= 1.0):
            raise ConfigurationError(
                f"edge {self.src}->{self.dst}: fraction must be in (0, 1]")
        if self.src == self.dst:
            raise ConfigurationError(f"self-loop on {self.src!r}")


class ServiceGraph:
    """A validated single-source single-sink DAG of NFs."""

    def __init__(self, nfs: Iterable[NFProfile],
                 edges: Iterable[Edge], name: str = "graph") -> None:
        self.name = name
        self._nfs: Dict[str, NFProfile] = {}
        for nf in nfs:
            if nf.name in (INGRESS, EGRESS):
                raise ConfigurationError(
                    f"NF name {nf.name!r} is reserved")
            if nf.name in self._nfs:
                raise ConfigurationError(
                    f"duplicate NF {nf.name!r} in graph {name!r}")
            self._nfs[nf.name] = nf
        if not self._nfs:
            raise ConfigurationError("a service graph needs at least one NF")
        self.edges: Tuple[Edge, ...] = tuple(edges)
        self._out: Dict[str, List[Edge]] = {}
        self._in: Dict[str, List[Edge]] = {}
        valid_nodes = set(self._nfs) | {INGRESS, EGRESS}
        for edge in self.edges:
            for end in (edge.src, edge.dst):
                if end not in valid_nodes:
                    raise ConfigurationError(
                        f"edge references unknown node {end!r}")
            if edge.dst == INGRESS or edge.src == EGRESS:
                raise ConfigurationError(
                    "edges may not enter the ingress or leave the egress")
            self._out.setdefault(edge.src, []).append(edge)
            self._in.setdefault(edge.dst, []).append(edge)
        self._validate_structure()
        self._shares = self._propagate_shares()

    # -- validation -----------------------------------------------------------

    def _validate_structure(self) -> None:
        if INGRESS not in self._out:
            raise ConfigurationError("graph needs at least one ingress edge")
        if EGRESS not in self._in:
            raise ConfigurationError("graph needs at least one egress edge")
        for name in self._nfs:
            if name not in self._in:
                raise ConfigurationError(f"NF {name!r} is unreachable")
            if name not in self._out:
                raise ConfigurationError(f"NF {name!r} has no way out")
        for node, out_edges in self._out.items():
            total = sum(edge.fraction for edge in out_edges)
            if abs(total - 1.0) > _FRACTION_TOL:
                raise ConfigurationError(
                    f"outgoing fractions of {node!r} sum to {total}, "
                    "expected 1.0")
        self._topological_order()  # raises on cycles

    def _topological_order(self) -> List[str]:
        """Kahn's algorithm over NF nodes; raises on a cycle."""
        indegree = {name: len(self._in.get(name, ())) for name in self._nfs}
        # Ingress edges do not count toward NF indegree for the sort.
        for name in indegree:
            indegree[name] -= sum(1 for e in self._in.get(name, ())
                                  if e.src == INGRESS)
        ready = [name for name, degree in indegree.items() if degree == 0]
        order: List[str] = []
        while ready:
            ready.sort()  # deterministic
            node = ready.pop(0)
            order.append(node)
            for edge in self._out.get(node, ()):
                if edge.dst == EGRESS:
                    continue
                indegree[edge.dst] -= 1
                if indegree[edge.dst] == 0:
                    ready.append(edge.dst)
        if len(order) != len(self._nfs):
            raise ConfigurationError(f"graph {self.name!r} has a cycle")
        return order

    def _propagate_shares(self) -> Dict[str, float]:
        shares = {name: 0.0 for name in self._nfs}
        shares[INGRESS] = 1.0
        shares[EGRESS] = 0.0
        for node in [INGRESS] + self._topological_order():
            for edge in self._out.get(node, ()):
                shares[edge.dst] = shares.get(edge.dst, 0.0) + \
                    shares[node] * edge.fraction
        if abs(shares[EGRESS] - 1.0) > 1e-6:
            raise ConfigurationError(
                f"traffic not conserved: egress share {shares[EGRESS]}")
        return shares

    # -- lookups -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nfs)

    def __contains__(self, name: object) -> bool:
        return name in self._nfs

    def names(self) -> List[str]:
        """NF names in topological order."""
        return self._topological_order()

    def get(self, name: str) -> NFProfile:
        """The NF called ``name``."""
        try:
            return self._nfs[name]
        except KeyError:
            raise UnknownNFError(
                f"graph {self.name!r} has no NF {name!r}") from None

    def node_share(self, name: str) -> float:
        """Fraction of total traffic that traverses ``name``."""
        if name in (INGRESS, EGRESS):
            return 1.0
        self.get(name)
        return self._shares[name]

    def edge_share(self, edge: Edge) -> float:
        """Fraction of total traffic flowing along ``edge``."""
        source_share = 1.0 if edge.src == INGRESS else self.node_share(edge.src)
        return source_share * edge.fraction

    @classmethod
    def from_chain(cls, chain) -> "ServiceGraph":
        """Embed a linear :class:`~repro.chain.chain.ServiceChain`."""
        names = chain.names()
        edges = [Edge(INGRESS, names[0])]
        edges += [Edge(a, b) for a, b in zip(names, names[1:])]
        edges.append(Edge(names[-1], EGRESS))
        return cls(chain.nfs, edges, name=chain.name)


class GraphPlacement:
    """NF -> device assignment for a service graph."""

    def __init__(self, graph: ServiceGraph,
                 assignment: Mapping[str, DeviceKind],
                 ingress: DeviceKind = DeviceKind.SMARTNIC,
                 egress: DeviceKind = DeviceKind.SMARTNIC) -> None:
        self.graph = graph
        self.ingress = ingress
        self.egress = egress
        missing = [name for name in graph.names() if name not in assignment]
        if missing:
            raise ConfigurationError(
                f"placement omits NFs: {', '.join(missing)}")
        for name in graph.names():
            if not graph.get(name).can_run_on(assignment[name]):
                raise ConfigurationError(
                    f"NF {name!r} cannot run on {assignment[name].value}")
        self._assignment = {name: assignment[name]
                            for name in graph.names()}

    def device_of(self, name: str) -> DeviceKind:
        """Device hosting ``name`` (endpoints resolve to their devices)."""
        if name == INGRESS:
            return self.ingress
        if name == EGRESS:
            return self.egress
        self.graph.get(name)
        return self._assignment[name]

    def on_device(self, device: DeviceKind) -> List[NFProfile]:
        """NFs on ``device`` in topological order."""
        return [self.graph.get(name) for name in self.graph.names()
                if self._assignment[name] is device]

    def nic_nfs(self) -> List[NFProfile]:
        """NFs on the SmartNIC."""
        return self.on_device(DeviceKind.SMARTNIC)

    def expected_crossings(self) -> float:
        """Share-weighted PCIe crossings per packet.

        The graph generalisation of
        :meth:`~repro.chain.placement.Placement.pcie_crossings`: an edge
        contributes its traffic share when its endpoints differ.
        """
        return sum(self.graph.edge_share(edge)
                   for edge in self.graph.edges
                   if self.device_of(edge.src) is not
                   self.device_of(edge.dst))

    def moved(self, name: str, to: DeviceKind) -> "GraphPlacement":
        """The placement after moving ``name`` to ``to``."""
        if self.device_of(name) is to:
            raise ConfigurationError(f"NF {name!r} already on {to.value}")
        assignment = dict(self._assignment)
        assignment[name] = to
        return GraphPlacement(self.graph, assignment,
                              ingress=self.ingress, egress=self.egress)

    def crossing_delta(self, name: str, to: DeviceKind) -> float:
        """Change in expected crossings if ``name`` moved to ``to``."""
        return self.moved(name, to).expected_crossings() - \
            self.expected_crossings()
