"""Service-chain model.

A service chain (paper S1, after [3]) is an ordered sequence of vNFs
that every packet must traverse.  :class:`ServiceChain` is an immutable
ordered collection of :class:`~repro.chain.nf.NFProfile` with unique
names; position-based helpers (upstream/downstream neighbours) are what
the border identification in :mod:`repro.core.border` builds on.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError, UnknownNFError
from .nf import NFProfile


class ServiceChain:
    """An ordered, validated sequence of NFs.

    The chain is immutable: operations that "modify" it (not needed by
    PAM, which only moves NFs between devices) return new chains.
    """

    def __init__(self, nfs: Iterable[NFProfile], name: str = "chain") -> None:
        self._nfs: Tuple[NFProfile, ...] = tuple(nfs)
        self.name = name
        if len(self._nfs) == 0:
            raise ConfigurationError("a service chain needs at least one NF")
        seen = set()
        for nf in self._nfs:
            if nf.name in seen:
                raise ConfigurationError(
                    f"duplicate NF name {nf.name!r} in chain {name!r}; "
                    "use NFProfile.renamed() to instantiate a profile twice")
            seen.add(nf.name)
        self._index = {nf.name: i for i, nf in enumerate(self._nfs)}

    # -- container protocol -----------------------------------------------

    def __len__(self) -> int:
        return len(self._nfs)

    def __iter__(self) -> Iterator[NFProfile]:
        return iter(self._nfs)

    def __getitem__(self, position: int) -> NFProfile:
        return self._nfs[position]

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        path = " -> ".join(nf.name for nf in self._nfs)
        return f"ServiceChain({self.name!r}: {path})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ServiceChain):
            return NotImplemented
        return self._nfs == other._nfs

    def __hash__(self) -> int:
        return hash(self._nfs)

    # -- lookups ------------------------------------------------------------

    @property
    def nfs(self) -> Tuple[NFProfile, ...]:
        """The NFs in traversal order."""
        return self._nfs

    def names(self) -> List[str]:
        """NF names in traversal order."""
        return [nf.name for nf in self._nfs]

    def get(self, name: str) -> NFProfile:
        """The NF called ``name``; raises :class:`UnknownNFError` if absent."""
        try:
            return self._nfs[self._index[name]]
        except KeyError:
            raise UnknownNFError(
                f"chain {self.name!r} has no NF {name!r}; "
                f"it contains: {', '.join(self.names())}") from None

    def position(self, name: str) -> int:
        """Zero-based position of ``name`` in the chain."""
        self.get(name)  # raise uniformly for unknown names
        return self._index[name]

    # -- neighbourhood ---------------------------------------------------

    def upstream(self, name: str) -> Optional[NFProfile]:
        """The NF immediately before ``name``, or None at the chain head."""
        pos = self.position(name)
        return self._nfs[pos - 1] if pos > 0 else None

    def downstream(self, name: str) -> Optional[NFProfile]:
        """The NF immediately after ``name``, or None at the chain tail."""
        pos = self.position(name)
        return self._nfs[pos + 1] if pos + 1 < len(self._nfs) else None

    def is_head(self, name: str) -> bool:
        """Whether ``name`` is the first NF (receives traffic from the wire)."""
        return self.position(name) == 0

    def is_tail(self, name: str) -> bool:
        """Whether ``name`` is the last NF (sends traffic to the wire)."""
        return self.position(name) == len(self._nfs) - 1

    # -- derived chains ----------------------------------------------------

    def subchain(self, start: int, stop: int, name: Optional[str] = None) -> "ServiceChain":
        """The chain restricted to positions ``[start, stop)``."""
        if not (0 <= start < stop <= len(self._nfs)):
            raise ConfigurationError(
                f"invalid subchain [{start}, {stop}) of length-{len(self._nfs)} chain")
        return ServiceChain(self._nfs[start:stop], name or f"{self.name}[{start}:{stop}]")

    def min_capacity_nf(self, device) -> NFProfile:
        """The NF with minimum capacity on ``device`` (the naive policy's pick).

        NFs that cannot run on ``device`` are skipped.
        """
        candidates = [nf for nf in self._nfs if nf.can_run_on(device)]
        if not candidates:
            raise ConfigurationError(
                f"no NF in chain {self.name!r} can run on {device}")
        return min(candidates, key=lambda nf: nf.capacity_on(device))
