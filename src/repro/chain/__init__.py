"""Service-chain substrate: NF profiles, chains, and placements."""

from . import catalog
from .builder import ChainBuilder
from .constraints import (DEFAULT_SFC_RULES, AtMostOne, MustBeEdge,
                          MustPrecede, Rule, Violation, check_chain,
                          validate_chain)
from .chain import ServiceChain
from .diagram import render_placement
from .graph import EGRESS, INGRESS, Edge, GraphPlacement, ServiceGraph
from .nf import DeviceKind, NFInstanceId, NFKind, NFProfile
from .placement import Placement, Segment

__all__ = [
    "AtMostOne",
    "ChainBuilder",
    "DEFAULT_SFC_RULES",
    "DeviceKind",
    "EGRESS",
    "Edge",
    "GraphPlacement",
    "INGRESS",
    "NFInstanceId",
    "NFKind",
    "MustBeEdge",
    "MustPrecede",
    "NFProfile",
    "Placement",
    "Segment",
    "ServiceChain",
    "Rule",
    "ServiceGraph",
    "Violation",
    "catalog",
    "render_placement",
    "check_chain",
    "validate_chain",
]
