"""ASCII diagrams of chains and placements.

The examples and the CLI want to *show* a placement, not enumerate it.
:func:`render_placement` draws the device lanes with the chain's hops
and PCIe crossings, e.g. the Figure-1 placement::

    wire ->|                                              |
    NIC    |      [logger]--[monitor]--[firewall]         |
           |     /                              \\         |
    CPU    | [load_balancer]                     -> host  |
           |  crossings: 3

(Exact layout below differs; the point is lanes + crossing marks.)
"""

from __future__ import annotations

from typing import List

from .nf import DeviceKind
from .placement import Placement

_LANE = {DeviceKind.SMARTNIC: 0, DeviceKind.CPU: 1}


def render_placement(placement: Placement) -> str:
    """Two-lane (NIC / CPU) diagram of the placement with crossings."""
    lanes: List[List[str]] = [[], []]
    cross_marks: List[str] = []

    def pad_to_width(width: int) -> None:
        for lane in lanes:
            while len("".join(lane)) < width:
                lane.append(" ")

    def append(device: DeviceKind, text: str) -> None:
        target = _LANE[device]
        other = 1 - target
        width = max(len("".join(lanes[target])), len("".join(lanes[other])))
        pad_to_width(width)
        lanes[target].append(text)
        lanes[other].append(" " * len(text))
        cross_marks.append(" " * len(text))

    def same_lane_link(device: DeviceKind) -> None:
        lanes[_LANE[device]].append("--")
        lanes[1 - _LANE[device]].append("  ")
        cross_marks.append("  ")

    def mark_crossing(width_hint: int = 3) -> None:
        pad_to_width(max(len("".join(lane)) for lane in lanes))
        for lane in lanes:
            lane.append("-" * width_hint)
        cross_marks.append(" X ".center(width_hint))

    previous = placement.ingress
    append(previous, "wire>" if previous is DeviceKind.SMARTNIC
           else "host>")
    for nf in placement.chain:
        device = placement.device_of(nf.name)
        if device is not previous:
            mark_crossing()
        else:
            same_lane_link(previous)
        append(device, f"[{nf.name}]")
        previous = device
    if placement.egress is not previous:
        mark_crossing()
    else:
        same_lane_link(previous)
    append(placement.egress, ">wire" if placement.egress is
           DeviceKind.SMARTNIC else ">host")

    nic_line = "NIC  " + "".join(lanes[0]).rstrip()
    cpu_line = "CPU  " + "".join(lanes[1]).rstrip()
    marks = "     " + "".join(cross_marks).rstrip()
    footer = f"     PCIe crossings: {placement.pcie_crossings()}"
    lines = [nic_line]
    if marks.strip():
        lines.append(marks)
    lines.append(cpu_line)
    lines.append(footer)
    return "\n".join(lines)
